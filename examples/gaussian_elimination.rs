//! The paper's flagship workload (§5.1): simulated integer Gaussian
//! elimination with statically allocated rows and a transparently
//! replicated pivot row — and the same program under three memory
//! systems.
//!
//! Run with:
//!   cargo run --release --example gaussian_elimination -- [n] [procs]

use platinum_repro::apps::gauss::{reference_checksum, GaussConfig};
use platinum_repro::apps::harness::{run_gauss, GaussStyle, PolicyKind};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(160);
    let procs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let cfg = GaussConfig {
        n,
        ..Default::default()
    };

    println!("Gaussian elimination, {n}x{n} integer matrix, {procs} of 16 processors\n");
    let expected = reference_checksum(&cfg);

    for style in [
        GaussStyle::Shared(PolicyKind::Platinum),
        GaussStyle::UniformSystem,
        GaussStyle::MessagePassing,
    ] {
        let run = run_gauss(style, 16, procs, &cfg);
        assert_eq!(
            run.checksum,
            expected,
            "{} computed a different matrix!",
            style.name()
        );
        let c = run.run.merged_counters();
        println!(
            "{:<26} {:>9.1} ms   remote refs {:>5.1}%   replications {:>5}   result OK",
            style.name(),
            run.elapsed_ns as f64 / 1e6,
            c.remote_fraction() * 100.0,
            run.kernel_stats.replications,
        );
    }

    println!(
        "\nAll three styles compute bit-identical results; the paper's point is\n\
         that the transparent version needs no data-placement code at all\n\
         (17 lines of elimination code vs 41 for the Uniform System and 64\n\
         for message passing, §6) yet performs close to the hand-tuned one."
    );
}
