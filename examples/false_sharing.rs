//! The §4.2 war story: a spin-lock barrier accidentally co-located with a
//! read-mostly variable freezes the page and turns every inner-loop read
//! remote — and the kernel's post-mortem report is how you find out.
//!
//! Run with:
//!   cargo run --release --example false_sharing

use platinum_repro::apps::gauss::GaussConfig;
use platinum_repro::apps::harness::run_gauss_anecdote;

fn main() {
    let cfg = GaussConfig {
        n: 160,
        ..Default::default()
    };
    let p = 8;
    println!("Gaussian elimination with a shared matrix-size variable in the inner loop\n");

    // The accident: matrix-size variable and barrier words on one page,
    // on a kernel without a defrost daemon.
    let frozen = run_gauss_anecdote(16, p, &cfg, true, u64::MAX / 2);
    println!(
        "co-located + no thawing:  {:>8.1} ms   ({} page(s) froze and stayed frozen)",
        frozen.elapsed_ns as f64 / 1e6,
        frozen.kernel_stats.freezes
    );

    // Same layout, but the defrost daemon thaws frozen pages every 1 s of
    // virtual time — the fix the paper added to the kernel.
    let thawed = run_gauss_anecdote(16, p, &cfg, true, 1_000_000_000);
    println!(
        "co-located + defrost 1s:  {:>8.1} ms   ({} thaw(s) rescued the page)",
        thawed.elapsed_ns as f64 / 1e6,
        thawed.kernel_stats.thaws
    );

    // The real fix: allocation zones keep data with different access
    // patterns on different pages (§6).
    let separated = run_gauss_anecdote(16, p, &cfg, false, 1_000_000_000);
    println!(
        "page-separated layout:    {:>8.1} ms",
        separated.elapsed_ns as f64 / 1e6
    );

    println!(
        "\nslowdown from the frozen page: {:.2}x; thawing recovers all but {:.0} ms",
        frozen.elapsed_ns as f64 / separated.elapsed_ns as f64,
        (thawed.elapsed_ns as f64 - separated.elapsed_ns as f64) / 1e6
    );
    println!(
        "(the paper: \"the old version of the program took less than two seconds\n\
         more to run than the new version\" once thawing existed)"
    );
}
