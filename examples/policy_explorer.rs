//! Compare the replication-policy family (§4.2, §8) on a controllable
//! sharing workload: round-robin turns over one page with a chosen
//! reference density.
//!
//! Run with:
//!   cargo run --release --example policy_explorer -- [refs_per_op]

use platinum_repro::apps::harness::PolicyKind;
use platinum_repro::apps::workloads::{round_robin, SharingConfig};
use platinum_repro::kernel::KernelConfig;
use platinum_repro::machine::MachineConfig;
use platinum_repro::runtime::par::PlatinumHarness;
use platinum_repro::runtime::sync::EventCount;

fn main() {
    let refs: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(512);
    let p = 4;
    let cfg = SharingConfig {
        struct_words: 1024,
        refs_per_op: refs,
        write_pct: 50,
        ops_per_proc: 40,
        compute_ns_per_op: 50_000,
    };
    println!(
        "round-robin shared page, {} processors, density rho = {:.2}\n",
        p,
        refs as f64 / 1024.0
    );
    println!(
        "{:<28} {:>10} {:>8} {:>8} {:>9} {:>8}",
        "policy", "time ms", "migr", "repl", "remote", "freezes"
    );
    for policy in [
        PolicyKind::Platinum,
        PolicyKind::PlatinumThawOnAccess,
        PolicyKind::NeverReplicate,
        PolicyKind::AlwaysReplicate,
        PolicyKind::AceStyle,
    ] {
        let mut mcfg = MachineConfig::with_nodes(p);
        mcfg.frames_per_node = 128;
        let h = PlatinumHarness::with_config(mcfg, policy.build(), KernelConfig::default());
        let mut data = h.alloc_zone(2);
        let base = data.alloc_page_aligned(cfg.struct_words);
        let mut sync = h.alloc_zone(1);
        let turn = EventCount::new(sync.alloc_words(1));
        let (_, run) = h.run(p, |tid, ctx| {
            round_robin(ctx, base, &turn, &cfg, tid, p);
        });
        let s = h.kernel.stats().snapshot();
        println!(
            "{:<28} {:>10.2} {:>8} {:>8} {:>9} {:>8}",
            policy.name(),
            run.elapsed_ns() as f64 / 1e6,
            s.migrations,
            s.replications,
            s.remote_maps,
            s.freezes,
        );
    }
    println!(
        "\nTry different densities: below the crossover (inequality 2) static\n\
         placement wins; above it migration wins; PLATINUM's policy adapts."
    );
}
