//! Ports: PLATINUM's message-passing primitive (§1.1).
//!
//! "Globally named, ports provide a communication medium usable by
//! threads that do not share a common memory object. They also provide
//! blocking synchronization." This example builds a pipeline of threads
//! in *separate address spaces* — no shared memory object at all — that
//! communicate only through ports.
//!
//! Run with:
//!   cargo run --release --example ports

use std::sync::Arc;

use platinum_repro::kernel::{Kernel, Rights};
use platinum_repro::machine::{Machine, MachineConfig, Mem};

fn main() {
    let machine = Machine::new(MachineConfig::with_nodes(4)).expect("valid config");
    let kernel = Kernel::new(machine);

    // A three-stage pipeline: generate -> square -> sum. Each stage runs
    // in its own address space with its own private scratch memory.
    let to_square = kernel.create_port();
    let to_sum = kernel.create_port();
    const ITEMS: u32 = 64;

    std::thread::scope(|s| {
        {
            let kernel = Arc::clone(&kernel);
            let port = Arc::clone(&to_square);
            s.spawn(move || {
                let space = kernel.create_space();
                let mut ctx = kernel.attach(space, 0, 0).unwrap();
                for i in 1..=ITEMS {
                    ctx.port_send(&port, &[i]);
                }
                println!(
                    "generator (thread {:?} on proc 0) sent {ITEMS} messages",
                    ctx.thread_id()
                );
            });
        }
        {
            let kernel = Arc::clone(&kernel);
            let rx = Arc::clone(&to_square);
            let tx = Arc::clone(&to_sum);
            s.spawn(move || {
                let space = kernel.create_space();
                // Private scratch: visible to this stage only.
                let obj = kernel.create_object(1);
                let scratch = space.map_anywhere(obj, Rights::RW).unwrap();
                let mut ctx = kernel.attach(space, 1, 0).unwrap();
                for _ in 0..ITEMS {
                    let msg = ctx.port_recv(&rx);
                    let x = msg[0];
                    ctx.write(scratch, x * x); // exercise private memory
                    let sq = ctx.read(scratch);
                    ctx.port_send(&tx, &[sq]);
                }
                println!("squarer forwarded {ITEMS} squares");
            });
        }
        {
            let kernel = Arc::clone(&kernel);
            let rx = Arc::clone(&to_sum);
            s.spawn(move || {
                let space = kernel.create_space();
                let mut ctx = kernel.attach(space, 2, 0).unwrap();
                let mut total = 0u64;
                for _ in 0..ITEMS {
                    total += u64::from(ctx.port_recv(&rx)[0]);
                }
                let expect: u64 = (1..=u64::from(ITEMS)).map(|x| x * x).sum();
                assert_eq!(total, expect);
                println!(
                    "summer got {total} (expected {expect}) at virtual time {} us",
                    ctx.vtime() / 1000
                );
            });
        }
    });

    println!("\nthreads the kernel saw:");
    for t in kernel.thread_list() {
        println!(
            "  {:?}: proc {}, space {}, state {:?}",
            t.id, t.proc, t.space, t.state
        );
    }
}
