//! The recurrent-backpropagation simulator (§5.3): fine-grain,
//! unsynchronized sharing that the coherent memory system correctly
//! gives up on — the pages freeze and remote references take over.
//!
//! Run with:
//!   cargo run --release --example neural_net -- [procs] [epochs]

use platinum_repro::apps::harness::run_neural;
use platinum_repro::apps::neural::NeuralConfig;

fn main() {
    let mut args = std::env::args().skip(1);
    let procs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let epochs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(30);
    let cfg = NeuralConfig {
        epochs,
        ..Default::default()
    };

    println!(
        "recurrent backprop encoder: 40 units, 16 patterns, {procs} processors, {epochs} epochs\n"
    );
    let (run, err) = run_neural(10.max(procs), procs, &cfg);
    let c = run.run.merged_counters();
    println!("training time:     {:>8.1} ms", run.elapsed_ns as f64 / 1e6);
    println!("final error:       {err:>8.2} (full-scale units)");
    println!("pages frozen:      {:>8}", run.kernel_stats.freezes);
    println!("remote references: {:>7.1}%", c.remote_fraction() * 100.0);
    println!(
        "\n\"Given the very fine-grain nature of the algorithm, PLATINUM cannot\n\
         use replication or migration to good advantage. The coherent memory\n\
         system quickly gives up and the data pages of the application are\n\
         frozen in place.\" (§5.3)"
    );
}
