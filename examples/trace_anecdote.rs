//! The §4.2 frozen-page diagnosis, made from the event trace instead of
//! the aggregate post-mortem report: install a tracer, replay the
//! co-located layout, then read the freeze → remote-references → thaw
//! story for the hottest page straight off its timeline.
//!
//! Run with:
//!   cargo run --release --example trace_anecdote

use platinum_repro::apps::gauss::GaussConfig;
use platinum_repro::apps::harness::run_gauss_anecdote;
use platinum_repro::kernel::trace::timeline::{frozen_spans, page_timeline};
use platinum_repro::kernel::trace::{install_global, EventKind, TraceConfig};

fn main() {
    // The tracer is process-global so the harness's kernels (built
    // internally) pick it up when they boot.
    let tracer = install_global(TraceConfig::default());

    let cfg = GaussConfig {
        n: 120,
        ..Default::default()
    };
    let run = run_gauss_anecdote(16, 8, &cfg, true, 1_000_000_000);
    let trace = tracer.snapshot();
    println!(
        "co-located layout, thawing kernel: {:.1} ms, {} events traced\n",
        run.elapsed_ns as f64 / 1e6,
        trace.events.len()
    );

    // Find the frozen page with the most remote-mapped faults — the
    // references the paper's programmers saw as a sudden slowdown.
    let hottest = trace
        .of_kind(EventKind::Freeze)
        .map(|e| e.page)
        .max_by_key(|&page| {
            frozen_spans(&trace, page)
                .iter()
                .map(|s| s.remote_maps_while_frozen)
                .sum::<usize>()
        });

    match hottest {
        Some(page) => {
            let spans = frozen_spans(&trace, page);
            let remote: usize = spans.iter().map(|s| s.remote_maps_while_frozen).sum();
            println!(
                "cpage {page}: {} frozen span(s), {remote} remote-mapped fault(s) while frozen",
                spans.len()
            );
            print!("{}", page_timeline(&trace, page));
        }
        None => println!("no page froze — rerun with more processors"),
    }
}
