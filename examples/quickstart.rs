//! Quickstart: boot a simulated NUMA machine, run the PLATINUM kernel on
//! it, and watch coherent memory replicate, migrate, and freeze pages.
//!
//! Run with:
//!   cargo run --release --example quickstart

use platinum_repro::kernel::{PolicyKind, Rights};
use platinum_repro::machine::Mem;
use platinum_repro::runtime::SimBuilder;

fn main() {
    // A 4-node machine: one processor + one memory module per node, with
    // the BBN Butterfly Plus latencies (320 ns local, ~5 us remote). One
    // builder chain boots the machine, the kernel, and an address space.
    let sim = SimBuilder::nodes(4).policy(PolicyKind::Platinum).build();
    let kernel = &sim.kernel;

    // The kernel's abstractions are globally named: memory objects bind
    // into address spaces; threads attach to processors.
    let object = kernel.create_object(2); // a 2-page memory object
    let base = sim.space.map_anywhere(object, Rights::RW).expect("mapping");

    // A thread on processor 0 writes a page...
    let mut t0 = sim.attach(0).expect("attach");
    for w in 0..8 {
        t0.write(base + 4 * w, (w as u32 + 1) * 11);
    }
    println!(
        "processor 0 wrote the page (vtime {} us)",
        t0.vtime() / 1000
    );
    t0.suspend();

    // ...and threads on other processors read it. Each first read faults;
    // the kernel replicates the page to the reader's node, after which
    // every reference is local.
    for p in 1..4 {
        let mut t = sim.attach(p).expect("attach");
        let v = t.read(base + 4);
        println!(
            "processor {p} read {v} (replicated locally; vtime {} us)",
            t.vtime() / 1000
        );
    }

    // Write-sharing at fine grain is where replication stops paying.
    // Interleaved writes from two processors freeze the page: the kernel
    // gives up on caching it and uses remote references instead.
    t0.resume();
    let mut t1 = sim.attach(1).expect("attach");
    for round in 0..3 {
        t1.suspend();
        t0.resume();
        t0.write(base, round * 2);
        t0.suspend();
        t1.resume();
        t1.write(base, round * 2 + 1);
    }
    t0.resume();

    // The post-mortem report is the §4.2 instrumentation: per-page fault
    // counts, freezes, and fault-handler contention.
    println!("\npost-mortem memory-management report:");
    println!("{}", kernel.report());
}
