//! Merge sort on two machines (§5.2): PLATINUM coherent memory on the
//! NUMA machine vs. the same code on a Sequent-like UMA comparator.
//!
//! Run with:
//!   cargo run --release --example merge_sort -- [n] [procs]

use platinum_repro::apps::harness::{run_mergesort_platinum, run_mergesort_uma};
use platinum_repro::apps::mergesort::SortConfig;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1 << 15);
    let procs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    assert!(procs.is_power_of_two(), "procs must be a power of two");
    let cfg = SortConfig {
        n,
        ..Default::default()
    };

    println!("tree merge sort, {n} keys, {procs} processors\n");

    let plat = run_mergesort_platinum(16, procs, &cfg);
    println!(
        "PLATINUM / Butterfly Plus: {:>8.1} ms  (replications {}, verified sorted)",
        plat.elapsed_ns as f64 / 1e6,
        plat.kernel_stats.replications
    );

    let uma = run_mergesort_uma(16, procs, &cfg);
    let c = uma.run.merged_counters();
    println!(
        "Sequent-like UMA machine:  {:>8.1} ms  (bus transactions {}, verified sorted)",
        uma.elapsed_ns as f64 / 1e6,
        c.remote_refs()
    );

    println!(
        "\nCoherent pages act as large prefetching caches for the merge's linear\n\
         scans; the UMA comparator's 8 KB write-through caches keep nothing\n\
         between phases and push every write through one shared bus."
    );
}
