//! Property-based end-to-end tests of the applications: arbitrary
//! problem shapes must produce correct results on the full stack.

use proptest::prelude::*;

use platinum_repro::apps::gauss::{self, GaussConfig};
use platinum_repro::apps::harness::{run_gauss, run_mergesort_platinum, GaussStyle, PolicyKind};
use platinum_repro::apps::mergesort::SortConfig;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 10,
        max_shrink_iters: 20,
        ..ProptestConfig::default()
    })]

    #[test]
    fn gauss_matches_reference_for_arbitrary_shapes(
        n in 8usize..56,
        p in 1usize..6,
        seed in any::<u64>(),
        style_sel in 0usize..3,
    ) {
        let cfg = GaussConfig {
            n,
            seed,
            ..Default::default()
        };
        let style = match style_sel {
            0 => GaussStyle::Shared(PolicyKind::Platinum),
            1 => GaussStyle::UniformSystem,
            _ => GaussStyle::MessagePassing,
        };
        let expected = gauss::reference_checksum(&cfg);
        let run = run_gauss(style, 6, p, &cfg);
        prop_assert_eq!(run.checksum, expected,
            "n={} p={} seed={} style={}", n, p, seed, style.name());
    }

    #[test]
    fn mergesort_sorts_arbitrary_sizes(
        log_n in 8u32..13,
        log_p in 0u32..3,
        seed in any::<u64>(),
    ) {
        let cfg = SortConfig {
            n: 1 << log_n,
            seed,
            ..Default::default()
        };
        let p = 1usize << log_p;
        // The runner verifies sortedness + permutation internally and
        // panics on failure.
        let run = run_mergesort_platinum(4.max(p), p, &cfg);
        prop_assert!(run.elapsed_ns > 0);
    }
}
