//! End-to-end integration tests spanning every crate: applications on
//! top of the runtime, on top of the kernel, on top of the simulated
//! machine — checking both correctness and the performance *shape* the
//! paper reports.

use platinum_repro::apps::gauss::{self, GaussConfig};
use platinum_repro::apps::harness::{
    run_gauss, run_gauss_anecdote, run_mergesort_platinum, run_mergesort_uma, run_neural,
    GaussStyle, PolicyKind,
};
use platinum_repro::apps::mergesort::SortConfig;
use platinum_repro::apps::neural::NeuralConfig;

#[test]
fn gauss_all_styles_all_processor_counts_agree() {
    let cfg = GaussConfig {
        n: 64,
        ..Default::default()
    };
    let expected = gauss::reference_checksum(&cfg);
    for style in [
        GaussStyle::Shared(PolicyKind::Platinum),
        GaussStyle::UniformSystem,
        GaussStyle::MessagePassing,
    ] {
        for p in [1usize, 2, 5, 8] {
            let run = run_gauss(style, 8, p, &cfg);
            assert_eq!(run.checksum, expected, "{} diverged at p={p}", style.name());
        }
    }
}

#[test]
fn gauss_platinum_beats_static_placement_in_absolute_time() {
    // The paper's core claim, in absolute time: transparent coherent
    // memory far outperforms static placement with remote access.
    let cfg = GaussConfig {
        n: 128,
        ..Default::default()
    };
    let plat = run_gauss(GaussStyle::Shared(PolicyKind::Platinum), 8, 8, &cfg);
    let us = run_gauss(GaussStyle::UniformSystem, 8, 8, &cfg);
    assert!(
        plat.elapsed_ns * 3 < us.elapsed_ns * 2,
        "PLATINUM ({} ms) must beat static placement ({} ms) by >1.5x",
        plat.elapsed_ns / 1_000_000,
        us.elapsed_ns / 1_000_000
    );
}

#[test]
fn gauss_platinum_close_to_message_passing() {
    let cfg = GaussConfig {
        n: 128,
        ..Default::default()
    };
    let plat = run_gauss(GaussStyle::Shared(PolicyKind::Platinum), 8, 8, &cfg);
    let smp = run_gauss(GaussStyle::MessagePassing, 8, 8, &cfg);
    // "Comparable with hand-tuned programs": within 2x at this small size
    // (the gap narrows as the problem grows; at the paper's 800x800 it is
    // ~10%).
    assert!(
        plat.elapsed_ns < smp.elapsed_ns * 2,
        "PLATINUM ({} ms) should be within 2x of message passing ({} ms)",
        plat.elapsed_ns / 1_000_000,
        smp.elapsed_ns / 1_000_000
    );
}

#[test]
fn gauss_speedup_shape() {
    let cfg = GaussConfig {
        n: 160,
        ..Default::default()
    };
    let t1 = run_gauss(GaussStyle::Shared(PolicyKind::Platinum), 8, 1, &cfg).elapsed_ns;
    let t4 = run_gauss(GaussStyle::Shared(PolicyKind::Platinum), 8, 4, &cfg).elapsed_ns;
    let t8 = run_gauss(GaussStyle::Shared(PolicyKind::Platinum), 8, 8, &cfg).elapsed_ns;
    let s4 = t1 as f64 / t4 as f64;
    let s8 = t1 as f64 / t8 as f64;
    assert!(s4 > 2.5, "speedup at 4 processors too low: {s4:.2}");
    assert!(s8 > s4, "speedup must keep growing: {s4:.2} -> {s8:.2}");
}

#[test]
fn mergesort_sorts_on_both_machines_and_platinum_speeds_up() {
    let cfg = SortConfig {
        n: 1 << 13,
        ..Default::default()
    };
    // Verification happens inside the runners (they panic otherwise).
    let p1 = run_mergesort_platinum(8, 1, &cfg).elapsed_ns;
    let p8 = run_mergesort_platinum(8, 8, &cfg).elapsed_ns;
    assert!(p8 < p1, "8 processors must beat 1: {p1} vs {p8}");
    let u8_ = run_mergesort_uma(8, 8, &cfg);
    assert!(u8_.elapsed_ns > 0);
}

#[test]
fn neural_freezes_pages_and_still_learns() {
    let cfg = NeuralConfig {
        epochs: 30,
        ..Default::default()
    };
    let (run, err) = run_neural(4, 4, &cfg);
    assert!(
        run.kernel_stats.freezes > 0,
        "fine-grain sharing must freeze"
    );
    // Hogwild training is racy, but the encoder problem is easy: the
    // final error must be clearly below the untrained baseline (16
    // patterns x ~1.0 error each at initialization).
    assert!(err < 100.0, "training diverged: error {err}");
}

#[test]
fn anecdote_thawing_rescues_colocated_layout() {
    let cfg = GaussConfig {
        n: 144,
        ..Default::default()
    };
    let frozen = run_gauss_anecdote(8, 6, &cfg, true, u64::MAX / 2);
    // The run is far shorter than the paper's 1 s defrost period at this
    // problem size; scale t2 down so the daemon actually fires.
    let thawed = run_gauss_anecdote(8, 6, &cfg, true, 100_000_000);
    let separated = run_gauss_anecdote(8, 6, &cfg, false, 1_000_000_000);
    assert_eq!(frozen.checksum, separated.checksum);
    assert_eq!(thawed.checksum, separated.checksum);
    assert!(
        frozen.elapsed_ns > separated.elapsed_ns * 5 / 4,
        "the frozen co-located page must hurt: frozen {} ms vs separated {} ms",
        frozen.elapsed_ns / 1_000_000,
        separated.elapsed_ns / 1_000_000
    );
    assert!(
        thawed.elapsed_ns * 10 < frozen.elapsed_ns * 9,
        "thawing must recover performance: thawed {} ms vs frozen {} ms",
        thawed.elapsed_ns / 1_000_000,
        frozen.elapsed_ns / 1_000_000
    );
    assert!(frozen.kernel_stats.freezes > 0);
    assert!(thawed.kernel_stats.thaws > 0);
}

#[test]
fn ace_policy_slower_on_coarse_grain_migratory_sharing() {
    // §8: bounding migrations leaves coarse-grain sharing remote forever.
    use platinum_repro::apps::workloads::{round_robin, SharingConfig};
    use platinum_repro::kernel::KernelConfig;
    use platinum_repro::machine::MachineConfig;
    use platinum_repro::runtime::par::PlatinumHarness;
    use platinum_repro::runtime::sync::EventCount;

    let cfg = SharingConfig {
        struct_words: 1024,
        refs_per_op: 1024,
        write_pct: 60,
        ops_per_proc: 12,
        compute_ns_per_op: 15_000_000,
    };
    let run_with = |policy: PolicyKind| {
        let mut mcfg = MachineConfig::with_nodes(4);
        mcfg.frames_per_node = 64;
        let h = PlatinumHarness::with_config(mcfg, policy.build(), KernelConfig::default());
        let mut data = h.alloc_zone(2);
        let base = data.alloc_page_aligned(cfg.struct_words);
        let mut sync = h.alloc_zone(1);
        let turn = EventCount::new(sync.alloc_words(1));
        let (_, run) = h.run(4, |tid, ctx| {
            round_robin(ctx, base, &turn, &cfg, tid, 4);
        });
        run.elapsed_ns()
    };
    let plat = run_with(PolicyKind::Platinum);
    let ace = run_with(PolicyKind::AceStyle);
    assert!(
        ace > plat,
        "ACE ({} ms) must lose to PLATINUM ({} ms) on migratory sharing",
        ace / 1_000_000,
        plat / 1_000_000
    );
}
