//! Property-based tests on the core data structures: allocation zones,
//! the ATC, the inverted page table, the contention model, and the §4.1
//! analytic model.

use proptest::prelude::*;

use platinum_repro::analysis::model::{g_round_robin, CostModel, SMin};
use platinum_repro::machine::contention::BucketedResource;
use platinum_repro::machine::module::MemoryModule;
use platinum_repro::machine::{Atc, PhysPage};
use platinum_repro::runtime::zones::Zone;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn zone_allocations_never_overlap(
        sizes in prop::collection::vec((1usize..200, any::<bool>()), 1..40)
    ) {
        let page_words = 256usize;
        let mut zone = Zone::new(0x10_0000, 1 << 16, page_words);
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for (words, aligned) in sizes {
            if zone.remaining_words() < words + page_words {
                break;
            }
            let va = if aligned {
                zone.alloc_page_aligned(words)
            } else {
                zone.alloc_words(words)
            };
            let end = va + 4 * words as u64;
            if aligned {
                prop_assert_eq!(va % (4 * page_words as u64), 0, "not page aligned");
            }
            for &(s, e) in &spans {
                prop_assert!(end <= s || va >= e, "overlap: [{va}, {end}) vs [{s}, {e})");
            }
            spans.push((va, end));
        }
    }

    #[test]
    fn page_aligned_allocations_share_pages_with_nothing(
        sizes in prop::collection::vec(1usize..100, 1..20)
    ) {
        let page_words = 256usize;
        let page_bytes = 4 * page_words as u64;
        let mut zone = Zone::new(0x10_0000, 1 << 16, page_words);
        let mut aligned_pages: Vec<(u64, u64)> = Vec::new();
        let mut other_spans: Vec<(u64, u64)> = Vec::new();
        for (i, words) in sizes.iter().enumerate() {
            if zone.remaining_words() < words + 2 * page_words {
                break;
            }
            if i % 2 == 0 {
                let va = zone.alloc_page_aligned(*words);
                aligned_pages.push((va / page_bytes, (va + 4 * *words as u64 - 1) / page_bytes));
            } else {
                let va = zone.alloc_words(*words);
                other_spans.push((va / page_bytes, (va + 4 * *words as u64 - 1) / page_bytes));
            }
        }
        for &(ps, pe) in &aligned_pages {
            for &(os, oe) in &other_spans {
                prop_assert!(pe < os || ps > oe,
                    "page-aligned allocation shares pages [{ps},{pe}] with [{os},{oe}]");
            }
        }
    }

    #[test]
    fn atc_behaves_like_a_lossy_map(
        ops in prop::collection::vec(
            (0u32..4, 0u64..64, any::<bool>(), 0u32..3), 1..200)
    ) {
        // Model: a map from (asid, vpn) to (pp, writable); the ATC may
        // lose entries (conflict eviction) but must never invent or
        // corrupt them.
        use std::collections::HashMap;
        let mut atc = Atc::new(16);
        let mut model: HashMap<(u32, u64), (PhysPage, bool)> = HashMap::new();
        for (asid, vpn, writable, action) in ops {
            match action {
                0 => {
                    let pp = PhysPage::new((vpn % 4) as usize, (vpn % 7) as usize);
                    atc.insert(asid, vpn, pp, writable);
                    model.insert((asid, vpn), (pp, writable));
                }
                1 => {
                    atc.invalidate(asid, vpn);
                    model.remove(&(asid, vpn));
                }
                _ => {
                    if let Some((pp, w)) = atc.lookup(asid, vpn) {
                        let (mpp, mw) = model.get(&(asid, vpn))
                            .copied()
                            .expect("ATC returned an entry the model never had");
                        prop_assert_eq!(pp, mpp, "ATC corrupted a frame");
                        prop_assert_eq!(w, mw, "ATC corrupted rights");
                    }
                }
            }
        }
    }

    #[test]
    fn inverted_page_table_alloc_find_free(
        cpages in prop::collection::vec(0u64..1000, 1..30)
    ) {
        let m = MemoryModule::new(0, 64, 8, 100_000);
        let mut live: Vec<(u64, usize)> = Vec::new();
        for (i, cp) in cpages.iter().enumerate() {
            if live.iter().any(|(c, _)| c == cp) {
                continue; // one copy per cpage per module
            }
            if i % 3 == 2 && !live.is_empty() {
                let (c, f) = live.remove(i % live.len());
                m.free_frame(f);
                prop_assert_eq!(m.find_frame_of(c).frame, None);
            } else if let Some(probe) = m.alloc_frame(*cp) {
                let f = probe.frame.unwrap();
                prop_assert_eq!(m.owner_of(f), Some(*cp));
                live.push((*cp, f));
            }
            // Every live page remains findable.
            for (c, f) in &live {
                prop_assert_eq!(m.find_frame_of(*c).frame, Some(*f));
            }
        }
        prop_assert_eq!(m.frames_allocated(), live.len());
    }

    #[test]
    fn contention_never_charges_an_idle_resource(
        t in 0u64..10_000_000,
        service in 1u64..5_000,
    ) {
        let r = BucketedResource::new(100_000);
        prop_assert_eq!(r.reserve(t, service), 0, "first request must be free");
    }

    #[test]
    fn contention_conserves_work(
        requests in prop::collection::vec((0u64..400_000, 100u64..2000), 1..200)
    ) {
        // Total delay handed out never exceeds total service booked (the
        // server cannot queue more work than was submitted), and is zero
        // when aggregate load fits in capacity.
        let r = BucketedResource::new(100_000);
        let mut total_service = 0u64;
        let mut total_delay = 0u64;
        for &(t, s) in &requests {
            total_delay += r.reserve(t, s);
            total_service += s;
        }
        // Each request's delay is bounded by the backlog, which is
        // bounded by all service ever submitted before it.
        prop_assert!(total_delay <= total_service * requests.len() as u64);
    }

    #[test]
    fn smin_monotonic_in_density_and_g(
        rho in 0.05f64..3.0,
        g in 0.3f64..3.0,
    ) {
        let m = CostModel::paper();
        // Larger density can only shrink (or keep) the minimum page size.
        if let (SMin::Words(a), SMin::Words(b)) = (m.s_min(rho, g), m.s_min(rho + 0.2, g)) {
            prop_assert!(b <= a, "S_min must fall as density rises: {a} -> {b}");
        }
        // Larger g (more data movements per saved remote op) can only
        // grow it — or push it to "never".
        match (m.s_min(rho, g), m.s_min(rho, g * 1.5)) {
            (SMin::Words(a), SMin::Words(b)) => prop_assert!(b >= a),
            (SMin::Never, SMin::Words(_)) => {
                prop_assert!(false, "never cannot become feasible as g grows")
            }
            _ => {}
        }
    }

    #[test]
    fn g_round_robin_decreases(p in 2usize..60) {
        prop_assert!(g_round_robin(p + 1) < g_round_robin(p));
        prop_assert!(g_round_robin(p) > 1.0);
    }

    #[test]
    fn crossover_density_is_consistent_with_s_min(
        s_exp in 6u32..14,
        g in 0.3f64..2.5,
    ) {
        let m = CostModel::paper();
        let s = 1u64 << s_exp;
        let rho_star = m.crossover_density(s, g);
        prop_assert!(m.migration_pays(s, rho_star * 1.05, g));
        prop_assert!(!m.migration_pays(s, rho_star * 0.95, g));
    }
}
