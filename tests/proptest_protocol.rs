//! Property-based tests of the coherency protocol.
//!
//! Strategy: drive the kernel single-threaded through randomized
//! sequences of reads, writes, and atomics by random processors (with
//! the suspend/resume discipline that makes single-threaded shootdowns
//! deterministic), mirrored against a flat-memory oracle. After every
//! operation the protocol must return oracle values and the coherent
//! page's internal invariants must hold — under every replication
//! policy.

use proptest::prelude::*;
use std::sync::Arc;

use platinum_repro::kernel::trace::{EventKind, TraceConfig, Tracer};
use platinum_repro::kernel::{
    AceStyle, AlwaysReplicate, Kernel, NeverReplicate, PlatinumPolicy, ReplicationPolicy, Rights,
    UserCtx,
};
use platinum_repro::machine::{Machine, MachineConfig, Mem};

const PROCS: usize = 4;
const PAGES: usize = 3;
const WORDS_PER_PAGE: u64 = 1024;

#[derive(Clone, Debug)]
enum Op {
    Read { proc: usize, word: u64 },
    Write { proc: usize, word: u64, val: u32 },
    FetchAdd { proc: usize, word: u64, delta: u32 },
    AdvanceClock { proc: usize, ms: u64 },
    Defrost { proc: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let word = 0..(PAGES as u64 * WORDS_PER_PAGE);
    prop_oneof![
        (0..PROCS, word.clone()).prop_map(|(proc, word)| Op::Read { proc, word }),
        (0..PROCS, word.clone(), any::<u32>()).prop_map(|(proc, word, val)| Op::Write {
            proc,
            word,
            val
        }),
        (0..PROCS, word, 1u32..100).prop_map(|(proc, word, delta)| Op::FetchAdd {
            proc,
            word,
            delta
        }),
        (0..PROCS, 1u64..50).prop_map(|(proc, ms)| Op::AdvanceClock { proc, ms }),
        (0..PROCS).prop_map(|proc| Op::Defrost { proc }),
    ]
}

fn policy_strategy() -> impl Strategy<Value = usize> {
    0..4usize
}

fn build_policy(which: usize) -> Box<dyn ReplicationPolicy> {
    match which {
        0 => Box::new(PlatinumPolicy::paper_default()),
        1 => Box::new(NeverReplicate),
        2 => Box::new(AlwaysReplicate),
        _ => Box::new(AceStyle::default()),
    }
}

struct Fixture {
    kernel: Arc<Kernel>,
    ctxs: Vec<UserCtx>,
    base: u64,
    active: usize,
}

impl Fixture {
    fn new(which_policy: usize) -> Self {
        let machine = Machine::new(MachineConfig {
            nodes: PROCS,
            frames_per_node: 64,
            skew_window_ns: None,
            ..MachineConfig::default()
        })
        .unwrap();
        let kernel = Kernel::with_policy(machine, build_policy(which_policy));
        let space = kernel.create_space();
        let object = kernel.create_object(PAGES);
        let base = space.map_anywhere(object, Rights::RW).unwrap();
        let mut ctxs: Vec<UserCtx> = (0..PROCS)
            .map(|p| kernel.attach(Arc::clone(&space), p, 0).unwrap())
            .collect();
        // Single-threaded determinism: exactly one processor active at a
        // time; the rest apply shootdowns lazily on resume.
        for c in ctxs.iter_mut().skip(1) {
            c.suspend();
        }
        Self {
            kernel,
            ctxs,
            base,
            active: 0,
        }
    }

    fn activate(&mut self, proc: usize) -> &mut UserCtx {
        if self.active != proc {
            self.ctxs[self.active].suspend();
            self.ctxs[proc].resume();
            self.active = proc;
        }
        &mut self.ctxs[proc]
    }

    fn check_invariants(&self) {
        for page in self.kernel.report().pages {
            // MemoryReport recomputes from live state; re-derive via the
            // cpage table through a fresh lock to run check_invariants.
            let _ = page;
        }
        let space = self.ctxs[0].space();
        for word_page in 0..PAGES as u64 {
            let va = self.base + word_page * WORDS_PER_PAGE * 4;
            if let Some(cp) = self.kernel.cpage_for_va(space, va) {
                let g = cp.lock();
                if let Err(e) = g.check_invariants() {
                    panic!("invariant violated on page {word_page}: {e}\n{g:?}");
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        max_shrink_iters: 200,
        ..ProptestConfig::default()
    })]

    #[test]
    fn protocol_matches_flat_memory_oracle(
        which_policy in policy_strategy(),
        ops in prop::collection::vec(op_strategy(), 1..120),
    ) {
        let mut fx = Fixture::new(which_policy);
        let mut oracle = vec![0u32; PAGES * WORDS_PER_PAGE as usize];

        for op in &ops {
            match *op {
                Op::Read { proc, word } => {
                    let base = fx.base;
                    let got = fx.activate(proc).read(base + word * 4);
                    prop_assert_eq!(got, oracle[word as usize],
                        "read mismatch at word {} by proc {}", word, proc);
                }
                Op::Write { proc, word, val } => {
                    let base = fx.base;
                    fx.activate(proc).write(base + word * 4, val);
                    oracle[word as usize] = val;
                }
                Op::FetchAdd { proc, word, delta } => {
                    let base = fx.base;
                    let got = fx.activate(proc).fetch_add(base + word * 4, delta);
                    prop_assert_eq!(got, oracle[word as usize]);
                    oracle[word as usize] = oracle[word as usize].wrapping_add(delta);
                }
                Op::AdvanceClock { proc, ms } => {
                    fx.activate(proc).compute(ms * 1_000_000);
                }
                Op::Defrost { proc } => {
                    let ctx = fx.activate(proc);
                    let kernel = Arc::clone(ctx.kernel());
                    kernel.run_defrost(ctx);
                }
            }
            fx.check_invariants();
        }

        // Final sweep: every word readable from every processor with the
        // oracle's value.
        for proc in 0..PROCS {
            let base = fx.base;
            let ctx = fx.activate(proc);
            for word in (0..PAGES as u64 * WORDS_PER_PAGE).step_by(97) {
                prop_assert_eq!(ctx.read(base + word * 4), oracle[word as usize]);
            }
        }
    }

    #[test]
    fn frames_are_conserved(
        which_policy in policy_strategy(),
        ops in prop::collection::vec(op_strategy(), 1..80),
    ) {
        let mut fx = Fixture::new(which_policy);
        for op in &ops {
            match *op {
                Op::Read { proc, word } => {
                    let base = fx.base;
                    let _ = fx.activate(proc).read(base + word * 4);
                }
                Op::Write { proc, word, val } => {
                    let base = fx.base;
                    fx.activate(proc).write(base + word * 4, val);
                }
                Op::FetchAdd { proc, word, delta } => {
                    let base = fx.base;
                    let _ = fx.activate(proc).fetch_add(base + word * 4, delta);
                }
                Op::AdvanceClock { proc, ms } => {
                    fx.activate(proc).compute(ms * 1_000_000);
                }
                Op::Defrost { proc } => {
                    let ctx = fx.activate(proc);
                    let kernel = Arc::clone(ctx.kernel());
                    kernel.run_defrost(ctx);
                }
            }
        }
        // Every allocated frame must be accounted for by some coherent
        // page's directory, and directory sizes must sum to the machine's
        // allocation count (no leaks, no double-ownership).
        let mut directory_frames = 0usize;
        let space = fx.ctxs[0].space();
        for word_page in 0..PAGES as u64 {
            let va = fx.base + word_page * WORDS_PER_PAGE * 4;
            if let Some(cp) = fx.kernel.cpage_for_va(space, va) {
                directory_frames += cp.lock().copies.len();
            }
        }
        prop_assert_eq!(
            directory_frames,
            fx.kernel.machine().frames_allocated(),
            "frames leaked or double-owned"
        );
    }

    /// Causal ordering of the traced event stream, under every policy:
    /// freezes and thaws of a page strictly alternate (freeze first), a
    /// fault that began always ends on the same processor with its begin
    /// time in hand, and — for the paper's policy, which only freezes a
    /// page whose invalidation history is hot — every freeze is preceded
    /// by an invalidation of that same page. (`AceStyle` deliberately
    /// freezes without invalidating, so that clause is Platinum-only.)
    #[test]
    fn trace_ordering_invariants(
        which_policy in policy_strategy(),
        ops in prop::collection::vec(op_strategy(), 1..120),
    ) {
        let mut fx = Fixture::new(which_policy);
        let tracer = Tracer::new(TraceConfig::default());
        prop_assert!(fx.kernel.install_tracer(Arc::clone(&tracer)));
        for op in &ops {
            match *op {
                Op::Read { proc, word } => {
                    let base = fx.base;
                    let _ = fx.activate(proc).read(base + word * 4);
                }
                Op::Write { proc, word, val } => {
                    let base = fx.base;
                    fx.activate(proc).write(base + word * 4, val);
                }
                Op::FetchAdd { proc, word, delta } => {
                    let base = fx.base;
                    let _ = fx.activate(proc).fetch_add(base + word * 4, delta);
                }
                Op::AdvanceClock { proc, ms } => {
                    fx.activate(proc).compute(ms * 1_000_000);
                }
                Op::Defrost { proc } => {
                    let ctx = fx.activate(proc);
                    let kernel = Arc::clone(ctx.kernel());
                    kernel.run_defrost(ctx);
                }
            }
        }

        let trace = tracer.snapshot();
        prop_assert_eq!(trace.dropped, 0, "ring overflow would void the ordering checks");
        let mut events = trace.events.clone();
        events.sort_by_key(|e| e.seq);

        let mut frozen = std::collections::HashMap::new();
        let mut invalidated = std::collections::HashSet::new();
        let mut open_faults = std::collections::HashMap::new();
        for e in &events {
            match e.kind {
                EventKind::Invalidate => {
                    invalidated.insert(e.page);
                }
                EventKind::Freeze => {
                    let f = frozen.entry(e.page).or_insert(false);
                    prop_assert!(!*f, "page {} frozen twice with no thaw between", e.page);
                    *f = true;
                    if which_policy == 0 {
                        prop_assert!(
                            invalidated.contains(&e.page),
                            "PlatinumPolicy froze page {} with no prior invalidation",
                            e.page
                        );
                    }
                }
                EventKind::Thaw => {
                    let f = frozen.entry(e.page).or_insert(false);
                    prop_assert!(*f, "page {} thawed while not frozen", e.page);
                    *f = false;
                }
                EventKind::FaultBegin => {
                    let depth = open_faults.entry(e.proc).or_insert(0u32);
                    prop_assert_eq!(*depth, 0, "nested fault on proc {}", e.proc);
                    *depth = 1;
                }
                EventKind::FaultEnd => {
                    let depth = open_faults.entry(e.proc).or_insert(0u32);
                    prop_assert_eq!(*depth, 1, "fault end with no begin on proc {}", e.proc);
                    *depth = 0;
                    prop_assert!(e.arg <= e.vtime, "fault ended before it began");
                }
                _ => {}
            }
        }
        for (proc, depth) in open_faults {
            prop_assert_eq!(depth, 0, "proc {} left a fault open", proc);
        }
    }
}
