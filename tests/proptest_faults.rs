//! Property-based tests for the deterministic fault-injection plan.
//!
//! The whole chaos-soak story rests on [`FaultPlan`] being a pure
//! function of `(seed, site, vtime, key, attempt)`: replaying a run with
//! the same seed must reproduce the same injection decisions bit for
//! bit, with no hidden host randomness. These properties pin that down.

use proptest::prelude::*;

use platinum_repro::kernel::faults::{FaultPlan, FaultSite};

fn site(ix: u8) -> FaultSite {
    FaultSite::from_u8(ix % FaultSite::COUNT as u8).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Two plans built from the same seed agree on every decision: the
    /// plan is a pure function of its inputs, never of construction
    /// order, call order, or host state.
    #[test]
    fn same_seed_same_decisions(
        seed in any::<u64>(),
        ppm in 0u32..1_000_000,
        probes in prop::collection::vec((any::<u8>(), any::<u64>(), any::<u64>(), 0u32..8), 1..64)
    ) {
        let a = FaultPlan::chaos(seed, ppm);
        let b = FaultPlan::chaos(seed, ppm);
        // Interrogate `b` in reverse to rule out order dependence.
        let from_a: Vec<bool> = probes
            .iter()
            .map(|&(s, v, k, at)| a.should_inject(site(s), v, k, at))
            .collect();
        let from_b: Vec<bool> = probes
            .iter()
            .rev()
            .map(|&(s, v, k, at)| b.should_inject(site(s), v, k, at))
            .collect();
        for (x, y) in from_a.iter().zip(from_b.iter().rev()) {
            prop_assert_eq!(x, y);
        }
    }

    /// Different seeds give different fault schedules. A 50% rate makes
    /// each probe a seed-keyed coin flip, so 128 probes agreeing across
    /// two seeds means the seed is not actually being mixed in.
    #[test]
    fn different_seeds_diverge(seed in any::<u64>()) {
        let a = FaultPlan::chaos(seed, 500_000);
        let b = FaultPlan::chaos(seed.wrapping_add(1), 500_000);
        let diverged = (0..128u64).any(|i| {
            let s = site(i as u8);
            a.should_inject(s, i * 977, i, 0) != b.should_inject(s, i * 977, i, 0)
        });
        prop_assert!(diverged, "seeds {seed} and {} gave identical schedules", seed.wrapping_add(1));
    }

    /// Injection is forced off once the retry budget is spent — this is
    /// the liveness argument: every recovery ladder terminates because
    /// its final attempt cannot fail.
    #[test]
    fn retry_budget_forces_success(
        seed in any::<u64>(),
        s in any::<u8>(),
        vtime in any::<u64>(),
        key in any::<u64>(),
        extra in 0u32..16,
    ) {
        let plan = FaultPlan::chaos(seed, 1_000_000); // always inject when allowed
        let cap = plan.max_retries();
        prop_assert!(plan.should_inject(site(s), vtime, key, 0));
        prop_assert!(!plan.should_inject(site(s), vtime, key, cap + extra));
    }

    /// A zero rate never injects; sites keep independent rates.
    #[test]
    fn rates_are_per_site(
        seed in any::<u64>(),
        vtime in any::<u64>(),
        key in any::<u64>(),
    ) {
        let plan = FaultPlan::new(seed).with_rate(FaultSite::ShootdownAck, 1_000_000);
        prop_assert!(plan.should_inject(FaultSite::ShootdownAck, vtime, key, 0));
        for s in [FaultSite::FrameRead, FaultSite::BlockTransfer, FaultSite::FrameAlloc] {
            prop_assert!(!plan.should_inject(s, vtime, key, 0));
        }
    }

    /// Ack-timeout backoff is monotone in the attempt number and capped,
    /// so escalation time is bounded and deterministic.
    #[test]
    fn ack_backoff_monotone_and_capped(seed in any::<u64>()) {
        let plan = FaultPlan::new(seed);
        let mut prev = 0u64;
        for attempt in 0..12 {
            let t = plan.ack_timeout_ns(attempt);
            prop_assert!(t >= prev, "backoff not monotone at attempt {attempt}");
            prev = t;
        }
        prop_assert!(prev <= plan.ack_timeout_ns(0).saturating_mul(8));
    }
}
