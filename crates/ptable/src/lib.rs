//! `platinum-ptable`: the translation fabric — NUMA-charged page-table
//! walks and per-node translation replicas.
//!
//! PLATINUM charges every *data* reference a NUMA cost, but the metadata
//! that resolves those references — the Pmap/Cmap translation structures —
//! lives in neutral host memory, so an ATC miss has been free of locality
//! effects. On a real big-memory NUMA machine the page-table walk is
//! itself a string of remote references against whichever node homes the
//! table, and replicating translation structures per node with a cheap
//! dedicated coherence protocol is the thesis of Mitosis (EuroSys '20)
//! and numaPTE.
//!
//! This crate holds the machine-independent pieces of that model:
//!
//! * [`PtablePlacement`] — where translation structures live. The default,
//!   [`PtablePlacement::Centralized`], charges nothing and emits nothing,
//!   so a default-configured kernel stays bit-identical to the
//!   pre-translation-fabric kernel; walks are still *accounted* (into
//!   [`WalkStats`], outside all equivalence-compared state) so even the
//!   baseline has a defined walk locality.
//! * [`PtableConfig`] — the walk cost model: table depth, references per
//!   level, replica populate cost.
//! * [`PmapReplica`] — the per-space replica directory: which nodes hold a
//!   local copy of the space's translation structures. Kept coherent by an
//!   invalidate-only protocol piggybacked on the kernel's shootdown
//!   rounds (the `platinum` crate is the client).
//! * [`WalkStats`] — striped walk/invalidation tallies with a
//!   [`WalkSnapshot`] summary (walk locality, fabric time).
//!
//! The virtual-time charging itself lives in the kernel's ATC-miss path:
//! this crate only decides *which node* a walk reads and *who* must be
//! invalidated.

#![warn(missing_docs)]

use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};

use numa_machine::{AtomicProcSet, ProcId, ProcSet};

/// Where a space's translation structures live.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum PtablePlacement {
    /// Today's model: tables in neutral host memory. Walks charge no
    /// virtual time and emit no events — bit-identical to the kernel
    /// before the translation fabric existed — but are still *accounted*
    /// against the space's home node so walk locality is defined
    /// (≈ 1/p: every miss would have walked the home node's table).
    #[default]
    Centralized = 0,
    /// Tables physically placed on the space's home node: every walk is
    /// charged real virtual time against that node. The honest
    /// "centralized" machine — what Centralized only accounts for.
    HomeNode = 1,
    /// Every node replicates the tables the first time it walks them
    /// (one-time populate charge against the home node), then walks
    /// locally. Maximum locality, maximum invalidation fan-out.
    ReplicatedAll = 2,
    /// Mitosis-style: a node earns its replica on its first *coherent
    /// fault* in the space — page-fault activity is the signal that the
    /// node works in this space. Non-holders keep walking the home node.
    ReplicatedOnFault = 3,
}

impl PtablePlacement {
    /// Every placement, in discriminant order.
    pub const ALL: [PtablePlacement; 4] = [
        PtablePlacement::Centralized,
        PtablePlacement::HomeNode,
        PtablePlacement::ReplicatedAll,
        PtablePlacement::ReplicatedOnFault,
    ];

    /// A short stable name used by reports, traces, and `--ptable` flags.
    pub fn name(self) -> &'static str {
        match self {
            PtablePlacement::Centralized => "centralized",
            PtablePlacement::HomeNode => "home_node",
            PtablePlacement::ReplicatedAll => "replicated_all",
            PtablePlacement::ReplicatedOnFault => "replicated_on_fault",
        }
    }

    /// Looks up a placement by CLI name (the `--ptable` flag).
    pub fn by_name(name: &str) -> Option<PtablePlacement> {
        PtablePlacement::ALL.into_iter().find(|p| p.name() == name)
    }

    /// Whether this placement charges walks real virtual time (everything
    /// except `Centralized`, which only accounts).
    #[inline]
    pub fn charges(self) -> bool {
        self != PtablePlacement::Centralized
    }

    /// Whether this placement maintains per-node replicas (and therefore
    /// needs the invalidation protocol).
    #[inline]
    pub fn replicates(self) -> bool {
        matches!(
            self,
            PtablePlacement::ReplicatedAll | PtablePlacement::ReplicatedOnFault
        )
    }
}

impl fmt::Display for PtablePlacement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for PtablePlacement {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        PtablePlacement::by_name(s).ok_or_else(|| {
            format!(
                "unknown ptable placement {s:?} (expected one of: {})",
                PtablePlacement::ALL.map(|p| p.name()).join(", ")
            )
        })
    }
}

/// The translation-fabric configuration: a placement plus the walk cost
/// model. Installed through `KernelConfig::ptable` /
/// `SimBuilder::ptable(...)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PtableConfig {
    /// Where translation structures live.
    pub placement: PtablePlacement,
    /// Depth of the simulated multi-level table (references per walk is
    /// `levels * refs_per_level`). Four levels models a modern radix
    /// table; the MC68851's three-level table is `levels: 3`.
    pub levels: u32,
    /// Memory references issued per table level.
    pub refs_per_level: u32,
    /// References against the home node's table when a node populates its
    /// replica (copying the upper levels; leaf entries fill lazily on
    /// later walks, so this is small).
    pub populate_refs: u32,
    /// When `false`, even the `Centralized` accounting path is skipped —
    /// the kernel behaves exactly as before the translation fabric
    /// existed. Used by the bit-identity regression suite to prove the
    /// accounting perturbs nothing observable.
    pub accounting: bool,
}

impl Default for PtableConfig {
    fn default() -> Self {
        Self {
            placement: PtablePlacement::Centralized,
            levels: 4,
            refs_per_level: 1,
            populate_refs: 16,
            accounting: true,
        }
    }
}

impl PtableConfig {
    /// A configuration using `placement` with the default cost model.
    pub fn with_placement(placement: PtablePlacement) -> Self {
        Self {
            placement,
            ..Self::default()
        }
    }

    /// The pre-translation-fabric kernel: no charging, no accounting.
    pub fn off() -> Self {
        Self {
            accounting: false,
            ..Self::default()
        }
    }

    /// Memory references issued by one full walk.
    #[inline]
    pub fn walk_refs(&self) -> u32 {
        self.levels * self.refs_per_level
    }
}

/// The per-space replica directory: which nodes hold a local copy of the
/// space's translation structures, plus the home node every non-holder
/// walks against.
///
/// Membership is monotone under the join paths (a node only inserts its
/// own bit) and shrinks only when the invalidation protocol escalates — a
/// holder whose invalidations keep getting dropped is removed and must
/// re-earn its replica, the same degraded-mode shape as a frozen page.
pub struct PmapReplica {
    home: usize,
    holders: AtomicProcSet,
}

impl PmapReplica {
    /// An empty directory for a space homed on `home`, sized for a
    /// machine of `nprocs` processors. The home node itself always holds
    /// the authoritative table and never needs an invalidation.
    pub fn new(home: usize, nprocs: usize) -> Self {
        Self {
            home,
            holders: AtomicProcSet::with_capacity(nprocs),
        }
    }

    /// The node homing the authoritative table.
    #[inline]
    pub fn home(&self) -> usize {
        self.home
    }

    /// Whether `p` currently walks a local replica.
    #[inline]
    pub fn is_holder(&self, p: ProcId) -> bool {
        self.holders.contains(p)
    }

    /// Adds `p` to the holder set; returns `true` when `p` was not
    /// already a holder (the caller charges the populate cost exactly
    /// once). Only `p` itself ever inserts `p`, so the
    /// check-then-insert is race-free against other joins.
    pub fn join(&self, p: ProcId) -> bool {
        if self.holders.contains(p) {
            return false;
        }
        self.holders.insert(p);
        true
    }

    /// Drops `p`'s replica (invalidation-escalation path): `p` reverts to
    /// walking the home node until it rejoins.
    pub fn drop_holder(&self, p: ProcId) {
        self.holders.remove(p);
    }

    /// A snapshot of the current holder set.
    pub fn holders(&self) -> ProcSet {
        self.holders.load()
    }

    /// The node `walker` reads on a walk: its own module when it holds a
    /// replica, the home node otherwise.
    #[inline]
    pub fn walk_target(&self, walker: ProcId) -> usize {
        if self.holders.contains(walker) {
            walker
        } else {
            self.home
        }
    }
}

impl fmt::Debug for PmapReplica {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PmapReplica")
            .field("home", &self.home)
            .field("holders", &self.holders)
            .finish()
    }
}

/// Stripe count for [`WalkStats`] (matches the kernel's striped stats).
const STRIPES: usize = 64;

#[derive(Default)]
struct WalkStripe {
    walks: AtomicU64,
    walk_ns: AtomicU64,
    local_walk_ns: AtomicU64,
    populates: AtomicU64,
    populate_ns: AtomicU64,
    invals: AtomicU64,
    inval_ns: AtomicU64,
}

/// Striped walk/invalidation tallies, outside every equivalence-compared
/// structure: the `Centralized` placement ticks these (pure accounting)
/// while staying bit-identical in virtual time, counters, stats, and
/// traces.
pub struct WalkStats {
    stripes: Box<[WalkStripe]>,
}

impl Default for WalkStats {
    fn default() -> Self {
        Self::new()
    }
}

impl WalkStats {
    /// Fresh all-zero tallies.
    pub fn new() -> Self {
        Self {
            stripes: (0..STRIPES).map(|_| WalkStripe::default()).collect(),
        }
    }

    #[inline]
    fn stripe(&self, proc: usize) -> &WalkStripe {
        &self.stripes[proc & (STRIPES - 1)]
    }

    /// Records one walk by `proc` costing `ns`, `local` when the walked
    /// table lived on `proc`'s own node.
    #[inline]
    pub fn record_walk(&self, proc: usize, ns: u64, local: bool) {
        let s = self.stripe(proc);
        s.walks.fetch_add(1, Ordering::Relaxed);
        s.walk_ns.fetch_add(ns, Ordering::Relaxed);
        if local {
            s.local_walk_ns.fetch_add(ns, Ordering::Relaxed);
        }
    }

    /// Records one replica populate by `proc` costing `ns`.
    #[inline]
    pub fn record_populate(&self, proc: usize, ns: u64) {
        let s = self.stripe(proc);
        s.populates.fetch_add(1, Ordering::Relaxed);
        s.populate_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Records one replica invalidation issued by `proc` costing `ns`
    /// (initiator-side: the protocol is invalidate-only, so this is the
    /// whole data-plane cost).
    #[inline]
    pub fn record_inval(&self, proc: usize, ns: u64) {
        let s = self.stripe(proc);
        s.invals.fetch_add(1, Ordering::Relaxed);
        s.inval_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Sums the stripes.
    pub fn snapshot(&self) -> WalkSnapshot {
        let mut out = WalkSnapshot::default();
        for s in self.stripes.iter() {
            out.walks += s.walks.load(Ordering::Relaxed);
            out.walk_ns += s.walk_ns.load(Ordering::Relaxed);
            out.local_walk_ns += s.local_walk_ns.load(Ordering::Relaxed);
            out.populates += s.populates.load(Ordering::Relaxed);
            out.populate_ns += s.populate_ns.load(Ordering::Relaxed);
            out.invals += s.invals.load(Ordering::Relaxed);
            out.inval_ns += s.inval_ns.load(Ordering::Relaxed);
        }
        out
    }
}

/// Aggregated translation-fabric tallies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalkSnapshot {
    /// Simulated page-table walks.
    pub walks: u64,
    /// Virtual time of all walks (charged or accounted, by placement).
    pub walk_ns: u64,
    /// The share of `walk_ns` spent against the walker's own node.
    pub local_walk_ns: u64,
    /// Replica populates.
    pub populates: u64,
    /// Virtual time of replica populates.
    pub populate_ns: u64,
    /// Replica invalidations issued (initiator-side).
    pub invals: u64,
    /// Virtual time of replica invalidations.
    pub inval_ns: u64,
}

impl WalkSnapshot {
    /// Fraction of walk time spent on the walker's own node (1.0 when no
    /// walks happened — an empty fabric is perfectly local).
    pub fn walk_locality(&self) -> f64 {
        if self.walk_ns == 0 {
            1.0
        } else {
            self.local_walk_ns as f64 / self.walk_ns as f64
        }
    }

    /// Total protocol time of the fabric: walks plus replica maintenance.
    pub fn fabric_ns(&self) -> u64 {
        self.walk_ns + self.populate_ns + self.inval_ns
    }

    /// Field-wise difference (`self` later than `earlier`), saturating.
    pub fn delta(&self, earlier: &WalkSnapshot) -> WalkSnapshot {
        WalkSnapshot {
            walks: self.walks.saturating_sub(earlier.walks),
            walk_ns: self.walk_ns.saturating_sub(earlier.walk_ns),
            local_walk_ns: self.local_walk_ns.saturating_sub(earlier.local_walk_ns),
            populates: self.populates.saturating_sub(earlier.populates),
            populate_ns: self.populate_ns.saturating_sub(earlier.populate_ns),
            invals: self.invals.saturating_sub(earlier.invals),
            inval_ns: self.inval_ns.saturating_sub(earlier.inval_ns),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_names_round_trip() {
        for p in PtablePlacement::ALL {
            assert_eq!(PtablePlacement::by_name(p.name()), Some(p));
            assert_eq!(p.name().parse::<PtablePlacement>().unwrap(), p);
        }
        assert!(PtablePlacement::by_name("torus").is_none());
        assert!("torus".parse::<PtablePlacement>().is_err());
    }

    #[test]
    fn default_is_centralized_and_free() {
        let cfg = PtableConfig::default();
        assert_eq!(cfg.placement, PtablePlacement::Centralized);
        assert!(!cfg.placement.charges());
        assert!(!cfg.placement.replicates());
        assert!(cfg.accounting);
        assert_eq!(cfg.walk_refs(), 4);
        assert!(!PtableConfig::off().accounting);
    }

    #[test]
    fn replica_join_and_targeting() {
        let r = PmapReplica::new(2, 8);
        assert_eq!(r.home(), 2);
        assert_eq!(r.walk_target(5), 2, "non-holder walks the home node");
        assert!(r.join(5), "first join populates");
        assert!(!r.join(5), "second join is a no-op");
        assert_eq!(r.walk_target(5), 5, "holder walks locally");
        assert!(r.is_holder(5));
        assert_eq!(r.holders(), ProcSet::single(5));
        r.drop_holder(5);
        assert!(!r.is_holder(5));
        assert_eq!(r.walk_target(5), 2, "dropped holder reverts to home");
        assert!(r.join(5), "a dropped holder can re-earn its replica");
    }

    #[test]
    fn replica_spills_past_64_processors() {
        let r = PmapReplica::new(0, 65);
        assert!(r.join(64));
        assert!(r.is_holder(64));
        assert_eq!(r.walk_target(64), 64);
        assert_eq!(r.holders().iter().collect::<Vec<_>>(), vec![64]);
    }

    #[test]
    fn walk_stats_tally_and_locality() {
        let w = WalkStats::new();
        w.record_walk(0, 320, true);
        w.record_walk(1, 5_000, false);
        w.record_populate(1, 80_000);
        w.record_inval(0, 5_000);
        let s = w.snapshot();
        assert_eq!(s.walks, 2);
        assert_eq!(s.walk_ns, 5_320);
        assert_eq!(s.local_walk_ns, 320);
        assert_eq!(s.populates, 1);
        assert_eq!(s.invals, 1);
        assert_eq!(s.fabric_ns(), 5_320 + 80_000 + 5_000);
        let loc = s.walk_locality();
        assert!((loc - 320.0 / 5320.0).abs() < 1e-12);
        assert_eq!(WalkSnapshot::default().walk_locality(), 1.0);
        let d = s.delta(&s);
        assert_eq!(d, WalkSnapshot::default());
    }
}
