//! `platinum-bench`: shared scaffolding for the per-figure benchmark
//! binaries.
//!
//! Each table and figure of the paper's evaluation has its own binary
//! (see `src/bin/`); this library provides the tiny argument parser they
//! share and the orchestration used by the §4 micro-benchmarks (live
//! "poller" processors that service shootdown interrupts while the
//! measured processor runs a protocol operation).

#![warn(missing_docs)]

pub mod args;
pub mod micro;
pub mod policy_matrix;
pub mod trace_out;

pub use args::Args;
pub use trace_out::TraceSink;
