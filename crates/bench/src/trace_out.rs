//! `--trace <path>` support shared by the figure binaries.
//!
//! Every benchmark binary accepts `--trace out.json`; when present, a
//! process-global tracer is installed *before* any machine boots (kernels
//! pick it up automatically) and a Chrome `trace_event` JSON file is
//! written at the end of the run, loadable in Perfetto
//! (<https://ui.perfetto.dev>). Binaries that run several configurations
//! mark each one as a tracer phase so the exported file groups them.

use std::path::PathBuf;
use std::sync::Arc;

use platinum::trace::{chrome, TraceConfig, Tracer};

use crate::args::Args;

/// An installed tracer plus the path the trace will be written to.
pub struct TraceSink {
    tracer: Arc<Tracer>,
    path: PathBuf,
}

impl TraceSink {
    /// Installs the process-global tracer if `--trace <path>` was given.
    ///
    /// Call this before booting any machine: machines created earlier
    /// never see the tracer.
    pub fn from_args(args: &Args) -> Option<TraceSink> {
        let path: String = args.get("--trace")?;
        let tracer = platinum::trace::install_global(TraceConfig::default());
        Some(TraceSink {
            tracer,
            path: PathBuf::from(path),
        })
    }

    /// Marks the start of a named configuration/phase in the trace.
    pub fn phase(&self, name: &str) {
        self.tracer.begin_phase(name);
    }

    /// The underlying tracer (for binaries that post-process the trace
    /// before writing it).
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// Snapshots the trace and writes the Chrome JSON file.
    ///
    /// # Panics
    ///
    /// Panics when the file cannot be written — a benchmark run whose
    /// requested artifact silently vanishes is worse than a crash.
    pub fn finish(self) {
        let trace = self.tracer.snapshot();
        let json = chrome::chrome_trace_string(&trace);
        std::fs::write(&self.path, json)
            .unwrap_or_else(|e| panic!("writing {}: {e}", self.path.display()));
        eprintln!(
            "trace: {} events ({} dropped) -> {}",
            trace.events.len(),
            trace.dropped,
            self.path.display()
        );
    }
}

/// Convenience for `main` epilogues: finish the sink if one was set up.
pub fn finish(sink: Option<TraceSink>) {
    if let Some(s) = sink {
        s.finish();
    }
}
