//! The Figure-1-style policy matrix: capture each application's
//! reference stream once under PLATINUM, then replay it under the five
//! placement policies and tabulate per-policy virtual time,
//! remote-reference ratio, and freeze/defrost counts.
//!
//! One execution + five replays per application — the comparison is over
//! *identical* reference streams, so differences are attributable to the
//! policy alone. The PLATINUM replay doubles as a self-check: it must
//! reproduce the live capture run bit for bit, and on gauss the Fig. 1
//! ordering (coherent < local-only < remote-only) is asserted.
//!
//! ```text
//! cargo run --release --bin policy_matrix
//! cargo run --release --bin policy_matrix -- --n 80 --apps gauss --json
//! ```
//!
//! Flags: `--nodes N` (4), `--procs P` (4), `--n N` (gauss matrix, 96),
//! `--sort-n N` (2048), `--epochs E` (3), `--apps a,b,c`
//! (gauss,mergesort,neural; `kv` adds the server workload), `--workload
//! W` (run only that workload — `policy_matrix --workload kv` sweeps the
//! key-value store alone), `--topology T` (flat; `hier2`/`hier2x4` read
//! the comparison on a hierarchical machine — pair with `--nodes 64
//! --procs 64`), `--kv-keys N` (4096), `--kv-requests N`
//! (requests per processor, 6000), `--kv-gap-ns N` (5000: a saturating
//! arrival rate, so per-policy elapsed reflects service cost, not idle
//! pacing), `--json` (emit JSON instead of Markdown), `--out PATH` (also
//! write the JSON to a file).

use std::fmt::Write as _;

use numa_machine::{TimingConfig, Topology};
use platinum::{PolicyKind, PtableConfig, PtablePlacement};
use platinum_apps::capture::{
    record_gauss, record_kv, record_mergesort, record_neural, CapturedRun,
};
use platinum_apps::gauss::GaussConfig;
use platinum_apps::mergesort::SortConfig;
use platinum_apps::neural::NeuralConfig;
use platinum_reftrace::{replay_many_with, replay_par_cfg, replay_with};
use platinum_server::{KvConfig, TrafficConfig};

use crate::Args;

/// One cell row of the matrix: an (app, policy) pair.
struct Row {
    app: String,
    policy: &'static str,
    elapsed_ns: u64,
    remote_ratio: f64,
    freezes: u64,
    defrost_runs: u64,
    replications: u64,
    migrations: u64,
    remote_maps: u64,
    /// PLATINUM rows only: replay reproduced the live run exactly.
    bit_identical: Option<bool>,
    /// PLATINUM rows only: elapsed time of the same trace replayed with
    /// replicated page tables (`PtablePlacement::ReplicatedOnFault`)
    /// instead of the centralized default — the replicated-vs-centralized
    /// page-table comparison over an identical reference stream.
    ptable_replicated_ns: Option<u64>,
}

fn remote_ratio(run: &platinum_runtime::measure::RunStats) -> f64 {
    let c = run.merged_counters();
    let remote = c.remote_reads + c.remote_writes + c.remote_atomics;
    let total = c.total_refs();
    if total == 0 {
        0.0
    } else {
        remote as f64 / total as f64
    }
}

/// Replays `captured` under every Fig. 1 policy — concurrently, one host
/// thread per policy — and returns the rows, asserting PLATINUM
/// bit-identity of the parallel replay against both the live run and a
/// serial replay.
fn sweep(app: &str, captured: &CapturedRun, topo: Option<&Topology>) -> Vec<Row> {
    let mut rows = Vec::new();
    let outs = replay_many_with(&captured.trace, &PolicyKind::FIG1_SET, topo);
    for (kind, out) in PolicyKind::FIG1_SET.into_iter().zip(outs) {
        let last = out.phases.last().expect("trace has a measured phase");
        let bit_identical = if kind == PolicyKind::Platinum {
            let same_as_live = last
                .stats
                .workers
                .iter()
                .zip(&captured.live.run.workers)
                .all(|(r, l)| r.vtime_ns == l.vtime_ns && r.counters == l.counters)
                && out.kernel == captured.live.kernel_stats;
            assert!(
                same_as_live,
                "{app}: parallel PLATINUM replay diverged from the live \
                 run (replay {} ns vs live {} ns)",
                last.stats.elapsed_ns(),
                captured.live.elapsed_ns,
            );
            let serial = replay_with(&captured.trace, kind, topo);
            let same_as_serial = serial.phases.iter().zip(&out.phases).all(|(a, b)| {
                a.stats
                    .workers
                    .iter()
                    .zip(&b.stats.workers)
                    .all(|(x, y)| x.vtime_ns == y.vtime_ns && x.counters == y.counters)
            }) && serial.kernel == out.kernel;
            assert!(
                same_as_serial,
                "{app}: parallel PLATINUM replay diverged from the serial replay"
            );
            Some(same_as_live && same_as_serial)
        } else {
            None
        };
        // The replicated-page-table column: replay the identical stream
        // once more under ReplicatedOnFault. The trace was captured with
        // centralized tables, so live-vs-replay identity cannot hold
        // here; what must hold is replay determinism — two replicated
        // replays agree bit for bit — asserted by running it twice.
        let ptable_replicated_ns = if kind == PolicyKind::Platinum {
            let cfg = Some(PtableConfig::with_placement(
                PtablePlacement::ReplicatedOnFault,
            ));
            let a = replay_par_cfg(&captured.trace, kind, topo, cfg);
            let b = replay_par_cfg(&captured.trace, kind, topo, cfg);
            let deterministic = a.phases.iter().zip(&b.phases).all(|(x, y)| {
                x.stats
                    .workers
                    .iter()
                    .zip(&y.stats.workers)
                    .all(|(u, v)| u.vtime_ns == v.vtime_ns && u.counters == v.counters)
            }) && a.kernel == b.kernel;
            assert!(
                deterministic,
                "{app}: two replicated-ptable replays diverged ({} ns vs {} ns)",
                a.measured_elapsed_ns(),
                b.measured_elapsed_ns(),
            );
            Some(a.measured_elapsed_ns())
        } else {
            None
        };
        rows.push(Row {
            app: app.to_string(),
            policy: kind.name(),
            elapsed_ns: out.measured_elapsed_ns(),
            remote_ratio: out.measured_remote_ratio(),
            freezes: out.kernel.freezes,
            defrost_runs: out.kernel.defrost_runs,
            replications: out.kernel.replications,
            migrations: out.kernel.migrations,
            remote_maps: out.kernel.remote_maps,
            bit_identical,
            ptable_replicated_ns,
        });
    }
    rows
}

fn elapsed_of(rows: &[Row], app: &str, kind: PolicyKind) -> u64 {
    rows.iter()
        .find(|r| r.app == app && r.policy == kind.name())
        .map(|r| r.elapsed_ns)
        .expect("policy row present")
}

fn markdown(rows: &[Row]) -> String {
    let mut s = String::new();
    s.push_str(
        "| app | policy | vtime (ms) | remote refs | freezes | defrosts \
         | replications | migrations | remote maps | repl-ptable vtime (ms) |\n",
    );
    s.push_str("|---|---|---:|---:|---:|---:|---:|---:|---:|---:|\n");
    for r in rows {
        let check = match r.bit_identical {
            Some(true) => " *(= live run)*",
            _ => "",
        };
        let ptable = match r.ptable_replicated_ns {
            Some(ns) => format!("{:.3}", ns as f64 / 1e6),
            None => "—".to_string(),
        };
        let _ = writeln!(
            s,
            "| {} | {}{} | {:.3} | {:.1}% | {} | {} | {} | {} | {} | {} |",
            r.app,
            r.policy,
            check,
            r.elapsed_ns as f64 / 1e6,
            r.remote_ratio * 100.0,
            r.freezes,
            r.defrost_runs,
            r.replications,
            r.migrations,
            r.remote_maps,
            ptable,
        );
    }
    s
}

fn json(
    rows: &[Row],
    nodes: usize,
    procs: usize,
    topology: &str,
    checks: &[(String, bool)],
) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"nodes\":{nodes},\"procs\":{procs},\"topology\":\"{topology}\",\"rows\":["
    );
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"app\":\"{}\",\"policy\":\"{}\",\"elapsed_ns\":{},\
             \"remote_ratio\":{:.6},\"freezes\":{},\"defrost_runs\":{},\
             \"replications\":{},\"migrations\":{},\"remote_maps\":{}",
            r.app,
            r.policy,
            r.elapsed_ns,
            r.remote_ratio,
            r.freezes,
            r.defrost_runs,
            r.replications,
            r.migrations,
            r.remote_maps,
        );
        if let Some(b) = r.bit_identical {
            let _ = write!(s, ",\"bit_identical\":{b}");
        }
        if let Some(ns) = r.ptable_replicated_ns {
            let _ = write!(s, ",\"ptable_replicated_ns\":{ns}");
        }
        s.push('}');
    }
    s.push_str("],\"checks\":{");
    for (i, (name, ok)) in checks.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\"{name}\":{ok}");
    }
    s.push_str("}}");
    s
}

/// Entry point shared by the `policy_matrix` binaries: parses CLI args,
/// captures the requested apps, sweeps the Fig. 1 policies, prints the
/// table, and asserts the bit-identity and ordering self-checks.
pub fn run() {
    let args = Args::parse();
    let nodes = args.get_or("--nodes", 4usize);
    let procs = args.get_or("--procs", 4usize).min(nodes);
    let n = args.get_or("--n", 96usize);
    let sort_n = args.get_or("--sort-n", 2048usize);
    let epochs = args.get_or("--epochs", 3usize);
    let kv_keys = args.get_or("--kv-keys", 4096u64);
    let kv_requests = args.get_or("--kv-requests", 6000usize);
    let kv_gap_ns = args.get_or("--kv-gap-ns", 5_000u64);
    let apps = args
        .get::<String>("--workload")
        .or_else(|| args.get::<String>("--apps"))
        .unwrap_or_else(|| "gauss,mergesort,neural".to_string());
    let as_json = args.flag("--json");
    // An explicit machine description: `--topology hier2 --nodes 64`
    // reads the same policy comparison on a big hierarchical machine.
    // Capture and every replay run on the same description, so the
    // PLATINUM bit-identity self-check still holds.
    let topo_name = args.get::<String>("--topology");
    let topo = topo_name.as_deref().map(|name| {
        Topology::by_name(name, nodes, &TimingConfig::default()).unwrap_or_else(|| {
            panic!("unknown --topology {name:?} (expected flat, hier2, hier2x4)")
        })
    });

    let mut rows = Vec::new();
    let mut checks: Vec<(String, bool)> = Vec::new();
    for app in apps.split(',').map(str::trim).filter(|a| !a.is_empty()) {
        let captured = match app {
            "gauss" => record_gauss(nodes, procs, &GaussConfig::with_n(n), topo.as_ref()),
            "mergesort" => {
                record_mergesort(nodes, procs, &SortConfig::with_n(sort_n), topo.as_ref())
            }
            "neural" => {
                record_neural(
                    nodes,
                    procs,
                    &NeuralConfig::with_epochs(epochs),
                    topo.as_ref(),
                )
                .0
            }
            "kv" => record_kv(
                nodes,
                procs,
                KvConfig::for_keys(kv_keys, 8),
                &TrafficConfig {
                    keys: kv_keys,
                    requests_per_proc: kv_requests,
                    mean_interarrival_ns: kv_gap_ns,
                    // Read-heavy, no bursts: at matrix scale the table
                    // is only ~64 pages, so the default 20%+ write mix
                    // makes every page write-hot and no placement can
                    // replicate profitably. A 2% update rate keeps the
                    // hot pages read-mostly — the regime where the
                    // placement policies actually separate.
                    write_pct: 2,
                    burst_every: 0,
                    ..TrafficConfig::default()
                },
                topo.as_ref(),
            ),
            other => panic!("unknown app {other:?} (expected gauss, mergesort, neural, kv)"),
        };
        if !as_json {
            println!(
                "captured {app}: {} ops, live PLATINUM time {:.3} ms, \
                 remote refs {:.1}%",
                captured.trace.total_ops(),
                captured.live.elapsed_ns as f64 / 1e6,
                remote_ratio(&captured.live.run) * 100.0,
            );
        }
        rows.extend(sweep(app, &captured, topo.as_ref()));

        if app == "kv" && topo.is_none() {
            // The serve phase arrives faster than any policy can serve
            // (5 µs mean gap), so per-policy elapsed is service cost:
            // the five placements must price the same request stream
            // measurably differently, and never replicating a
            // read-mostly hot table must cost more than coherent
            // placement.
            let elapsed: Vec<u64> = PolicyKind::FIG1_SET
                .iter()
                .map(|&k| elapsed_of(&rows, app, k))
                .collect();
            let mut distinct = elapsed.clone();
            distinct.sort_unstable();
            distinct.dedup();
            checks.push(("kv_policy_spread".into(), distinct.len() >= 4));
            let (min, max) = (elapsed.iter().min().unwrap(), elapsed.iter().max().unwrap());
            assert!(
                *max > *min + *min / 100,
                "kv: no measurable policy spread (elapsed {elapsed:?})"
            );
            // A sharded KV table is fine-grain write-shared at page
            // granularity (every page holds some written slot), the
            // regime §6 of the paper calls out as hostile to page-level
            // coherence: replication cannot amortize before the next
            // invalidation, so static remote placement is the floor.
            // What PLATINUM guarantees there is *bounded* damage — the
            // freeze mechanism converges hot pages to remote mapping, so
            // coherent memory lands near the remote floor instead of
            // thrashing arbitrarily far past it. Assert that bound.
            let coherent = elapsed_of(&rows, app, PolicyKind::Platinum);
            let remote = elapsed_of(&rows, app, PolicyKind::RemoteAlways);
            checks.push((
                "kv_freeze_bounds_coherent_near_remote_floor".into(),
                coherent <= remote + remote / 2,
            ));
            assert!(
                coherent <= remote + remote / 2,
                "kv: freezing failed to bound coherent memory near the \
                 remote floor (coherent {coherent} vs remote {remote})"
            );
            // ... and the freeze escape hatch is what provides that
            // bound: naive replication (same protocol, no freezing)
            // re-copies hot pages after every invalidation and falls
            // far behind.
            let replicate = elapsed_of(&rows, app, PolicyKind::ReplicateOnly);
            checks.push((
                "kv_freeze_beats_naive_replication".into(),
                coherent < replicate,
            ));
            assert!(
                coherent < replicate,
                "kv: PLATINUM (freezing) should beat replicate-only on a \
                 write-shared table ({coherent} vs {replicate})"
            );
        }

        if app == "gauss" && topo.is_none() {
            // The paper's comparison (Fig. 1): coherent memory beats
            // static placement, and local static beats all-remote.
            // Asserted on the flat Butterfly only: the n thresholds
            // below are crossover points of *that* machine's latencies
            // (inequality (2)); a hierarchical interconnect moves them
            // (2-hop page copies raise the replication amortization
            // bar), so under --topology the values are reported
            // unchecked.
            let coherent = elapsed_of(&rows, app, PolicyKind::Platinum);
            let local = elapsed_of(&rows, app, PolicyKind::LocalFirstTouch);
            let remote = elapsed_of(&rows, app, PolicyKind::RemoteAlways);
            // Tiny matrices cannot amortize replication (inequality (2)):
            // below n≈48 even all-remote placement beats coherent memory,
            // and the full strict ordering only emerges around n=80, so
            // each check is asserted only where the paper's analysis
            // predicts it. The comparison values are still reported.
            checks.push(("gauss_remote_ge_coherent".into(), remote >= coherent));
            if n >= 48 {
                assert!(
                    remote >= coherent,
                    "remote-only beat coherent memory on gauss: {remote} < {coherent}"
                );
            }
            if n >= 80 {
                assert!(
                    coherent < local && local < remote,
                    "Fig. 1 ordering failed on gauss: coherent={coherent} \
                     local-only={local} remote-only={remote}"
                );
                checks.push(("gauss_fig1_ordering".into(), true));
            }
        }
    }

    let out = json(
        &rows,
        nodes,
        procs,
        topo_name.as_deref().unwrap_or("flat"),
        &checks,
    );
    if as_json {
        println!("{out}");
    } else {
        println!("\n{}", markdown(&rows));
        for (name, ok) in &checks {
            println!("check {name}: {}", if *ok { "PASS" } else { "FAIL" });
        }
    }
    if let Some(path) = args.get::<String>("--out") {
        std::fs::write(&path, out).expect("write --out file");
        eprintln!("wrote {path}");
    }
}
