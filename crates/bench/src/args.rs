//! A minimal command-line argument parser (no external dependencies).

/// Parsed command-line options shared by the benchmark binaries.
#[derive(Clone, Debug)]
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Parses the process arguments.
    pub fn parse() -> Self {
        Self {
            raw: std::env::args().skip(1).collect(),
        }
    }

    /// Builds from an explicit list (tests).
    pub fn from(raw: &[&str]) -> Self {
        Self {
            raw: raw.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Whether a bare flag like `--full` is present.
    pub fn flag(&self, name: &str) -> bool {
        self.raw.iter().any(|a| a == name)
    }

    /// The value of `--key value` or `--key=value`, parsed.
    ///
    /// # Panics
    ///
    /// Panics with a usage message when the value fails to parse.
    pub fn get<T: std::str::FromStr>(&self, name: &str) -> Option<T>
    where
        T::Err: std::fmt::Display,
    {
        for (i, a) in self.raw.iter().enumerate() {
            if let Some(v) = a.strip_prefix(&format!("{name}=")) {
                return Some(Self::parse_or_die(name, v));
            }
            if a == name {
                let v = self
                    .raw
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("{name} needs a value"));
                return Some(Self::parse_or_die(name, v));
            }
        }
        None
    }

    /// Like [`Args::get`] with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> T
    where
        T::Err: std::fmt::Display,
    {
        self.get(name).unwrap_or(default)
    }

    fn parse_or_die<T: std::str::FromStr>(name: &str, v: &str) -> T
    where
        T::Err: std::fmt::Display,
    {
        v.parse()
            .unwrap_or_else(|e| panic!("bad value for {name}: {v}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_and_values() {
        let a = Args::from(&["--full", "--n", "400", "--t1=5"]);
        assert!(a.flag("--full"));
        assert!(!a.flag("--quick"));
        assert_eq!(a.get::<usize>("--n"), Some(400));
        assert_eq!(a.get::<u64>("--t1"), Some(5));
        assert_eq!(a.get_or::<usize>("--m", 7), 7);
    }

    #[test]
    #[should_panic(expected = "bad value")]
    fn bad_value_panics() {
        let a = Args::from(&["--n", "abc"]);
        let _ = a.get::<usize>("--n");
    }
}
