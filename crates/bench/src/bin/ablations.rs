//! Ablation studies for the design choices the paper discusses.
//!
//! * `--t1`: sensitivity of application time to the freeze window t1
//!   (§4.2: "application performance is insensitive to varying t1 from
//!   10 ms up to about 100 ms").
//! * `--t2`: sensitivity to the defrost period t2 on the frozen-page
//!   anecdote ("reducing t2 may allow coherent pages frozen accidentally
//!   to be replicated sooner, but it just adds overhead for pages that
//!   should remain frozen").
//! * `--variant`: the two post-freeze policies (defrost-only vs
//!   thaw-on-access; §4.2 reports "no significant difference").
//! * `--ace`: PLATINUM vs the ACE-style policy of §8 on coarse-grain,
//!   non-interleaved write sharing ("there is room for improvement").
//! * `--pagesize`: the §4.1 granularity analysis — larger pages amortize
//!   protocol overhead for coarse-grain access.
//!
//! With no flags, runs everything.

use numa_machine::MachineConfig;
use platinum::{KernelConfig, PlatinumPolicy};
use platinum_analysis::report::Table;
use platinum_apps::gauss::GaussConfig;
use platinum_apps::harness::{run_gauss, run_gauss_anecdote, GaussStyle, PolicyKind};
use platinum_apps::neural::NeuralConfig;
use platinum_apps::workloads::{round_robin, SharingConfig};
use platinum_bench::{Args, TraceSink};
use platinum_runtime::par::PlatinumHarness;
use platinum_runtime::sync::EventCount;

fn main() {
    let args = Args::parse();
    let sink = TraceSink::from_args(&args);
    let all = !(args.flag("--t1")
        || args.flag("--t2")
        || args.flag("--variant")
        || args.flag("--ace")
        || args.flag("--pagesize"));
    if all || args.flag("--t1") {
        t1_sweep(&args);
    }
    if all || args.flag("--t2") {
        t2_sweep(&args);
    }
    if all || args.flag("--variant") {
        variant_compare(&args);
    }
    if all || args.flag("--ace") {
        ace_compare(&args);
    }
    if all || args.flag("--pagesize") {
        pagesize_sweep(&args);
    }
    platinum_bench::trace_out::finish(sink);
}

/// Gaussian elimination under different t1 values.
fn t1_sweep(args: &Args) {
    let n = args.get_or("--n", 300usize);
    let p = args.get_or("--procs", 8usize);
    println!("t1 sensitivity (Gaussian elimination {n}x{n}, p={p}):");
    let cfg = GaussConfig::with_n(n);
    let mut table = Table::new(vec!["t1 ms", "time ms", "freezes"]);
    for t1_ms in [1u64, 10, 30, 100] {
        let mut mcfg = MachineConfig::with_nodes(16.max(p));
        mcfg.frames_per_node = 4096;
        let h = PlatinumHarness::with_config(
            mcfg,
            Box::new(PlatinumPolicy {
                t1_ns: t1_ms * 1_000_000,
                thaw_on_access: false,
            }),
            KernelConfig::default(),
        );
        let run = run_gauss_with_harness(&h, p, &cfg);
        table.row(vec![
            t1_ms.to_string(),
            format!("{:.1}", run.0 as f64 / 1e6),
            run.1.to_string(),
        ]);
        eprintln!("  t1={t1_ms} ms done");
    }
    println!("{table}");
    println!("paper: insensitive from 10 ms up to ~100 ms\n");
}

/// Runs shared-memory GE on an existing harness, returning (time, freezes).
fn run_gauss_with_harness(h: &PlatinumHarness, p: usize, cfg: &GaussConfig) -> (u64, u64) {
    use platinum_apps::gauss;
    let page_words = h.kernel.machine().cfg().words_per_page();
    let stride = cfg.n.div_ceil(page_words) * page_words;
    let pages = (stride * cfg.n).div_ceil(page_words) + 2;
    let mut data = h.alloc_zone(pages);
    let lay = gauss::GaussLayout::alloc(&mut data, cfg.n, page_words);
    let mut sync = h.alloc_zone(1);
    let ec = EventCount::new(sync.alloc_words(1));
    h.run(p, |tid, ctx| gauss::init_owned_rows(ctx, &lay, cfg, tid, p));
    let (_, run) = h.run(p, |tid, ctx| {
        gauss::run_shared(ctx, &lay, cfg, &ec, tid, p);
    });
    (run.elapsed_ns(), h.kernel.stats().snapshot().freezes)
}

/// The anecdote under different defrost periods.
fn t2_sweep(args: &Args) {
    let n = args.get_or("--n", 300usize);
    let p = args.get_or("--procs", 8usize);
    println!("t2 sensitivity (frozen-page anecdote, co-located layout, {n}x{n}, p={p}):");
    let cfg = GaussConfig::with_n(n);
    let mut table = Table::new(vec!["t2", "time ms", "thaws"]);
    for (label, t2) in [
        ("100 ms", 100_000_000u64),
        ("1 s", 1_000_000_000),
        ("10 s", 10_000_000_000),
        ("never", u64::MAX / 2),
    ] {
        let run = run_gauss_anecdote(16.max(p), p, &cfg, true, t2);
        table.row(vec![
            label.to_string(),
            format!("{:.1}", run.elapsed_ns as f64 / 1e6),
            run.kernel_stats.thaws.to_string(),
        ]);
        eprintln!("  t2={label} done");
    }
    println!("{table}");
    println!("paper: smaller t2 thaws accidental freezes sooner, at some overhead\n");
}

/// Defrost-only vs thaw-on-access.
fn variant_compare(args: &Args) {
    let n = args.get_or("--n", 300usize);
    let p = args.get_or("--procs", 8usize);
    println!("post-freeze policy variants (Gaussian elimination {n}x{n}, p={p} + neural net):");
    let cfg = GaussConfig::with_n(n);
    let mut table = Table::new(vec!["workload", "defrost-only ms", "thaw-on-access ms"]);
    let g1 = run_gauss(GaussStyle::Shared(PolicyKind::Platinum), 16.max(p), p, &cfg);
    let g2 = run_gauss(
        GaussStyle::Shared(PolicyKind::PlatinumThawOnAccess),
        16.max(p),
        p,
        &cfg,
    );
    assert_eq!(g1.checksum, g2.checksum);
    table.row(vec![
        "gauss".to_string(),
        format!("{:.1}", g1.elapsed_ns as f64 / 1e6),
        format!("{:.1}", g2.elapsed_ns as f64 / 1e6),
    ]);
    let ncfg = NeuralConfig::with_epochs(20);
    let (n1, _) = run_neural_with(PolicyKind::Platinum, 8, &ncfg);
    let (n2, _) = run_neural_with(PolicyKind::PlatinumThawOnAccess, 8, &ncfg);
    table.row(vec![
        "neural".to_string(),
        format!("{:.1}", n1 as f64 / 1e6),
        format!("{:.1}", n2 as f64 / 1e6),
    ]);
    println!("{table}");
    println!("paper: no significant difference between the two policies\n");
}

fn run_neural_with(policy: PolicyKind, p: usize, cfg: &NeuralConfig) -> (u64, f64) {
    use platinum_apps::neural;
    let h = PlatinumHarness::with_policy(p.max(2), policy.build());
    let mut zone = h.alloc_zone(neural::UNITS + 2);
    let lay = neural::NeuralLayout::alloc(&mut zone);
    h.run(1, |_, ctx| neural::init(ctx, &lay));
    h.run(p, |tid, ctx| neural::init_owned_weights(ctx, &lay, tid, p));
    let (_, run) = h.run(p, |tid, ctx| neural::train(ctx, &lay, cfg, tid, p));
    let (errs, _) = h.run(1, |_, ctx| neural::total_error(ctx, &lay));
    (run.elapsed_ns(), errs[0])
}

/// PLATINUM vs ACE-style on coarse-grain, phase-spaced write sharing.
fn ace_compare(args: &Args) {
    let p = args.get_or("--procs", 4usize);
    println!("PLATINUM vs ACE-style policy (coarse-grain migratory sharing, p={p}):");
    // Each processor takes long, widely-spaced turns rewriting a page:
    // migration keeps paying forever, but ACE freezes after two moves.
    let cfg = SharingConfig {
        struct_words: 1024,
        refs_per_op: 1024,
        write_pct: 60,
        ops_per_proc: 25,
        compute_ns_per_op: 15_000_000, // turns spaced far beyond t1
    };
    let mut table = Table::new(vec!["policy", "time ms", "migrations", "freezes"]);
    for policy in [PolicyKind::Platinum, PolicyKind::AceStyle] {
        let mut mcfg = MachineConfig::with_nodes(p.max(2));
        mcfg.frames_per_node = 256;
        let h = PlatinumHarness::with_config(mcfg, policy.build(), KernelConfig::default());
        let mut data = h.alloc_zone(2);
        let base = data.alloc_page_aligned(cfg.struct_words);
        let mut sync = h.alloc_zone(1);
        let turn = EventCount::new(sync.alloc_words(1));
        let (_, run) = h.run(p, |tid, ctx| {
            round_robin(ctx, base, &turn, &cfg, tid, p);
        });
        let s = h.kernel.stats().snapshot();
        table.row(vec![
            policy.name().to_string(),
            format!("{:.1}", run.elapsed_ns() as f64 / 1e6),
            s.migrations.to_string(),
            s.freezes.to_string(),
        ]);
        eprintln!("  {} done", policy.name());
    }
    println!("{table}");
    println!("paper (§8): bounding migrations leaves coarse-grain sharing remote forever\n");
}

/// Page-size sweep on Gaussian elimination.
fn pagesize_sweep(args: &Args) {
    let n = args.get_or("--n", 300usize);
    let p = args.get_or("--procs", 8usize);
    println!("page-size sweep (Gaussian elimination {n}x{n}, p={p}):");
    let cfg = GaussConfig::with_n(n);
    let mut table = Table::new(vec!["page", "time ms", "replications"]);
    for shift in [10u32, 12, 14] {
        let mut mcfg = MachineConfig::with_nodes(16.max(p));
        mcfg.page_shift = shift;
        // Keep total memory per node constant.
        mcfg.frames_per_node = 4096 << (12 - shift.min(12)) << (shift.saturating_sub(12));
        mcfg.frames_per_node = (4096u64 * 4096 / (1u64 << shift)) as usize * 4;
        let h = PlatinumHarness::with_config(
            mcfg,
            PolicyKind::Platinum.build(),
            KernelConfig::default(),
        );
        let run = run_gauss_with_harness(&h, p, &cfg);
        let s = h.kernel.stats().snapshot();
        table.row(vec![
            format!("{} KB", (1u64 << shift) / 1024),
            format!("{:.1}", run.0 as f64 / 1e6),
            s.replications.to_string(),
        ]);
        eprintln!("  page {shift} done");
    }
    println!("{table}");
    println!(
        "paper (§4.1): \"for a fixed granularity of data access smaller than the\n\
         size of a page, rho is inversely proportional to page size, thus negating\n\
         any potential advantage of increasing page size\" — here a row ({n} words)\n\
         is smaller than the larger pages, so bigger pages copy more unused data\n\
         per replication and lose, exactly as the analysis predicts.\n"
    );
}
