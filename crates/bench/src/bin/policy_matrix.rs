//! The Fig.-1-style policy matrix; see `platinum_bench::policy_matrix`.

fn main() {
    platinum_bench::policy_matrix::run()
}
