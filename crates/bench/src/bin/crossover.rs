//! Empirical validation of the §4.1 migrate-vs-remote analysis.
//!
//! Runs the round-robin shared-structure workload (the exact scenario of
//! §4.1: `p` processors take turns, each operation makes `r = ρ·s`
//! references to a page-sized structure) under two policies:
//! `AlwaysReplicate` (move the data to the operating processor) and
//! `NeverReplicate` (use remote references), sweeping the density ρ.
//! The density at which the strategies' run times cross is compared with
//! the crossover predicted by inequality (2) — using the simulator's own
//! measured fixed overhead, and with the paper's published constants for
//! reference.
//!
//! Usage:
//!   crossover [--procs 2] [--ops 40]

use std::sync::atomic::{AtomicU32, Ordering};

use numa_machine::{MachineConfig, Mem};
use platinum_analysis::model::{g_round_robin, CostModel};
use platinum_analysis::report::Table;
use platinum_apps::harness::PolicyKind;
use platinum_apps::workloads::{operation_for_benchmarks, SharingConfig};
use platinum_bench::{Args, TraceSink};
use platinum_runtime::par::PlatinumHarness;

/// Host-side round-robin turn-taking with virtual-time propagation.
///
/// §4.1's model prices only the operations on `X` itself — the critical
/// section's lock is outside the model — so the harness keeps the
/// turn-taking off the simulated machine entirely: a host atomic orders
/// the turns and release times propagate through `advance_to`, exactly
/// like the run-time primitives but with zero simulated traffic.
struct HostTurn {
    counter: AtomicU32,
    times: std::sync::Mutex<Vec<u64>>,
}

impl HostTurn {
    fn new() -> Self {
        Self {
            counter: AtomicU32::new(0),
            times: std::sync::Mutex::new(Vec::new()),
        }
    }

    fn await_turn<M: Mem>(&self, m: &mut M, turn: u32) {
        m.begin_wait();
        while self.counter.load(Ordering::Acquire) < turn {
            m.poll();
            std::thread::yield_now();
        }
        m.end_wait();
        if turn > 0 {
            let t = self
                .times
                .lock()
                .unwrap()
                .get(turn as usize - 1)
                .copied()
                .unwrap_or(0);
            m.advance_to(t);
        }
    }

    fn advance<M: Mem>(&self, m: &mut M) {
        let new = self.counter.fetch_add(1, Ordering::AcqRel) + 1;
        let mut times = self.times.lock().unwrap();
        if times.len() < new as usize {
            times.resize(new as usize, 0);
        }
        times[new as usize - 1] = m.vtime();
    }
}

fn run_once(policy: PolicyKind, p: usize, cfg: &SharingConfig) -> u64 {
    let mut mcfg = MachineConfig::with_nodes(p.max(2));
    mcfg.frames_per_node = 512;
    let h = PlatinumHarness::with_config(mcfg, policy.build(), platinum::KernelConfig::default());
    let mut data = h.alloc_zone(2);
    let base = data.alloc_page_aligned(cfg.struct_words);
    let turn = HostTurn::new();
    let turn = &turn;
    let (_, run) = h.run(p, move |tid, ctx| {
        for op in 0..cfg.ops_per_proc {
            let my_turn = (op * p + tid) as u32;
            turn.await_turn(ctx, my_turn);
            operation_for_benchmarks(ctx, base, cfg, op);
            turn.advance(ctx);
        }
    });
    run.elapsed_ns()
}

fn main() {
    let args = Args::parse();
    let sink = TraceSink::from_args(&args);
    let p = args.get_or("--procs", 2usize);
    let ops = args.get_or("--ops", 40usize);
    let s_words = 1024u64;
    let g = g_round_robin(p);

    println!("Section 4.1 crossover: migrate vs remote access, p={p} (g(p) = {g:.3})\n");

    let mut table = Table::new(vec!["rho", "refs/op", "migrate ms", "remote ms", "winner"]);
    let mut crossover_rho: Option<(f64, f64)> = None;
    let mut prev: Option<(f64, f64)> = None; // (rho, migrate/remote ratio)
    let rhos = [
        0.125f64, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0, 1.25, 1.5,
    ];
    for &rho in &rhos {
        let refs = (rho * s_words as f64) as usize;
        // Read-dominated references, matching the analysis (its C_remote
        // uses the remote *read* latency; one write per operation keeps
        // the page migratory).
        let cfg = SharingConfig {
            struct_words: s_words as usize,
            refs_per_op: refs,
            write_pct: 0,
            ops_per_proc: ops,
            compute_ns_per_op: 0,
        };
        let migrate = run_once(PolicyKind::AlwaysReplicate, p, &cfg);
        let remote = run_once(PolicyKind::NeverReplicate, p, &cfg);
        let ratio = migrate as f64 / remote as f64;
        if let Some((prho, pratio)) = prev {
            if pratio > 1.0 && ratio <= 1.0 {
                // Linear interpolation of the crossing.
                let t = (pratio - 1.0) / (pratio - ratio);
                crossover_rho = Some((prho + t * (rho - prho), ratio));
            }
        }
        prev = Some((rho, ratio));
        table.row(vec![
            format!("{rho:.3}"),
            refs.to_string(),
            format!("{:.2}", migrate as f64 / 1e6),
            format!("{:.2}", remote as f64 / 1e6),
            if migrate < remote {
                "migrate"
            } else {
                "remote"
            }
            .to_string(),
        ]);
        eprintln!("  rho={rho:.3} done");
    }
    println!("{table}");

    // Predicted crossover from the simulator's own constants. The fixed
    // overhead here is the §4 write-miss/migration fixed cost (~0.26 ms
    // measured by sec4_microbench).
    let timing = MachineConfig::default().timing;
    let own = CostModel::from_timing(&timing, 260_000.0);
    let paper = CostModel::paper_published();
    println!(
        "empirical crossover density: {}",
        crossover_rho
            .map(|(r, _)| format!("{r:.3}"))
            .unwrap_or_else(|| "not crossed in range".to_string())
    );
    println!(
        "inequality (2) with this simulator's overhead: rho* = {:.3}",
        own.crossover_density(s_words, g)
    );
    println!(
        "inequality (2) with the paper's constants:     rho* = {:.3}",
        paper.crossover_density(s_words, g)
    );
    platinum_bench::trace_out::finish(sink);
}
