//! Host-throughput benchmark: how many simulated memory references per
//! host second the simulator sustains, with the translation fast path on
//! versus forced off (`MachineConfig::fast_path = false`).
//!
//! Unlike every other binary in this crate, the numbers here are *host*
//! wall-clock — virtual time is identical on both paths by construction
//! (see the equivalence tests); only the cost of simulating each access
//! changes. Three mixes bracket the design space:
//!
//!   * `all_local`  — ATC-resident reads/writes to local pages: the pure
//!     fast-path regime the overhaul targets.
//!   * `all_remote` — ATC-resident references to statically-placed remote
//!     pages (NeverReplicate): fast path plus the contention model.
//!   * `fault_heavy` — write ping-pong between two processors: every
//!     reference migrates the page, so the kernel slow path dominates
//!     and the fast path can only get out of the way.
//!
//! Usage:
//!   host_throughput [--ops 4000000] [--rounds 20000] [--out FILE]
//!                   [--mix NAME] [--check --baseline FILE [--tolerance 0.20]]
//!
//! `--out` writes a JSON artifact (default results/BENCH_host_throughput.json;
//! bench artifacts live under results/, never the repo root).
//! `--mix` restricts the run to one mix for quick iteration.
//! `--check` compares each mix's fast-path MIPS against a baseline
//! artifact and exits nonzero on a regression beyond the tolerance.

use std::time::Instant;

use numa_machine::{MachineConfig, Mem};
use platinum::hostprof::HostProfSnapshot;
use platinum::{NeverReplicate, PlatinumPolicy, ReplicationPolicy, Rights, UserCtx};
use platinum_analysis::report::json::Value;
use platinum_analysis::report::Table;
use platinum_bench::Args;
use platinum_runtime::sim::{Sim, SimBuilder};

fn boot(nodes: usize, fast_path: bool, policy: Option<Box<dyn ReplicationPolicy>>) -> Sim {
    let mut b = SimBuilder::nodes(nodes).machine_config(MachineConfig {
        nodes,
        frames_per_node: 256,
        skew_window_ns: None,
        fast_path,
        ..MachineConfig::default()
    });
    if let Some(p) = policy {
        b = b.policy_box(p);
    }
    b.build()
}

struct MixResult {
    name: &'static str,
    ops: u64,
    fast_mips: f64,
    reference_mips: f64,
    /// Host time spent in each kernel slow-path phase during the
    /// profiled pass (a separate pass: enabling the profiler adds two
    /// clock reads per span, so the timed slices above run unprofiled).
    prof: HostProfSnapshot,
    /// Reference count of the profiled pass, for per-op normalization.
    profiled_ops: u64,
}

impl MixResult {
    fn speedup(&self) -> f64 {
        self.fast_mips / self.reference_mips
    }
}

fn mips(ops: u64, secs: f64) -> f64 {
    ops as f64 / 1e6 / secs
}

const PAGES: u64 = 4;

/// The benchmark's access pattern: page `k % 4`, word `k % 64`, a write
/// every fourth op. The pattern has period 64; it is precomputed so the
/// measured loop charges the simulator, not the harness's address
/// arithmetic.
fn pattern(va: u64, page_bytes: u64) -> Vec<(u64, bool)> {
    (0..64u64)
        .map(|k| (va + (k % PAGES) * page_bytes + k * 4, k % 4 == 0))
        .collect()
}

/// ATC-resident references to pages homed on the running processor.
/// Returns elapsed host seconds for `ops` references (setup excluded)
/// plus the kernel phase profile when `profile` is set.
fn all_local(fast_path: bool, ops: u64, profile: bool) -> (f64, HostProfSnapshot) {
    let sim = boot(2, fast_path, None);
    let object = sim.kernel.create_object(PAGES as usize);
    let va = sim.space.map_anywhere(object, Rights::RW).unwrap();
    let page_bytes = (sim.machine.cfg().words_per_page() * 4) as u64;
    let mut ctx = sim.attach(0).unwrap();
    for i in 0..PAGES {
        ctx.write(va + i * page_bytes, i as u32); // first touch: local frame
    }
    let pat = pattern(va, page_bytes);
    let rounds = ops.div_ceil(64);
    if profile {
        sim.kernel.host_prof().enable();
    }
    let start = Instant::now();
    let mut sum = 0u32;
    for r in 0..rounds {
        for &(a, write) in &pat {
            if write {
                ctx.write(a, r as u32);
            } else {
                sum = sum.wrapping_add(ctx.read(a));
            }
        }
    }
    std::hint::black_box(sum);
    (
        start.elapsed().as_secs_f64(),
        sim.kernel.host_prof().snapshot(),
    )
}

/// ATC-resident references to pages statically placed on a remote node.
fn all_remote(fast_path: bool, ops: u64, profile: bool) -> (f64, HostProfSnapshot) {
    let sim = boot(2, fast_path, Some(Box::new(NeverReplicate)));
    let object = sim.kernel.create_object(PAGES as usize);
    let va = sim.space.map_anywhere(object, Rights::RW).unwrap();
    let page_bytes = (sim.machine.cfg().words_per_page() * 4) as u64;
    // First touch from processor 1 homes every page on node 1 ...
    let mut owner = sim.attach(1).unwrap();
    for i in 0..PAGES {
        owner.write(va + i * page_bytes, i as u32);
    }
    owner.suspend();
    // ... so processor 0's references stay remote forever.
    let mut ctx = sim.attach(0).unwrap();
    let pat = pattern(va, page_bytes);
    let rounds = ops.div_ceil(64);
    if profile {
        sim.kernel.host_prof().enable();
    }
    let start = Instant::now();
    let mut sum = 0u32;
    for _ in 0..rounds {
        for &(a, _) in &pat {
            sum = sum.wrapping_add(ctx.read(a));
        }
    }
    std::hint::black_box(sum);
    (
        start.elapsed().as_secs_f64(),
        sim.kernel.host_prof().snapshot(),
    )
}

/// Write ping-pong: each reference invalidates the peer's copy and
/// migrates the page, so the protocol slow path dominates.
fn fault_heavy(fast_path: bool, rounds: u64, profile: bool) -> (f64, HostProfSnapshot) {
    let sim = boot(
        2,
        fast_path,
        Some(Box::new(PlatinumPolicy {
            // Never freeze: keep every round on the full migrate path.
            t1_ns: 0,
            ..PlatinumPolicy::paper_default()
        })),
    );
    let object = sim.kernel.create_object(1);
    let va = sim.space.map_anywhere(object, Rights::RW).unwrap();
    let mut a = sim.attach(0).unwrap();
    let mut b = sim.attach(1).unwrap();
    let ping = |w: &mut UserCtx, s: &mut UserCtx, val: u32| {
        s.suspend();
        w.write(va, val);
        s.resume();
    };
    if profile {
        sim.kernel.host_prof().enable();
    }
    let start = Instant::now();
    for k in 0..rounds {
        ping(&mut a, &mut b, k as u32);
        ping(&mut b, &mut a, k as u32);
    }
    (
        start.elapsed().as_secs_f64(),
        sim.kernel.host_prof().snapshot(),
    )
}

/// Measures one mix with the two paths interleaved (fast, reference,
/// fast, ...) and keeps each side's *fastest* slice. Interleaving lands
/// host-side drift (frequency scaling, noisy neighbours) on both sides
/// instead of on whichever ran second; taking the minimum discards the
/// noise bursts that inflate a sum, which is what a throughput capability
/// number should exclude.
fn interleaved(
    name: &'static str,
    ops: u64,
    run: impl Fn(bool, u64, bool) -> (f64, HostProfSnapshot),
) -> MixResult {
    const SLICES: u64 = 6;
    let slice = (ops / SLICES).max(1);
    let (mut fast_secs, mut ref_secs) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..SLICES {
        fast_secs = fast_secs.min(run(true, slice, false).0);
        ref_secs = ref_secs.min(run(false, slice, false).0);
    }
    // One extra fast-path slice with the kernel phase profiler on. Kept
    // out of the timed slices above: each profiled span costs two extra
    // clock reads, which would depress the throughput numbers the
    // `--check` gate compares.
    let (_, prof) = run(true, slice, true);
    MixResult {
        name,
        ops,
        fast_mips: mips(slice, fast_secs),
        reference_mips: mips(slice, ref_secs),
        prof,
        profiled_ops: slice,
    }
}

fn run_mixes(ops: u64, rounds: u64, only: Option<&str>) -> Vec<MixResult> {
    let wanted = |name: &str| only.is_none_or(|m| m == name);
    let mut out = Vec::new();
    if wanted("all_local") {
        out.push(interleaved("all_local", ops, all_local));
    }
    if wanted("all_remote") {
        out.push(interleaved("all_remote", ops, all_remote));
    }
    if wanted("fault_heavy") {
        out.push(interleaved("fault_heavy", rounds * 2, |fast, n, prof| {
            fault_heavy(fast, n / 2, prof)
        }));
    }
    assert!(
        !out.is_empty(),
        "--mix must be one of all_local, all_remote, fault_heavy"
    );
    out
}

fn per_op(ns: u64, r: &MixResult) -> f64 {
    ns as f64 / r.profiled_ops.max(1) as f64
}

fn artifact(results: &[MixResult]) -> String {
    Value::obj(vec![
        ("bench", Value::Str("host_throughput".to_string())),
        (
            "unit",
            Value::Str("simulated Mrefs per host second".to_string()),
        ),
        (
            "mixes",
            Value::Arr(
                results
                    .iter()
                    .map(|r| {
                        Value::obj(vec![
                            ("name", Value::Str(r.name.to_string())),
                            ("ops", Value::Num(r.ops as f64)),
                            ("fast_mips", Value::Num(r.fast_mips)),
                            ("reference_mips", Value::Num(r.reference_mips)),
                            ("speedup", Value::Num(r.speedup())),
                            // Where the fast path's host time goes, from a
                            // separate profiled slice (the timed slices run
                            // unprofiled). ns-per-op so different --ops runs
                            // stay comparable; the four buckets only cover
                            // slow-path work, so all_local's are near zero.
                            (
                                "host_phase_ns_per_op",
                                Value::obj(vec![
                                    ("fault", Value::Num(per_op(r.prof.fault_ns, r))),
                                    ("shootdown", Value::Num(per_op(r.prof.shootdown_ns, r))),
                                    ("transfer", Value::Num(per_op(r.prof.transfer_ns, r))),
                                    ("directory", Value::Num(per_op(r.prof.directory_ns, r))),
                                ]),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .to_json()
}

/// Pulls `"fast_mips":<number>` for `mix` out of a baseline artifact.
/// Hand-rolled to match the hand-rolled writer; the format is ours.
fn baseline_mips(json: &str, mix: &str) -> Option<f64> {
    let at = json.find(&format!("\"name\":\"{mix}\""))?;
    let rest = &json[at..];
    let v = rest.find("\"fast_mips\":")? + "\"fast_mips\":".len();
    let tail = &rest[v..];
    let end = tail.find([',', '}'])?;
    tail[..end].parse().ok()
}

fn main() {
    let args = Args::parse();
    let ops = args.get_or("--ops", 2_000_000u64);
    let rounds = args.get_or("--rounds", 20_000u64);
    let mix = args.get::<String>("--mix");
    let out = args
        .get::<String>("--out")
        .unwrap_or_else(|| "results/BENCH_host_throughput.json".to_string());

    println!("Host throughput: simulated references per host second\n");
    let results = run_mixes(ops, rounds, mix.as_deref());

    let mut table = Table::new(vec![
        "mix",
        "ops",
        "fast (Mref/s)",
        "reference (Mref/s)",
        "speedup",
    ]);
    for r in &results {
        table.row(vec![
            r.name.to_string(),
            r.ops.to_string(),
            format!("{:.2}", r.fast_mips),
            format!("{:.2}", r.reference_mips),
            format!("{:.2}x", r.speedup()),
        ]);
    }
    println!("{table}");

    if let Some(dir) = std::path::Path::new(&out)
        .parent()
        .filter(|d| !d.as_os_str().is_empty())
    {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("creating {}: {e}", dir.display()));
    }
    std::fs::write(&out, artifact(&results)).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("artifact written to {out}");

    if args.flag("--check") {
        let path: String = args.get("--baseline").expect("--check needs --baseline");
        let tolerance = args.get_or("--tolerance", 0.20f64);
        let baseline =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
        let mut failed = false;
        for r in &results {
            let base = baseline_mips(&baseline, r.name)
                .unwrap_or_else(|| panic!("{path} has no fast_mips for {}", r.name));
            let floor = base * (1.0 - tolerance);
            let verdict = if r.fast_mips < floor {
                failed = true;
                "REGRESSION"
            } else {
                "ok"
            };
            println!(
                "check {:<12} {:.2} Mref/s vs baseline {:.2} (floor {:.2}): {}",
                r.name, r.fast_mips, base, floor, verdict
            );
        }
        if failed {
            eprintln!(
                "host throughput regressed more than {:.0}%",
                tolerance * 100.0
            );
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::baseline_mips;

    #[test]
    fn baseline_parser_reads_own_artifact() {
        let json = r#"{"bench":"host_throughput","mixes":[{"name":"all_local","ops":100,"fast_mips":12.5,"reference_mips":4.1,"speedup":3.04},{"name":"fault_heavy","fast_mips":0.25}]}"#;
        assert_eq!(baseline_mips(json, "all_local"), Some(12.5));
        assert_eq!(baseline_mips(json, "fault_heavy"), Some(0.25));
        assert_eq!(baseline_mips(json, "missing"), None);
    }
}
