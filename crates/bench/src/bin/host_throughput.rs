//! Host-throughput benchmark: how many simulated memory references per
//! host second the simulator sustains, with the translation fast path on
//! versus forced off (`MachineConfig::fast_path = false`).
//!
//! Unlike every other binary in this crate, the numbers here are *host*
//! wall-clock — virtual time is identical on both paths by construction
//! (see the equivalence tests); only the cost of simulating each access
//! changes. Three mixes bracket the design space:
//!
//!   * `all_local`  — ATC-resident reads/writes to local pages: the pure
//!     fast-path regime the overhaul targets.
//!   * `all_remote` — ATC-resident references to statically-placed remote
//!     pages (NeverReplicate): fast path plus the contention model.
//!   * `fault_heavy` — write ping-pong between two processors: every
//!     reference migrates the page, so the kernel slow path dominates
//!     and the fast path can only get out of the way.
//!
//! Usage:
//!   host_throughput [--ops 4000000] [--rounds 20000] [--out FILE]
//!                   [--mix NAME] [--check --baseline FILE [--tolerance 0.20]]
//!                   [--procs 16,32,64,128,256] [--topology flat|hier2|hier2x4]
//!
//! `--out` writes a JSON artifact (default results/BENCH_host_throughput.json;
//! bench artifacts live under results/, never the repo root).
//! `--mix` restricts the run to one mix for quick iteration.
//! `--check` compares each mix's fast-path MIPS against a baseline
//! artifact and exits nonzero on a regression beyond the tolerance.
//!
//! `--procs` switches to the machine-size sweep: each listed processor
//! count boots its own machine (optionally under `--topology`), runs the
//! selected mixes on the fast path, and the artifact gains one entry per
//! p with throughput and `host_phase_ns_per_op` — the protocol-cost-vs-
//! machine-size curve. The sweep intentionally skips the reference path
//! and the interleaved best-of-6 discipline: it charts scaling shape,
//! not the `--check` capability number, so the default artifact format
//! (and any recorded baseline) is untouched.

use std::time::Instant;

use numa_machine::{MachineConfig, Mem, TimingConfig, Topology};
use platinum::hostprof::HostProfSnapshot;
use platinum::{NeverReplicate, PlatinumPolicy, ReplicationPolicy, Rights, UserCtx};
use platinum_analysis::report::json::Value;
use platinum_analysis::report::Table;
use platinum_bench::Args;
use platinum_runtime::sim::{Sim, SimBuilder};

fn boot(
    nodes: usize,
    frames_per_node: usize,
    fast_path: bool,
    topo: Option<&Topology>,
    policy: Option<Box<dyn ReplicationPolicy>>,
) -> Sim {
    let mut b = SimBuilder::nodes(nodes).machine_config(MachineConfig {
        nodes,
        frames_per_node,
        skew_window_ns: None,
        fast_path,
        ..MachineConfig::default()
    });
    if let Some(t) = topo {
        b = b.topology(t.clone());
    }
    if let Some(p) = policy {
        b = b.policy_box(p);
    }
    b.build()
}

struct MixResult {
    name: &'static str,
    ops: u64,
    fast_mips: f64,
    reference_mips: f64,
    /// Host time spent in each kernel slow-path phase during the
    /// profiled pass (a separate pass: enabling the profiler adds two
    /// clock reads per span, so the timed slices above run unprofiled).
    prof: HostProfSnapshot,
    /// Reference count of the profiled pass, for per-op normalization.
    profiled_ops: u64,
}

impl MixResult {
    fn speedup(&self) -> f64 {
        self.fast_mips / self.reference_mips
    }
}

fn mips(ops: u64, secs: f64) -> f64 {
    ops as f64 / 1e6 / secs
}

const PAGES: u64 = 4;

/// The benchmark's access pattern: page `k % 4`, word `k % 64`, a write
/// every fourth op. The pattern has period 64; it is precomputed so the
/// measured loop charges the simulator, not the harness's address
/// arithmetic.
fn pattern(va: u64, page_bytes: u64) -> Vec<(u64, bool)> {
    (0..64u64)
        .map(|k| (va + (k % PAGES) * page_bytes + k * 4, k % 4 == 0))
        .collect()
}

/// ATC-resident references to pages homed on the running processor.
/// Returns elapsed host seconds for `ops` references (setup excluded)
/// plus the kernel phase profile when `profile` is set.
fn all_local(
    nodes: usize,
    topo: Option<&Topology>,
    frames: usize,
    fast_path: bool,
    ops: u64,
    profile: bool,
) -> (f64, HostProfSnapshot) {
    let sim = boot(nodes, frames, fast_path, topo, None);
    let object = sim.kernel.create_object(PAGES as usize);
    let va = sim.space.map_anywhere(object, Rights::RW).unwrap();
    let page_bytes = (sim.machine.cfg().words_per_page() * 4) as u64;
    let mut ctx = sim.attach(0).unwrap();
    for i in 0..PAGES {
        ctx.write(va + i * page_bytes, i as u32); // first touch: local frame
    }
    let pat = pattern(va, page_bytes);
    let rounds = ops.div_ceil(64);
    if profile {
        sim.kernel.host_prof().enable();
    }
    let start = Instant::now();
    let mut sum = 0u32;
    for r in 0..rounds {
        for &(a, write) in &pat {
            if write {
                ctx.write(a, r as u32);
            } else {
                sum = sum.wrapping_add(ctx.read(a));
            }
        }
    }
    std::hint::black_box(sum);
    (
        start.elapsed().as_secs_f64(),
        sim.kernel.host_prof().snapshot(),
    )
}

/// ATC-resident references to pages statically placed on a remote node.
fn all_remote(
    nodes: usize,
    topo: Option<&Topology>,
    frames: usize,
    fast_path: bool,
    ops: u64,
    profile: bool,
) -> (f64, HostProfSnapshot) {
    let sim = boot(
        nodes,
        frames,
        fast_path,
        topo,
        Some(Box::new(NeverReplicate)),
    );
    let object = sim.kernel.create_object(PAGES as usize);
    let va = sim.space.map_anywhere(object, Rights::RW).unwrap();
    let page_bytes = (sim.machine.cfg().words_per_page() * 4) as u64;
    // First touch from processor 1 homes every page on node 1 ...
    let mut owner = sim.attach(1).unwrap();
    for i in 0..PAGES {
        owner.write(va + i * page_bytes, i as u32);
    }
    owner.suspend();
    // ... so processor 0's references stay remote forever.
    let mut ctx = sim.attach(0).unwrap();
    let pat = pattern(va, page_bytes);
    let rounds = ops.div_ceil(64);
    if profile {
        sim.kernel.host_prof().enable();
    }
    let start = Instant::now();
    let mut sum = 0u32;
    for _ in 0..rounds {
        for &(a, _) in &pat {
            sum = sum.wrapping_add(ctx.read(a));
        }
    }
    std::hint::black_box(sum);
    (
        start.elapsed().as_secs_f64(),
        sim.kernel.host_prof().snapshot(),
    )
}

/// Write ping-pong: each reference invalidates the previous writer's
/// copy and migrates the page, so the protocol slow path dominates. The
/// page circulates round-robin over all `nodes` processors (`nodes = 2`
/// recovers the classic two-party ping-pong), `pings` writes in total.
fn fault_heavy(
    nodes: usize,
    topo: Option<&Topology>,
    frames: usize,
    fast_path: bool,
    pings: u64,
    profile: bool,
) -> (f64, HostProfSnapshot) {
    let sim = boot(
        nodes,
        frames,
        fast_path,
        topo,
        Some(Box::new(PlatinumPolicy {
            // Never freeze: keep every round on the full migrate path.
            t1_ns: 0,
            ..PlatinumPolicy::paper_default()
        })),
    );
    let object = sim.kernel.create_object(1);
    let va = sim.space.map_anywhere(object, Rights::RW).unwrap();
    let mut ctxs: Vec<UserCtx> = (0..nodes).map(|p| sim.attach(p).unwrap()).collect();
    // Only the current writer runs; everyone else sits suspended so the
    // migration's shootdown handshake never waits on a spinning peer in
    // host time (the quantity under measurement).
    for c in ctxs.iter_mut().skip(1) {
        c.suspend();
    }
    if profile {
        sim.kernel.host_prof().enable();
    }
    let start = Instant::now();
    for k in 0..pings {
        let i = (k as usize) % nodes;
        ctxs[i].write(va, k as u32);
        ctxs[(i + 1) % nodes].resume();
        ctxs[i].suspend();
    }
    (
        start.elapsed().as_secs_f64(),
        sim.kernel.host_prof().snapshot(),
    )
}

/// Measures one mix with the two paths interleaved (fast, reference,
/// fast, ...) and keeps each side's *fastest* slice. Interleaving lands
/// host-side drift (frequency scaling, noisy neighbours) on both sides
/// instead of on whichever ran second; taking the minimum discards the
/// noise bursts that inflate a sum, which is what a throughput capability
/// number should exclude.
fn interleaved(
    name: &'static str,
    ops: u64,
    run: impl Fn(bool, u64, bool) -> (f64, HostProfSnapshot),
) -> MixResult {
    const SLICES: u64 = 6;
    let slice = (ops / SLICES).max(1);
    let (mut fast_secs, mut ref_secs) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..SLICES {
        fast_secs = fast_secs.min(run(true, slice, false).0);
        ref_secs = ref_secs.min(run(false, slice, false).0);
    }
    // One extra fast-path slice with the kernel phase profiler on. Kept
    // out of the timed slices above: each profiled span costs two extra
    // clock reads, which would depress the throughput numbers the
    // `--check` gate compares.
    let (_, prof) = run(true, slice, true);
    MixResult {
        name,
        ops,
        fast_mips: mips(slice, fast_secs),
        reference_mips: mips(slice, ref_secs),
        prof,
        profiled_ops: slice,
    }
}

fn run_mixes(ops: u64, rounds: u64, only: Option<&str>) -> Vec<MixResult> {
    let wanted = |name: &str| only.is_none_or(|m| m == name);
    let mut out = Vec::new();
    if wanted("all_local") {
        out.push(interleaved("all_local", ops, |fast, n, prof| {
            all_local(2, None, 256, fast, n, prof)
        }));
    }
    if wanted("all_remote") {
        out.push(interleaved("all_remote", ops, |fast, n, prof| {
            all_remote(2, None, 256, fast, n, prof)
        }));
    }
    if wanted("fault_heavy") {
        out.push(interleaved("fault_heavy", rounds * 2, |fast, n, prof| {
            fault_heavy(2, None, 256, fast, n, prof)
        }));
    }
    assert!(
        !out.is_empty(),
        "--mix must be one of all_local, all_remote, fault_heavy"
    );
    out
}

fn per_op_ns(ns: u64, ops: u64) -> f64 {
    ns as f64 / ops.max(1) as f64
}

fn per_op(ns: u64, r: &MixResult) -> f64 {
    per_op_ns(ns, r.profiled_ops)
}

/// One (p, mix) cell of the machine-size sweep.
struct SweepCell {
    name: &'static str,
    ops: u64,
    fast_mips: f64,
    prof: HostProfSnapshot,
}

/// The `--procs` sweep: each listed processor count boots its own
/// machine under `topo` and runs the selected mixes once, fast path
/// only, with the kernel phase profiler enabled — one boot per (p, mix)
/// cell. The throughput numbers therefore carry the profiler's two
/// clock reads per slow-path span; the curve's *shape* against p is the
/// deliverable, not a `--check`-grade capability figure.
fn run_sweep(
    ps: &[usize],
    topo: &str,
    ops: u64,
    pings: u64,
    only: Option<&str>,
) -> Vec<(usize, Vec<SweepCell>)> {
    let wanted = |name: &str| only.is_none_or(|m| m == name);
    // Shallow frame pool: the mixes touch at most four pages per node,
    // and 256 nodes x 4096 frames of real backing storage would be
    // gigabytes of host memory per boot.
    const SWEEP_FRAMES: usize = 32;
    let timing = TimingConfig::default();
    let mut out = Vec::new();
    for &p in ps {
        assert!(p >= 2, "--procs entries must be at least 2 (got {p})");
        let t = Topology::by_name(topo, p, &timing).unwrap_or_else(|| {
            panic!("unknown --topology {topo:?} (expected flat, hier2, hier2x4)")
        });
        let mut cells = Vec::new();
        if wanted("all_local") {
            let (secs, prof) = all_local(p, Some(&t), SWEEP_FRAMES, true, ops, true);
            cells.push(SweepCell {
                name: "all_local",
                ops,
                fast_mips: mips(ops, secs),
                prof,
            });
        }
        if wanted("all_remote") {
            let (secs, prof) = all_remote(p, Some(&t), SWEEP_FRAMES, true, ops, true);
            cells.push(SweepCell {
                name: "all_remote",
                ops,
                fast_mips: mips(ops, secs),
                prof,
            });
        }
        if wanted("fault_heavy") {
            let (secs, prof) = fault_heavy(p, Some(&t), SWEEP_FRAMES, true, pings, true);
            cells.push(SweepCell {
                name: "fault_heavy",
                ops: pings,
                fast_mips: mips(pings, secs),
                prof,
            });
        }
        assert!(
            !cells.is_empty(),
            "--mix must be one of all_local, all_remote, fault_heavy"
        );
        eprintln!("  p={p} done");
        out.push((p, cells));
    }
    out
}

fn sweep_artifact(topo: &str, sweep: &[(usize, Vec<SweepCell>)]) -> String {
    Value::obj(vec![
        ("bench", Value::Str("host_throughput".to_string())),
        ("mode", Value::Str("procs_sweep".to_string())),
        ("topology", Value::Str(topo.to_string())),
        (
            "unit",
            Value::Str("simulated Mrefs per host second".to_string()),
        ),
        (
            "sweep",
            Value::Arr(
                sweep
                    .iter()
                    .map(|(p, cells)| {
                        Value::obj(vec![
                            ("procs", Value::Num(*p as f64)),
                            (
                                "mixes",
                                Value::Arr(
                                    cells
                                        .iter()
                                        .map(|c| {
                                            Value::obj(vec![
                                                ("name", Value::Str(c.name.to_string())),
                                                ("ops", Value::Num(c.ops as f64)),
                                                ("fast_mips", Value::Num(c.fast_mips)),
                                                (
                                                    "host_phase_ns_per_op",
                                                    Value::obj(vec![
                                                        (
                                                            "fault",
                                                            Value::Num(per_op_ns(
                                                                c.prof.fault_ns,
                                                                c.ops,
                                                            )),
                                                        ),
                                                        (
                                                            "shootdown",
                                                            Value::Num(per_op_ns(
                                                                c.prof.shootdown_ns,
                                                                c.ops,
                                                            )),
                                                        ),
                                                        (
                                                            "transfer",
                                                            Value::Num(per_op_ns(
                                                                c.prof.transfer_ns,
                                                                c.ops,
                                                            )),
                                                        ),
                                                        (
                                                            "directory",
                                                            Value::Num(per_op_ns(
                                                                c.prof.directory_ns,
                                                                c.ops,
                                                            )),
                                                        ),
                                                        (
                                                            "walk",
                                                            Value::Num(per_op_ns(
                                                                c.prof.walk_ns,
                                                                c.ops,
                                                            )),
                                                        ),
                                                    ]),
                                                ),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .to_json()
}

fn write_artifact(out: &str, body: &str) {
    if let Some(dir) = std::path::Path::new(out)
        .parent()
        .filter(|d| !d.as_os_str().is_empty())
    {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("creating {}: {e}", dir.display()));
    }
    std::fs::write(out, body).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("artifact written to {out}");
}

fn artifact(results: &[MixResult]) -> String {
    Value::obj(vec![
        ("bench", Value::Str("host_throughput".to_string())),
        (
            "unit",
            Value::Str("simulated Mrefs per host second".to_string()),
        ),
        (
            "mixes",
            Value::Arr(
                results
                    .iter()
                    .map(|r| {
                        Value::obj(vec![
                            ("name", Value::Str(r.name.to_string())),
                            ("ops", Value::Num(r.ops as f64)),
                            ("fast_mips", Value::Num(r.fast_mips)),
                            ("reference_mips", Value::Num(r.reference_mips)),
                            ("speedup", Value::Num(r.speedup())),
                            // Where the fast path's host time goes, from a
                            // separate profiled slice (the timed slices run
                            // unprofiled). ns-per-op so different --ops runs
                            // stay comparable; the four buckets only cover
                            // slow-path work, so all_local's are near zero.
                            (
                                "host_phase_ns_per_op",
                                Value::obj(vec![
                                    ("fault", Value::Num(per_op(r.prof.fault_ns, r))),
                                    ("shootdown", Value::Num(per_op(r.prof.shootdown_ns, r))),
                                    ("transfer", Value::Num(per_op(r.prof.transfer_ns, r))),
                                    ("directory", Value::Num(per_op(r.prof.directory_ns, r))),
                                    ("walk", Value::Num(per_op(r.prof.walk_ns, r))),
                                ]),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .to_json()
}

/// Pulls `"fast_mips":<number>` for `mix` out of a baseline artifact.
/// Hand-rolled to match the hand-rolled writer; the format is ours.
fn baseline_mips(json: &str, mix: &str) -> Option<f64> {
    let at = json.find(&format!("\"name\":\"{mix}\""))?;
    let rest = &json[at..];
    let v = rest.find("\"fast_mips\":")? + "\"fast_mips\":".len();
    let tail = &rest[v..];
    let end = tail.find([',', '}'])?;
    tail[..end].parse().ok()
}

fn main() {
    let args = Args::parse();
    let ops = args.get_or("--ops", 2_000_000u64);
    let rounds = args.get_or("--rounds", 20_000u64);
    let mix = args.get::<String>("--mix");

    if let Some(list) = args.get::<String>("--procs") {
        let ps: Vec<usize> = list
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("--procs takes a comma-separated list, got {s:?}"))
            })
            .collect();
        let topo = args
            .get::<String>("--topology")
            .unwrap_or_else(|| "flat".to_string());
        let out = args
            .get::<String>("--out")
            .unwrap_or_else(|| "results/BENCH_host_throughput_procs.json".to_string());
        println!("Host throughput vs machine size ({topo} topology)\n");
        let sweep = run_sweep(&ps, &topo, ops, rounds, mix.as_deref());
        let mut table = Table::new(vec![
            "p",
            "mix",
            "fast (Mref/s)",
            "fault ns/op",
            "shootdown ns/op",
            "transfer ns/op",
            "directory ns/op",
            "walk ns/op",
        ]);
        for (p, cells) in &sweep {
            for c in cells {
                table.row(vec![
                    p.to_string(),
                    c.name.to_string(),
                    format!("{:.2}", c.fast_mips),
                    format!("{:.0}", per_op_ns(c.prof.fault_ns, c.ops)),
                    format!("{:.0}", per_op_ns(c.prof.shootdown_ns, c.ops)),
                    format!("{:.0}", per_op_ns(c.prof.transfer_ns, c.ops)),
                    format!("{:.0}", per_op_ns(c.prof.directory_ns, c.ops)),
                    format!("{:.0}", per_op_ns(c.prof.walk_ns, c.ops)),
                ]);
            }
        }
        println!("{table}");
        write_artifact(&out, &sweep_artifact(&topo, &sweep));
        return;
    }

    let out = args
        .get::<String>("--out")
        .unwrap_or_else(|| "results/BENCH_host_throughput.json".to_string());

    println!("Host throughput: simulated references per host second\n");
    let results = run_mixes(ops, rounds, mix.as_deref());

    let mut table = Table::new(vec![
        "mix",
        "ops",
        "fast (Mref/s)",
        "reference (Mref/s)",
        "speedup",
    ]);
    for r in &results {
        table.row(vec![
            r.name.to_string(),
            r.ops.to_string(),
            format!("{:.2}", r.fast_mips),
            format!("{:.2}", r.reference_mips),
            format!("{:.2}x", r.speedup()),
        ]);
    }
    println!("{table}");

    write_artifact(&out, &artifact(&results));

    if args.flag("--check") {
        let path: String = args.get("--baseline").expect("--check needs --baseline");
        let tolerance = args.get_or("--tolerance", 0.20f64);
        let baseline =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
        let mut failed = false;
        for r in &results {
            let base = baseline_mips(&baseline, r.name)
                .unwrap_or_else(|| panic!("{path} has no fast_mips for {}", r.name));
            let floor = base * (1.0 - tolerance);
            let verdict = if r.fast_mips < floor {
                failed = true;
                "REGRESSION"
            } else {
                "ok"
            };
            println!(
                "check {:<12} {:.2} Mref/s vs baseline {:.2} (floor {:.2}): {}",
                r.name, r.fast_mips, base, floor, verdict
            );
        }
        if failed {
            eprintln!(
                "host throughput regressed more than {:.0}%",
                tolerance * 100.0
            );
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::baseline_mips;

    #[test]
    fn baseline_parser_reads_own_artifact() {
        let json = r#"{"bench":"host_throughput","mixes":[{"name":"all_local","ops":100,"fast_mips":12.5,"reference_mips":4.1,"speedup":3.04},{"name":"fault_heavy","fast_mips":0.25}]}"#;
        assert_eq!(baseline_mips(json, "all_local"), Some(12.5));
        assert_eq!(baseline_mips(json, "fault_heavy"), Some(0.25));
        assert_eq!(baseline_mips(json, "missing"), None);
    }
}
