//! Server-tier benchmark: the key-value store and the flow-table
//! pipeline under open-loop request traffic, with per-request latency
//! histograms and protocol-cost attribution.
//!
//! The open-loop driver is deterministic (serialized kernel entries in
//! merged-arrival order, `skew_window_ns: None` — see
//! `platinum_server::drive`), so every number in the artifact is a pure
//! function of the configuration: the `--check` gate compares against a
//! committed baseline *exactly* by default. `--mode closed` switches to
//! the concurrent saturation driver, whose numbers are host-schedule
//! dependent and never checked.
//!
//! Usage:
//!   server_bench [--workload kv|flow|both] [--nodes 8] [--shards 64]
//!                [--keys 262144] [--requests-per-proc 131072]
//!                [--theta 0.99] [--write-pct 10] [--seed 24301]
//!                [--mean-gap-ns 4000000] [--mode open|closed] [--out FILE]
//!                [--trace FILE] [--check --baseline FILE [--tolerance 0.0]]
//!
//! Defaults drive ≥1M requests through the KV store (8 procs × 128Ki).
//! The CI smoke job runs a reduced geometry against
//! `results/BENCH_server_baseline.json`; regenerate that baseline with
//! the exact flags recorded in its `config` object.

use numa_machine::MachineConfig;
use platinum_analysis::report::json::Value;
use platinum_analysis::report::Table;
use platinum_bench::{Args, TraceSink};
use platinum_runtime::sim::{Sim, SimBuilder};
use platinum_server::{
    run_closed_loop, run_open_loop, DriverReport, FlowConfig, FlowTables, KvConfig, KvTable,
    ServerPhase, TrafficConfig, Workload,
};

struct BenchConfig {
    nodes: usize,
    shards: usize,
    traffic: TrafficConfig,
    mode: ServerPhase,
}

/// One workload's measured numbers plus its state checksum.
struct WorkloadResult {
    name: &'static str,
    report: DriverReport,
    /// Post-run fold over the workload's quiesced state: same requests
    /// executed ⇒ same checksum (the KV audit additionally asserts no
    /// slot is torn).
    checksum: u64,
}

fn boot(nodes: usize) -> Sim {
    let mut mcfg = MachineConfig::with_nodes(nodes);
    mcfg.frames_per_node = 4096;
    mcfg.skew_window_ns = None;
    SimBuilder::nodes(nodes).machine_config(mcfg).build()
}

fn drive<W: Workload>(sim: &Sim, w: &W, cfg: &BenchConfig) -> DriverReport {
    match cfg.mode {
        ServerPhase::OpenLoop => {
            let schedule = cfg.traffic.schedule(cfg.nodes);
            run_open_loop(sim, w, cfg.nodes, &schedule)
        }
        ServerPhase::ClosedLoop => {
            let per_proc = cfg.traffic.per_proc_schedules(cfg.nodes);
            run_closed_loop(sim, w, &per_proc)
        }
    }
}

fn run_kv(cfg: &BenchConfig) -> WorkloadResult {
    let sim = boot(cfg.nodes);
    let kcfg = KvConfig::for_keys(cfg.traffic.keys, cfg.shards);
    let page_words = sim.machine.cfg().words_per_page();
    let mut data = sim.alloc_zone(kcfg.table_pages(page_words));
    let mut locks = sim.alloc_zone(kcfg.lock_pages());
    let kv = KvTable::layout(kcfg, &mut data, &mut locks);
    let report = drive(&sim, &kv, cfg);
    let audit = sim
        .spawn(0, |ctx| kv.verify(ctx))
        .expect("processor 0 free after the driver")
        .expect("quiesced table verifies");
    assert_eq!(audit.occupied, cfg.traffic.keys, "keys lost from the table");
    WorkloadResult {
        name: "kv",
        report,
        checksum: audit.checksum,
    }
}

fn run_flow(cfg: &BenchConfig) -> WorkloadResult {
    let sim = boot(cfg.nodes);
    let fcfg = FlowConfig::default();
    let page_words = sim.machine.cfg().words_per_page();
    let mut lookup = sim.alloc_zone(fcfg.lookup_pages(page_words));
    let mut state = sim.alloc_zone(fcfg.state_pages(page_words));
    let ft = FlowTables::layout(fcfg, &mut lookup, &mut state);
    let report = drive(&sim, &ft, cfg);
    let checksum = sim
        .spawn(0, |ctx| ft.checksum(ctx))
        .expect("processor 0 free after the driver")
        .expect("quiesced state folds");
    WorkloadResult {
        name: "flow",
        report,
        checksum,
    }
}

fn n(v: u64) -> Value {
    Value::Num(v as f64)
}

fn workload_value(r: &WorkloadResult) -> Value {
    let rep = &r.report;
    let p = &rep.protocol;
    Value::obj(vec![
        ("name", Value::Str(r.name.to_string())),
        ("requests", n(rep.requests)),
        ("reads", n(rep.reads)),
        ("writes", n(rep.writes)),
        ("retries", n(rep.retries)),
        ("elapsed_ns", n(rep.elapsed_ns)),
        ("throughput_rps", Value::Num(rep.throughput_rps())),
        ("p50_ns", n(rep.latency.p50())),
        ("p99_ns", n(rep.latency.p99())),
        ("p999_ns", n(rep.latency.p999())),
        ("max_ns", n(rep.latency.max())),
        ("latency_sum_ns", n(rep.latency.sum())),
        ("read_p50_ns", n(rep.read_latency.p50())),
        ("read_p99_ns", n(rep.read_latency.p99())),
        ("write_p50_ns", n(rep.write_latency.p50())),
        ("write_p99_ns", n(rep.write_latency.p99())),
        ("checksum", n(r.checksum)),
        (
            "per_shard",
            Value::Arr(rep.per_shard.iter().map(|&c| n(c)).collect()),
        ),
        (
            "per_proc",
            Value::Arr(rep.per_proc.iter().map(|&c| n(c)).collect()),
        ),
        (
            "protocol",
            Value::obj(vec![
                ("faults", n(p.faults)),
                ("replications", n(p.replications)),
                ("migrations", n(p.migrations)),
                ("remote_maps", n(p.remote_maps)),
                ("freezes", n(p.freezes)),
                ("thaws", n(p.thaws)),
                ("invalidations", n(p.invalidations)),
                ("shootdowns", n(p.shootdowns)),
                ("ipis_sent", n(p.ipis_sent)),
                ("defrost_runs", n(p.defrost_runs)),
                ("server_requests", n(p.server_requests)),
            ]),
        ),
        (
            "per_1k_requests",
            Value::obj(vec![
                ("faults", Value::Num(rep.per_1k(p.faults))),
                ("shootdowns", Value::Num(rep.per_1k(p.shootdowns))),
                ("freezes", Value::Num(rep.per_1k(p.freezes))),
                ("invalidations", Value::Num(rep.per_1k(p.invalidations))),
            ]),
        ),
    ])
}

fn artifact(cfg: &BenchConfig, results: &[WorkloadResult]) -> String {
    let t = &cfg.traffic;
    Value::obj(vec![
        ("bench", Value::Str("server_bench".to_string())),
        (
            "mode",
            Value::Str(
                match cfg.mode {
                    ServerPhase::OpenLoop => "open",
                    ServerPhase::ClosedLoop => "closed",
                }
                .to_string(),
            ),
        ),
        (
            "config",
            Value::obj(vec![
                ("nodes", n(cfg.nodes as u64)),
                ("shards", n(cfg.shards as u64)),
                ("keys", n(t.keys)),
                ("requests_per_proc", n(t.requests_per_proc as u64)),
                ("theta", Value::Num(t.theta)),
                ("write_pct", n(t.write_pct as u64)),
                ("seed", n(t.seed)),
                ("mean_interarrival_ns", n(t.mean_interarrival_ns)),
            ]),
        ),
        (
            "workloads",
            Value::Arr(results.iter().map(workload_value).collect()),
        ),
    ])
    .to_json()
}

/// The fields the `--check` gate compares. All are exact integers under
/// the deterministic open-loop driver.
const CHECKED_FIELDS: [&str; 8] = [
    "requests",
    "elapsed_ns",
    "p50_ns",
    "p99_ns",
    "p999_ns",
    "checksum",
    "latency_sum_ns",
    "retries",
];

/// Pulls `"field":<number>` out of the named workload's section of a
/// baseline artifact. Hand-rolled to match the hand-rolled writer.
fn baseline_field(json: &str, workload: &str, field: &str) -> Option<f64> {
    let at = json.find(&format!("\"name\":\"{workload}\""))?;
    let rest = &json[at..];
    let v = rest.find(&format!("\"{field}\":"))? + field.len() + 3;
    let tail = &rest[v..];
    let end = tail.find([',', '}', ']'])?;
    tail[..end].parse().ok()
}

fn current_field(r: &WorkloadResult, field: &str) -> f64 {
    let rep = &r.report;
    (match field {
        "requests" => rep.requests,
        "elapsed_ns" => rep.elapsed_ns,
        "p50_ns" => rep.latency.p50(),
        "p99_ns" => rep.latency.p99(),
        "p999_ns" => rep.latency.p999(),
        "checksum" => r.checksum,
        "latency_sum_ns" => rep.latency.sum(),
        "retries" => rep.retries,
        other => panic!("unknown check field {other}"),
    }) as f64
}

fn check(results: &[WorkloadResult], baseline: &str, tolerance: f64) -> bool {
    let mut ok = true;
    for r in results {
        if baseline_field(baseline, r.name, "requests").is_none() {
            println!("check {:<4}: baseline has no section, skipped", r.name);
            continue;
        }
        for field in CHECKED_FIELDS {
            let base = baseline_field(baseline, r.name, field)
                .unwrap_or_else(|| panic!("baseline has no {field} for {}", r.name));
            let cur = current_field(r, field);
            let pass = (cur - base).abs() <= base.abs() * tolerance;
            if !pass {
                ok = false;
            }
            println!(
                "check {:<4} {:<16} {:>16} vs baseline {:>16}: {}",
                r.name,
                field,
                cur,
                base,
                if pass { "ok" } else { "MISMATCH" }
            );
        }
    }
    ok
}

fn table(results: &[WorkloadResult]) -> Table {
    let mut t = Table::new(vec![
        "workload",
        "requests",
        "vtime (ms)",
        "krps",
        "p50 (us)",
        "p99 (us)",
        "p999 (us)",
        "faults/1k",
        "shootdowns/1k",
        "retries",
    ]);
    for r in results {
        let rep = &r.report;
        t.row(vec![
            r.name.to_string(),
            rep.requests.to_string(),
            format!("{:.3}", rep.elapsed_ns as f64 / 1e6),
            format!("{:.1}", rep.throughput_rps() / 1e3),
            format!("{:.2}", rep.latency.p50() as f64 / 1e3),
            format!("{:.2}", rep.latency.p99() as f64 / 1e3),
            format!("{:.2}", rep.latency.p999() as f64 / 1e3),
            format!("{:.2}", rep.per_1k(rep.protocol.faults)),
            format!("{:.2}", rep.per_1k(rep.protocol.shootdowns)),
            rep.retries.to_string(),
        ]);
    }
    t
}

fn main() {
    let args = Args::parse();
    let workload = args
        .get::<String>("--workload")
        .unwrap_or_else(|| "both".to_string());
    let nodes = args.get_or("--nodes", 8usize);
    let mode = match args
        .get::<String>("--mode")
        .unwrap_or_else(|| "open".to_string())
        .as_str()
    {
        "open" => ServerPhase::OpenLoop,
        "closed" => ServerPhase::ClosedLoop,
        other => panic!("unknown mode {other:?} (expected open or closed)"),
    };
    let cfg = BenchConfig {
        nodes,
        shards: args.get_or("--shards", 64usize),
        traffic: TrafficConfig {
            seed: args.get_or("--seed", 24_301u64),
            // 256Ki keys → a 16 MB table, right at the per-node frame
            // pool: the measured regime mixes coherence traffic (write
            // invalidations on hot pages) with mild replacement
            // pressure. Push --keys well past the pool to study pure
            // frame thrash, or shrink it for a fully-replicable table.
            keys: args.get_or("--keys", 1u64 << 18),
            requests_per_proc: args.get_or("--requests-per-proc", 1usize << 17),
            theta: args.get_or("--theta", 0.99f64),
            write_pct: args.get_or("--write-pct", 10u32),
            // The simulated machine serves a faulting request in roughly
            // a millisecond (a page copy is ~1 ms of virtual time), so
            // the default arrival rate sits below saturation: p50 then
            // reflects service time and the tail reflects write-burst
            // queueing, rather than every number measuring pure backlog.
            mean_interarrival_ns: args.get_or("--mean-gap-ns", 4_000_000u64),
            ..TrafficConfig::default()
        },
        mode,
    };
    let out = args
        .get::<String>("--out")
        .unwrap_or_else(|| "BENCH_server.json".to_string());
    let sink = TraceSink::from_args(&args);

    println!(
        "Server tier: {} requests per workload, {} procs, {} mode\n",
        cfg.nodes * cfg.traffic.requests_per_proc,
        cfg.nodes,
        match cfg.mode {
            ServerPhase::OpenLoop => "open-loop (deterministic)",
            ServerPhase::ClosedLoop => "closed-loop (saturation)",
        }
    );

    let mut results = Vec::new();
    if workload == "kv" || workload == "both" {
        if let Some(s) = &sink {
            s.phase("kv");
        }
        results.push(run_kv(&cfg));
    }
    if workload == "flow" || workload == "both" {
        if let Some(s) = &sink {
            s.phase("flow");
        }
        results.push(run_flow(&cfg));
    }
    assert!(
        !results.is_empty(),
        "unknown workload {workload:?} (expected kv, flow, both)"
    );

    println!("{}", table(&results));

    std::fs::write(&out, artifact(&cfg, &results)).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("artifact written to {out}");
    platinum_bench::trace_out::finish(sink);

    if args.flag("--check") {
        assert!(
            cfg.mode == ServerPhase::OpenLoop,
            "--check requires the deterministic open-loop mode"
        );
        let path: String = args.get("--baseline").expect("--check needs --baseline");
        let tolerance = args.get_or("--tolerance", 0.0f64);
        let baseline =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
        if !check(&results, &baseline, tolerance) {
            eprintln!("server_bench diverged from {path} (tolerance {tolerance})");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::baseline_field;

    #[test]
    fn baseline_parser_reads_own_artifact() {
        let json = r#"{"bench":"server_bench","workloads":[{"name":"kv","requests":1024,"elapsed_ns":55,"p50_ns":7,"checksum":12345},{"name":"flow","requests":2048,"checksum":9}]}"#;
        assert_eq!(baseline_field(json, "kv", "requests"), Some(1024.0));
        assert_eq!(baseline_field(json, "kv", "checksum"), Some(12345.0));
        assert_eq!(baseline_field(json, "flow", "requests"), Some(2048.0));
        assert_eq!(baseline_field(json, "flow", "checksum"), Some(9.0));
        assert_eq!(baseline_field(json, "kv", "missing"), None);
        assert_eq!(baseline_field(json, "neither", "requests"), None);
    }
}
