use numa_machine::MachineConfig;
use platinum_apps::gauss::{self, GaussConfig, GaussLayout};
use platinum_apps::harness::PolicyKind;
use platinum_bench::{Args, TraceSink};
use platinum_runtime::par::PlatinumHarness;
use platinum_runtime::sync::EventCount;

fn main() {
    let args = Args::parse();
    let sink = TraceSink::from_args(&args);
    let cfg = GaussConfig::with_n(200);
    let mut mcfg = MachineConfig::with_nodes(16);
    mcfg.frames_per_node = 4096;
    let h = PlatinumHarness::with_config(
        mcfg,
        PolicyKind::Platinum.build(),
        platinum::KernelConfig::default(),
    );
    let page_words = h.kernel.machine().cfg().words_per_page();
    let stride = cfg.n.div_ceil(page_words) * page_words;
    let pages = (stride * cfg.n).div_ceil(page_words) + 2;
    let mut data = h.alloc_zone(pages);
    let lay = GaussLayout::alloc(&mut data, cfg.n, page_words);
    let mut sync = h.alloc_zone(1);
    let ec = EventCount::new(sync.alloc_words(1));
    let p = 2;
    h.run(p, |tid, ctx| {
        gauss::init_owned_rows(ctx, &lay, &cfg, tid, p)
    });
    let (_, run) = h.run(p, |tid, ctx| {
        gauss::run_shared(ctx, &lay, &cfg, &ec, tid, p)
    });
    for w in &run.workers {
        let c = &w.counters;
        println!(
            "proc {}: vtime={:.0}ms compute={:.0}ms queue={:.0}ms lr={} rr={} lw={} rw={} la={} ra={} blocks={} faults={}",
            w.proc, w.vtime_ns as f64 / 1e6, c.compute_ns as f64 / 1e6,
            c.queue_delay_ns as f64 / 1e6,
            c.local_reads, c.remote_reads, c.local_writes, c.remote_writes,
            c.local_atomics, c.remote_atomics, c.block_transfers, c.faults,
        );
    }
    platinum_bench::trace_out::finish(sink);
}
