//! The §4.2 anecdote: an accidentally frozen page, its diagnosis, and
//! the value of thawing.
//!
//! The paper's first Gaussian elimination program read the matrix size
//! from a shared variable in its inner-loop termination test; a spin-lock
//! barrier added later happened to share that variable's page. Spinning
//! froze the page, so "all but one thread generated a remote access in
//! its inner loop... a bottleneck with five or more processors". The
//! kernel's post-mortem report made the diagnosis trivial, thawing was
//! added to the kernel, and "the old version of the program took less
//! than two seconds more to run than the new version".
//!
//! Three configurations:
//!   1. co-located, defrost disabled  (the original kernel + program)
//!   2. co-located, defrost enabled   (the thawing kernel, old program)
//!   3. page-separated                (the fixed program)
//!
//! Usage:
//!   anecdote_freeze [--n 300] [--procs 8] [--trace out.json]

use platinum_analysis::report::Table;
use platinum_apps::gauss::GaussConfig;
use platinum_apps::harness::run_gauss_anecdote;
use platinum_bench::{Args, TraceSink};

fn main() {
    let args = Args::parse();
    let sink = TraceSink::from_args(&args);
    let n = args.get_or("--n", 300usize);
    let p = args.get_or("--procs", 8usize);
    let cfg = GaussConfig::with_n(n);

    println!("Section 4.2 anecdote: frozen synchronization page ({n}x{n} elimination, p={p})\n");

    let never = u64::MAX / 2; // defrost effectively disabled
    let second = 1_000_000_000u64; // the paper's t2 = 1 s

    let cases = [
        ("co-located, no defrost", true, never),
        ("co-located, defrost 1s", true, second),
        ("separated pages", false, second),
    ];
    let mut table = Table::new(vec!["configuration", "time ms", "frozen pages", "thaws"]);
    let mut results = Vec::new();
    let mut checksum = None;
    for (name, colocated, t2) in cases {
        if let Some(s) = &sink {
            s.phase(name);
        }
        let run = run_gauss_anecdote(16.max(p), p, &cfg, colocated, t2);
        match checksum {
            None => checksum = Some(run.checksum),
            Some(c) => assert_eq!(c, run.checksum, "{name} diverged"),
        }
        table.row(vec![
            name.to_string(),
            format!("{:.1}", run.elapsed_ns as f64 / 1e6),
            run.kernel_stats.freezes.to_string(),
            run.kernel_stats.thaws.to_string(),
        ]);
        results.push((name, run.elapsed_ns));
        eprintln!("  {name}: done");
    }
    println!("{table}");

    let frozen = results[0].1;
    let thawed = results[1].1;
    let fixed = results[2].1;
    println!(
        "slowdown without thawing: {:.2}x over the fixed program",
        frozen as f64 / fixed as f64
    );
    println!(
        "with the defrost daemon the old program costs only {:+.1} ms over the fixed one",
        (thawed as f64 - fixed as f64) / 1e6
    );
    if thawed < frozen {
        println!("shape check PASSED: thawing rescues the co-located layout");
    } else {
        println!("shape check FAILED: thawing did not help");
    }
    platinum_bench::trace_out::finish(sink);
}
