//! Page-table placement ablation: how much walk time the translation
//! fabric spends off-node under each [`PtablePlacement`], across
//! machine sizes and topologies, on two walk-heavy workloads.
//!
//! Every ATC miss triggers a simulated multi-level page-table walk
//! charged against the node homing the walked structures (see
//! `platinum-ptable`). This benchmark sweeps where those structures
//! live:
//!
//!   * `centralized` — canonical tables on the space's home node; walks
//!     are accounted arithmetically and charge no virtual time (the
//!     bit-identical default).
//!   * `home_node` — the same placement, but walks are *charged*: the
//!     NUMA-oblivious baseline the replicated placements are judged
//!     against.
//!   * `replicated_all` — every node builds a replica on its first walk.
//!   * `replicated_on_fault` — Mitosis-style copy-on-fault: a node earns
//!     its replica inside the fault handler it is already paying for.
//!
//! Two deterministic workloads exercise the fabric from opposite ends:
//! `fault_heavy` (round-robin write ping-pong: every reference migrates
//! the page, so every reference walks *and* every migration invalidates
//! a replica entry) and `kv` (the server tier's open-loop key-value
//! store: a large read-mostly table whose misses spread over many
//! pages). Both drive the simulation from a single host thread, so
//! every virtual-time metric is exact and `--check` compares it
//! bit-for-bit against a committed baseline.
//!
//! Per cell the artifact reports the walk tally (walks, populates,
//! invalidations and their virtual-time costs), **walk locality** — the
//! fraction of walk virtual time served on-node — **fabric_ns** (total
//! translation-fabric protocol time: walks + populates + invalidations),
//! the workload's elapsed virtual time, and host-side Mops/s (unchecked;
//! host throughput is not deterministic).
//!
//! Usage:
//!   ptable_ablation [--procs 16,64] [--topology flat|hier2|hier2x4]
//!                   [--placements a,b,c] [--workloads fault_heavy,kv]
//!                   [--pings 2000] [--kv-keys 2048] [--kv-requests 192]
//!                   [--out results/BENCH_ptable.json]
//!                   [--check --baseline FILE]
//!
//! With both `centralized` and `replicated_on_fault` in the sweep, the
//! run self-checks the fabric's reason to exist: at every (p, workload)
//! cell, replicate-on-fault must hold at least 1.2x the centralized
//! placement's walk locality, and on the fault-heavy workload at p >= 64
//! it must also spend measurably less total fabric time than the
//! centralized accounting says the same walks would have cost.

use std::time::Instant;

use numa_machine::{MachineConfig, Mem, TimingConfig, Topology};
use platinum::{PlatinumPolicy, PtableConfig, PtablePlacement, Rights, UserCtx, WalkSnapshot};
use platinum_analysis::report::json::Value;
use platinum_analysis::report::Table;
use platinum_bench::Args;
use platinum_runtime::sim::{Sim, SimBuilder};
use platinum_server::{run_open_loop, KvConfig, KvTable, TrafficConfig};

/// Boots one cell's machine: `procs` nodes under `topo`, the given
/// page-table placement, and (for the ping-pong) a never-freeze policy
/// so every round stays on the full migrate path.
fn boot(procs: usize, topo: &Topology, placement: PtablePlacement, never_freeze: bool) -> Sim {
    let mut mcfg = MachineConfig::with_nodes(procs);
    // Shallow frame pool: the workloads touch few pages per node, and
    // big-p boots should not cost gigabytes of host backing store.
    mcfg.frames_per_node = 256;
    mcfg.skew_window_ns = None;
    let mut b = SimBuilder::nodes(procs)
        .machine_config(mcfg)
        .topology(topo.clone())
        .ptable(PtableConfig::with_placement(placement));
    if never_freeze {
        b = b.policy_box(Box::new(PlatinumPolicy {
            t1_ns: 0,
            ..PlatinumPolicy::paper_default()
        }));
    }
    b.build()
}

/// One (workload, p, placement) cell of the sweep.
struct Cell {
    workload: &'static str,
    procs: usize,
    placement: PtablePlacement,
    ops: u64,
    /// Elapsed virtual time of the measured run (exact, `--check`ed).
    elapsed_ns: u64,
    /// The fabric's walk tally over the whole run (exact, `--check`ed).
    walks: WalkSnapshot,
    /// Host-side throughput (unchecked; host clocks are not
    /// deterministic).
    host_mops: f64,
}

impl Cell {
    fn key(&self) -> String {
        format!(
            "{}/p{}/{}",
            self.workload,
            self.procs,
            self.placement.name()
        )
    }
}

/// Round-robin write ping-pong over all `procs` processors: every write
/// migrates the page, so every reference is an ATC miss (one walk) and
/// every migration's shootdown round carries a replica invalidation.
/// Single host thread; returns (elapsed vtime, host seconds).
fn fault_heavy(sim: &Sim, procs: usize, pings: u64) -> (u64, f64) {
    let object = sim.kernel.create_object(1);
    let va = sim.space.map_anywhere(object, Rights::RW).unwrap();
    let mut ctxs: Vec<UserCtx> = (0..procs).map(|p| sim.attach(p).unwrap()).collect();
    // Only the current writer runs; everyone else sits suspended so the
    // migration handshake never waits on a spinning peer in host time.
    for c in ctxs.iter_mut().skip(1) {
        c.suspend();
    }
    let start = Instant::now();
    for k in 0..pings {
        let i = (k as usize) % procs;
        ctxs[i].write(va, k as u32);
        ctxs[(i + 1) % procs].resume();
        ctxs[i].suspend();
    }
    let secs = start.elapsed().as_secs_f64();
    let elapsed = ctxs.iter().map(|c| c.core().vtime()).max().unwrap();
    (elapsed, secs)
}

/// The server tier's open-loop key-value store under the deterministic
/// serialized driver. Returns (elapsed vtime, host seconds, requests).
fn kv(sim: &Sim, procs: usize, traffic: &TrafficConfig) -> (u64, f64, u64) {
    let kcfg = KvConfig::for_keys(traffic.keys, 8);
    let page_words = sim.machine.cfg().words_per_page();
    let mut data = sim.alloc_zone(kcfg.table_pages(page_words));
    let mut locks = sim.alloc_zone(kcfg.lock_pages());
    let kv = KvTable::layout(kcfg, &mut data, &mut locks);
    let schedule = traffic.schedule(procs);
    let start = Instant::now();
    let report = run_open_loop(sim, &kv, procs, &schedule);
    let secs = start.elapsed().as_secs_f64();
    (report.elapsed_ns, secs, report.requests)
}

fn run_sweep(
    ps: &[usize],
    topo_name: &str,
    placements: &[PtablePlacement],
    workloads: &[&'static str],
    pings: u64,
    traffic: &TrafficConfig,
) -> Vec<Cell> {
    let timing = TimingConfig::default();
    let mut cells = Vec::new();
    for &p in ps {
        assert!(p >= 2, "--procs entries must be at least 2 (got {p})");
        let topo = Topology::by_name(topo_name, p, &timing).unwrap_or_else(|| {
            panic!("unknown --topology {topo_name:?} (expected flat, hier2, hier2x4)")
        });
        for &placement in placements {
            for &w in workloads {
                let cell = match w {
                    "fault_heavy" => {
                        let sim = boot(p, &topo, placement, true);
                        let (elapsed_ns, secs) = fault_heavy(&sim, p, pings);
                        Cell {
                            workload: "fault_heavy",
                            procs: p,
                            placement,
                            ops: pings,
                            elapsed_ns,
                            walks: sim.kernel.walk_snapshot(),
                            host_mops: pings as f64 / 1e6 / secs,
                        }
                    }
                    "kv" => {
                        let sim = boot(p, &topo, placement, false);
                        let (elapsed_ns, secs, requests) = kv(&sim, p, traffic);
                        Cell {
                            workload: "kv",
                            procs: p,
                            placement,
                            ops: requests,
                            elapsed_ns,
                            walks: sim.kernel.walk_snapshot(),
                            host_mops: requests as f64 / 1e6 / secs,
                        }
                    }
                    other => panic!("unknown workload {other:?} (expected fault_heavy, kv)"),
                };
                eprintln!("  {} done", cell.key());
                cells.push(cell);
            }
        }
    }
    cells
}

fn find<'c>(
    cells: &'c [Cell],
    workload: &str,
    procs: usize,
    placement: PtablePlacement,
) -> Option<&'c Cell> {
    cells
        .iter()
        .find(|c| c.workload == workload && c.procs == procs && c.placement == placement)
}

/// The fabric's reason to exist, asserted from the sweep's own numbers
/// wherever both ends of the comparison ran. Returns named check
/// results for the artifact.
fn self_checks(cells: &[Cell], ps: &[usize], workloads: &[&'static str]) -> Vec<(String, bool)> {
    let mut checks = Vec::new();
    for &p in ps {
        for &w in workloads {
            let (Some(central), Some(repl)) = (
                find(cells, w, p, PtablePlacement::Centralized),
                find(cells, w, p, PtablePlacement::ReplicatedOnFault),
            ) else {
                continue;
            };
            // Replicated walks must be on-node: at least 1.2x the
            // centralized placement's walk locality (in practice the gap
            // is far wider — centralized locality decays like 1/p).
            let ok = repl.walks.walk_locality() >= 1.2 * central.walks.walk_locality();
            checks.push((format!("locality_1_2x/{w}/p{p}"), ok));
            assert!(
                ok,
                "{w}/p{p}: replicate-on-fault walk locality {:.4} is not \
                 1.2x centralized {:.4}",
                repl.walks.walk_locality(),
                central.walks.walk_locality(),
            );
            // ... and at scale the whole fabric (walks + populates +
            // invalidations) must cost less virtual time than the
            // centralized accounting says the same walks would have,
            // remote charges and all. Asserted on the walk-dominated
            // ping-pong at p >= 64, where the issue's acceptance bar
            // sits; the kv cells report the same numbers unchecked.
            if w == "fault_heavy" && p >= 64 {
                let ok = repl.walks.fabric_ns() < central.walks.fabric_ns();
                checks.push((format!("fabric_cheaper/{w}/p{p}"), ok));
                assert!(
                    ok,
                    "{w}/p{p}: replicate-on-fault fabric time {} ns is not \
                     below centralized walk accounting {} ns",
                    repl.walks.fabric_ns(),
                    central.walks.fabric_ns(),
                );
            }
        }
    }
    checks
}

fn artifact(topo: &str, cells: &[Cell], checks: &[(String, bool)]) -> String {
    Value::obj(vec![
        ("bench", Value::Str("ptable_ablation".to_string())),
        ("topology", Value::Str(topo.to_string())),
        (
            "unit",
            Value::Str("virtual ns (exact); host Mops/s (unchecked)".to_string()),
        ),
        (
            "cells",
            Value::Arr(
                cells
                    .iter()
                    .map(|c| {
                        let w = &c.walks;
                        Value::obj(vec![
                            ("key", Value::Str(c.key())),
                            ("workload", Value::Str(c.workload.to_string())),
                            ("procs", Value::Num(c.procs as f64)),
                            ("placement", Value::Str(c.placement.name().to_string())),
                            ("ops", Value::Num(c.ops as f64)),
                            ("elapsed_ns", Value::Num(c.elapsed_ns as f64)),
                            ("walks", Value::Num(w.walks as f64)),
                            ("walk_ns", Value::Num(w.walk_ns as f64)),
                            ("local_walk_ns", Value::Num(w.local_walk_ns as f64)),
                            ("walk_locality", Value::Num(w.walk_locality())),
                            ("populates", Value::Num(w.populates as f64)),
                            ("populate_ns", Value::Num(w.populate_ns as f64)),
                            ("invals", Value::Num(w.invals as f64)),
                            ("inval_ns", Value::Num(w.inval_ns as f64)),
                            ("fabric_ns", Value::Num(w.fabric_ns() as f64)),
                            ("host_mops", Value::Num(c.host_mops)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "checks",
            Value::obj(
                checks
                    .iter()
                    .map(|(name, ok)| (name.as_str(), Value::Bool(*ok)))
                    .collect(),
            ),
        ),
    ])
    .to_json()
}

/// Pulls an integer field out of a baseline cell identified by `key`.
/// Hand-rolled to match the hand-rolled writer; the format is ours.
fn baseline_field(json: &str, key: &str, field: &str) -> Option<u64> {
    let at = json.find(&format!("\"key\":\"{key}\""))?;
    let rest = &json[at..];
    let cell_end = rest.find('}').unwrap_or(rest.len());
    let cell = &rest[..cell_end];
    let v = cell.find(&format!("\"{field}\":"))? + field.len() + 3;
    let tail = &cell[v..];
    let end = tail.find([',', '}']).unwrap_or(tail.len());
    tail[..end].parse::<f64>().ok().map(|f| f as u64)
}

fn write_artifact(out: &str, body: &str) {
    if let Some(dir) = std::path::Path::new(out)
        .parent()
        .filter(|d| !d.as_os_str().is_empty())
    {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("creating {}: {e}", dir.display()));
    }
    std::fs::write(out, body).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("artifact written to {out}");
}

fn main() {
    let args = Args::parse();
    let ps: Vec<usize> = args
        .get::<String>("--procs")
        .unwrap_or_else(|| "16,64".to_string())
        .split(',')
        .map(|s| {
            s.trim()
                .parse()
                .unwrap_or_else(|_| panic!("--procs takes a comma-separated list, got {s:?}"))
        })
        .collect();
    let topo = args
        .get::<String>("--topology")
        .unwrap_or_else(|| "hier2".to_string());
    let placements: Vec<PtablePlacement> = args
        .get::<String>("--placements")
        .map(|list| {
            list.split(',')
                .map(|s| {
                    s.trim()
                        .parse::<PtablePlacement>()
                        .unwrap_or_else(|e| panic!("--placements: {e}"))
                })
                .collect()
        })
        .unwrap_or_else(|| PtablePlacement::ALL.to_vec());
    let workload_names = args
        .get::<String>("--workloads")
        .unwrap_or_else(|| "fault_heavy,kv".to_string());
    let workloads: Vec<&'static str> = workload_names
        .split(',')
        .map(|s| match s.trim() {
            "fault_heavy" => "fault_heavy",
            "kv" => "kv",
            other => panic!("unknown workload {other:?} (expected fault_heavy, kv)"),
        })
        .collect();
    let pings = args.get_or("--pings", 2_000u64);
    let traffic = TrafficConfig {
        keys: args.get_or("--kv-keys", 2_048u64),
        requests_per_proc: args.get_or("--kv-requests", 192usize),
        mean_interarrival_ns: args.get_or("--kv-gap-ns", 5_000u64),
        write_pct: 2,
        burst_every: 0,
        ..TrafficConfig::default()
    };
    let out = args
        .get::<String>("--out")
        .unwrap_or_else(|| "results/BENCH_ptable.json".to_string());

    println!("Page-table placement ablation ({topo} topology)\n");
    let cells = run_sweep(&ps, &topo, &placements, &workloads, pings, &traffic);

    let mut table = Table::new(vec![
        "workload",
        "p",
        "placement",
        "walks",
        "locality",
        "walk (ms)",
        "pop (ms)",
        "inval (ms)",
        "fabric (ms)",
        "vtime (ms)",
        "host Mops/s",
    ]);
    for c in &cells {
        table.row(vec![
            c.workload.to_string(),
            c.procs.to_string(),
            c.placement.name().to_string(),
            c.walks.walks.to_string(),
            format!("{:.3}", c.walks.walk_locality()),
            format!("{:.3}", c.walks.walk_ns as f64 / 1e6),
            format!("{:.3}", c.walks.populate_ns as f64 / 1e6),
            format!("{:.3}", c.walks.inval_ns as f64 / 1e6),
            format!("{:.3}", c.walks.fabric_ns() as f64 / 1e6),
            format!("{:.3}", c.elapsed_ns as f64 / 1e6),
            format!("{:.2}", c.host_mops),
        ]);
    }
    println!("{table}");
    let checks = self_checks(&cells, &ps, &workloads);
    for (name, ok) in &checks {
        println!("check {name}: {}", if *ok { "PASS" } else { "FAIL" });
    }

    write_artifact(&out, &artifact(&topo, &cells, &checks));

    if args.flag("--check") {
        let path: String = args.get("--baseline").expect("--check needs --baseline");
        let baseline =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
        // Virtual-time metrics are exact functions of the configuration,
        // so the comparison is equality, not a tolerance band.
        let mut failed = false;
        for c in &cells {
            let key = c.key();
            for (field, got) in [
                ("elapsed_ns", c.elapsed_ns),
                ("walks", c.walks.walks),
                ("walk_ns", c.walks.walk_ns),
                ("fabric_ns", c.walks.fabric_ns()),
            ] {
                let Some(want) = baseline_field(&baseline, &key, field) else {
                    println!("check {key} {field}: absent from baseline, skipped");
                    continue;
                };
                if want != got {
                    failed = true;
                    eprintln!("check {key} {field}: {got} != baseline {want}: DRIFT");
                } else {
                    println!("check {key} {field}: {got} ok");
                }
            }
        }
        if failed {
            eprintln!("ptable ablation drifted from the committed baseline");
            std::process::exit(1);
        }
        println!("baseline check passed: every virtual-time metric exact");
    }
}

#[cfg(test)]
mod tests {
    use super::baseline_field;

    #[test]
    fn baseline_parser_reads_own_artifact() {
        let json = r#"{"cells":[{"key":"fault_heavy/p16/centralized","elapsed_ns":123,"walk_ns":456,"fabric_ns":456},{"key":"kv/p16/home_node","elapsed_ns":9}]}"#;
        assert_eq!(
            baseline_field(json, "fault_heavy/p16/centralized", "elapsed_ns"),
            Some(123)
        );
        assert_eq!(
            baseline_field(json, "fault_heavy/p16/centralized", "fabric_ns"),
            Some(456)
        );
        assert_eq!(
            baseline_field(json, "kv/p16/home_node", "elapsed_ns"),
            Some(9)
        );
        assert_eq!(baseline_field(json, "kv/p16/home_node", "walk_ns"), None);
        assert_eq!(baseline_field(json, "missing", "elapsed_ns"), None);
    }
}
