//! Table 1: inequality (2) evaluated at the paper's (ρ, g) grid.
//!
//! "It always pays to migrate data when the page size is greater than
//! S_min." Prints the table computed from the coefficients as the paper
//! published them (107 and 0.24), and, with `--raw`, from the raw
//! Butterfly Plus latencies.
//!
//! Usage:
//!   table1_smin [--raw] [--overhead-ns N]

use platinum_analysis::model::{table1, CostModel, TABLE1_GS};
use platinum_analysis::report::Table;
use platinum_bench::{Args, TraceSink};

fn main() {
    let args = Args::parse();
    let sink = TraceSink::from_args(&args);
    let model = if args.flag("--raw") {
        let mut m = CostModel::paper();
        if let Some(f) = args.get::<f64>("--overhead-ns") {
            m.overhead_ns = f;
        }
        m
    } else {
        CostModel::paper_published()
    };

    println!("Table 1: minimum page size (words) for which migration always pays");
    println!(
        "model: T_l={} ns  T_r={} ns  T_b={:.0} ns  F={:.0} ns  (coef={:.2}, ratio={:.3})\n",
        model.t_local_ns,
        model.t_remote_ns,
        model.t_block_ns,
        model.overhead_ns,
        model.overhead_coefficient(),
        model.block_ratio()
    );

    let mut t = Table::new(vec![
        "rho".to_string(),
        format!("g(p)={}", TABLE1_GS[0]),
        format!("g(p)={}", TABLE1_GS[1]),
        format!("g(p)={}", TABLE1_GS[2]),
    ]);
    for (rho, cols) in table1(&model) {
        t.row(vec![
            format!("{rho:.2}"),
            cols[0].to_string(),
            cols[1].to_string(),
            cols[2].to_string(),
        ]);
    }
    println!("{t}");
    println!("paper prints 435 at (rho=0.48, g=1); 107/(0.48-0.24) = 445.8,");
    println!("matching the 445 it prints at (rho=0.24, g=0.5) — a suspected typo.");
    platinum_bench::trace_out::finish(sink);
}
