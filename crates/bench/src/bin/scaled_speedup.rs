//! Scaled-problem speedup (the §4.1 / Gustafson discussion).
//!
//! "We believe, as do others [28, 14], that a major role of parallel
//! machines is to solve ever-larger problems rather than to solve
//! fixed-size problems in ever-shorter times. These larger problems will
//! allow the continued use of coarse granularity as systems are made
//! larger."
//!
//! This harness contrasts fixed-size speedup (Amdahl-style: the paper's
//! Figure 1 regime, where per-processor granularity shrinks as p grows)
//! with scaled speedup (Gustafson-style: the matrix grows with p so each
//! processor keeps the same share of rows), on Gaussian elimination under
//! PLATINUM. Scaled efficiency should hold up better — coarse granularity
//! is preserved.
//!
//! Usage:
//!   scaled_speedup [--base-n 128] [--max-procs 8]
//!                  [--procs 16,32,64,128,256] [--topology flat|hier2|hier2x4]
//!                  [--out FILE]
//!
//! `--procs` switches to the machine-size sweep: each listed processor
//! count runs the *scaled* problem (n grows as p^(1/3), constant work
//! per processor) on its own p-node machine, with the kernel's host
//! phase profiler on, and writes a per-p JSON artifact of simulated
//! throughput and `host_phase_ns_per_op` — how the protocol's host cost
//! scales with machine size on a real application, the companion curve
//! to `host_throughput --procs`'s microbenchmark view.

use numa_machine::{TimingConfig, Topology};
use platinum_analysis::report::json::Value;
use platinum_analysis::report::Table;
use platinum_apps::gauss::GaussConfig;
use platinum_apps::harness::{run_gauss, run_gauss_profiled, GaussStyle, PolicyKind};
use platinum_bench::{Args, TraceSink};

/// Scaled problem size: n(p) = base_n * p^(1/3) keeps work per
/// processor constant (total work ~ n^3).
fn scaled_n(base_n: usize, p: usize) -> usize {
    ((base_n as f64) * (p as f64).powf(1.0 / 3.0)).round() as usize
}

fn run_procs_sweep(args: &Args, ps: &[usize], base_n: usize) {
    let topo_name = args
        .get::<String>("--topology")
        .unwrap_or_else(|| "flat".to_string());
    let out = args
        .get::<String>("--out")
        .unwrap_or_else(|| "results/BENCH_scaled_speedup_procs.json".to_string());
    let timing = TimingConfig::default();

    println!("scaled-problem Gaussian elimination vs machine size ({topo_name} topology)\n");
    let mut table = Table::new(vec![
        "p",
        "n",
        "vtime (ms)",
        "sim Mref/s",
        "fault ns/op",
        "shootdown ns/op",
        "transfer ns/op",
        "directory ns/op",
    ]);
    let mut entries = Vec::new();
    for &p in ps {
        let n = scaled_n(base_n, p);
        let topo = Topology::by_name(&topo_name, p, &timing).unwrap_or_else(|| {
            panic!("unknown --topology {topo_name:?} (expected flat, hier2, hier2x4)")
        });
        let r = run_gauss_profiled(p, p, &GaussConfig::with_n(n), Some(&topo));
        let per_op = |ns: u64| ns as f64 / r.ops.max(1) as f64;
        let sim_mips = r.ops as f64 / 1e6 / r.host_secs.max(1e-9);
        table.row(vec![
            p.to_string(),
            n.to_string(),
            format!("{:.3}", r.run.elapsed_ns as f64 / 1e6),
            format!("{sim_mips:.2}"),
            format!("{:.0}", per_op(r.prof.fault_ns)),
            format!("{:.0}", per_op(r.prof.shootdown_ns)),
            format!("{:.0}", per_op(r.prof.transfer_ns)),
            format!("{:.0}", per_op(r.prof.directory_ns)),
        ]);
        entries.push(Value::obj(vec![
            ("procs", Value::Num(p as f64)),
            ("n", Value::Num(n as f64)),
            ("elapsed_ns", Value::Num(r.run.elapsed_ns as f64)),
            ("ops", Value::Num(r.ops as f64)),
            ("sim_mips", Value::Num(sim_mips)),
            (
                "host_phase_ns_per_op",
                Value::obj(vec![
                    ("fault", Value::Num(per_op(r.prof.fault_ns))),
                    ("shootdown", Value::Num(per_op(r.prof.shootdown_ns))),
                    ("transfer", Value::Num(per_op(r.prof.transfer_ns))),
                    ("directory", Value::Num(per_op(r.prof.directory_ns))),
                ]),
            ),
        ]));
        eprintln!("  p={p} done");
    }
    println!("{table}");

    let body = Value::obj(vec![
        ("bench", Value::Str("scaled_speedup".to_string())),
        ("mode", Value::Str("procs_sweep".to_string())),
        ("topology", Value::Str(topo_name)),
        ("base_n", Value::Num(base_n as f64)),
        ("sweep", Value::Arr(entries)),
    ])
    .to_json();
    if let Some(dir) = std::path::Path::new(&out)
        .parent()
        .filter(|d| !d.as_os_str().is_empty())
    {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("creating {}: {e}", dir.display()));
    }
    std::fs::write(&out, body).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("artifact written to {out}");
}

fn main() {
    let args = Args::parse();
    let sink = TraceSink::from_args(&args);
    let base_n = args.get_or("--base-n", 128usize);
    let max_procs = args.get_or("--max-procs", 8usize);

    if let Some(list) = args.get::<String>("--procs") {
        let ps: Vec<usize> = list
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("--procs takes a comma-separated list, got {s:?}"))
            })
            .collect();
        run_procs_sweep(&args, &ps, base_n);
        platinum_bench::trace_out::finish(sink);
        return;
    }

    println!("fixed-size vs scaled-problem efficiency, Gaussian elimination on PLATINUM");
    println!("fixed: n = {base_n} at every p; scaled: n grows as p^(1/3) x {base_n} (constant work/processor)\n");

    let mut table = Table::new(vec![
        "p",
        "fixed n",
        "fixed eff %",
        "scaled n",
        "scaled eff %",
    ]);

    let fixed_cfg = GaussConfig::with_n(base_n);
    let t1_fixed = run_gauss(
        GaussStyle::Shared(PolicyKind::Platinum),
        max_procs,
        1,
        &fixed_cfg,
    )
    .elapsed_ns as f64;

    let mut ps = vec![1usize];
    let mut p = 2;
    while p <= max_procs {
        ps.push(p);
        p *= 2;
    }
    for &p in &ps {
        // Fixed-size efficiency: T1 / (p * Tp).
        let tp = run_gauss(
            GaussStyle::Shared(PolicyKind::Platinum),
            max_procs,
            p,
            &fixed_cfg,
        )
        .elapsed_ns as f64;
        let fixed_eff = t1_fixed / (p as f64 * tp) * 100.0;

        // Scaled: total work ~ n^3 grows with p, so n(p) = base_n * p^(1/3);
        // efficiency = T1(n(p)) scaled-work-rate vs Tp.
        let n_scaled = scaled_n(base_n, p);
        let scaled_cfg = GaussConfig::with_n(n_scaled);
        let tp_scaled = run_gauss(
            GaussStyle::Shared(PolicyKind::Platinum),
            max_procs,
            p,
            &scaled_cfg,
        )
        .elapsed_ns as f64;
        let t1_scaled = run_gauss(
            GaussStyle::Shared(PolicyKind::Platinum),
            max_procs,
            1,
            &scaled_cfg,
        )
        .elapsed_ns as f64;
        let scaled_eff = t1_scaled / (p as f64 * tp_scaled) * 100.0;

        table.row(vec![
            p.to_string(),
            base_n.to_string(),
            format!("{fixed_eff:.1}"),
            n_scaled.to_string(),
            format!("{scaled_eff:.1}"),
        ]);
        eprintln!("  p={p} done");
    }
    println!("{table}");
    println!(
        "scaled efficiency should decay more slowly than fixed-size efficiency:\n\
         growing problems keep the data-access granularity coarse (§4.1)."
    );
    platinum_bench::trace_out::finish(sink);
}
