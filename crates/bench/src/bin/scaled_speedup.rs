//! Scaled-problem speedup (the §4.1 / Gustafson discussion).
//!
//! "We believe, as do others [28, 14], that a major role of parallel
//! machines is to solve ever-larger problems rather than to solve
//! fixed-size problems in ever-shorter times. These larger problems will
//! allow the continued use of coarse granularity as systems are made
//! larger."
//!
//! This harness contrasts fixed-size speedup (Amdahl-style: the paper's
//! Figure 1 regime, where per-processor granularity shrinks as p grows)
//! with scaled speedup (Gustafson-style: the matrix grows with p so each
//! processor keeps the same share of rows), on Gaussian elimination under
//! PLATINUM. Scaled efficiency should hold up better — coarse granularity
//! is preserved.
//!
//! Usage:
//!   scaled_speedup [--base-n 128] [--max-procs 8]

use platinum_analysis::report::Table;
use platinum_apps::gauss::GaussConfig;
use platinum_apps::harness::{run_gauss, GaussStyle, PolicyKind};
use platinum_bench::{Args, TraceSink};

fn main() {
    let args = Args::parse();
    let sink = TraceSink::from_args(&args);
    let base_n = args.get_or("--base-n", 128usize);
    let max_procs = args.get_or("--max-procs", 8usize);

    println!("fixed-size vs scaled-problem efficiency, Gaussian elimination on PLATINUM");
    println!("fixed: n = {base_n} at every p; scaled: n grows as p^(1/3) x {base_n} (constant work/processor)\n");

    let mut table = Table::new(vec![
        "p",
        "fixed n",
        "fixed eff %",
        "scaled n",
        "scaled eff %",
    ]);

    let fixed_cfg = GaussConfig::with_n(base_n);
    let t1_fixed = run_gauss(
        GaussStyle::Shared(PolicyKind::Platinum),
        max_procs,
        1,
        &fixed_cfg,
    )
    .elapsed_ns as f64;

    let mut ps = vec![1usize];
    let mut p = 2;
    while p <= max_procs {
        ps.push(p);
        p *= 2;
    }
    for &p in &ps {
        // Fixed-size efficiency: T1 / (p * Tp).
        let tp = run_gauss(
            GaussStyle::Shared(PolicyKind::Platinum),
            max_procs,
            p,
            &fixed_cfg,
        )
        .elapsed_ns as f64;
        let fixed_eff = t1_fixed / (p as f64 * tp) * 100.0;

        // Scaled: total work ~ n^3 grows with p, so n(p) = base_n * p^(1/3);
        // efficiency = T1(n(p)) scaled-work-rate vs Tp.
        let n_scaled = ((base_n as f64) * (p as f64).powf(1.0 / 3.0)).round() as usize;
        let scaled_cfg = GaussConfig::with_n(n_scaled);
        let tp_scaled = run_gauss(
            GaussStyle::Shared(PolicyKind::Platinum),
            max_procs,
            p,
            &scaled_cfg,
        )
        .elapsed_ns as f64;
        let t1_scaled = run_gauss(
            GaussStyle::Shared(PolicyKind::Platinum),
            max_procs,
            1,
            &scaled_cfg,
        )
        .elapsed_ns as f64;
        let scaled_eff = t1_scaled / (p as f64 * tp_scaled) * 100.0;

        table.row(vec![
            p.to_string(),
            base_n.to_string(),
            format!("{fixed_eff:.1}"),
            n_scaled.to_string(),
            format!("{scaled_eff:.1}"),
        ]);
        eprintln!("  p={p} done");
    }
    println!("{table}");
    println!(
        "scaled efficiency should decay more slowly than fixed-size efficiency:\n\
         growing problems keep the data-access granularity coarse (§4.1)."
    );
    platinum_bench::trace_out::finish(sink);
}
