//! Chaos soak: run the three paper applications under randomized
//! deterministic fault plans and assert correctness and liveness.
//!
//! For each seed a [`FaultPlan::chaos`] plan injects transient memory
//! errors, dropped shootdown acks, failed block transfers, and refused
//! frame allocations at the given rate. Every application must still
//! produce its fault-free answer (Gauss checksum against the host
//! reference, mergesort's internal verification, a finite neural-net
//! error) and must finish within a watchdog timeout — the recovery
//! ladders are bounded by construction, so a hang is a bug, not bad luck.
//!
//! A process-global tracer records the whole soak; at the end every
//! injection kind that fired must be paired with at least one
//! fault→recovery span whose begin time precedes its end time.
//!
//! Usage:
//!   chaos_soak [--workload apps|kv] [--seeds 8] [--nodes 4] [--procs N]
//!              [--ppm 25000] [--timeout-secs 120] [--ptable PLACEMENT]
//!
//! `--workload apps` (default) soaks the three scientific applications.
//! `--workload kv` soaks the server tier's key-value store instead: a
//! fault-free run fixes the reference table audit, then every seed's
//! chaos run must reproduce that audit exactly — the table sweep both
//! asserts no slot is torn (a half-applied update breaks the value's
//! arithmetic progression) and checksums the contents, so a lost or
//! duplicated update diverges.
//!
//! `--ptable` selects the page-table placement for the kv workload
//! (default `replicated_on_fault`, so the soak exercises the dropped
//! ptable-invalidation fault site: replica invalidations piggyback on
//! shootdown rounds, and a dropped one walks the same retry ladder as a
//! dropped shootdown ack). Replica invalidation is timing-only, so the
//! audit must still match the fault-free reference bit for bit.
//!
//! Exits nonzero on a correctness failure, a hang, or a soak that
//! injected nothing (which would make the "survived chaos" claim vacuous).

use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use numa_machine::MachineConfig;
use platinum::trace::{EventKind, TraceConfig, TraceEvent};
use platinum::{FaultPlan, FaultSite, PtableConfig, PtablePlacement, StatsSnapshot};
use platinum_apps::gauss::{self, GaussConfig};
use platinum_apps::harness::{run_gauss_chaos, run_mergesort_chaos, run_neural_chaos};
use platinum_apps::mergesort::SortConfig;
use platinum_apps::neural::NeuralConfig;
use platinum_bench::Args;
use platinum_runtime::sim::SimBuilder;
use platinum_server::{run_open_loop, KvAudit, KvConfig, KvTable, TrafficConfig};

/// Runs `f` on a watchdog thread; exits the process if it does not
/// finish within `timeout`. Liveness is part of the contract: every
/// recovery ladder is bounded, so no fault plan may hang an application.
fn with_watchdog<R: Send + 'static>(
    what: &str,
    timeout: Duration,
    f: impl FnOnce() -> R + Send + 'static,
) -> R {
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(timeout) {
        Ok(r) => {
            handle.join().expect("application thread panicked");
            r
        }
        Err(_) => {
            eprintln!("LIVENESS FAILURE: {what} still running after {timeout:?}");
            std::process::exit(2);
        }
    }
}

fn injected(s: &StatsSnapshot) -> u64 {
    s.mem_errors + s.shootdown_timeouts + s.transfer_faults + s.alloc_faults + s.pt_inval_drops
}

/// One live open-loop KV run, optionally under a fault plan: boots a
/// fresh simulation, lays the table out, drives the full schedule
/// through the serialized driver (which retries requests whose fallible
/// accesses surface injected-fault residue), and sweeps the quiesced
/// table. The sweep is the correctness oracle: it asserts no slot is
/// torn and folds a checksum that any lost or duplicated update
/// diverges. Serialized driving keeps the final state a pure function
/// of the request stream, so the faulted audit must equal the
/// fault-free one bit for bit.
fn kv_soak_run(
    nodes: usize,
    procs: usize,
    traffic: &TrafficConfig,
    plan: Option<Arc<FaultPlan>>,
    ptable: PtableConfig,
) -> (KvAudit, StatsSnapshot, u64) {
    let mut mcfg = MachineConfig::with_nodes(nodes);
    mcfg.skew_window_ns = None;
    let mut b = SimBuilder::nodes(nodes).machine_config(mcfg).ptable(ptable);
    if let Some(plan) = plan {
        b = b.faults(plan);
    }
    let sim = b.build();
    let kcfg = KvConfig::for_keys(traffic.keys, 8);
    let page_words = sim.machine.cfg().words_per_page();
    let mut data = sim.alloc_zone(kcfg.table_pages(page_words));
    let mut locks = sim.alloc_zone(kcfg.lock_pages());
    let kv = KvTable::layout(kcfg, &mut data, &mut locks);
    let schedule = traffic.schedule(procs);
    let report = run_open_loop(&sim, &kv, procs, &schedule);
    let audit = sim
        .spawn(0, |ctx| {
            let mut attempts = 0u32;
            loop {
                match kv.verify(ctx) {
                    Ok(a) => return a,
                    Err(e) => {
                        attempts += 1;
                        assert!(attempts < 64, "audit sweep unrecoverable: {e}");
                    }
                }
            }
        })
        .expect("processor 0 free after the driver");
    (audit, sim.kernel.stats().snapshot(), report.retries)
}

/// The KV soak: a fault-free reference run fixes the expected audit,
/// then every seed replays the identical request stream under its own
/// chaos plan and must reproduce it. Returns
/// `(injected, recovery spans, failures)` for the shared trace check.
fn soak_kv(
    seeds: u64,
    nodes: usize,
    procs: usize,
    ppm: u32,
    timeout: Duration,
    traffic: &TrafficConfig,
    ptable: PtableConfig,
) -> (u64, u64, usize) {
    let reference = {
        let traffic = traffic.clone();
        with_watchdog("kv (fault-free reference)", timeout, move || {
            kv_soak_run(nodes, procs, &traffic, None, ptable)
        })
        .0
    };
    assert_eq!(
        reference.occupied, traffic.keys,
        "reference run lost keys — the workload itself is broken"
    );
    println!(
        "kv reference: {} keys, checksum {:#018x}\n",
        reference.occupied, reference.checksum
    );

    let mut total_injected = 0u64;
    let mut total_recovered = 0u64;
    let mut failures = 0usize;
    for seed in 0..seeds {
        let plan = Arc::new(FaultPlan::chaos(seed, ppm));
        let (audit, stats, retries) = {
            let (traffic, plan) = (traffic.clone(), Arc::clone(&plan));
            with_watchdog(&format!("kv (seed {seed})"), timeout, move || {
                kv_soak_run(nodes, procs, &traffic, Some(plan), ptable)
            })
        };
        let ok = audit.occupied == reference.occupied && audit.checksum == reference.checksum;
        if !ok {
            eprintln!(
                "CORRECTNESS FAILURE: kv seed {seed}: audit {}/{:#018x} != \
                 reference {}/{:#018x} (lost, duplicated, or torn update)",
                audit.occupied, audit.checksum, reference.occupied, reference.checksum
            );
            failures += 1;
        }
        let ki = injected(&stats);
        total_injected += ki;
        total_recovered += stats.fault_recoveries;
        println!(
            "seed {seed:>3}: kv {} ({ki} faults, {retries} request retries)",
            if ok { "ok" } else { "FAIL" },
        );
    }
    (total_injected, total_recovered, failures)
}

/// The original application soak: gauss, mergesort, and the neural net
/// under every seed's plan.
fn soak_apps(
    seeds: u64,
    nodes: usize,
    procs: usize,
    ppm: u32,
    timeout: Duration,
) -> (u64, u64, usize) {
    let gauss_cfg = GaussConfig::with_n(48);
    let gauss_ref = gauss::reference_checksum(&gauss_cfg);
    let sort_cfg = SortConfig::with_n(1 << 12);
    let neural_cfg = NeuralConfig::with_epochs(4);

    let mut total_injected = 0u64;
    let mut total_recovered = 0u64;
    let mut failures = 0usize;
    for seed in 0..seeds {
        let plan = Arc::new(FaultPlan::chaos(seed, ppm));

        let run = {
            let (cfg, plan) = (gauss_cfg.clone(), Arc::clone(&plan));
            with_watchdog(&format!("gauss (seed {seed})"), timeout, move || {
                run_gauss_chaos(nodes, procs, &cfg, plan)
            })
        };
        let gauss_ok = run.checksum == gauss_ref;
        if !gauss_ok {
            eprintln!(
                "CORRECTNESS FAILURE: gauss seed {seed}: checksum {:#x} != reference {gauss_ref:#x}",
                run.checksum
            );
            failures += 1;
        }
        let gi = injected(&run.kernel_stats);
        total_injected += gi;
        total_recovered += run.kernel_stats.fault_recoveries;

        // Mergesort verifies the sorted output internally (panics — and
        // fails the watchdog join — if any key is out of order or lost).
        let run = {
            let (cfg, plan) = (sort_cfg.clone(), Arc::clone(&plan));
            with_watchdog(&format!("mergesort (seed {seed})"), timeout, move || {
                run_mergesort_chaos(nodes, procs, &cfg, plan)
            })
        };
        let si = injected(&run.kernel_stats);
        total_injected += si;
        total_recovered += run.kernel_stats.fault_recoveries;

        let (run, err) = {
            let (cfg, plan) = (neural_cfg.clone(), Arc::clone(&plan));
            with_watchdog(&format!("neural (seed {seed})"), timeout, move || {
                run_neural_chaos(nodes, procs, &cfg, plan)
            })
        };
        if !err.is_finite() {
            eprintln!("CORRECTNESS FAILURE: neural seed {seed}: non-finite error {err}");
            failures += 1;
        }
        let ni = injected(&run.kernel_stats);
        total_injected += ni;
        total_recovered += run.kernel_stats.fault_recoveries;

        println!(
            "seed {seed:>3}: gauss {} ({gi} faults), mergesort ok ({si} faults), \
             neural err {err:.4} ({ni} faults)",
            if gauss_ok { "ok" } else { "FAIL" },
        );
    }
    (total_injected, total_recovered, failures)
}

fn main() {
    let args = Args::parse();
    let workload = args
        .get::<String>("--workload")
        .unwrap_or_else(|| "apps".to_string());
    let seeds = args.get_or("--seeds", 8u64);
    let nodes = args.get_or("--nodes", 4usize);
    let procs = args.get_or("--procs", nodes);
    let ppm = args.get_or("--ppm", 25_000u32);
    let timeout = Duration::from_secs(args.get_or("--timeout-secs", 120u64));

    // Install the process-global tracer before any machine boots so every
    // seed's kernel records into it; the span check at the end sees the
    // whole soak.
    let tracer = platinum::trace::install_global(TraceConfig::default());

    println!(
        "chaos soak ({workload}): {seeds} seeds, {nodes} nodes, {procs} procs, \
         {ppm} ppm per site, watchdog {timeout:?}\n"
    );

    let (total_injected, total_recovered, mut failures) = match workload.as_str() {
        "apps" => soak_apps(seeds, nodes, procs, ppm, timeout),
        "kv" => {
            // Small enough that every seed finishes in seconds on one
            // host core, big enough that each run takes thousands of
            // lock-protected multi-word updates through the fault sites.
            let traffic = TrafficConfig {
                keys: args.get_or("--kv-keys", 1u64 << 10),
                requests_per_proc: args.get_or("--kv-requests", 1024usize),
                mean_interarrival_ns: args.get_or("--kv-gap-ns", 10_000u64),
                ..TrafficConfig::default()
            };
            // Replicated page tables by default so the soak reaches the
            // dropped-ptable-invalidation site; --ptable centralized
            // recovers the pre-fabric configuration.
            let placement = args
                .get::<String>("--ptable")
                .map(|s| {
                    s.parse::<PtablePlacement>()
                        .unwrap_or_else(|e| panic!("--ptable: {e}"))
                })
                .unwrap_or(PtablePlacement::ReplicatedOnFault);
            let ptable = PtableConfig::with_placement(placement);
            soak_kv(seeds, nodes, procs, ppm, timeout, &traffic, ptable)
        }
        other => panic!("unknown workload {other:?} (expected apps or kv)"),
    };

    println!("\ninjected faults: {total_injected}, recovery spans: {total_recovered}");
    if total_injected == 0 {
        eprintln!("soak injected no faults — raise --ppm or --seeds; nothing was exercised");
        failures += 1;
    }

    // Every injection kind that fired must have produced at least one
    // fault→recovery span, and every span must be well-formed (its begin
    // vtime, carried in `arg`, precedes the recovery event's vtime). A
    // copy-page episode that saw both a read error and a transfer fault
    // is coded by whichever site failed first, so those two kinds accept
    // either code.
    let trace = tracer.snapshot();
    let recoveries: Vec<&TraceEvent> = trace.of_kind(EventKind::FaultRecovery).collect();
    for r in &recoveries {
        if r.arg > r.vtime {
            eprintln!(
                "MALFORMED SPAN: recovery at vtime {} begins at {} (page {:#x})",
                r.vtime, r.arg, r.page
            );
            failures += 1;
        }
    }
    let site_checks: [(EventKind, &[FaultSite]); 5] = [
        (
            EventKind::MemError,
            &[FaultSite::FrameRead, FaultSite::BlockTransfer],
        ),
        (EventKind::ShootdownTimeout, &[FaultSite::ShootdownAck]),
        (
            EventKind::TransferFault,
            &[FaultSite::FrameRead, FaultSite::BlockTransfer],
        ),
        (EventKind::AllocFault, &[FaultSite::FrameAlloc]),
        (EventKind::PtInvalDrop, &[FaultSite::PtableInval]),
    ];
    for (kind, sites) in site_checks {
        let fired = trace.count(kind);
        if fired == 0 {
            continue;
        }
        let spans = recoveries
            .iter()
            .filter(|r| sites.iter().any(|s| r.code == *s as u8))
            .count();
        if spans == 0 {
            eprintln!("UNRECOVERED SITE: {fired} {kind:?} events but no matching recovery span");
            failures += 1;
        } else {
            println!("site {kind:?}: {fired} injected, {spans} recovery spans");
        }
    }

    if failures > 0 {
        eprintln!("\nchaos soak FAILED ({failures} failures)");
        std::process::exit(1);
    }
    println!("\nchaos soak passed: every run correct and live under injection");
}
