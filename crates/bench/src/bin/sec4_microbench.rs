//! §4 basic-operation timings.
//!
//! Reproduces the paper's measured costs of the coherent-memory
//! mechanism on the 16-processor machine:
//!
//! * page-sized block transfer: ~1.11 ms,
//! * read miss replicating a non-modified page: 1.34-1.38 ms
//!   (kernel data local vs. remote),
//! * read miss replicating a modified page, one processor restricted:
//!   1.38-1.59 ms,
//! * write miss on a present+ page, one invalidation + one page freed:
//!   0.25-0.45 ms,
//! * incremental cost per additional interrupted processor: <= 17 us
//!   (~7 us IPI + ~10 us page free), versus ~55 us reported by
//!   Black et al. for the Mach shared-Pmap mechanism on an Encore
//!   Multimax (modelled by the `SharedPmapStall` comparator).

use numa_machine::{Machine, MachineConfig, Mem, ProcCore};
use platinum_analysis::report::Table;
use platinum_bench::micro::{vcost, MicroBench};
use platinum_bench::{Args, TraceSink};

fn main() {
    let args = Args::parse();
    let sink = TraceSink::from_args(&args);
    println!("Section 4: basic operation costs (16-node machine)\n");

    block_transfer();
    read_miss_non_modified();
    read_miss_modified();
    write_miss_present_plus();
    incremental_shootdown();
    platinum_bench::trace_out::finish(sink);
}

fn block_transfer() {
    let machine = Machine::new(MachineConfig {
        nodes: 2,
        skew_window_ns: None,
        ..MachineConfig::default()
    })
    .unwrap();
    machine.module(0).alloc_frame(0).unwrap();
    machine.module(1).alloc_frame(1).unwrap();
    let mut core = ProcCore::new(machine, 0, 0);
    let before = core.vtime();
    core.block_transfer(
        numa_machine::PhysPage::new(0, 0),
        numa_machine::PhysPage::new(1, 0),
    );
    let cost = core.vtime() - before;
    println!(
        "block transfer, 4 KB page:        {:>8.3} ms   (paper: ~1.11 ms)",
        cost as f64 / 1e6
    );
}

/// Read miss replicating a non-modified page. The kernel-data-local case
/// arranges the Cmap (space home) and Cpage metadata (first-touch home)
/// on the faulting node; the remote case homes both elsewhere.
fn read_miss_non_modified() {
    // Local kernel data: space 0 (home 0), first touch by processor 0,
    // then the data migrates away and ages past t1 so the re-read
    // replicates a non-modified (present+) page.
    let mb = MicroBench::new(false);
    let va = mb.va;
    {
        let mut c0 = mb.attach(0);
        let _ = c0.read(va); // present1 on node 0, cpage home 0
        c0.suspend();
        let mut c2 = mb.attach(2);
        c2.write(va, 7); // migrates to node 2 (invalidates node 0)
        c2.suspend();
        let mut c3 = mb.attach(3);
        c3.compute(20_000_000); // outside t1
        let _ = c3.read(va); // restrict (inactive writer) + replicate: present+
        c3.suspend();
        c0.resume();
        c0.compute(25_000_000);
        let (cost, v) = vcost(&mut c0, |c| c.read(va));
        assert_eq!(v, 7);
        println!(
            "read miss, non-modified, kernel data local:  {:>8.3} ms   (paper: 1.34 ms)",
            cost as f64 / 1e6
        );
    }

    // Remote kernel data: a second space (home 1), first touch by
    // processor 1, faulting processor 0.
    let mb = MicroBench::new(false);
    let space2 = mb.kernel.create_space(); // AsId 1 -> home 1
    let object = mb.kernel.create_object_homed(1, 1);
    let va = space2.map_anywhere(object, platinum::Rights::RW).unwrap();
    {
        let mut c1 = mb
            .kernel
            .attach(std::sync::Arc::clone(&space2), 1, 0)
            .unwrap();
        let _ = c1.read(va); // present1 on node 1, home 1
        c1.suspend();
        // Start well past the warmer's clock so the measurement does not
        // inherit residual bus occupancy from setup.
        let mut c0 = mb
            .kernel
            .attach(std::sync::Arc::clone(&space2), 0, 50_000_000)
            .unwrap();
        let (cost, _) = vcost(&mut c0, |c| c.read(va));
        println!(
            "read miss, non-modified, kernel data remote: {:>8.3} ms   (paper: 1.38 ms)",
            cost as f64 / 1e6
        );
    }
}

/// Read miss replicating a modified page: one live writer must be
/// interrupted and restricted to read-only access.
fn read_miss_modified() {
    let mb = MicroBench::new(false);
    let va = mb.va;
    let cost = mb.with_pollers(
        &[1],
        |_, ctx| ctx.write(va, 42),
        |ctx| {
            let (cost, v) = vcost(ctx, |c| c.read(va));
            assert_eq!(v, 42);
            cost
        },
    );
    println!(
        "read miss, modified, 1 writer restricted:    {:>8.3} ms   (paper: 1.38-1.59 ms)",
        cost as f64 / 1e6
    );
}

/// Write miss on a present+ page with one remote replica to invalidate
/// and free.
fn write_miss_present_plus() {
    let mb = MicroBench::new(false);
    let va = mb.va;
    let cost = mb.with_pollers(
        &[1],
        |_, ctx| {
            let _ = ctx.read(va); // replica on node 1
        },
        |ctx| {
            let _ = ctx.read(va); // own copy on node 0 -> present+
            ctx.compute(20_000_000); // age past t1 (avoid freezing)
            let (cost, _) = vcost(ctx, |c| c.write(va, 9));
            cost
        },
    );
    println!(
        "write miss, present+, 1 invalidation+free:   {:>8.3} ms   (paper: 0.25-0.45 ms)\n",
        cost as f64 / 1e6
    );
}

/// Incremental cost per additional interrupted processor, PLATINUM vs
/// the Mach-style shared-Pmap comparator.
fn incremental_shootdown() {
    println!("write miss on present+ with k live replica holders:");
    let measure = |mach: bool, k: usize| -> u64 {
        let mb = MicroBench::new(mach);
        let va = mb.va;
        let pollers: Vec<usize> = (1..=k).collect();
        mb.with_pollers(
            &pollers,
            |_, ctx| {
                let _ = ctx.read(va);
            },
            |ctx| {
                let _ = ctx.read(va);
                ctx.compute(20_000_000);
                let (cost, _) = vcost(ctx, |c| c.write(va, 1));
                cost
            },
        )
    };

    let ks = [1usize, 2, 4, 8, 15];
    let mut t = Table::new(vec![
        "k",
        "PLATINUM ms",
        "incr us/proc",
        "Mach-style ms",
        "incr us/proc",
    ]);
    let mut prev: Option<(usize, u64, u64)> = None;
    let mut first = (0u64, 0u64);
    let mut last = (0u64, 0u64);
    for &k in &ks {
        let plat = measure(false, k);
        let mach = measure(true, k);
        let (plat_incr, mach_incr) = match prev {
            None => ("-".to_string(), "-".to_string()),
            Some((pk, pp, pm)) => {
                let d = (k - pk) as f64 * 1e3;
                (
                    format!("{:.1}", (plat as f64 - pp as f64) / d),
                    format!("{:.1}", (mach as f64 - pm as f64) / d),
                )
            }
        };
        t.row(vec![
            k.to_string(),
            format!("{:.3}", plat as f64 / 1e6),
            plat_incr,
            format!("{:.3}", mach as f64 / 1e6),
            mach_incr,
        ]);
        if prev.is_none() {
            first = (plat, mach);
        }
        last = (plat, mach);
        prev = Some((k, plat, mach));
    }
    println!("{t}");
    let span = (ks[ks.len() - 1] - ks[0]) as f64 * 1e3;
    println!(
        "PLATINUM incremental cost per extra processor:   {:.1} us (paper: <= 17 us)",
        (last.0 as f64 - first.0 as f64) / span
    );
    println!(
        "Mach-style incremental cost per extra processor: {:.1} us (Black et al.: ~55 us)",
        (last.1 as f64 - first.1 as f64) / span
    );
}
