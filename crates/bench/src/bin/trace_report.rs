//! Replays the §4.2 frozen-page anecdote with the tracer attached and
//! prints the diagnosis the paper's post-mortem report made possible —
//! this time from the event timeline rather than aggregate counters.
//!
//! The run uses the accidental co-located layout (barrier words sharing
//! a page with the matrix-size variable) and the thawing kernel (t2 =
//! 1 s). The report shows, for the frozen page:
//!
//!   * the freeze itself (and how stale the page's invalidation history
//!     was when the policy pulled the trigger),
//!   * the remote-mapped faults piling up while the page stayed frozen —
//!     each one a remote reference in some processor's inner loop,
//!   * the defrost daemon's thaw ending the span.
//!
//! Usage:
//!   trace_report [--n 120] [--procs 8] [--trace out.json] [--json]
//!
//! `--trace` additionally writes the full Chrome JSON for Perfetto.
//! `--json` replaces the text report with a machine-readable JSON object
//! (elapsed_ns, event totals, hottest frozen page) so CI can diff fields
//! instead of scraping text.

use std::fmt::Write as _;

use platinum::trace::timeline::{frozen_spans, page_timeline};
use platinum::trace::{chrome, EventKind, TraceConfig};
use platinum_apps::gauss::GaussConfig;
use platinum_apps::harness::run_gauss_anecdote;
use platinum_bench::Args;

fn main() {
    let args = Args::parse();
    let n = args.get_or("--n", 120usize);
    let p = args.get_or("--procs", 8usize);
    let as_json = args.flag("--json");
    let tracer = platinum::trace::install_global(TraceConfig::default());

    if !as_json {
        println!("Section 4.2 anecdote under the tracer ({n}x{n} elimination, p={p})\n");
    }
    let cfg = GaussConfig::with_n(n);
    let run = run_gauss_anecdote(16.max(p), p, &cfg, true, 1_000_000_000);
    let trace = tracer.snapshot();

    // The diagnosis: the page with the longest frozen exposure.
    let mut frozen_pages: Vec<(u64, usize)> = trace
        .of_kind(EventKind::Freeze)
        .map(|e| e.page)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .map(|page| {
            let remote: usize = frozen_spans(&trace, page)
                .iter()
                .map(|s| s.remote_maps_while_frozen)
                .sum();
            (page, remote)
        })
        .collect();
    frozen_pages.sort_by_key(|&(_, remote)| std::cmp::Reverse(remote));

    if as_json {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"n\":{n},\"procs\":{p},\"elapsed_ns\":{},\
             \"events_traced\":{},\"events_dropped\":{},\"event_totals\":{{",
            run.elapsed_ns,
            trace.events.len(),
            trace.dropped,
        );
        let mut first = true;
        for kind in EventKind::ALL {
            let c = trace.count(kind);
            if c > 0 {
                if !first {
                    s.push(',');
                }
                first = false;
                let _ = write!(s, "\"{}\":{c}", kind.name());
            }
        }
        s.push('}');
        match frozen_pages.first() {
            Some(&(page, remote)) => {
                let _ = write!(
                    s,
                    ",\"hottest_frozen_page\":{{\"cpage\":{page},\
                     \"remote_maps_while_frozen\":{remote}}}"
                );
            }
            None => s.push_str(",\"hottest_frozen_page\":null"),
        }
        s.push('}');
        println!("{s}");
    } else {
        println!(
            "run: {:.1} ms, {} events traced ({} dropped)",
            run.elapsed_ns as f64 / 1e6,
            trace.events.len(),
            trace.dropped
        );
        println!(
            "{}\n",
            platinum_analysis::report::atc_summary(&run.run.merged_counters())
        );
        println!("event totals:");
        for kind in EventKind::ALL {
            let c = trace.count(kind);
            if c > 0 {
                println!("  {:<16} {:>8}", kind.name(), c);
            }
        }
        println!();

        match frozen_pages.first() {
            Some(&(page, remote)) => {
                println!(
                    "hottest frozen page: cpage {page} ({remote} remote-mapped faults while frozen)\n"
                );
                print!("{}", page_timeline(&trace, page));
                println!(
                    "\ndiagnosis: every remote-mapped fault above is a processor taking a remote\n\
                     reference in its inner loop because the page was frozen — the paper's\n\
                     bottleneck, visible directly on the timeline."
                );
            }
            None => println!("no page froze during this run (try a larger --procs)"),
        }
    }

    if let Some(path) = args.get::<String>("--trace") {
        let json = chrome::chrome_trace_string(&trace);
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        if !as_json {
            println!("\nchrome trace written to {path} (load at https://ui.perfetto.dev)");
        }
    }
}
