//! Figure 6: the recurrent-backpropagation simulator's speedup.
//!
//! §5.3: "Given the very fine-grain nature of the algorithm, PLATINUM
//! cannot use replication or migration to good advantage. The coherent
//! memory system quickly gives up and the data pages of the application
//! are frozen in place. The speedup curve is linear over the range
//! measured, but the extensive use of remote accesses limits the
//! contribution of each incremental processor to about 1/2 that of a
//! processor that makes only local memory references."
//!
//! Usage:
//!   fig6_neural [--epochs 40] [--max-procs 10]

use platinum_analysis::report::{ascii_chart, Series, Table};
use platinum_apps::harness::run_neural;
use platinum_apps::neural::NeuralConfig;
use platinum_bench::{Args, TraceSink};

fn main() {
    let args = Args::parse();
    let sink = TraceSink::from_args(&args);
    let max_procs = args.get_or("--max-procs", 10usize);
    let cfg = NeuralConfig::with_epochs(args.get_or("--epochs", 40usize));

    println!("Figure 6: recurrent backpropagation simulator (40 units, 16 patterns)");
    println!("paper: linear speedup, slope ~1/2 per incremental processor\n");

    let mut table = Table::new(vec![
        "p",
        "time ms",
        "speedup",
        "frozen pages",
        "remote frac",
    ]);
    let mut series = Series::new("recurrent backprop");
    let mut t1 = 0u64;
    let mut speedups = Vec::new();
    for p in 1..=max_procs {
        let (run, err) = run_neural(max_procs.max(p), p, &cfg);
        if p == 1 {
            t1 = run.elapsed_ns;
        }
        let s = t1 as f64 / run.elapsed_ns as f64;
        speedups.push((p as f64, s));
        series.push(p as f64, s);
        let counters = run.run.merged_counters();
        table.row(vec![
            p.to_string(),
            format!("{:.1}", run.elapsed_ns as f64 / 1e6),
            format!("{s:.2}"),
            run.kernel_stats.freezes.to_string(),
            format!("{:.2}", counters.remote_fraction()),
        ]);
        eprintln!("  p={p:>2} done (err {err:.2})");
    }
    println!("{table}");
    println!("{}", ascii_chart(&[series.clone()], 60, 14));
    if let Some(path) = args.get::<String>("--json") {
        let artifact = platinum_analysis::report::json::series_artifact("fig6_neural", &[series]);
        std::fs::write(&path, artifact).expect("write json artifact");
        eprintln!("wrote {path}");
    }

    // Least-squares slope of speedup vs p: the "contribution of each
    // incremental processor".
    let n = speedups.len() as f64;
    let sx: f64 = speedups.iter().map(|(x, _)| x).sum();
    let sy: f64 = speedups.iter().map(|(_, y)| y).sum();
    let sxx: f64 = speedups.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = speedups.iter().map(|(x, y)| x * y).sum();
    let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    println!("incremental-processor contribution (slope): {slope:.2}  (paper: ~0.5)");
    platinum_bench::trace_out::finish(sink);
}
