//! Figure 1: Gaussian elimination speedup vs. processors.
//!
//! Reproduces the paper's headline result (§1, §5.1): the speedup of the
//! simulated (integer) Gaussian elimination on an 800x800 matrix under
//! three programming systems. The paper reports 16-processor speedups of
//! 13.5 for PLATINUM coherent memory, 10.6 for the Uniform System
//! implementation, and 15.3 for the SMP message-passing implementation.
//!
//! Usage:
//!   fig1_gauss [--n 800] [--max-procs 16] [--quick]
//!
//! `--quick` runs a 400x400 matrix on {1,2,4,8,16} processors.

use platinum_analysis::report::{ascii_chart, Series, Table};
use platinum_apps::gauss::GaussConfig;
use platinum_apps::harness::{run_gauss, GaussStyle, PolicyKind};
use platinum_bench::{Args, TraceSink};

fn main() {
    let args = Args::parse();
    let sink = TraceSink::from_args(&args);
    let quick = args.flag("--quick");
    let n = args.get_or("--n", if quick { 400 } else { 800 });
    let max_procs = args.get_or("--max-procs", 16usize);
    let procs: Vec<usize> = if quick {
        [1usize, 2, 4, 8, 16]
            .into_iter()
            .filter(|&p| p <= max_procs)
            .collect()
    } else {
        (1..=max_procs).collect()
    };
    let cfg = GaussConfig::with_n(n);

    println!("Figure 1: Gaussian elimination ({n}x{n}), speedup vs processors");
    println!("paper targets at p=16: PLATINUM 13.5, Uniform System 10.6, SMP 15.3\n");

    let styles = [
        GaussStyle::Shared(PolicyKind::Platinum),
        GaussStyle::UniformSystem,
        GaussStyle::MessagePassing,
    ];

    let mut chart = Vec::new();
    let mut table = Table::new(vec![
        "p",
        "PLATINUM ms",
        "PLATINUM S",
        "UnifSys ms",
        "UnifSys S",
        "SMP ms",
        "SMP S",
    ]);

    // One serial baseline per style (styles differ in constant factors).
    let mut results: Vec<Vec<(usize, u64)>> = vec![Vec::new(); styles.len()];
    for (si, style) in styles.iter().enumerate() {
        let mut series = Series::new(style.name());
        let mut serial_ns = 0u64;
        let mut checksum = None;
        for &p in &procs {
            let run = run_gauss(*style, max_procs.max(p), p, &cfg);
            match checksum {
                None => checksum = Some(run.checksum),
                Some(c) => assert_eq!(c, run.checksum, "{} diverged at p={p}", style.name()),
            }
            if p == 1 {
                serial_ns = run.elapsed_ns;
            }
            let speedup = serial_ns as f64 / run.elapsed_ns as f64;
            series.push(p as f64, speedup);
            results[si].push((p, run.elapsed_ns));
            eprintln!(
                "  {:<26} p={p:>2}  {:>10.1} ms  speedup {:>5.2}",
                style.name(),
                run.elapsed_ns as f64 / 1e6,
                speedup
            );
        }
        chart.push(series);
    }

    for (i, &p) in procs.iter().enumerate() {
        let cell = |si: usize| {
            let (pp, t) = results[si][i];
            assert_eq!(pp, p);
            let s = results[si][0].1 as f64 / t as f64;
            (format!("{:.1}", t as f64 / 1e6), format!("{s:.2}"))
        };
        let (t0, s0) = cell(0);
        let (t1, s1) = cell(1);
        let (t2, s2) = cell(2);
        table.row(vec![p.to_string(), t0, s0, t1, s1, t2, s2]);
    }
    println!("{table}");
    println!("{}", ascii_chart(&chart, 60, 16));
    if let Some(path) = args.get::<String>("--json") {
        let artifact = platinum_analysis::report::json::series_artifact("fig1_gauss", &chart);
        std::fs::write(&path, artifact).expect("write json artifact");
        eprintln!("wrote {path}");
    }

    // The Uniform System's scatter storage makes its *serial* run ~4x
    // slower than the others'; self-normalized speedup hides that. Report
    // both normalizations (the paper's qualitative claim — transparent
    // coherent memory performs close to hand-tuned message passing and
    // far better than static placement — is about the absolute times).
    let best_serial = results.iter().map(|r| r[0].1).min().unwrap();
    println!(
        "{:<26} {:>12} {:>14} {:>18}",
        "system", "T(max p) ms", "self speedup", "vs best serial"
    );
    for (si, style) in styles.iter().enumerate() {
        let last = results[si].last().unwrap();
        let s = results[si][0].1 as f64 / last.1 as f64;
        let sb = best_serial as f64 / last.1 as f64;
        println!(
            "{:<26} {:>12.1} {:>14.2} {:>18.2}",
            style.name(),
            last.1 as f64 / 1e6,
            s,
            sb
        );
    }
    println!(
        "
paper (16 processors): PLATINUM 13.5, Uniform System 10.6, SMP 15.3"
    );
    platinum_bench::trace_out::finish(sink);
}
