//! Figure 5: merge sort speedup — PLATINUM/Butterfly Plus vs. a
//! Sequent-Symmetry-like UMA machine.
//!
//! §5.2: "The program shows better speedup running on the Butterfly Plus
//! under PLATINUM than on the Sequent Symmetry for the same size problem
//! on the same number of processors. We believe this is due to the small
//! cache size and write-through policy on the Sequent." Coherent pages
//! act as big, prefetching caches for the merge's linear scans; the
//! Sequent's 8 KB write-through caches keep nothing between phases.
//!
//! Usage:
//!   fig5_mergesort [--n 262144] [--max-procs 16]

use platinum_analysis::report::{ascii_chart, Series, Table};
use platinum_apps::harness::{run_mergesort_platinum, run_mergesort_uma};
use platinum_apps::mergesort::SortConfig;
use platinum_bench::{Args, TraceSink};

fn main() {
    let args = Args::parse();
    let sink = TraceSink::from_args(&args);
    let n = args.get_or("--n", 1usize << 18);
    let max_procs = args.get_or("--max-procs", 16usize);
    let procs: Vec<usize> = [1usize, 2, 4, 8, 16]
        .into_iter()
        .filter(|&p| p <= max_procs)
        .collect();
    let cfg = SortConfig::with_n(n);

    println!("Figure 5: merge sort ({n} keys), speedup vs processors");
    println!("paper: PLATINUM (Butterfly Plus) above the Sequent Symmetry throughout\n");

    let mut table = Table::new(vec![
        "p",
        "PLATINUM ms",
        "PLATINUM S",
        "Sequent ms",
        "Sequent S",
    ]);
    let mut plat_series = Series::new("PLATINUM / Butterfly Plus");
    let mut uma_series = Series::new("Sequent Symmetry (UMA, 8KB WT caches)");
    let (mut plat1, mut uma1) = (0u64, 0u64);
    for &p in &procs {
        let plat = run_mergesort_platinum(max_procs.max(p), p, &cfg);
        let uma = run_mergesort_uma(max_procs.max(p), p, &cfg);
        if p == 1 {
            plat1 = plat.elapsed_ns;
            uma1 = uma.elapsed_ns;
        }
        let ps = plat1 as f64 / plat.elapsed_ns as f64;
        let us = uma1 as f64 / uma.elapsed_ns as f64;
        plat_series.push(p as f64, ps);
        uma_series.push(p as f64, us);
        table.row(vec![
            p.to_string(),
            format!("{:.1}", plat.elapsed_ns as f64 / 1e6),
            format!("{ps:.2}"),
            format!("{:.1}", uma.elapsed_ns as f64 / 1e6),
            format!("{us:.2}"),
        ]);
        eprintln!("  p={p:>2} done");
    }
    println!("{table}");
    println!(
        "{}",
        ascii_chart(&[plat_series.clone(), uma_series.clone()], 60, 14)
    );
    if let Some(path) = args.get::<String>("--json") {
        let artifact = platinum_analysis::report::json::series_artifact(
            "fig5_mergesort",
            &[plat_series.clone(), uma_series.clone()],
        );
        std::fs::write(&path, artifact).expect("write json artifact");
        eprintln!("wrote {path}");
    }
    let pf = plat_series.final_y().unwrap_or(0.0);
    let uf = uma_series.final_y().unwrap_or(0.0);
    println!("final speedups: PLATINUM {pf:.2}, Sequent {uf:.2}");
    if pf > uf {
        println!("shape check PASSED: PLATINUM above the UMA comparator, as in the paper");
    } else {
        println!("shape check FAILED: expected PLATINUM above the UMA comparator");
    }
    platinum_bench::trace_out::finish(sink);
}
