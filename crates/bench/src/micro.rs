//! Orchestration for the §4 micro-benchmarks.
//!
//! The paper's basic-operation timings involve *live* target processors
//! that must be interrupted (restricting a writer's mapping, invalidating
//! replicas). [`MicroBench`] runs "poller" threads on a chosen set of
//! processors: each attaches a context, optionally touches the measured
//! page (to become a replica holder or the writer), and then services its
//! IPI doorbell in a loop until told to stop — a processor running user
//! code, as far as the shootdown mechanism is concerned.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use numa_machine::{Machine, MachineConfig, Mem, Va};
use platinum::{
    AddressSpace, Kernel, KernelConfig, PlatinumPolicy, Rights, ShootdownMode, UserCtx,
};

/// A booted 16-node machine + kernel + space + one mapped page, the §4
/// measurement fixture.
pub struct MicroBench {
    /// The kernel.
    pub kernel: Arc<Kernel>,
    /// The measurement address space.
    pub space: Arc<AddressSpace>,
    /// A mapped, read-write page.
    pub va: Va,
}

impl MicroBench {
    /// Boots the fixture with the paper's 16 processors and an optional
    /// Mach-style shootdown comparator.
    ///
    /// The skew window is disabled: micro-measurements want exact charges,
    /// not coupled clocks.
    pub fn new(mach_mode: bool) -> Self {
        Self::with_nodes(16, mach_mode)
    }

    /// Boots with an explicit node count.
    pub fn with_nodes(nodes: usize, mach_mode: bool) -> Self {
        let machine = Machine::new(MachineConfig {
            nodes,
            frames_per_node: 256,
            skew_window_ns: None,
            ..MachineConfig::default()
        })
        .expect("valid machine config");
        let mut cfg = KernelConfig::default();
        if mach_mode {
            cfg.shootdown = ShootdownMode::SharedPmapStall;
        }
        let kernel = Kernel::with_config(machine, Box::new(PlatinumPolicy::paper_default()), cfg);
        let space = kernel.create_space();
        let object = kernel.create_object(4);
        let va = space
            .map_anywhere(object, Rights::RW)
            .expect("fresh mapping");
        Self { kernel, space, va }
    }

    /// Attaches a context on `proc`.
    ///
    /// # Panics
    ///
    /// Panics if the processor is occupied.
    pub fn attach(&self, proc: usize) -> UserCtx {
        self.kernel
            .attach(Arc::clone(&self.space), proc, 0)
            .expect("processor free")
    }

    /// Runs `measured` on processor 0 while processors `pollers` run live
    /// polling loops. Each poller first executes `warm` (e.g. read the
    /// page to become a replica holder), then signals readiness; the
    /// measured closure starts only after every poller is ready.
    ///
    /// Returns the measured closure's result.
    pub fn with_pollers<T: Send>(
        &self,
        pollers: &[usize],
        warm: impl Fn(usize, &mut UserCtx) + Sync,
        measured: impl FnOnce(&mut UserCtx) -> T + Send,
    ) -> T {
        let stop = AtomicBool::new(false);
        let ready = AtomicUsize::new(0);
        let warm = &warm;
        let stop_ref = &stop;
        let ready_ref = &ready;
        std::thread::scope(|s| {
            for &p in pollers {
                s.spawn(move || {
                    let mut ctx = self.attach(p);
                    warm(p, &mut ctx);
                    ready_ref.fetch_add(1, Ordering::Release);
                    while !stop_ref.load(Ordering::Acquire) {
                        ctx.poll();
                        std::thread::yield_now();
                    }
                });
            }
            let mut ctx = self.attach(0);
            while ready.load(Ordering::Acquire) < pollers.len() {
                std::thread::yield_now();
            }
            let out = measured(&mut ctx);
            stop.store(true, Ordering::Release);
            out
        })
    }
}

/// Measures the virtual-time cost of `op` on `ctx`.
pub fn vcost<T>(ctx: &mut UserCtx, op: impl FnOnce(&mut UserCtx) -> T) -> (u64, T) {
    let before = ctx.vtime();
    let out = op(ctx);
    (ctx.vtime() - before, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_boots_and_measures() {
        let mb = MicroBench::new(false);
        let mut ctx = mb.attach(0);
        let (cost, _) = vcost(&mut ctx, |c| c.write(mb.va, 1));
        assert!(cost > 0, "a first write must cost protocol work");
    }

    #[test]
    fn pollers_enable_live_shootdowns() {
        let mb = MicroBench::with_nodes(4, false);
        // Processor 1 writes the page and stays live; processor 0's read
        // must restrict it via a real IPI.
        let cost = mb.with_pollers(
            &[1],
            |_, ctx| ctx.write(mb.va, 42),
            |ctx| {
                let (cost, v) = vcost(ctx, |c| c.read(mb.va));
                assert_eq!(v, 42);
                cost
            },
        );
        assert!(cost > 1_000_000, "read miss on modified: {cost} ns");
        assert_eq!(mb.kernel.stats().snapshot().ipis_sent, 1);
    }
}
