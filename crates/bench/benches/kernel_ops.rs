//! Criterion micro-benchmarks of the kernel's hot paths (host-time
//! performance of the simulator itself, complementing the virtual-time
//! measurements of `sec4_microbench`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

use numa_machine::{Machine, MachineConfig, Mem};
use platinum::trace::{TraceConfig, Tracer};
use platinum::{Kernel, Rights};

fn machine(nodes: usize) -> Arc<Machine> {
    Machine::new(MachineConfig {
        nodes,
        frames_per_node: 256,
        skew_window_ns: None,
        ..MachineConfig::default()
    })
    .unwrap()
}

fn bench_fast_path(c: &mut Criterion) {
    let kernel = Kernel::new(machine(2));
    let space = kernel.create_space();
    let object = kernel.create_object(1);
    let va = space.map_anywhere(object, Rights::RW).unwrap();
    let mut ctx = kernel.attach(space, 0, 0).unwrap();
    ctx.write(va, 1); // fault once; everything after is the fast path
    c.bench_function("fast_path_read_atc_hit", |b| {
        b.iter(|| std::hint::black_box(ctx.read(va)))
    });
    c.bench_function("fast_path_write_atc_hit", |b| b.iter(|| ctx.write(va, 2)));
    c.bench_function("fast_path_fetch_add", |b| {
        b.iter(|| std::hint::black_box(ctx.fetch_add(va, 1)))
    });
}

fn bench_block_ops(c: &mut Criterion) {
    let kernel = Kernel::new(machine(2));
    let space = kernel.create_space();
    let object = kernel.create_object(4);
    let va = space.map_anywhere(object, Rights::RW).unwrap();
    let mut ctx = kernel.attach(space, 0, 0).unwrap();
    let buf = vec![7u32; 1024];
    ctx.write_block(va, &buf);
    let mut out = vec![0u32; 1024];
    c.bench_function("read_block_1_page", |b| {
        b.iter(|| ctx.read_block(va, &mut out))
    });
    c.bench_function("write_block_1_page", |b| {
        b.iter(|| ctx.write_block(va, &buf))
    });
}

fn bench_fault_cycle(c: &mut Criterion) {
    // A full migrate-invalidate cycle per iteration: two contexts
    // alternate writes to the same page with the policy that always
    // migrates.
    let kernel = Kernel::with_policy(machine(2), Box::new(platinum::AlwaysReplicate));
    let space = kernel.create_space();
    let object = kernel.create_object(1);
    let va = space.map_anywhere(object, Rights::RW).unwrap();
    let mut a = kernel.attach(Arc::clone(&space), 0, 0).unwrap();
    let mut b_ctx = kernel.attach(space, 1, 0).unwrap();
    c.bench_function("migrate_pingpong_cycle", |bch| {
        bch.iter(|| {
            b_ctx.suspend();
            a.resume();
            a.write(va, 1);
            a.suspend();
            b_ctx.resume();
            b_ctx.write(va, 2);
        })
    });
}

fn bench_replication(c: &mut Criterion) {
    // Replicate + collapse per iteration: reader replicates a page, the
    // writer's next write invalidates the replica.
    let kernel = Kernel::new(machine(2));
    let space = kernel.create_space();
    let object = kernel.create_object(1);
    let va = space.map_anywhere(object, Rights::RW).unwrap();
    let mut w = kernel.attach(Arc::clone(&space), 0, 0).unwrap();
    let mut r = kernel.attach(space, 1, 0).unwrap();
    w.write(va, 0);
    c.bench_function("replicate_invalidate_cycle", |bch| {
        bch.iter(|| {
            w.suspend();
            r.resume();
            // Age the clock past t1 so the policy replicates.
            r.compute(20_000_000);
            std::hint::black_box(r.read(va));
            r.suspend();
            w.resume();
            w.compute(20_000_000);
            w.write(va, 1);
        })
    });
}

fn bench_trace_overhead(c: &mut Criterion) {
    // The migrate ping-pong again — the emit-heaviest path in the kernel
    // (fault begin/end, migrate, invalidation, shootdown bookkeeping per
    // iteration) — measured with no tracer installed and with one
    // attached and recording. The first bound is the cost tracing adds
    // when disabled (it must not be measurable); the second is the price
    // of turning it on.
    for (label, traced) in [
        ("migrate_cycle_trace_off", false),
        ("migrate_cycle_trace_on", true),
    ] {
        let kernel = Kernel::with_policy(machine(2), Box::new(platinum::AlwaysReplicate));
        if traced {
            let tracer = Tracer::new(TraceConfig::default());
            kernel.install_tracer(tracer);
        }
        let space = kernel.create_space();
        let object = kernel.create_object(1);
        let va = space.map_anywhere(object, Rights::RW).unwrap();
        let mut a = kernel.attach(Arc::clone(&space), 0, 0).unwrap();
        let mut b_ctx = kernel.attach(space, 1, 0).unwrap();
        c.bench_function(label, |bch| {
            bch.iter(|| {
                b_ctx.suspend();
                a.resume();
                a.write(va, 1);
                a.suspend();
                b_ctx.resume();
                b_ctx.write(va, 2);
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fast_path, bench_block_ops, bench_fault_cycle, bench_replication,
        bench_trace_overhead
}
criterion_main!(benches);
