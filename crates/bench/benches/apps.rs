//! Criterion end-to-end application benchmarks (host-time cost of whole
//! simulated runs; the virtual-time results live in the fig* binaries).

use criterion::{criterion_group, criterion_main, Criterion};

use platinum_apps::gauss::GaussConfig;
use platinum_apps::harness::{
    run_gauss, run_mergesort_platinum, run_mergesort_uma, run_neural, GaussStyle, PolicyKind,
};
use platinum_apps::mergesort::SortConfig;
use platinum_apps::neural::NeuralConfig;

fn bench_gauss(c: &mut Criterion) {
    let cfg = GaussConfig {
        n: 64,
        ..Default::default()
    };
    c.bench_function("gauss_64_p4_platinum", |b| {
        b.iter(|| run_gauss(GaussStyle::Shared(PolicyKind::Platinum), 4, 4, &cfg))
    });
    c.bench_function("gauss_64_p4_message_passing", |b| {
        b.iter(|| run_gauss(GaussStyle::MessagePassing, 4, 4, &cfg))
    });
}

fn bench_mergesort(c: &mut Criterion) {
    let cfg = SortConfig {
        n: 1 << 12,
        ..Default::default()
    };
    c.bench_function("mergesort_4k_p4_platinum", |b| {
        b.iter(|| run_mergesort_platinum(4, 4, &cfg))
    });
    c.bench_function("mergesort_4k_p4_uma", |b| {
        b.iter(|| run_mergesort_uma(4, 4, &cfg))
    });
}

fn bench_neural(c: &mut Criterion) {
    let cfg = NeuralConfig {
        epochs: 2,
        ..Default::default()
    };
    c.bench_function("neural_2epochs_p4", |b| b.iter(|| run_neural(4, 4, &cfg)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_gauss, bench_mergesort, bench_neural
}
criterion_main!(benches);
