//! The replayer: re-execute a recorded reference stream against any
//! placement policy.
//!
//! Replay reconstructs the capture machine (same node count, frame depth,
//! page size, zone layout), boots a kernel with the requested
//! [`PolicyKind`], and drives real per-processor threads through the
//! recorded op list *in exactly the recorded global order*: a shared
//! cursor names the next op; each thread executes its own ops and spins —
//! servicing shootdown IPIs — while it is another processor's turn. Real
//! threads are required because the protocol is: a shootdown initiator
//! blocks (in host time) until its targets ack, and the targets ack from
//! their cursor-wait loops.
//!
//! Each op's post-execution virtual time is published in a side array so
//! that [`Op::AdvanceDep`] release edges can read the *replayed* producer
//! time — under a slow policy the consumer inherits the slow release
//! time, exactly as the application's synchronization would behave.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use numa_machine::{MachineConfig, Mem, Topology};
use platinum::{PolicyKind, PtableConfig, StatsSnapshot, UserCtx};
use platinum_runtime::measure::{RunStats, WorkerStats};
use platinum_runtime::sim::{Sim, SimBuilder};

use crate::format::{Op, Phase, RefTrace};

/// One replayed phase: the label it was recorded under plus the replay's
/// per-worker clocks and access counters.
#[derive(Clone, Debug)]
pub struct PhaseOutcome {
    /// The phase label from the trace.
    pub label: String,
    /// Replay statistics, same shape as a live run's.
    pub stats: RunStats,
}

impl PhaseOutcome {
    /// The phase's execution time: maximum final virtual time.
    pub fn elapsed_ns(&self) -> u64 {
        self.stats.elapsed_ns()
    }
}

/// The outcome of replaying a whole trace under one policy.
#[derive(Clone, Debug)]
pub struct ReplayOutcome {
    /// The policy the trace was replayed against.
    pub policy: PolicyKind,
    /// Per-phase outcomes, in trace order.
    pub phases: Vec<PhaseOutcome>,
    /// Kernel protocol counters accumulated across all phases.
    pub kernel: StatsSnapshot,
}

impl ReplayOutcome {
    /// The last phase's execution time — the measured region by harness
    /// convention. Zero for an empty trace.
    pub fn measured_elapsed_ns(&self) -> u64 {
        self.phases.last().map(|p| p.elapsed_ns()).unwrap_or(0)
    }

    /// Fraction of charged references served by remote memory, summed
    /// over the last (measured) phase's workers.
    pub fn measured_remote_ratio(&self) -> f64 {
        let Some(last) = self.phases.last() else {
            return 0.0;
        };
        let c = last.stats.merged_counters();
        let remote = c.remote_reads + c.remote_writes + c.remote_atomics;
        let total = c.total_refs();
        if total == 0 {
            0.0
        } else {
            remote as f64 / total as f64
        }
    }
}

/// Boots a replay machine matching the capture machine.
fn boot(
    trace: &RefTrace,
    kind: PolicyKind,
    topo: Option<&Topology>,
    ptable: Option<PtableConfig>,
) -> Sim {
    let mut mc = MachineConfig::with_nodes(trace.nodes);
    mc.frames_per_node = trace.frames_per_node;
    mc.page_shift = trace.page_shift;
    mc.skew_window_ns = None;
    let mut b = SimBuilder::nodes(trace.nodes)
        .machine_config(mc)
        .policy_kind(kind);
    if let Some(t) = topo {
        b = b.topology(t.clone());
    }
    if let Some(p) = ptable {
        b = b.ptable(p);
    }
    let sim = b.build();
    for &pages in &trace.zones {
        sim.alloc_zone(pages as usize);
    }
    sim
}

/// Replays `trace` against `kind` and returns the outcome. The replay is
/// deterministic: same trace + same policy → identical virtual times and
/// counters, and a PLATINUM replay of a fresh capture reproduces the
/// capture run bit for bit.
pub fn replay(trace: &RefTrace, kind: PolicyKind) -> ReplayOutcome {
    replay_with(trace, kind, None)
}

/// [`replay`] on an explicit machine description, which must match the
/// capture machine's (the trace does not record it): the bit-identity
/// guarantee holds per-topology, not across them.
pub fn replay_with(trace: &RefTrace, kind: PolicyKind, topo: Option<&Topology>) -> ReplayOutcome {
    replay_cfg(trace, kind, topo, None)
}

/// [`replay_with`], additionally booting the replay kernel with an
/// explicit page-table fabric configuration. The trace format does not
/// record the ptable config; for bit-identity against the capture run,
/// pass the same config the capture machine used (`None` means the
/// centralized default, matching [`replay`]). Any config yields a
/// deterministic replay — same trace + policy + config → identical
/// virtual times — because walk charging and replica population happen
/// at gate-ordered points.
pub fn replay_cfg(
    trace: &RefTrace,
    kind: PolicyKind,
    topo: Option<&Topology>,
    ptable: Option<PtableConfig>,
) -> ReplayOutcome {
    let sim = boot(trace, kind, topo, ptable);
    let phases = trace
        .phases
        .iter()
        .map(|ph| replay_phase(&sim, ph))
        .collect();
    ReplayOutcome {
        policy: kind,
        phases,
        kernel: sim.kernel.stats().snapshot(),
    }
}

/// Like [`replay`], but hands the op stream between worker threads once
/// per maximal same-processor *run* instead of once per op.
///
/// The recorded global order is load-bearing — it *is* the interleaving
/// the capture gate picked, and the protocol state (page rights, freezes,
/// bus buckets) evolves along it — so a replay may never reorder ops
/// across processors. What it may do is cut the synchronization bill for
/// honoring that order: the op list is sharded into runs of consecutive
/// ops from one processor, the shared cursor advances once per run, and a
/// post-time is published only for the seqs some [`Op::AdvanceDep`]
/// actually reads (everything else synchronizes through the cursor's
/// release/acquire chain). Per-op cross-core cursor traffic — the
/// dominant host cost of replaying long private sweeps — collapses to
/// one handoff per run, and block ops reuse one per-worker buffer.
///
/// The outcome is bit-identical to [`replay`]: same virtual times, same
/// counters, same kernel statistics (the tests and the `policy_matrix`
/// self-check assert it).
pub fn replay_par(trace: &RefTrace, kind: PolicyKind) -> ReplayOutcome {
    replay_par_with(trace, kind, None)
}

/// [`replay_par`] on an explicit machine description (see
/// [`replay_with`]).
pub fn replay_par_with(
    trace: &RefTrace,
    kind: PolicyKind,
    topo: Option<&Topology>,
) -> ReplayOutcome {
    replay_par_cfg(trace, kind, topo, None)
}

/// [`replay_par_with`] with an explicit page-table fabric configuration
/// (see [`replay_cfg`]).
pub fn replay_par_cfg(
    trace: &RefTrace,
    kind: PolicyKind,
    topo: Option<&Topology>,
    ptable: Option<PtableConfig>,
) -> ReplayOutcome {
    let sim = boot(trace, kind, topo, ptable);
    let phases = trace
        .phases
        .iter()
        .map(|ph| replay_phase_par(&sim, ph))
        .collect();
    ReplayOutcome {
        policy: kind,
        phases,
        kernel: sim.kernel.stats().snapshot(),
    }
}

/// Replays `trace` under each policy in `kinds` concurrently — one
/// independent replay machine per host thread — and returns the outcomes
/// in `kinds` order. Policies are mutually independent, so a policy
/// tournament scales with host cores; each individual replay uses
/// [`replay_par`] and is bit-identical to its serial counterpart.
pub fn replay_many(trace: &RefTrace, kinds: &[PolicyKind]) -> Vec<ReplayOutcome> {
    replay_many_with(trace, kinds, None)
}

/// [`replay_many`] on an explicit machine description (see
/// [`replay_with`]).
pub fn replay_many_with(
    trace: &RefTrace,
    kinds: &[PolicyKind],
    topo: Option<&Topology>,
) -> Vec<ReplayOutcome> {
    let mut out: Vec<Option<ReplayOutcome>> = Vec::new();
    out.resize_with(kinds.len(), || None);
    std::thread::scope(|s| {
        for (&kind, slot) in kinds.iter().zip(out.iter_mut()) {
            s.spawn(move || {
                *slot = Some(replay_par_with(trace, kind, topo));
            });
        }
    });
    out.into_iter()
        .map(|o| o.expect("replay thread completed"))
        .collect()
}

/// The precomputed shard plan for one phase's parallel replay.
struct ParSchedule {
    /// Half-open `(start, end)` spans of consecutive same-processor ops.
    /// A `Detach` always terminates its run.
    runs: Vec<(usize, usize)>,
    /// Bit `i` set ⇔ some `AdvanceDep` in the phase reads op `i`'s
    /// post-time, so the executing worker must publish it.
    needed: Vec<u64>,
}

impl ParSchedule {
    fn build(ph: &Phase) -> Self {
        let ops = &ph.ops;
        let mut needed = vec![0u64; ops.len().div_ceil(64)];
        for r in ops {
            if let Op::AdvanceDep { seq } = r.op {
                let s = seq as usize;
                if s < ops.len() {
                    needed[s / 64] |= 1 << (s % 64);
                }
            }
        }
        let mut runs = Vec::new();
        let mut start = 0;
        for i in 0..ops.len() {
            let split = i + 1 == ops.len()
                || ops[i + 1].proc != ops[i].proc
                || matches!(ops[i].op, Op::Detach);
            if split {
                runs.push((start, i + 1));
                start = i + 1;
            }
        }
        ParSchedule { runs, needed }
    }

    fn is_needed(&self, i: usize) -> bool {
        self.needed[i / 64] >> (i % 64) & 1 == 1
    }
}

fn replay_phase_par(sim: &Sim, ph: &Phase) -> PhaseOutcome {
    let sched = ParSchedule::build(ph);
    let cursor = AtomicUsize::new(0);
    let post: Vec<AtomicU64> = (0..ph.ops.len()).map(|_| AtomicU64::new(0)).collect();
    let mut out: Vec<Option<WorkerStats>> = Vec::new();
    out.resize_with(ph.workers, || None);
    std::thread::scope(|s| {
        let cursor = &cursor;
        let post = &post;
        let sched = &sched;
        for (p, slot) in out.iter_mut().enumerate() {
            s.spawn(move || {
                *slot = replay_worker_par(sim, ph, sched, p, cursor, post);
            });
        }
    });
    let workers: Vec<WorkerStats> = out
        .into_iter()
        .map(|w| w.expect("replay worker reached its Detach op"))
        .collect();
    PhaseOutcome {
        label: ph.label.clone(),
        stats: RunStats { workers },
    }
}

/// Drives processor `p` through its runs of the phase's op list, one
/// cursor handoff per run. Returns once the worker's `Detach` executed.
fn replay_worker_par(
    sim: &Sim,
    ph: &Phase,
    sched: &ParSchedule,
    p: usize,
    cursor: &AtomicUsize,
    post: &[AtomicU64],
) -> Option<WorkerStats> {
    let ops = &ph.ops;
    let mut ctx: Option<UserCtx> = None;
    let mut stats = None;
    let mut block_buf: Vec<u32> = Vec::new();
    loop {
        // Wait for the cursor to reach one of our runs, acking shootdowns
        // (we may be a target of the running op's initiator) meanwhile.
        let r = {
            let mut spins = 0u32;
            loop {
                let r = cursor.load(Ordering::Acquire);
                if r >= sched.runs.len() {
                    // Defensive: a malformed trace may omit our Detach.
                    return stats;
                }
                if ops[sched.runs[r].0].proc as usize == p {
                    break r;
                }
                if let Some(c) = ctx.as_mut() {
                    c.service_ipis();
                }
                std::hint::spin_loop();
                spins = spins.wrapping_add(1);
                if spins.is_multiple_of(64) {
                    std::thread::yield_now();
                }
            }
        };
        let (start, end) = sched.runs[r];
        for i in start..end {
            match ops[i].op {
                Op::Attach => {
                    ctx = Some(
                        sim.attach(p)
                            .expect("replay worker claims a free processor"),
                    );
                }
                Op::Detach => {
                    let mut c = ctx.take().expect("Detach follows Attach");
                    c.service_ipis();
                    stats = Some(WorkerStats {
                        proc: p,
                        vtime_ns: c.vtime(),
                        counters: c.counters(),
                    });
                    if sched.is_needed(i) {
                        post[i].store(c.vtime(), Ordering::Relaxed);
                    }
                    drop(c);
                    cursor.store(r + 1, Ordering::Release);
                    return stats;
                }
                op => {
                    let c = ctx.as_mut().expect("ops follow Attach");
                    exec(c, op, post, &mut block_buf);
                }
            }
            if sched.is_needed(i) {
                let v = ctx.as_ref().map(|c| c.vtime()).unwrap_or(0);
                post[i].store(v, Ordering::Relaxed);
            }
        }
        cursor.store(r + 1, Ordering::Release);
    }
}

fn replay_phase(sim: &Sim, ph: &Phase) -> PhaseOutcome {
    let cursor = AtomicUsize::new(0);
    let post: Vec<AtomicU64> = (0..ph.ops.len()).map(|_| AtomicU64::new(0)).collect();
    let mut out: Vec<Option<WorkerStats>> = Vec::new();
    out.resize_with(ph.workers, || None);
    std::thread::scope(|s| {
        let cursor = &cursor;
        let post = &post;
        for (p, slot) in out.iter_mut().enumerate() {
            s.spawn(move || {
                *slot = replay_worker(sim, ph, p, cursor, post);
            });
        }
    });
    let workers: Vec<WorkerStats> = out
        .into_iter()
        .map(|w| w.expect("replay worker reached its Detach op"))
        .collect();
    PhaseOutcome {
        label: ph.label.clone(),
        stats: RunStats { workers },
    }
}

/// Drives processor `p` through its share of the phase's op list.
/// Returns once the worker's `Detach` op has executed.
fn replay_worker(
    sim: &Sim,
    ph: &Phase,
    p: usize,
    cursor: &AtomicUsize,
    post: &[AtomicU64],
) -> Option<WorkerStats> {
    let ops = &ph.ops;
    let mut ctx: Option<UserCtx> = None;
    let mut stats = None;
    let mut block_buf: Vec<u32> = Vec::new();
    loop {
        // Wait for the cursor to reach one of our ops, acking shootdowns
        // (we may be a target of the current op's initiator) meanwhile.
        let i = {
            let mut spins = 0u32;
            loop {
                let i = cursor.load(Ordering::Acquire);
                if i >= ops.len() {
                    // Defensive: a malformed trace may omit our Detach.
                    return stats;
                }
                if ops[i].proc as usize == p {
                    break i;
                }
                if let Some(c) = ctx.as_mut() {
                    c.service_ipis();
                }
                std::hint::spin_loop();
                spins = spins.wrapping_add(1);
                if spins.is_multiple_of(64) {
                    std::thread::yield_now();
                }
            }
        };
        match ops[i].op {
            Op::Attach => {
                ctx = Some(
                    sim.attach(p)
                        .expect("replay worker claims a free processor"),
                );
            }
            Op::Detach => {
                let mut c = ctx.take().expect("Detach follows Attach");
                c.service_ipis();
                stats = Some(WorkerStats {
                    proc: p,
                    vtime_ns: c.vtime(),
                    counters: c.counters(),
                });
                post[i].store(c.vtime(), Ordering::Relaxed);
                drop(c);
                cursor.store(i + 1, Ordering::Release);
                return stats;
            }
            op => {
                let c = ctx.as_mut().expect("ops follow Attach");
                exec(c, op, post, &mut block_buf);
            }
        }
        let v = ctx.as_ref().map(|c| c.vtime()).unwrap_or(0);
        post[i].store(v, Ordering::Relaxed);
        cursor.store(i + 1, Ordering::Release);
    }
}

/// Executes one recorded op against the replay kernel. Values were not
/// recorded (the protocol's behaviour and charges are value-independent),
/// so writes store zero and atomics add zero; block ops borrow the
/// worker's reusable scratch buffer instead of allocating per op.
fn exec(ctx: &mut UserCtx, op: Op, post: &[AtomicU64], block_buf: &mut Vec<u32>) {
    match op {
        Op::Read { va } => {
            ctx.read(va);
        }
        Op::Write { va } => ctx.write(va, 0),
        Op::ReadSpin { va } => {
            ctx.read_spin(va);
        }
        Op::Atomic { va } => {
            ctx.fetch_add(va, 0);
        }
        Op::ReadBlock { va, words } => {
            block_buf.clear();
            block_buf.resize(words as usize, 0);
            ctx.read_block(va, block_buf);
        }
        Op::WriteBlock { va, words } => {
            block_buf.clear();
            block_buf.resize(words as usize, 0);
            ctx.write_block(va, block_buf);
        }
        Op::Compute { ns } => ctx.compute(ns),
        Op::AdvanceDep { seq } => {
            let t = post[seq as usize].load(Ordering::Acquire);
            ctx.advance_to(t);
        }
        Op::AdvanceAbs { t } => ctx.advance_to(t),
        Op::SetVtime { t } => ctx.set_vtime(t),
        Op::Poll => ctx.poll(),
        Op::BeginWait => ctx.begin_wait(),
        Op::EndWait => ctx.end_wait(),
        Op::TraceLock { va, acquire } => ctx.trace_lock(va, acquire),
        Op::Attach | Op::Detach => unreachable!("handled by the worker loop"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Capture;
    use platinum_runtime::sync::{Barrier, SpinLock};

    /// A small hand-written workload exercising every op kind the
    /// recorder emits: private sweeps, a contended lock + shared counter
    /// (spin reads, atomics, advance_to release edges), a barrier, block
    /// transfers, and compute charges.
    fn capture_mini(nodes: usize) -> (crate::RefTrace, RunStats, StatsSnapshot) {
        let mut cap = Capture::new(nodes);
        let sync = cap.alloc_zone(1);
        let data = cap.alloc_zone(4);
        let lock_va = sync.base();
        let barrier_count_va = sync.base() + 32;
        let barrier_gen_va = sync.base() + 36;
        let counter_va = sync.base() + 64;
        let base = data.base();
        let n = nodes;
        let (_r, live) = cap.run_phase("mini", n, move |i, ctx| {
            let lock = SpinLock::new(lock_va);
            let barrier = Barrier::new(barrier_count_va, barrier_gen_va, n as u32);
            // Private sweep: first-touch placement, charged reads/writes.
            for k in 0..64u64 {
                ctx.write(base + (i as u64) * 1024 + 4 * k, (k as u32) * 3 + 1);
                ctx.read(base + (i as u64) * 1024 + 4 * k);
            }
            ctx.compute(5_000);
            barrier.wait(ctx);
            // Contended critical section: the lock word freezes, spin
            // reads and release edges land in the trace.
            for _ in 0..16 {
                lock.acquire(ctx);
                let v = ctx.fetch_add(counter_va, 1);
                ctx.write(base + 4096 + 4 * u64::from(v % 32), v);
                lock.release(ctx);
                ctx.compute(1_000);
            }
            barrier.wait(ctx);
            // Block transfer from a shared region.
            let mut buf = vec![0u32; 128];
            ctx.read_block(base + 4096, &mut buf);
            ctx.write_block(base + 8192 + (i as u64) * 512, &buf);
            ctx.fetch_add(counter_va, 0)
        });
        let stats = cap.stats_snapshot();
        (cap.finish(), live, stats)
    }

    #[test]
    fn same_policy_replay_is_bit_identical() {
        let (trace, live, live_kernel) = capture_mini(3);
        assert!(trace.total_ops() > 0);
        let out = replay(&trace, PolicyKind::Platinum);
        assert_eq!(out.phases.len(), 1);
        let replayed = &out.phases[0].stats;
        for (a, b) in live.workers.iter().zip(&replayed.workers) {
            assert_eq!(a.proc, b.proc);
            assert_eq!(a.vtime_ns, b.vtime_ns, "proc {} vtime drifted", a.proc);
            assert_eq!(a.counters, b.counters, "proc {} counters drifted", a.proc);
        }
        assert_eq!(
            trace.phases[0].final_vtimes,
            replayed
                .workers
                .iter()
                .map(|w| w.vtime_ns)
                .collect::<Vec<_>>()
        );
        assert_eq!(out.kernel, live_kernel, "kernel protocol counters drifted");
    }

    fn assert_same_outcome(a: &ReplayOutcome, b: &ReplayOutcome) {
        assert_eq!(a.policy, b.policy);
        assert_eq!(a.phases.len(), b.phases.len());
        for (pa, pb) in a.phases.iter().zip(&b.phases) {
            assert_eq!(pa.label, pb.label);
            for (wa, wb) in pa.stats.workers.iter().zip(&pb.stats.workers) {
                assert_eq!(wa.proc, wb.proc);
                assert_eq!(wa.vtime_ns, wb.vtime_ns, "proc {} vtime drifted", wa.proc);
                assert_eq!(
                    wa.counters, wb.counters,
                    "proc {} counters drifted",
                    wa.proc
                );
            }
        }
        assert_eq!(a.kernel, b.kernel, "kernel protocol counters drifted");
    }

    #[test]
    fn parallel_replay_is_bit_identical_to_serial_and_live() {
        let (trace, live, live_kernel) = capture_mini(3);
        let par = replay_par(&trace, PolicyKind::Platinum);
        let serial = replay(&trace, PolicyKind::Platinum);
        assert_same_outcome(&par, &serial);
        for (a, b) in live.workers.iter().zip(&par.phases[0].stats.workers) {
            assert_eq!(a.vtime_ns, b.vtime_ns, "proc {} vtime drifted", a.proc);
            assert_eq!(a.counters, b.counters, "proc {} counters drifted", a.proc);
        }
        assert_eq!(par.kernel, live_kernel);
        // Off-policy replays shard identically: the run plan depends only
        // on the trace, never on the policy under test.
        for kind in [PolicyKind::RemoteAlways, PolicyKind::MigrateOnly] {
            assert_same_outcome(&replay_par(&trace, kind), &replay(&trace, kind));
        }
    }

    #[test]
    fn replay_many_matches_individual_replays() {
        let (trace, _, _) = capture_mini(2);
        let kinds = [
            PolicyKind::Platinum,
            PolicyKind::LocalFirstTouch,
            PolicyKind::RemoteAlways,
        ];
        let many = replay_many(&trace, &kinds);
        assert_eq!(many.len(), kinds.len());
        for (kind, out) in kinds.iter().zip(&many) {
            assert_same_outcome(out, &replay(&trace, *kind));
        }
    }

    #[test]
    fn replay_survives_serialization_round_trip() {
        let (trace, live, _) = capture_mini(2);
        let mut buf = Vec::new();
        trace.write_to(&mut buf).unwrap();
        let back = crate::RefTrace::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(trace, back);
        let out = replay(&back, PolicyKind::Platinum);
        assert_eq!(out.phases[0].stats.elapsed_ns(), live.elapsed_ns());
    }

    #[test]
    fn other_policies_replay_to_completion() {
        let (trace, live, _) = capture_mini(2);
        for kind in [
            PolicyKind::MigrateOnly,
            PolicyKind::ReplicateOnly,
            PolicyKind::LocalFirstTouch,
            PolicyKind::RemoteAlways,
        ] {
            let out = replay(&trace, kind);
            assert!(out.measured_elapsed_ns() > 0, "{kind:?} produced no time");
            // Same reference stream: the modelled computation comes from
            // the trace alone, so it is policy-invariant (reference
            // counters are not — fault-path page copies charge refs too).
            let c = out.phases[0].stats.merged_counters();
            let l = live.merged_counters();
            assert_eq!(c.compute_ns, l.compute_ns, "{kind:?} lost compute ops");
        }
        // Elapsed time can legitimately go either way on this
        // lock-dominated workload (the §4.2 anecdote: freezing the lock
        // page hurts PLATINUM), but off-node static placement must serve
        // a larger share of references remotely than the coherent policy.
        let remote = replay(&trace, PolicyKind::RemoteAlways);
        let plat = replay(&trace, PolicyKind::Platinum);
        assert!(
            remote.measured_remote_ratio() > plat.measured_remote_ratio(),
            "remote-always was not more remote: {} <= {}",
            remote.measured_remote_ratio(),
            plat.measured_remote_ratio()
        );
    }
}
