//! The reference-trace binary format.
//!
//! A [`RefTrace`] is self-contained: machine essentials (nodes, frames,
//! page size), the allocation-zone sequence (so replay reproduces the
//! virtual-address layout without the application), and one totally
//! ordered op list per phase. Serialization is a hand-rolled LEB128
//! varint encoding — compact, dependency-free, endian-independent.

use std::io::{self, Read, Write};

/// Magic bytes opening every trace file.
pub const MAGIC: &[u8; 4] = b"PLRT";
/// Format version written and accepted by this build.
pub const VERSION: u32 = 1;

/// One recorded memory operation. Virtual addresses are the application's
/// own; word counts parameterize block transfers; `AdvanceDep`/`AdvanceAbs`
/// encode synchronization release edges (see the crate docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// The processor attached to the kernel (virtual clock at 0).
    Attach,
    /// The processor detached; its clock and counters were collected.
    Detach,
    /// A charged 32-bit read.
    Read {
        /// Virtual address.
        va: u64,
    },
    /// A charged 32-bit write.
    Write {
        /// Virtual address.
        va: u64,
    },
    /// An uncharged spin read (one recorded op per loop iteration — the
    /// interleaving of spin reads is protocol-relevant).
    ReadSpin {
        /// Virtual address.
        va: u64,
    },
    /// An atomic read-modify-write (fetch-add, compare-exchange and swap
    /// charge identically, so one kind covers all three).
    Atomic {
        /// Virtual address.
        va: u64,
    },
    /// A batched block read of `words` consecutive words.
    ReadBlock {
        /// Starting virtual address.
        va: u64,
        /// Word count.
        words: u64,
    },
    /// A batched block write of `words` consecutive words.
    WriteBlock {
        /// Starting virtual address.
        va: u64,
        /// Word count.
        words: u64,
    },
    /// `ns` nanoseconds of modelled computation.
    Compute {
        /// Nanoseconds charged.
        ns: u64,
    },
    /// `advance_to` whose target time was produced by the op at global
    /// sequence number `seq`: replay advances to *that op's replayed*
    /// post-time, propagating the replay policy's timing through the
    /// synchronization graph.
    AdvanceDep {
        /// Global sequence number of the producing op within the phase.
        seq: u64,
    },
    /// `advance_to` an absolute captured time (no producing op matched).
    AdvanceAbs {
        /// Captured target time, ns.
        t: u64,
    },
    /// `set_vtime` to an absolute captured time.
    SetVtime {
        /// Captured clock value, ns.
        t: u64,
    },
    /// A `poll` kernel entry (IPI service + defrost opportunity).
    Poll,
    /// Entering a spin wait (clock freezes).
    BeginWait,
    /// Leaving a spin wait.
    EndWait,
    /// Synchronization instrumentation: lock acquired/released at `va`.
    TraceLock {
        /// The lock word's virtual address.
        va: u64,
        /// `true` = acquire, `false` = release.
        acquire: bool,
    },
}

/// One op with the processor that executed it. The position within the
/// phase's `ops` vector is the op's global sequence number.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Rec {
    /// Executing processor.
    pub proc: u8,
    /// The operation.
    pub op: Op,
}

/// One recorded phase: an `n`-worker parallel region between barriers of
/// the capturing harness (attach → ops → detach per worker).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Phase {
    /// Human-readable phase label ("init", "measured", ...).
    pub label: String,
    /// Worker (processor) count.
    pub workers: usize,
    /// Each worker's final virtual time in the capture run, ns. Replay
    /// under the same policy must reproduce these bit for bit.
    pub final_vtimes: Vec<u64>,
    /// The totally ordered op stream.
    pub ops: Vec<Rec>,
}

/// A complete recorded run: machine shape, allocation layout, phases.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RefTrace {
    /// Nodes (processor + memory module pairs) on the capture machine.
    pub nodes: usize,
    /// Physical frames per memory module.
    pub frames_per_node: usize,
    /// Page size, log2 bytes.
    pub page_shift: u32,
    /// Page counts of the `alloc_zone` calls, in order — replaying the
    /// sequence reproduces the virtual-address layout exactly.
    pub zones: Vec<u64>,
    /// The recorded phases, in execution order. The last phase is the
    /// measured region by harness convention.
    pub phases: Vec<Phase>,
}

impl RefTrace {
    /// Total op count across phases.
    pub fn total_ops(&self) -> usize {
        self.phases.iter().map(|p| p.ops.len()).sum()
    }

    /// Serializes to `w`.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(MAGIC)?;
        put_u64(w, u64::from(VERSION))?;
        put_u64(w, self.nodes as u64)?;
        put_u64(w, self.frames_per_node as u64)?;
        put_u64(w, u64::from(self.page_shift))?;
        put_u64(w, self.zones.len() as u64)?;
        for &z in &self.zones {
            put_u64(w, z)?;
        }
        put_u64(w, self.phases.len() as u64)?;
        for phase in &self.phases {
            put_u64(w, phase.label.len() as u64)?;
            w.write_all(phase.label.as_bytes())?;
            put_u64(w, phase.workers as u64)?;
            for &v in &phase.final_vtimes {
                put_u64(w, v)?;
            }
            put_u64(w, phase.ops.len() as u64)?;
            for rec in &phase.ops {
                put_rec(w, rec)?;
            }
        }
        Ok(())
    }

    /// Deserializes from `r`, validating magic and version.
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<Self> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(bad("not a reference trace (bad magic)"));
        }
        let version = get_u64(r)?;
        if version != u64::from(VERSION) {
            return Err(bad(&format!("unsupported trace version {version}")));
        }
        let nodes = get_u64(r)? as usize;
        let frames_per_node = get_u64(r)? as usize;
        let page_shift = get_u64(r)? as u32;
        let nzones = get_u64(r)? as usize;
        let mut zones = Vec::with_capacity(nzones.min(1 << 20));
        for _ in 0..nzones {
            zones.push(get_u64(r)?);
        }
        let nphases = get_u64(r)? as usize;
        let mut phases = Vec::with_capacity(nphases.min(1 << 10));
        for _ in 0..nphases {
            let label_len = get_u64(r)? as usize;
            if label_len > 1 << 16 {
                return Err(bad("phase label too long"));
            }
            let mut label = vec![0u8; label_len];
            r.read_exact(&mut label)?;
            let label = String::from_utf8(label).map_err(|_| bad("phase label is not UTF-8"))?;
            let workers = get_u64(r)? as usize;
            if workers > 64 {
                return Err(bad("worker count exceeds the 64-processor limit"));
            }
            let mut final_vtimes = Vec::with_capacity(workers);
            for _ in 0..workers {
                final_vtimes.push(get_u64(r)?);
            }
            let nops = get_u64(r)? as usize;
            let mut ops = Vec::with_capacity(nops.min(1 << 24));
            for _ in 0..nops {
                ops.push(get_rec(r)?);
            }
            phases.push(Phase {
                label,
                workers,
                final_vtimes,
                ops,
            });
        }
        Ok(Self {
            nodes,
            frames_per_node,
            page_shift,
            zones,
            phases,
        })
    }

    /// Writes the trace to `path` (buffered).
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> io::Result<()> {
        let mut w = io::BufWriter::new(std::fs::File::create(path)?);
        self.write_to(&mut w)?;
        w.flush()
    }

    /// Reads a trace from `path` (buffered).
    pub fn load(path: impl AsRef<std::path::Path>) -> io::Result<Self> {
        let mut r = io::BufReader::new(std::fs::File::open(path)?);
        Self::read_from(&mut r)
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// LEB128 unsigned varint.
fn put_u64<W: Write>(w: &mut W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn get_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        if shift >= 63 && byte[0] > 1 {
            return Err(bad("varint overflows u64"));
        }
        v |= u64::from(byte[0] & 0x7f) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

// Op tags (one byte each; TraceLock folds `acquire` into the tag).
const T_ATTACH: u8 = 0;
const T_DETACH: u8 = 1;
const T_READ: u8 = 2;
const T_WRITE: u8 = 3;
const T_READ_SPIN: u8 = 4;
const T_ATOMIC: u8 = 5;
const T_READ_BLOCK: u8 = 6;
const T_WRITE_BLOCK: u8 = 7;
const T_COMPUTE: u8 = 8;
const T_ADVANCE_DEP: u8 = 9;
const T_ADVANCE_ABS: u8 = 10;
const T_SET_VTIME: u8 = 11;
const T_POLL: u8 = 12;
const T_BEGIN_WAIT: u8 = 13;
const T_END_WAIT: u8 = 14;
const T_LOCK_ACQUIRE: u8 = 15;
const T_LOCK_RELEASE: u8 = 16;

fn put_rec<W: Write>(w: &mut W, rec: &Rec) -> io::Result<()> {
    let (tag, a, b): (u8, Option<u64>, Option<u64>) = match rec.op {
        Op::Attach => (T_ATTACH, None, None),
        Op::Detach => (T_DETACH, None, None),
        Op::Read { va } => (T_READ, Some(va), None),
        Op::Write { va } => (T_WRITE, Some(va), None),
        Op::ReadSpin { va } => (T_READ_SPIN, Some(va), None),
        Op::Atomic { va } => (T_ATOMIC, Some(va), None),
        Op::ReadBlock { va, words } => (T_READ_BLOCK, Some(va), Some(words)),
        Op::WriteBlock { va, words } => (T_WRITE_BLOCK, Some(va), Some(words)),
        Op::Compute { ns } => (T_COMPUTE, Some(ns), None),
        Op::AdvanceDep { seq } => (T_ADVANCE_DEP, Some(seq), None),
        Op::AdvanceAbs { t } => (T_ADVANCE_ABS, Some(t), None),
        Op::SetVtime { t } => (T_SET_VTIME, Some(t), None),
        Op::Poll => (T_POLL, None, None),
        Op::BeginWait => (T_BEGIN_WAIT, None, None),
        Op::EndWait => (T_END_WAIT, None, None),
        Op::TraceLock { va, acquire: true } => (T_LOCK_ACQUIRE, Some(va), None),
        Op::TraceLock { va, acquire: false } => (T_LOCK_RELEASE, Some(va), None),
    };
    w.write_all(&[tag, rec.proc])?;
    if let Some(a) = a {
        put_u64(w, a)?;
    }
    if let Some(b) = b {
        put_u64(w, b)?;
    }
    Ok(())
}

fn get_rec<R: Read>(r: &mut R) -> io::Result<Rec> {
    let mut head = [0u8; 2];
    r.read_exact(&mut head)?;
    let [tag, proc] = head;
    let op = match tag {
        T_ATTACH => Op::Attach,
        T_DETACH => Op::Detach,
        T_READ => Op::Read { va: get_u64(r)? },
        T_WRITE => Op::Write { va: get_u64(r)? },
        T_READ_SPIN => Op::ReadSpin { va: get_u64(r)? },
        T_ATOMIC => Op::Atomic { va: get_u64(r)? },
        T_READ_BLOCK => Op::ReadBlock {
            va: get_u64(r)?,
            words: get_u64(r)?,
        },
        T_WRITE_BLOCK => Op::WriteBlock {
            va: get_u64(r)?,
            words: get_u64(r)?,
        },
        T_COMPUTE => Op::Compute { ns: get_u64(r)? },
        T_ADVANCE_DEP => Op::AdvanceDep { seq: get_u64(r)? },
        T_ADVANCE_ABS => Op::AdvanceAbs { t: get_u64(r)? },
        T_SET_VTIME => Op::SetVtime { t: get_u64(r)? },
        T_POLL => Op::Poll,
        T_BEGIN_WAIT => Op::BeginWait,
        T_END_WAIT => Op::EndWait,
        T_LOCK_ACQUIRE => Op::TraceLock {
            va: get_u64(r)?,
            acquire: true,
        },
        T_LOCK_RELEASE => Op::TraceLock {
            va: get_u64(r)?,
            acquire: false,
        },
        other => return Err(bad(&format!("unknown op tag {other}"))),
    };
    Ok(Rec { proc, op })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RefTrace {
        RefTrace {
            nodes: 4,
            frames_per_node: 4096,
            page_shift: 12,
            zones: vec![3, 1, 17],
            phases: vec![
                Phase {
                    label: "init".into(),
                    workers: 2,
                    final_vtimes: vec![12_345, u64::MAX - 1],
                    ops: vec![
                        Rec {
                            proc: 0,
                            op: Op::Attach,
                        },
                        Rec {
                            proc: 1,
                            op: Op::Attach,
                        },
                        Rec {
                            proc: 0,
                            op: Op::Write { va: 0x1000 },
                        },
                        Rec {
                            proc: 1,
                            op: Op::ReadBlock {
                                va: 0x2000,
                                words: 1024,
                            },
                        },
                        Rec {
                            proc: 0,
                            op: Op::TraceLock {
                                va: 0x44,
                                acquire: true,
                            },
                        },
                        Rec {
                            proc: 0,
                            op: Op::AdvanceDep { seq: 2 },
                        },
                        Rec {
                            proc: 1,
                            op: Op::AdvanceAbs { t: 99_999 },
                        },
                        Rec {
                            proc: 0,
                            op: Op::Detach,
                        },
                        Rec {
                            proc: 1,
                            op: Op::Detach,
                        },
                    ],
                },
                Phase {
                    label: "measured".into(),
                    workers: 1,
                    final_vtimes: vec![7],
                    ops: vec![
                        Rec {
                            proc: 3,
                            op: Op::Attach,
                        },
                        Rec {
                            proc: 3,
                            op: Op::Compute { ns: 1 << 40 },
                        },
                        Rec {
                            proc: 3,
                            op: Op::Detach,
                        },
                    ],
                },
            ],
        }
    }

    #[test]
    fn round_trips_bytes() {
        let t = sample();
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let back = RefTrace::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let t = sample();
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        buf[0] = b'X';
        assert!(RefTrace::read_from(&mut buf.as_slice()).is_err());
        let mut buf2 = Vec::new();
        t.write_to(&mut buf2).unwrap();
        buf2[4] = 99; // version varint
        assert!(RefTrace::read_from(&mut buf2.as_slice()).is_err());
    }

    #[test]
    fn varint_extremes() {
        for v in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            let mut buf = Vec::new();
            put_u64(&mut buf, v).unwrap();
            assert_eq!(get_u64(&mut buf.as_slice()).unwrap(), v);
        }
    }

    #[test]
    fn truncated_input_errors() {
        let t = sample();
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(RefTrace::read_from(&mut buf.as_slice()).is_err());
    }
}
