//! The recorder: run an application once and write its reference stream
//! down.
//!
//! [`Capture`] boots a PLATINUM simulation whose memory interface is
//! wrapped by [`RecordingCtx`]: every [`Mem`] call first wins the global
//! FIFO [`Gate`](crate::gate::Gate), then executes against the real
//! kernel, then appends one [`Rec`] to the phase's totally ordered op
//! list. Serialization makes the recorded order *the* execution order, so
//! replaying the list op by op reproduces the run exactly (see the crate
//! docs for the argument).
//!
//! While a worker waits for the gate it services incoming shootdown IPIs
//! ([`platinum::UserCtx::service_ipis`]) and nothing else — the gate
//! holder may be blocked on that worker's ack, but any other kernel
//! activity (clock ticks, defrost) would perturb the schedule being
//! recorded.

use std::collections::HashMap;
use std::sync::Arc;

use numa_machine::{MachineConfig, Mem, Topology, Va};
use parking_lot::Mutex;
use platinum::{Kernel, PolicyKind, PtableConfig, StatsSnapshot, UserCtx};
use platinum_runtime::measure::{RunStats, WorkerStats};
use platinum_runtime::sim::{Sim, SimBuilder};
use platinum_runtime::zones::Zone;

use crate::format::{Op, Phase, Rec, RefTrace};
use crate::gate::Gate;

/// The release-time map is bounded: one entry per recorded op would grow
/// without limit on long runs, and only *recent* post-times ever match an
/// `advance_to` target (synchronization edges are short). On overflow the
/// map is cleared; affected edges fall back to [`Op::AdvanceAbs`].
const VTIME_MAP_CAP: usize = 1 << 22;

/// Per-phase recording state shared by all workers.
#[derive(Default)]
struct PhaseState {
    gate: Gate,
    ops: Mutex<Vec<Rec>>,
    /// post-vtime → global sequence number of the op that produced it
    /// (last writer wins), consulted by `advance_to` to emit release
    /// edges as dependencies.
    vtime_seqs: Mutex<HashMap<u64, u64>>,
}

impl PhaseState {
    /// Appends an op and indexes its post-execution virtual time. Must be
    /// called while holding the gate.
    fn push(&self, proc: u8, op: Op, post_vtime: u64) {
        let seq = {
            let mut ops = self.ops.lock();
            ops.push(Rec { proc, op });
            (ops.len() - 1) as u64
        };
        let mut map = self.vtime_seqs.lock();
        if map.len() >= VTIME_MAP_CAP {
            map.clear();
        }
        map.insert(post_vtime, seq);
    }
}

/// A recording session: a booted PLATINUM simulation plus the trace being
/// accumulated. Allocate zones, run phases (each phase's closure receives
/// a [`RecordingCtx`] in place of a [`UserCtx`]), then [`Capture::finish`]
/// to obtain the [`RefTrace`].
///
/// The capture run doubles as the *live* PLATINUM measurement: phase
/// results carry real [`RunStats`], and a same-policy replay of the
/// finished trace must reproduce them bit for bit.
pub struct Capture {
    sim: Sim,
    zones: Vec<u64>,
    phases: Vec<Phase>,
}

impl Capture {
    /// Boots a `nodes`-node capture machine: PLATINUM policy, 4096 frames
    /// per node, virtual-clock skew window disabled (serialized execution
    /// needs no throttle, and replay uses the same setting).
    pub fn new(nodes: usize) -> Self {
        Self::on_topology(nodes, None)
    }

    /// Like [`Capture::new`] on an explicit machine description. The
    /// trace format does not record the topology — a replay must be
    /// handed the same one (`replay_with`) for its virtual times to
    /// mean anything; with `None` the machine is the flat Butterfly and
    /// plain `replay` matches.
    pub fn on_topology(nodes: usize, topo: Option<&Topology>) -> Self {
        Self::on_config(nodes, topo, None)
    }

    /// Like [`Capture::on_topology`] with an explicit translation-fabric
    /// configuration. As with the topology, the trace format does not
    /// record the ptable config — a replay must be handed the same one
    /// (`replay_cfg`) for bit-identity to hold; `None` boots the default
    /// centralized placement and `replay_with` matches.
    pub fn on_config(nodes: usize, topo: Option<&Topology>, ptable: Option<PtableConfig>) -> Self {
        let mut mc = MachineConfig::with_nodes(nodes);
        mc.frames_per_node = 4096;
        mc.skew_window_ns = None;
        let mut b = SimBuilder::nodes(nodes)
            .machine_config(mc)
            .policy_kind(PolicyKind::Platinum);
        if let Some(t) = topo {
            b = b.topology(t.clone());
        }
        if let Some(p) = ptable {
            b = b.ptable(p);
        }
        let sim = b.build();
        Self {
            sim,
            zones: Vec::new(),
            phases: Vec::new(),
        }
    }

    /// The underlying simulation (for unrecorded work such as checksum
    /// verification — run it *after* snapshotting any statistics).
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// The capture kernel.
    pub fn kernel(&self) -> &Arc<Kernel> {
        &self.sim.kernel
    }

    /// Snapshot of the capture kernel's protocol counters (freezes,
    /// replications, ...). Take it before any unrecorded verification
    /// work if the numbers are to be compared against a replay.
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        self.sim.kernel.stats().snapshot()
    }

    /// Allocates a page-aligned zone and records its size so replay can
    /// reproduce the virtual-address layout. Zone allocation is pure
    /// bookkeeping (frames are faulted in lazily), so the call sequence —
    /// not its interleaving with phases — is what matters.
    pub fn alloc_zone(&mut self, pages: usize) -> Zone {
        self.zones.push(pages as u64);
        self.sim.alloc_zone(pages)
    }

    /// Runs `f(worker_index, ctx)` on processors `0..n`, recording every
    /// memory operation, and appends the resulting op list as a phase.
    /// Returns the workers' results and their *live* run statistics.
    pub fn run_phase<F, R>(&mut self, label: &str, n: usize, f: F) -> (Vec<R>, RunStats)
    where
        F: Fn(usize, &mut RecordingCtx) -> R + Sync,
        R: Send,
    {
        let st = PhaseState::default();
        let kernel = &self.sim.kernel;
        let space = &self.sim.space;
        let mut out: Vec<Option<(R, WorkerStats)>> = Vec::new();
        out.resize_with(n, || None);
        std::thread::scope(|s| {
            let st = &st;
            let f = &f;
            for (p, slot) in out.iter_mut().enumerate() {
                s.spawn(move || {
                    let ctx = {
                        let _g = st.gate.lock(|| {});
                        let ctx = kernel
                            .attach(Arc::clone(space), p, 0)
                            .expect("recording worker claims a free processor");
                        st.push(p as u8, Op::Attach, ctx.vtime());
                        ctx
                    };
                    let mut rctx = RecordingCtx { ctx, st };
                    let r = f(p, &mut rctx);
                    let RecordingCtx { ctx: mut ctx2, .. } = rctx;
                    let stats = {
                        let _g = st.gate.lock(|| ctx2.service_ipis());
                        let stats = WorkerStats {
                            proc: p,
                            vtime_ns: ctx2.vtime(),
                            counters: ctx2.counters(),
                        };
                        st.push(p as u8, Op::Detach, ctx2.vtime());
                        drop(ctx2);
                        stats
                    };
                    *slot = Some((r, stats));
                });
            }
        });
        let mut results = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        for slot in out {
            let (r, w) = slot.expect("recording worker completed");
            results.push(r);
            workers.push(w);
        }
        self.phases.push(Phase {
            label: label.to_string(),
            workers: n,
            final_vtimes: workers.iter().map(|w| w.vtime_ns).collect(),
            ops: st.ops.into_inner(),
        });
        (results, RunStats { workers })
    }

    /// Seals the recording into a self-contained [`RefTrace`].
    pub fn finish(self) -> RefTrace {
        let cfg = self.sim.machine.cfg();
        RefTrace {
            nodes: cfg.nodes,
            frames_per_node: cfg.frames_per_node,
            page_shift: cfg.page_shift,
            zones: self.zones,
            phases: self.phases,
        }
    }
}

/// A [`UserCtx`] wrapped for recording: implements [`Mem`] by winning the
/// phase's global gate, executing the real operation, and appending it to
/// the op list. Application code written against `Mem` (including the
/// runtime's locks, barriers and event counts) records itself unchanged.
pub struct RecordingCtx<'a> {
    ctx: UserCtx,
    st: &'a PhaseState,
}

impl RecordingCtx<'_> {
    /// The wrapped kernel context (read-only; going around the recorder
    /// for mutation would leave holes in the trace).
    pub fn inner(&self) -> &UserCtx {
        &self.ctx
    }

    /// Gate → execute → record. The split borrow (gate on `st`, executor
    /// on `ctx`) lets waiting service IPIs targeted at this processor.
    fn op<R>(&mut self, op: Op, exec: impl FnOnce(&mut UserCtx) -> R) -> R {
        let st = self.st;
        let ctx = &mut self.ctx;
        let _g = st.gate.lock(|| ctx.service_ipis());
        let r = exec(ctx);
        st.push(ctx.proc_id() as u8, op, ctx.vtime());
        r
    }
}

impl Mem for RecordingCtx<'_> {
    fn proc_id(&self) -> usize {
        self.ctx.proc_id()
    }

    fn nprocs(&self) -> usize {
        self.ctx.nprocs()
    }

    fn vtime(&self) -> u64 {
        self.ctx.vtime()
    }

    fn advance_to(&mut self, t: u64) {
        let st = self.st;
        let ctx = &mut self.ctx;
        let _g = st.gate.lock(|| ctx.service_ipis());
        // Release edge: if some recorded op produced exactly this time
        // (a lock release, an event-count advance), record the dependency
        // so replay under another policy propagates *that policy's* time.
        let dep = st.vtime_seqs.lock().get(&t).copied();
        let op = match dep {
            Some(seq) => Op::AdvanceDep { seq },
            None => Op::AdvanceAbs { t },
        };
        ctx.advance_to(t);
        st.push(ctx.proc_id() as u8, op, ctx.vtime());
    }

    fn set_vtime(&mut self, t: u64) {
        self.op(Op::SetVtime { t }, |c| c.set_vtime(t));
    }

    fn compute(&mut self, ns: u64) {
        self.op(Op::Compute { ns }, |c| c.compute(ns));
    }

    fn read(&mut self, va: Va) -> u32 {
        self.op(Op::Read { va }, |c| c.read(va))
    }

    fn write(&mut self, va: Va, val: u32) {
        self.op(Op::Write { va }, |c| c.write(va, val));
    }

    fn read_spin(&mut self, va: Va) -> u32 {
        self.op(Op::ReadSpin { va }, |c| c.read_spin(va))
    }

    fn fetch_add(&mut self, va: Va, delta: u32) -> u32 {
        self.op(Op::Atomic { va }, |c| c.fetch_add(va, delta))
    }

    fn compare_exchange(&mut self, va: Va, current: u32, new: u32) -> Result<u32, u32> {
        self.op(Op::Atomic { va }, |c| c.compare_exchange(va, current, new))
    }

    fn swap(&mut self, va: Va, val: u32) -> u32 {
        self.op(Op::Atomic { va }, |c| c.swap(va, val))
    }

    fn poll(&mut self) {
        self.op(Op::Poll, |c| c.poll());
    }

    fn begin_wait(&mut self) {
        self.op(Op::BeginWait, |c| c.begin_wait());
    }

    fn end_wait(&mut self) {
        self.op(Op::EndWait, |c| c.end_wait());
    }

    fn trace_lock(&mut self, va: Va, acquire: bool) {
        self.op(Op::TraceLock { va, acquire }, |c| c.trace_lock(va, acquire));
    }

    fn read_block(&mut self, va: Va, dst: &mut [u32]) {
        let words = dst.len() as u64;
        self.op(Op::ReadBlock { va, words }, |c| c.read_block(va, dst));
    }

    fn write_block(&mut self, va: Va, src: &[u32]) {
        let words = src.len() as u64;
        self.op(Op::WriteBlock { va, words }, |c| c.write_block(va, src));
    }
}
