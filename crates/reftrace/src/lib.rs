//! `platinum-reftrace`: the policy lab's record/replay engine.
//!
//! The paper's central claim (§4, Figure 1) is *comparative*: coherent
//! replication + migration + freezing beats plain local or remote
//! placement on real workloads. Comparing policies by re-running each
//! application once per policy wastes work and — worse — entangles the
//! comparison with the application's own nondeterminism. This crate
//! separates the two concerns:
//!
//! 1. **Record** ([`Capture`]): run the application once, under the
//!    PLATINUM policy, with every simulated memory operation serialized
//!    through a global FIFO ticket gate. The serialization picks one valid
//!    interleaving and *writes it down*: each processor's reference stream
//!    (operation kind, virtual address, word counts, compute charges,
//!    synchronization release edges) lands in one global, totally-ordered
//!    op list per phase — a [`format::RefTrace`].
//! 2. **Replay** ([`replay::replay`]): re-execute the recorded op list,
//!    in exactly the recorded global order, against a fresh kernel booted
//!    with *any* [`platinum::PolicyKind`] — no application code involved.
//!    A 5-policy × 3-app comparison costs one execution plus five cheap
//!    replays.
//!
//! Replaying the trace under the *same* policy reproduces the capture
//! run's virtual times bit for bit (the round-trip test in this crate and
//! the `policy_matrix` benchmark both assert it). Replaying under a
//! different policy answers "what would this exact reference stream have
//! cost under that policy?" — the trace-driven methodology of the NUMA
//! placement literature.
//!
//! # What is (and is not) recorded
//!
//! Data *values* are not recorded: the coherency protocol's behaviour and
//! costs depend on which pages are touched with which rights, never on
//! the bits moved, so replay is value-free (writes store zeros, atomics
//! add zero). Synchronization is captured structurally: spin reads are
//! recorded one op per iteration (their global interleaving is what
//! freezes pages), and `advance_to` release edges are recorded as a
//! dependency on the op that produced the release time when possible
//! ([`format::Op::AdvanceDep`]), falling back to the absolute captured
//! time ([`format::Op::AdvanceAbs`]). Under same-policy replay the two
//! encodings are identical; under other policies the dependency form
//! propagates that policy's own timing through the synchronization graph.
//!
//! # Limitations
//!
//! The recorder wraps the [`numa_machine::Mem`] seam, so anything an
//! application does *around* that seam — notably the message-passing
//! Gaussian variant, which talks to kernel ports directly — cannot be
//! captured. The capture machine runs with the virtual-clock skew window
//! disabled (serialized execution cannot deadlock on the throttle, but
//! the window would add no information); replays use the same setting.

#![warn(missing_docs)]

pub mod format;
pub mod gate;
pub mod record;
pub mod replay;

pub use format::{Op, Phase, Rec, RefTrace};
pub use record::{Capture, RecordingCtx};
pub use replay::{
    replay, replay_cfg, replay_many, replay_many_with, replay_par, replay_par_cfg, replay_par_with,
    replay_with, PhaseOutcome, ReplayOutcome,
};
