//! The capture serialization gate: a FIFO ticket lock whose waiters run a
//! caller-supplied poll closure.
//!
//! Recording needs a *total order* over every simulated memory operation,
//! so the capture run serializes them: one op in flight at a time,
//! machine-wide. Two properties matter beyond mutual exclusion:
//!
//! * **FIFO fairness.** Tickets grant the gate in request order, so a
//!   spinning processor (whose every uncharged spin read is its own
//!   recorded op) gets the gate about once per op executed by the other
//!   processors — bounding the trace's spin-read volume to roughly one
//!   iteration per competitor op, which is also the natural rate on the
//!   real machine.
//! * **Responsive waiting.** A waiter may be the target of a shootdown
//!   initiated by the current gate holder, and the holder blocks until
//!   the ack. Waiters therefore run `poll()` — the recorder passes
//!   `UserCtx::service_ipis` — on every spin, and must NOT touch any
//!   other kernel state (no clock ticks, no defrost), or waiting would
//!   perturb the very schedule being recorded.

use std::sync::atomic::{AtomicU64, Ordering};

/// A FIFO ticket lock with poll-while-waiting. See the module docs.
#[derive(Default)]
pub struct Gate {
    next: AtomicU64,
    serving: AtomicU64,
}

impl Gate {
    /// A fresh, open gate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a ticket and spins until served, running `poll` on every
    /// iteration. Returns a guard; dropping it serves the next ticket.
    pub fn lock(&self, mut poll: impl FnMut()) -> GateGuard<'_> {
        let ticket = self.next.fetch_add(1, Ordering::Relaxed);
        let mut spins = 0u32;
        while self.serving.load(Ordering::Acquire) != ticket {
            poll();
            std::hint::spin_loop();
            spins = spins.wrapping_add(1);
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            }
        }
        GateGuard { gate: self }
    }
}

/// Exclusive tenure of the [`Gate`]; dropping serves the next ticket.
pub struct GateGuard<'a> {
    gate: &'a Gate,
}

impl Drop for GateGuard<'_> {
    fn drop(&mut self) {
        self.gate.serving.fetch_add(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn serializes_and_stays_fair() {
        let gate = Gate::new();
        let counter = AtomicUsize::new(0);
        let inside = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..500 {
                        let polled = AtomicUsize::new(0);
                        let _g = gate.lock(|| {
                            polled.fetch_add(1, Ordering::Relaxed);
                        });
                        assert_eq!(inside.fetch_add(1, Ordering::SeqCst), 0, "exclusive");
                        counter.fetch_add(1, Ordering::Relaxed);
                        inside.fetch_sub(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 2000);
    }
}
