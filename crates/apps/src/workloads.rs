//! Synthetic sharing workloads for the §4.1 migrate-vs-remote analysis.
//!
//! §4.1 analyzes a shared structure `X` of `s` words, the sole occupant
//! of a coherent page, accessed in turn by `p` processors, each operation
//! making `r` references (density ρ = r/s). [`round_robin`] reproduces
//! that scenario exactly — processors take strict round-robin turns, the
//! worst case with `g(p) = p/(p-1)` — so the benchmark harness can
//! measure the empirical crossover density and compare it with
//! inequality (2) and Table 1.

use numa_machine::{Mem, Va};
use platinum_runtime::sync::EventCount;

/// Configuration of the round-robin shared-structure workload.
#[derive(Clone, Debug)]
pub struct SharingConfig {
    /// Size of the shared structure in words (`s`); at most one page so
    /// it is "the sole occupant of a coherent page".
    pub struct_words: usize,
    /// References per operation (`r`); density ρ = r / s... relative to
    /// the page: the analysis uses the page size as `s`, so the harness
    /// passes `struct_words == words_per_page`.
    pub refs_per_op: usize,
    /// Fraction (0..=100) of the references that are writes. The §4.1
    /// operation "performs a computation f entailing r memory references
    /// on it" inside a critical section; half-and-half is representative.
    pub write_pct: u32,
    /// Operations performed by each processor.
    pub ops_per_proc: usize,
    /// Modelled computation per operation, ns.
    pub compute_ns_per_op: u64,
}

impl Default for SharingConfig {
    fn default() -> Self {
        Self {
            struct_words: 1024,
            refs_per_op: 256,
            write_pct: 50,
            ops_per_proc: 50,
            compute_ns_per_op: 10_000,
        }
    }
}

/// One processor's strict round-robin loop over the shared structure at
/// `base`. Turn-taking uses an event count (whose own page freezes, as
/// synchronization pages do); each turn performs `refs_per_op`
/// references sweeping the structure.
pub fn round_robin<M: Mem>(
    m: &mut M,
    base: Va,
    turn: &EventCount,
    cfg: &SharingConfig,
    tid: usize,
    p: usize,
) {
    for op in 0..cfg.ops_per_proc {
        let my_turn = (op * p + tid) as u32;
        turn.await_at_least(m, my_turn);
        operation(m, base, cfg, op);
        m.compute(cfg.compute_ns_per_op);
        turn.advance(m);
    }
}

/// The operation `f`: `refs_per_op` references spread across the
/// structure. The first reference is always a write (the §4.1 operation
/// mutates `X`, which is what makes the page migratory); of the rest,
/// `write_pct`% are writes.
fn operation<M: Mem>(m: &mut M, base: Va, cfg: &SharingConfig, op: usize) {
    operation_for_benchmarks(m, base, cfg, op)
}

/// The bare §4.1 operation, exposed for harnesses that supply their own
/// turn-taking.
pub fn operation_for_benchmarks<M: Mem>(m: &mut M, base: Va, cfg: &SharingConfig, op: usize) {
    let stride = (cfg.struct_words / cfg.refs_per_op.max(1)).max(1);
    let mut acc = 0u32;
    for k in 0..cfg.refs_per_op {
        let idx = (k * stride + op) % cfg.struct_words;
        let va = base + 4 * idx as u64;
        if k == 0 || (k % 100) < cfg.write_pct as usize {
            m.write(va, acc.wrapping_add(k as u32));
        } else {
            acc = acc.wrapping_add(m.read(va));
        }
    }
}

/// A purely private workload: each processor sweeps its own region.
/// Baseline for overhead measurements — the coherent memory system
/// should add (almost) nothing here.
pub fn private_sweep<M: Mem>(m: &mut M, base: Va, words: usize, rounds: usize) -> u32 {
    let mut acc = 0u32;
    for r in 0..rounds {
        for w in 0..words {
            let va = base + 4 * w as u64;
            if r % 2 == 0 {
                m.write(va, (r + w) as u32);
            } else {
                acc = acc.wrapping_add(m.read(va));
            }
        }
    }
    acc
}

/// A read-shared workload: every processor repeatedly reads the same
/// region (which PLATINUM should replicate once per node, after which
/// all traffic is local).
pub fn read_shared<M: Mem>(m: &mut M, base: Va, words: usize, rounds: usize) -> u32 {
    let mut acc = 0u32;
    let mut buf = vec![0u32; words];
    for _ in 0..rounds {
        m.read_block(base, &mut buf);
        for &v in &buf {
            acc = acc.wrapping_add(v);
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_machine::mem_iface::test_support::FlatMem;

    #[test]
    fn operation_reference_count() {
        let mut m = FlatMem::new(0, 1);
        let cfg = SharingConfig {
            struct_words: 64,
            refs_per_op: 16,
            write_pct: 50,
            ..Default::default()
        };
        let t0 = m.vtime();
        operation(&mut m, 0x1000, &cfg, 0);
        // FlatMem charges 320 per read/write: exactly 16 references.
        assert_eq!(m.vtime() - t0, 16 * 320);
    }

    #[test]
    fn write_pct_bounds() {
        let mut m = FlatMem::new(0, 1);
        let mut cfg = SharingConfig {
            struct_words: 256,
            refs_per_op: 200,
            write_pct: 0,
            ..Default::default()
        };
        operation(&mut m, 0x0, &cfg, 0);
        assert_eq!(m.words.len(), 1, "0% writes still writes the mutation ref");
        cfg.write_pct = 100;
        m.words.clear();
        operation(&mut m, 0x0, &cfg, 0);
        assert!(m.words.len() > 100, "100% writes must write everywhere");
    }

    #[test]
    fn private_sweep_accumulates() {
        let mut m = FlatMem::new(0, 1);
        let acc = private_sweep(&mut m, 0x1000, 8, 2);
        // Round 0 writes (0+w), round 1 reads them back.
        assert_eq!(acc, (0..8).sum::<u32>());
    }

    #[test]
    fn read_shared_sums() {
        let mut m = FlatMem::new(0, 1);
        m.write_block(0x1000, &[1, 2, 3, 4]);
        assert_eq!(read_shared(&mut m, 0x1000, 4, 3), 30);
    }

    #[test]
    fn round_robin_single_proc_runs() {
        let mut m = FlatMem::new(0, 1);
        let turn = EventCount::new(0x8000);
        let cfg = SharingConfig {
            struct_words: 32,
            refs_per_op: 8,
            ops_per_proc: 5,
            ..Default::default()
        };
        round_robin(&mut m, 0x1000, &turn, &cfg, 0, 1);
        assert_eq!(m.read_spin(0x8000), 5, "five turns taken");
    }
}
