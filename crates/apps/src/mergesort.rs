//! Parallel merge sort (§5.2 of the paper, Figure 5).
//!
//! "A parallel merge sort using a simple tree of merge operations, each
//! of which is performed by a single thread." Chosen for comparison with
//! Anderson's study on a Sequent Symmetry; the same code here runs on
//! PLATINUM and on the UMA comparator machine because it is generic over
//! [`Mem`].
//!
//! Phase 0: each of the `p` threads sorts its `n/p` segment in place.
//! Phase `l` (1..=log2 p): the low `p >> l` threads each merge two
//! adjacent sorted runs from the source array into the destination
//! array; arrays ping-pong between levels. During each merge "one half
//! of the data to be merged will already be in the merging processor's
//! local memory" and the linear access pattern touches all of each
//! replicated page — the properties the paper credits for PLATINUM's
//! good showing.

use numa_machine::{Mem, Va};
use platinum_runtime::sync::Barrier;
use platinum_runtime::zones::Zone;

/// Problem configuration.
#[derive(Clone, Debug)]
pub struct SortConfig {
    /// Number of 32-bit keys; must be a multiple of the thread count.
    pub n: usize,
    /// Modelled comparison/copy cost per output element during a merge.
    pub compute_ns_per_elem: u64,
    /// Modelled cost per comparison in the local sort phase.
    pub compute_ns_per_cmp: u64,
    /// Seed for the input permutation.
    pub seed: u64,
}

impl SortConfig {
    /// The default configuration at `n` keys — seed and compute model
    /// stay single-sourced in [`Default`].
    pub fn with_n(n: usize) -> Self {
        Self {
            n,
            ..Default::default()
        }
    }
}

impl Default for SortConfig {
    fn default() -> Self {
        Self {
            n: 1 << 18,
            compute_ns_per_elem: 4000,
            compute_ns_per_cmp: 2000,
            seed: 0xC0FF_EE11,
        }
    }
}

/// Shared layout: two full-size arrays (source and scratch) plus barrier
/// words, all page-separated.
#[derive(Clone, Debug)]
pub struct SortLayout {
    /// Array A (holds the input initially).
    pub a: Va,
    /// Array B (scratch).
    pub b: Va,
    /// Number of keys.
    pub n: usize,
}

impl SortLayout {
    /// Allocates both arrays page-aligned from `zone`.
    pub fn alloc(zone: &mut Zone, n: usize) -> Self {
        let a = zone.alloc_page_aligned(n);
        let b = zone.alloc_page_aligned(n);
        Self { a, b, n }
    }

    /// Pages a zone must hold so [`SortLayout::alloc`] succeeds for `n`
    /// keys: both arrays plus alignment slop.
    pub fn zone_pages(n: usize, page_words: usize) -> usize {
        (2 * n).div_ceil(page_words) + 4
    }
}

/// Deterministic pseudo-random key `i` of the input.
#[inline]
fn key(seed: u64, i: usize) -> u32 {
    let x = (i as u64 ^ seed)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .rotate_left(31)
        .wrapping_mul(0x2545_F491_4F6C_DD1D);
    (x >> 32) as u32
}

/// Initializes thread `tid`'s segment of the input (first touch places it
/// locally).
pub fn init_segment<M: Mem>(m: &mut M, lay: &SortLayout, cfg: &SortConfig, tid: usize, p: usize) {
    let seg = lay.n / p;
    let base = tid * seg;
    let buf: Vec<u32> = (0..seg).map(|i| key(cfg.seed, base + i)).collect();
    m.write_block(lay.a + 4 * base as u64, &buf);
}

/// One thread's body: local sort, then the merge tree.
///
/// `p` must be a power of two and divide `lay.n`. All `p` threads must
/// call this with the same shared `barrier`.
pub fn run<M: Mem>(
    m: &mut M,
    lay: &SortLayout,
    cfg: &SortConfig,
    barrier: &Barrier,
    tid: usize,
    p: usize,
) {
    assert!(p.is_power_of_two(), "thread count must be a power of two");
    assert!(lay.n.is_multiple_of(p), "n must divide evenly");
    let seg = lay.n / p;

    // Phase 0: sort own segment in place. A quicksort makes ~log2(seg)
    // streaming passes over the data; each pass re-reads and re-writes
    // the whole segment. On PLATINUM the segment is local memory; on a
    // machine whose cache is far smaller than the segment every pass
    // misses again and the writes go through the bus — "the problem is
    // large enough that none of the data will remain in the Sequent
    // cache between merge phases" (§5.2), and within the sort phase too.
    let base = tid * seg;
    let seg_va = lay.a + 4 * base as u64;
    let mut buf = vec![0u32; seg];
    let passes = (seg as f64).log2().ceil().max(1.0) as u32;
    for pass in 0..passes {
        m.read_block(seg_va, &mut buf);
        if pass == passes - 1 {
            // The values only matter at the end; the earlier passes model
            // the traffic of the partial partitioning steps.
            buf.sort_unstable();
        }
        m.compute(cfg.compute_ns_per_cmp * seg as u64);
        m.write_block(seg_va, &buf);
    }
    barrier.wait(m);

    // Merge tree: at level l the *owner of the left run* performs each
    // merge (threads 0, 2, 4, ... at level 1; 0, 4, 8, ... at level 2),
    // so "one half of the data to be merged will already be in the
    // merging processor's local memory" (§5.2).
    let levels = p.trailing_zeros();
    let mut src = lay.a;
    let mut dst = lay.b;
    for l in 1..=levels {
        let stride = 1usize << l;
        if tid.is_multiple_of(stride) {
            let run = seg << (l - 1);
            let left = tid * seg;
            merge_runs(m, cfg, src, dst, left, run);
        }
        barrier.wait(m);
        std::mem::swap(&mut src, &mut dst);
    }
}

/// Merges `src[left..left+run]` and `src[left+run..left+2run]` into
/// `dst[left..left+2run]`, streaming through chunk buffers so the access
/// pattern (and therefore the paging/caching behaviour) is the linear
/// scan of a real merge.
fn merge_runs<M: Mem>(m: &mut M, cfg: &SortConfig, src: Va, dst: Va, left: usize, run: usize) {
    const CHUNK: usize = 256;
    let mut a_buf = [0u32; CHUNK];
    let mut b_buf = [0u32; CHUNK];
    let mut out = Vec::with_capacity(CHUNK * 2);

    let (mut ai, mut bi) = (0usize, 0usize); // consumed from each run
    let (mut a_len, mut b_len) = (0usize, 0usize);
    let (mut a_pos, mut b_pos) = (0usize, 0usize); // cursor within buffers
    let mut written = 0usize;

    while written < 2 * run {
        if a_pos == a_len && ai < run {
            a_len = CHUNK.min(run - ai);
            m.read_block(src + 4 * (left + ai) as u64, &mut a_buf[..a_len]);
            a_pos = 0;
        }
        if b_pos == b_len && bi < run {
            b_len = CHUNK.min(run - bi);
            m.read_block(src + 4 * (left + run + bi) as u64, &mut b_buf[..b_len]);
            b_pos = 0;
        }
        out.clear();
        // Merge from the buffered chunks until one drains.
        loop {
            let a_avail = a_pos < a_len;
            let b_avail = b_pos < b_len;
            if a_avail && b_avail {
                if a_buf[a_pos] <= b_buf[b_pos] {
                    out.push(a_buf[a_pos]);
                    a_pos += 1;
                    ai += 1;
                } else {
                    out.push(b_buf[b_pos]);
                    b_pos += 1;
                    bi += 1;
                }
            } else if a_avail && bi == run {
                out.push(a_buf[a_pos]);
                a_pos += 1;
                ai += 1;
            } else if b_avail && ai == run {
                out.push(b_buf[b_pos]);
                b_pos += 1;
                bi += 1;
            } else {
                break;
            }
        }
        m.compute(cfg.compute_ns_per_elem * out.len() as u64);
        m.write_block(dst + 4 * (left + written) as u64, &out);
        written += out.len();
    }
}

/// Where the sorted output lives after `run` with `p` threads.
pub fn output_array(lay: &SortLayout, p: usize) -> Va {
    if p.trailing_zeros() % 2 == 1 {
        lay.b
    } else {
        lay.a
    }
}

/// Verifies the output is sorted and is a permutation (by XOR/sum
/// fingerprint) of the deterministic input. Returns an error description
/// on failure.
pub fn verify<M: Mem>(
    m: &mut M,
    lay: &SortLayout,
    cfg: &SortConfig,
    p: usize,
) -> Result<(), String> {
    let out = output_array(lay, p);
    let mut buf = vec![0u32; lay.n];
    m.read_block(out, &mut buf);
    for w in buf.windows(2) {
        if w[0] > w[1] {
            return Err(format!("output not sorted: {} > {}", w[0], w[1]));
        }
    }
    let (mut xor, mut sum) = (0u32, 0u64);
    let (mut exor, mut esum) = (0u32, 0u64);
    for (i, &v) in buf.iter().enumerate() {
        xor ^= v;
        sum = sum.wrapping_add(u64::from(v));
        let e = key(cfg.seed, i);
        exor ^= e;
        esum = esum.wrapping_add(u64::from(e));
    }
    if xor != exor || sum != esum {
        return Err("output is not a permutation of the input".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_machine::mem_iface::test_support::FlatMem;

    #[test]
    fn single_thread_sorts() {
        let mut m = FlatMem::new(0, 1);
        let mut zone = Zone::new(0x1000, 1 << 16, 1024);
        let cfg = SortConfig {
            n: 1024,
            ..Default::default()
        };
        let lay = SortLayout::alloc(&mut zone, cfg.n);
        let barrier = Barrier::new(zone.alloc_words(1), zone.alloc_words(1), 1);
        init_segment(&mut m, &lay, &cfg, 0, 1);
        run(&mut m, &lay, &cfg, &barrier, 0, 1);
        verify(&mut m, &lay, &cfg, 1).unwrap();
    }

    #[test]
    fn output_array_alternates_with_levels() {
        let lay = SortLayout {
            a: 0x1000,
            b: 0x2000,
            n: 64,
        };
        assert_eq!(output_array(&lay, 1), lay.a); // 0 levels
        assert_eq!(output_array(&lay, 2), lay.b); // 1 level
        assert_eq!(output_array(&lay, 4), lay.a); // 2 levels
        assert_eq!(output_array(&lay, 8), lay.b); // 3 levels
    }

    #[test]
    fn keys_are_deterministic() {
        assert_eq!(key(7, 3), key(7, 3));
        assert_ne!(key(7, 3), key(8, 3));
    }

    #[test]
    fn merge_runs_is_correct() {
        let mut m = FlatMem::new(0, 1);
        // Two sorted runs of 300 (crosses the 256 chunk size).
        let left: Vec<u32> = (0..300).map(|i| i * 2).collect();
        let right: Vec<u32> = (0..300).map(|i| i * 2 + 1).collect();
        m.write_block(0x1000, &left);
        m.write_block(0x1000 + 4 * 300, &right);
        let cfg = SortConfig::default();
        merge_runs(&mut m, &cfg, 0x1000, 0x8000, 0, 300);
        let mut out = vec![0u32; 600];
        m.read_block(0x8000, &mut out);
        let expect: Vec<u32> = (0..600).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn merge_runs_handles_skew() {
        let mut m = FlatMem::new(0, 1);
        // All of run A smaller than all of run B.
        let left: Vec<u32> = (0..64).collect();
        let right: Vec<u32> = (1000..1064).collect();
        m.write_block(0x1000, &left);
        m.write_block(0x1000 + 4 * 64, &right);
        let cfg = SortConfig::default();
        merge_runs(&mut m, &cfg, 0x1000, 0x8000, 0, 64);
        let mut out = vec![0u32; 128];
        m.read_block(0x8000, &mut out);
        assert!(out.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(out[0], 0);
        assert_eq!(out[127], 1063);
    }
}
