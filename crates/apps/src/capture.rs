//! Reference-trace capture runners: one per application, mirroring the
//! phase structure of [`crate::harness`] but recording every memory
//! operation through [`platinum_reftrace::Capture`].
//!
//! Each runner executes the application once under the PLATINUM policy
//! (the capture run doubles as the live measurement), verifies the
//! application's own correctness condition *unrecorded* — verification
//! re-reads the whole data set and is no part of the workload being
//! compared — and returns the sealed [`RefTrace`] next to the live
//! [`AppRun`]. Replaying the trace under `PolicyKind::Platinum` must
//! reproduce the live run's virtual times bit for bit; replaying under
//! any other policy prices the same reference stream under that policy.
//!
//! The message-passing Gaussian variant is not capturable: it talks to
//! kernel ports directly, around the `Mem` seam the recorder wraps.

use numa_machine::Topology;
use platinum_reftrace::{Capture, RefTrace};
use platinum_runtime::sync::{Barrier, EventCount};
use platinum_server::{KvConfig, KvTable, TrafficConfig, Workload};

use crate::gauss::{self, GaussConfig, GaussLayout};
use crate::harness::AppRun;
use crate::mergesort::{self, SortConfig, SortLayout};
use crate::neural::{self, NeuralConfig, NeuralLayout};

/// A recorded application run: the trace plus the live measurement it
/// was taken from.
#[derive(Debug)]
pub struct CapturedRun {
    /// The recorded reference stream, ready to replay.
    pub trace: RefTrace,
    /// The capture run's own results (PLATINUM policy). `kernel_stats`
    /// is snapshotted before the unrecorded verification pass so it is
    /// directly comparable with a replay's.
    pub live: AppRun,
}

/// Records shared-memory Gaussian elimination on `p` of `nodes`
/// processors: an owner-first-touch init phase and the measured
/// elimination phase, exactly as `harness::run_gauss` stages them.
pub fn record_gauss(
    nodes: usize,
    p: usize,
    cfg: &GaussConfig,
    topo: Option<&Topology>,
) -> CapturedRun {
    let mut cap = Capture::on_topology(nodes, topo);
    let page_words = cap.sim().machine.cfg().words_per_page();
    let mut data = cap.alloc_zone(GaussLayout::zone_pages(cfg.n, page_words));
    let lay = GaussLayout::alloc(&mut data, cfg.n, page_words);
    let mut sync = cap.alloc_zone(1);
    let ec = EventCount::new(sync.alloc_words(1));

    cap.run_phase("init", p, |tid, ctx| {
        gauss::init_owned_rows(ctx, &lay, cfg, tid, p)
    });
    let (_, run) = cap.run_phase("measured", p, |tid, ctx| {
        gauss::run_shared(ctx, &lay, cfg, &ec, tid, p);
    });

    let kernel_stats = cap.stats_snapshot();
    let (sums, _) = cap.sim().run(1, |_, ctx| gauss::checksum(ctx, &lay));
    CapturedRun {
        live: AppRun {
            elapsed_ns: run.elapsed_ns(),
            checksum: sums[0],
            kernel_stats,
            run,
        },
        trace: cap.finish(),
    }
}

/// Records the tree merge sort on `p` of `nodes` processors.
///
/// # Panics
///
/// Panics if the sorted output fails verification.
pub fn record_mergesort(
    nodes: usize,
    p: usize,
    cfg: &SortConfig,
    topo: Option<&Topology>,
) -> CapturedRun {
    let mut cap = Capture::on_topology(nodes, topo);
    let page_words = cap.sim().machine.cfg().words_per_page();
    let mut data = cap.alloc_zone(SortLayout::zone_pages(cfg.n, page_words));
    let lay = SortLayout::alloc(&mut data, cfg.n);
    let mut sync = cap.alloc_zone(1);
    let barrier = Barrier::new(sync.alloc_words(1), sync.alloc_words(1), p as u32);

    cap.run_phase("init", p, |tid, ctx| {
        mergesort::init_segment(ctx, &lay, cfg, tid, p)
    });
    let (_, run) = cap.run_phase("measured", p, |tid, ctx| {
        mergesort::run(ctx, &lay, cfg, &barrier, tid, p);
    });

    let kernel_stats = cap.stats_snapshot();
    let (checks, _) = cap.sim().run(1, |_, ctx| {
        mergesort::verify(ctx, &lay, cfg, p).map(|()| 1u64)
    });
    checks[0].as_ref().expect("merge sort output must verify");
    CapturedRun {
        live: AppRun {
            elapsed_ns: run.elapsed_ns(),
            checksum: 1,
            kernel_stats,
            run,
        },
        trace: cap.finish(),
    }
}

/// Records the neural-network simulator on `p` of `nodes` processors.
/// Returns the capture plus the final training error from the
/// (unrecorded) evaluation pass.
pub fn record_neural(
    nodes: usize,
    p: usize,
    cfg: &NeuralConfig,
    topo: Option<&Topology>,
) -> (CapturedRun, f64) {
    let mut cap = Capture::on_topology(nodes, topo);
    let mut zone = cap.alloc_zone(NeuralLayout::zone_pages());
    let lay = NeuralLayout::alloc(&mut zone);

    cap.run_phase("init", 1, |_, ctx| neural::init(ctx, &lay));
    cap.run_phase("init-weights", p, |tid, ctx| {
        neural::init_owned_weights(ctx, &lay, tid, p)
    });
    let (_, run) = cap.run_phase("measured", p, |tid, ctx| {
        neural::train(ctx, &lay, cfg, tid, p)
    });

    let kernel_stats = cap.stats_snapshot();
    let (errors, _) = cap.sim().run(1, |_, ctx| neural::total_error(ctx, &lay));
    (
        CapturedRun {
            live: AppRun {
                elapsed_ns: run.elapsed_ns(),
                checksum: 0,
                kernel_stats,
                run,
            },
            trace: cap.finish(),
        },
        errors[0],
    )
}

/// Records the key-value server workload on `p` of `nodes` processors:
/// a striped populate phase and a measured serve phase in which each
/// worker paces its own open-loop arrival schedule with `advance_to`
/// (recorded, so a replay reproduces the idle gaps exactly). The live
/// checksum is the post-serve table audit, which also asserts no slot
/// was torn.
pub fn record_kv(
    nodes: usize,
    p: usize,
    kcfg: KvConfig,
    traffic: &TrafficConfig,
    topo: Option<&Topology>,
) -> CapturedRun {
    let keys = kcfg.keys;
    let mut cap = Capture::on_topology(nodes, topo);
    let page_words = cap.sim().machine.cfg().words_per_page();
    let mut data = cap.alloc_zone(kcfg.table_pages(page_words));
    let mut locks = cap.alloc_zone(kcfg.lock_pages());
    let kv = KvTable::layout(kcfg, &mut data, &mut locks);
    let schedules = traffic.per_proc_schedules(p);

    cap.run_phase("populate", p, |tid, ctx| {
        kv.populate(ctx, tid, p)
            .expect("recorded populate cannot fail")
    });
    let (_, run) = cap.run_phase("serve", p, |tid, ctx| {
        use numa_machine::Mem;
        for req in &schedules[tid] {
            if ctx.vtime() < req.arrival_ns {
                ctx.advance_to(req.arrival_ns);
            }
            kv.execute(ctx, req).expect("recorded request cannot fail");
        }
    });

    let kernel_stats = cap.stats_snapshot();
    let (audits, _) = cap.sim().run(1, |_, ctx| {
        kv.verify(ctx).expect("live access cannot fail unfaulted")
    });
    assert_eq!(audits[0].occupied, keys, "keys lost from the table");
    CapturedRun {
        live: AppRun {
            elapsed_ns: run.elapsed_ns(),
            checksum: audits[0].checksum,
            kernel_stats,
            run,
        },
        trace: cap.finish(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platinum::PolicyKind;
    use platinum_reftrace::replay;

    /// The reftrace round-trip on a real application: capture a small
    /// gauss run, replay it under PLATINUM, and demand bit-identical
    /// virtual times, counters, and kernel protocol statistics.
    #[test]
    fn gauss_capture_replays_bit_identically() {
        let cfg = GaussConfig::with_n(32);
        let captured = record_gauss(4, 4, &cfg, None);
        assert_eq!(
            captured.live.checksum,
            gauss::reference_checksum(&cfg),
            "capture run corrupted the application"
        );
        let out = replay(&captured.trace, PolicyKind::Platinum);
        assert_eq!(
            out.measured_elapsed_ns(),
            captured.live.elapsed_ns,
            "measured-phase vtime drifted"
        );
        let last = out.phases.last().unwrap();
        for (a, b) in captured.live.run.workers.iter().zip(&last.stats.workers) {
            assert_eq!(a.vtime_ns, b.vtime_ns, "proc {} vtime drifted", a.proc);
            assert_eq!(a.counters, b.counters, "proc {} counters drifted", a.proc);
        }
        assert_eq!(
            out.kernel, captured.live.kernel_stats,
            "kernel stats drifted"
        );
    }

    #[test]
    fn mergesort_capture_verifies_and_replays() {
        let cfg = SortConfig::with_n(1 << 10);
        let captured = record_mergesort(4, 4, &cfg, None);
        let out = replay(&captured.trace, PolicyKind::Platinum);
        assert_eq!(out.measured_elapsed_ns(), captured.live.elapsed_ns);
    }

    #[test]
    fn kv_capture_replays_bit_identically() {
        let traffic = TrafficConfig {
            keys: 1 << 9,
            requests_per_proc: 200,
            mean_interarrival_ns: 10_000,
            ..TrafficConfig::default()
        };
        let captured = record_kv(4, 4, KvConfig::for_keys(1 << 9, 4), &traffic, None);
        let out = replay(&captured.trace, PolicyKind::Platinum);
        assert_eq!(
            out.measured_elapsed_ns(),
            captured.live.elapsed_ns,
            "serve-phase vtime drifted"
        );
        let last = out.phases.last().unwrap();
        for (a, b) in captured.live.run.workers.iter().zip(&last.stats.workers) {
            assert_eq!(a.vtime_ns, b.vtime_ns, "proc {} vtime drifted", a.proc);
            assert_eq!(a.counters, b.counters, "proc {} counters drifted", a.proc);
        }
        assert_eq!(
            out.kernel, captured.live.kernel_stats,
            "kernel stats drifted"
        );
        // The same stream priced under a different policy still replays.
        // (No ordering assertion at this tiny scale: PLATINUM pays
        // page-copy costs that per-word remote latency can undercut;
        // the policy-spread check lives in policy_matrix at real sizes.)
        let remote = replay(&captured.trace, PolicyKind::RemoteAlways);
        assert_ne!(
            remote.measured_elapsed_ns(),
            0,
            "remote-always replay must execute the serve phase"
        );
    }

    #[test]
    fn neural_capture_replays_under_other_policy() {
        let cfg = NeuralConfig::with_epochs(2);
        let (captured, _err) = record_neural(4, 4, &cfg, None);
        let plat = replay(&captured.trace, PolicyKind::Platinum);
        assert_eq!(plat.measured_elapsed_ns(), captured.live.elapsed_ns);
        let remote = replay(&captured.trace, PolicyKind::RemoteAlways);
        assert!(remote.measured_elapsed_ns() > 0);
    }
}
