//! Ready-made runners: boot a machine + kernel, lay out an application,
//! run it at a given processor count, and report timing + correctness.
//!
//! The per-figure benchmark binaries, the examples, and the integration
//! tests all drive the applications through these functions so that
//! "the same program" really is the same program everywhere.

use std::sync::Arc;

use numa_machine::Mem;
use platinum::{FaultPlan, StatsSnapshot};
use platinum_runtime::measure::RunStats;
use platinum_runtime::par::{run_uma_workers, uma_machine, PlatinumHarness};
use platinum_runtime::sim::SimBuilder;
use platinum_runtime::sync::{Barrier, EventCount};

use crate::gauss::{self, GaussConfig, GaussLayout};
use crate::mergesort::{self, SortConfig, SortLayout};
use crate::neural::{self, NeuralConfig, NeuralLayout};

pub use platinum::PolicyKind;

/// The programming style of the Figure 1 comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GaussStyle {
    /// Transparent coherent memory under the given policy.
    Shared(PolicyKind),
    /// Uniform-System style: static placement + explicit pivot copy.
    UniformSystem,
    /// SMP style: private rows, pivot broadcast over ports.
    MessagePassing,
}

impl GaussStyle {
    /// Harness display name.
    pub fn name(self) -> &'static str {
        match self {
            GaussStyle::Shared(PolicyKind::Platinum) => "PLATINUM coherent memory",
            GaussStyle::Shared(k) => k.name(),
            GaussStyle::UniformSystem => "Uniform System style",
            GaussStyle::MessagePassing => "SMP message passing",
        }
    }
}

/// Outcome of one application run.
#[derive(Clone, Debug)]
pub struct AppRun {
    /// Execution time of the measured phase (max worker virtual time).
    pub elapsed_ns: u64,
    /// Application checksum (variant-independent for Gauss; 0 when the
    /// application verifies differently).
    pub checksum: u64,
    /// Kernel event counters at the end of the run (zeroes on the UMA
    /// comparator).
    pub kernel_stats: StatsSnapshot,
    /// Per-run statistics.
    pub run: RunStats,
}

/// Boots a harness under `policy`, with an optional deterministic
/// fault-injection plan (the chaos runners' shared entry).
fn boot(nodes: usize, policy: PolicyKind, faults: Option<Arc<FaultPlan>>) -> PlatinumHarness {
    let mut b = SimBuilder::nodes(nodes).policy(policy);
    if let Some(plan) = faults {
        b = b.faults(plan);
    }
    b.build().into()
}

/// Runs Gaussian elimination in the given style on `p` of `nodes`
/// processors.
pub fn run_gauss(style: GaussStyle, nodes: usize, p: usize, cfg: &GaussConfig) -> AppRun {
    run_gauss_faulty(style, nodes, p, cfg, None)
}

/// [`run_gauss`] with the PLATINUM policy under a fault-injection plan:
/// the chaos_soak entry point. Correctness is asserted the same way —
/// the returned checksum must match the fault-free reference.
pub fn run_gauss_chaos(nodes: usize, p: usize, cfg: &GaussConfig, plan: Arc<FaultPlan>) -> AppRun {
    run_gauss_faulty(
        GaussStyle::Shared(PolicyKind::Platinum),
        nodes,
        p,
        cfg,
        Some(plan),
    )
}

fn run_gauss_faulty(
    style: GaussStyle,
    nodes: usize,
    p: usize,
    cfg: &GaussConfig,
    faults: Option<Arc<FaultPlan>>,
) -> AppRun {
    let policy = match style {
        GaussStyle::Shared(k) => k,
        GaussStyle::UniformSystem => PolicyKind::NeverReplicate,
        GaussStyle::MessagePassing => PolicyKind::Platinum,
    };
    let h = boot(nodes, policy, faults);
    let page_words = h.kernel.machine().cfg().words_per_page();
    let mut data = h.alloc_zone(GaussLayout::zone_pages(cfg.n, page_words));
    let lay = GaussLayout::alloc(&mut data, cfg.n, page_words);
    let mut sync = h.alloc_zone(1);
    let ec = EventCount::new(sync.alloc_words(1));

    // Initialization pass decides data placement: owners first-touch
    // their rows, except in the Uniform System style, whose storage
    // discipline scatters rows over every memory in the machine.
    match style {
        GaussStyle::UniformSystem => {
            h.run(nodes, |node, ctx| {
                gauss::init_scattered_rows(ctx, &lay, cfg, node, nodes)
            });
        }
        _ => {
            h.run(p, |tid, ctx| gauss::init_owned_rows(ctx, &lay, cfg, tid, p));
        }
    }

    // Measured pass: the elimination phase, as in LeBlanc's studies.
    let (_, run) = match style {
        GaussStyle::Shared(_) => h.run(p, |tid, ctx| {
            gauss::run_shared(ctx, &lay, cfg, &ec, tid, p);
        }),
        GaussStyle::UniformSystem => h.run(p, |tid, ctx| {
            gauss::run_uniform_system(ctx, &lay, cfg, &ec, tid, p);
        }),
        GaussStyle::MessagePassing => {
            let ports: Vec<Arc<platinum::Port>> = (0..p).map(|_| h.kernel.create_port()).collect();
            let ports = &ports;
            let lay = &lay;
            h.run(p, move |tid, ctx| {
                gauss::run_message_passing(ctx, lay, cfg, ports, tid, p);
            })
        }
    };

    let (sums, _) = h.run(1, |_, ctx| gauss::checksum(ctx, &lay));
    AppRun {
        elapsed_ns: run.elapsed_ns(),
        checksum: sums[0],
        kernel_stats: h.kernel.stats().snapshot(),
        run,
    }
}

/// A profiled application run: the run itself plus where the kernel's
/// *host* time went during the measured phase — the raw material of the
/// protocol-cost-vs-machine-size sweeps.
#[derive(Clone, Debug)]
pub struct ProfiledRun {
    /// The application run (PLATINUM policy).
    pub run: AppRun,
    /// Host-time phase profile of the measured pass.
    pub prof: platinum::hostprof::HostProfSnapshot,
    /// Host wall-clock seconds of the measured pass.
    pub host_secs: f64,
    /// Charged memory references in the measured pass, for per-op
    /// normalization of the profile.
    pub ops: u64,
}

/// Runs shared-memory Gaussian elimination under PLATINUM with the
/// kernel's host phase profiler enabled during the measured pass, on an
/// optional machine description. The sweep entry point
/// (`scaled_speedup --procs`): the profiler's per-span clock reads make
/// this marginally slower than [`run_gauss`], so the unprofiled runners
/// stay the source of every checked timing figure.
pub fn run_gauss_profiled(
    nodes: usize,
    p: usize,
    cfg: &GaussConfig,
    topo: Option<&numa_machine::Topology>,
) -> ProfiledRun {
    let mut b = SimBuilder::nodes(nodes)
        // Shallow frame pool: a 256-node machine at the default 4096
        // frames/node would allocate gigabytes of real backing storage.
        .frames_per_node(512)
        .policy(PolicyKind::Platinum);
    if let Some(t) = topo {
        b = b.topology(t.clone());
    }
    let h: PlatinumHarness = b.build().into();
    let page_words = h.kernel.machine().cfg().words_per_page();
    let mut data = h.alloc_zone(GaussLayout::zone_pages(cfg.n, page_words));
    let lay = GaussLayout::alloc(&mut data, cfg.n, page_words);
    let mut sync = h.alloc_zone(1);
    let ec = EventCount::new(sync.alloc_words(1));

    h.run(p, |tid, ctx| gauss::init_owned_rows(ctx, &lay, cfg, tid, p));

    h.kernel.host_prof().enable();
    let t0 = std::time::Instant::now();
    let (_, run) = h.run(p, |tid, ctx| {
        gauss::run_shared(ctx, &lay, cfg, &ec, tid, p);
    });
    let host_secs = t0.elapsed().as_secs_f64();
    let prof = h.kernel.host_prof().snapshot();

    let (sums, _) = h.run(1, |_, ctx| gauss::checksum(ctx, &lay));
    let ops = run.merged_counters().total_refs();
    ProfiledRun {
        run: AppRun {
            elapsed_ns: run.elapsed_ns(),
            checksum: sums[0],
            kernel_stats: h.kernel.stats().snapshot(),
            run,
        },
        prof,
        host_secs,
        ops,
    }
}

/// Runs the §4.2 anecdote: Gaussian elimination with a shared
/// matrix-size variable read in the inner loop and a barrier at the
/// start of the elimination phase.
///
/// With `colocated = true` the barrier words share a page with the
/// matrix-size variable (the paper's original, accidental layout); with
/// `false` they live in separate zones (the fixed layout). `t2_ns`
/// controls the defrost daemon period — pass a huge value to model the
/// kernel before thawing existed.
pub fn run_gauss_anecdote(
    nodes: usize,
    p: usize,
    cfg: &GaussConfig,
    colocated: bool,
    t2_ns: u64,
) -> AppRun {
    let h: PlatinumHarness = SimBuilder::nodes(nodes)
        .frames_per_node(4096)
        .policy(PolicyKind::Platinum)
        .defrost_ns(t2_ns)
        .build()
        .into();
    let page_words = h.kernel.machine().cfg().words_per_page();
    let mut data = h.alloc_zone(GaussLayout::zone_pages(cfg.n, page_words));
    let lay = GaussLayout::alloc(&mut data, cfg.n, page_words);

    let mut sync = h.alloc_zone(2);
    let ec = EventCount::new(sync.alloc_page_aligned(1));
    let (msize_va, barrier) = if colocated {
        // The accident: the matrix-size variable and the barrier words
        // share one page.
        let base = sync.alloc_page_aligned(3);
        (base, Barrier::new(base + 4, base + 8, p as u32))
    } else {
        // The fix: page-separated allocations.
        let mut vars = h.alloc_zone(2);
        let msize = vars.alloc_page_aligned(1);
        let b = sync.alloc_page_aligned(2);
        (msize, Barrier::new(b, b + 4, p as u32))
    };

    h.run(p, |tid, ctx| {
        if tid == 0 {
            ctx.write(msize_va, cfg.n as u32);
        }
        gauss::init_owned_rows(ctx, &lay, cfg, tid, p);
    });
    let (_, run) = h.run(p, |tid, ctx| {
        gauss::run_shared_anecdote(ctx, &lay, cfg, &ec, tid, p, msize_va, &barrier);
    });
    let (sums, _) = h.run(1, |_, ctx| gauss::checksum(ctx, &lay));
    AppRun {
        elapsed_ns: run.elapsed_ns(),
        checksum: sums[0],
        kernel_stats: h.kernel.stats().snapshot(),
        run,
    }
}

/// Runs the tree merge sort on PLATINUM with `p` of `nodes` processors.
///
/// # Panics
///
/// Panics if the sorted output fails verification.
pub fn run_mergesort_platinum(nodes: usize, p: usize, cfg: &SortConfig) -> AppRun {
    run_mergesort_faulty(nodes, p, cfg, None)
}

/// [`run_mergesort_platinum`] under a fault-injection plan; the sorted
/// output is verified exactly as in the fault-free run.
///
/// # Panics
///
/// Panics if the sorted output fails verification.
pub fn run_mergesort_chaos(
    nodes: usize,
    p: usize,
    cfg: &SortConfig,
    plan: Arc<FaultPlan>,
) -> AppRun {
    run_mergesort_faulty(nodes, p, cfg, Some(plan))
}

fn run_mergesort_faulty(
    nodes: usize,
    p: usize,
    cfg: &SortConfig,
    faults: Option<Arc<FaultPlan>>,
) -> AppRun {
    let h = boot(nodes, PolicyKind::Platinum, faults);
    let page_words = h.kernel.machine().cfg().words_per_page();
    let mut data = h.alloc_zone(SortLayout::zone_pages(cfg.n, page_words));
    let lay = SortLayout::alloc(&mut data, cfg.n);
    let mut sync = h.alloc_zone(1);
    let barrier = Barrier::new(sync.alloc_words(1), sync.alloc_words(1), p as u32);

    h.run(p, |tid, ctx| {
        mergesort::init_segment(ctx, &lay, cfg, tid, p)
    });
    let (_, run) = h.run(p, |tid, ctx| {
        mergesort::run(ctx, &lay, cfg, &barrier, tid, p);
    });
    let (checks, _) = h.run(1, |_, ctx| {
        mergesort::verify(ctx, &lay, cfg, p).map(|()| 1u64)
    });
    checks[0].as_ref().expect("merge sort output must verify");
    AppRun {
        elapsed_ns: run.elapsed_ns(),
        checksum: 1,
        kernel_stats: h.kernel.stats().snapshot(),
        run,
    }
}

/// Runs the tree merge sort on the UMA comparator (the Sequent Symmetry
/// stand-in of Figure 5) with `p` processors.
///
/// # Panics
///
/// Panics if the sorted output fails verification.
pub fn run_mergesort_uma(procs: usize, p: usize, cfg: &SortConfig) -> AppRun {
    let machine = uma_machine(procs, 4 * cfg.n + (1 << 16));
    let a = machine.alloc_words(cfg.n);
    let b = machine.alloc_words(cfg.n);
    let lay = SortLayout { a, b, n: cfg.n };
    let count = machine.alloc_words(1);
    let generation = machine.alloc_words(1);
    let barrier = Barrier::new(count, generation, p as u32);

    run_uma_workers(&machine, p, |tid, ctx| {
        mergesort::init_segment(ctx, &lay, cfg, tid, p)
    });
    let (_, run) = run_uma_workers(&machine, p, |tid, ctx| {
        mergesort::run(ctx, &lay, cfg, &barrier, tid, p);
    });
    let (checks, _) = run_uma_workers(&machine, 1, |_, ctx| {
        mergesort::verify(ctx, &lay, cfg, p).map(|()| 1u64)
    });
    checks[0].as_ref().expect("merge sort output must verify");
    AppRun {
        elapsed_ns: run.elapsed_ns(),
        checksum: 1,
        kernel_stats: StatsSnapshot::default(),
        run,
    }
}

/// Runs the neural-network simulator on PLATINUM with `p` of `nodes`
/// processors. Returns the run plus the final training error.
pub fn run_neural(nodes: usize, p: usize, cfg: &NeuralConfig) -> (AppRun, f64) {
    run_neural_faulty(nodes, p, cfg, None)
}

/// [`run_neural`] under a fault-injection plan. Returns the run plus the
/// final training error, which chaos_soak compares against the
/// fault-free run's.
pub fn run_neural_chaos(
    nodes: usize,
    p: usize,
    cfg: &NeuralConfig,
    plan: Arc<FaultPlan>,
) -> (AppRun, f64) {
    run_neural_faulty(nodes, p, cfg, Some(plan))
}

fn run_neural_faulty(
    nodes: usize,
    p: usize,
    cfg: &NeuralConfig,
    faults: Option<Arc<FaultPlan>>,
) -> (AppRun, f64) {
    let h = boot(nodes, PolicyKind::Platinum, faults);
    let mut zone = h.alloc_zone(NeuralLayout::zone_pages());
    let lay = NeuralLayout::alloc(&mut zone);
    h.run(1, |_, ctx| neural::init(ctx, &lay));
    // Owners first-touch their units' weight pages (local placement).
    h.run(p, |tid, ctx| neural::init_owned_weights(ctx, &lay, tid, p));
    let (_, run) = h.run(p, |tid, ctx| neural::train(ctx, &lay, cfg, tid, p));
    let (errors, _) = h.run(1, |_, ctx| neural::total_error(ctx, &lay));
    (
        AppRun {
            elapsed_ns: run.elapsed_ns(),
            checksum: 0,
            kernel_stats: h.kernel.stats().snapshot(),
            run,
        },
        errors[0],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_gauss() -> GaussConfig {
        GaussConfig::with_n(48)
    }

    #[test]
    fn gauss_shared_matches_reference_across_p() {
        let cfg = small_gauss();
        let expect = gauss::reference_checksum(&cfg);
        for p in [1, 2, 4] {
            let run = run_gauss(GaussStyle::Shared(PolicyKind::Platinum), 4, p, &cfg);
            assert_eq!(run.checksum, expect, "p={p} diverged");
        }
    }

    #[test]
    fn gauss_all_styles_agree() {
        let cfg = small_gauss();
        let expect = gauss::reference_checksum(&cfg);
        for style in [
            GaussStyle::Shared(PolicyKind::Platinum),
            GaussStyle::Shared(PolicyKind::NeverReplicate),
            GaussStyle::Shared(PolicyKind::AlwaysReplicate),
            GaussStyle::Shared(PolicyKind::AceStyle),
            GaussStyle::UniformSystem,
            GaussStyle::MessagePassing,
        ] {
            eprintln!("style: {}", style.name());
            let run = run_gauss(style, 4, 3, &cfg);
            assert_eq!(run.checksum, expect, "{} diverged", style.name());
        }
    }

    #[test]
    fn gauss_parallel_is_faster() {
        // Needs a problem big enough that per-round elimination work
        // dominates the per-round pivot replication overhead (~1.34 ms);
        // tiny matrices genuinely do not speed up, as inequality (2)
        // predicts.
        let cfg = GaussConfig::with_n(192);
        let t1 = run_gauss(GaussStyle::Shared(PolicyKind::Platinum), 4, 1, &cfg).elapsed_ns;
        let t4 = run_gauss(GaussStyle::Shared(PolicyKind::Platinum), 4, 4, &cfg).elapsed_ns;
        assert!(t4 < t1, "4 processors must beat 1: t1={t1} t4={t4}");
    }

    #[test]
    fn mergesort_platinum_and_uma_verify() {
        let cfg = SortConfig::with_n(1 << 12);
        let pl = run_mergesort_platinum(4, 4, &cfg);
        assert!(pl.elapsed_ns > 0);
        let uma = run_mergesort_uma(4, 4, &cfg);
        assert!(uma.elapsed_ns > 0);
    }

    #[test]
    fn neural_trains_and_freezes_pages() {
        let cfg = NeuralConfig::with_epochs(8);
        let (run, _err) = run_neural(4, 4, &cfg);
        assert!(
            run.kernel_stats.freezes > 0,
            "fine-grain sharing must freeze pages: {:?}",
            run.kernel_stats
        );
        assert!(
            run.kernel_stats.remote_maps > 0,
            "frozen pages are remote-mapped"
        );
    }
}
