//! Gaussian elimination (§5.1 of the paper, Figure 1).
//!
//! "This particular problem was chosen because it was used in performance
//! studies of programming systems on earlier versions of the Butterfly.
//! It simulates Gaussian elimination in the sense that it uses integer
//! rather than floating-point operations, thus emphasizing the relative
//! impact of memory performance."
//!
//! Three implementations of the same computation, one per programming
//! system in LeBlanc's comparison:
//!
//! * [`run_shared`] — the PLATINUM style: one thread per processor,
//!   statically allocated rows, the pivot row read through transparent
//!   coherent memory (17 lines of elimination-phase code in the paper).
//!   Also serves as the static-placement baseline when the kernel runs
//!   the `NeverReplicate` policy.
//! * [`run_uniform_system`] — the Uniform System style: static data
//!   placement plus an *explicit* copy of the pivot row into a private
//!   buffer each round (the coarse-grain version LeBlanc found fastest
//!   on the US).
//! * [`run_message_passing`] — the SMP style: private rows, the pivot row
//!   broadcast down a binomial tree of port messages.
//!
//! All variants compute bit-identical results (wrapping integer
//! arithmetic, elimination without pivoting), so cross-variant checksum
//! equality is a strong end-to-end test of the whole stack.

use numa_machine::{Mem, Va};
use platinum::{Port, UserCtx};
use platinum_runtime::sync::EventCount;
use platinum_runtime::zones::Zone;

/// Problem configuration.
#[derive(Clone, Debug)]
pub struct GaussConfig {
    /// Matrix dimension (the paper uses 800).
    pub n: usize,
    /// Modelled computation per eliminated element, ns. On the 16.67 MHz
    /// MC68020 an integer multiply alone takes ~2.6 us; with the
    /// subtract, indexing, and loop overhead an eliminated element costs
    /// about 3 us of CPU work.
    pub compute_ns_per_elem: u64,
    /// Seed for the initial matrix contents.
    pub seed: u64,
}

impl GaussConfig {
    /// The default configuration at matrix dimension `n` — the one way
    /// every harness and benchmark derives a sized problem, so the seed
    /// and compute model stay single-sourced here.
    pub fn with_n(n: usize) -> Self {
        Self {
            n,
            ..Default::default()
        }
    }
}

impl Default for GaussConfig {
    fn default() -> Self {
        Self {
            n: 800,
            compute_ns_per_elem: 3000,
            seed: 0x5EED_1234,
        }
    }
}

/// The shared-memory layout: matrix rows are page-aligned (one or more
/// pages per row) so rows owned by different threads never share a page —
/// the §6 allocation discipline.
#[derive(Clone, Debug)]
pub struct GaussLayout {
    /// Base of row 0.
    pub matrix: Va,
    /// Distance between consecutive rows, in words.
    pub row_stride_words: usize,
    /// Matrix dimension.
    pub n: usize,
}

impl GaussLayout {
    /// Allocates the matrix from `zone`, one page-aligned region per row.
    pub fn alloc(zone: &mut Zone, n: usize, page_words: usize) -> Self {
        let stride = n.div_ceil(page_words) * page_words;
        let matrix = zone.alloc_page_aligned(stride * n);
        Self {
            matrix,
            row_stride_words: stride,
            n,
        }
    }

    /// The address of element (row, col).
    #[inline]
    pub fn elem(&self, row: usize, col: usize) -> Va {
        self.matrix + 4 * (row * self.row_stride_words + col) as u64
    }

    /// The number of pages the matrix occupies.
    pub fn pages(&self, page_words: usize) -> usize {
        (self.row_stride_words * self.n).div_ceil(page_words)
    }

    /// Pages a zone must hold so [`GaussLayout::alloc`] succeeds for an
    /// `n`×`n` matrix: the page-aligned rows plus alignment slop. The
    /// single source of truth for every harness that sizes a gauss zone.
    pub fn zone_pages(n: usize, page_words: usize) -> usize {
        let stride = n.div_ceil(page_words) * page_words;
        (stride * n).div_ceil(page_words) + 2
    }
}

/// Deterministic initial value for element (i, j).
#[inline]
fn initial(seed: u64, i: usize, j: usize) -> i32 {
    let x = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((i as u64) << 32 | j as u64)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9);
    ((x >> 24) as i32) % 1000 + 1
}

/// Rows owned by `tid` of `p` (interleaved static allocation).
#[inline]
pub fn owns(tid: usize, p: usize, row: usize) -> bool {
    row % p == tid
}

/// Initializes the rows owned by `tid`: first touch places each row on
/// its owner's node.
pub fn init_owned_rows<M: Mem>(
    m: &mut M,
    lay: &GaussLayout,
    cfg: &GaussConfig,
    tid: usize,
    p: usize,
) {
    let mut buf = vec![0u32; lay.n];
    for row in (0..lay.n).filter(|r| owns(tid, p, *r)) {
        for (j, b) in buf.iter_mut().enumerate() {
            *b = initial(cfg.seed, row, j) as u32;
        }
        m.write_block(lay.elem(row, 0), &buf);
    }
}

/// The memory node the Uniform System's scatter storage places `row` on:
/// pseudo-random, decoupled from task ownership.
#[inline]
pub fn scatter_node(row: usize, nodes: usize) -> usize {
    ((row as u64).wrapping_mul(2654435761) >> 16) as usize % nodes
}

/// Initializes the rows that scatter storage places on `node` — the
/// Uniform System's storage discipline spreads data over the whole
/// machine regardless of which task will use it, so most references are
/// remote at any processor count.
pub fn init_scattered_rows<M: Mem>(
    m: &mut M,
    lay: &GaussLayout,
    cfg: &GaussConfig,
    node: usize,
    nodes: usize,
) {
    let mut buf = vec![0u32; lay.n];
    for row in (0..lay.n).filter(|r| scatter_node(*r, nodes) == node) {
        for (j, b) in buf.iter_mut().enumerate() {
            *b = initial(cfg.seed, row, j) as u32;
        }
        m.write_block(lay.elem(row, 0), &buf);
    }
}

/// One thread's elimination loop over shared coherent memory.
///
/// The pivot row for round `k` is ready once event count `ec` reaches
/// `k + 1`; the owner of row `k + 1` advances `ec` as soon as it has
/// updated that row, pipelining rounds exactly as the coarse-grain
/// implementation in the paper.
pub fn run_shared<M: Mem>(
    m: &mut M,
    lay: &GaussLayout,
    cfg: &GaussConfig,
    ec: &EventCount,
    tid: usize,
    p: usize,
) {
    let n = lay.n;
    let mut pivot = vec![0u32; n];
    let mut row_buf = vec![0u32; n];
    if tid == 0 {
        // Row 0 is final as soon as initialization finished.
        ec.advance(m);
    }
    for k in 0..n.saturating_sub(1) {
        ec.await_at_least(m, k as u32 + 1);
        let width = n - k;
        for i in (k + 1..n).filter(|r| owns(tid, p, *r)) {
            // Transparent style: the inner loop reads the pivot row from
            // coherent memory for every row it eliminates (the natural
            // `a[k][j]` indexing of the 17-line version). The first touch
            // faults and (policy permitting) replicates the page, after
            // which all these references are local.
            m.read_block(lay.elem(k, k), &mut pivot[..width]);
            m.read_block(lay.elem(i, k), &mut row_buf[..width]);
            eliminate(&mut row_buf[..width], &pivot[..width]);
            m.compute(cfg.compute_ns_per_elem * width as u64);
            m.write_block(lay.elem(i, k), &row_buf[..width]);
            if i == k + 1 {
                ec.advance(m);
            }
        }
    }
}

/// The elimination kernel: `row -= factor * pivot`, wrapping integer
/// arithmetic (the "simulated" elimination of the paper — no pivoting, no
/// division).
#[inline]
fn eliminate(row: &mut [u32], pivot: &[u32]) {
    let factor = row[0] as i32;
    for (r, &pv) in row.iter_mut().zip(pivot.iter()) {
        *r = (*r as i32).wrapping_sub(factor.wrapping_mul(pv as i32)) as u32;
    }
}

/// The §4.2 anecdote: the same elimination loop, but with the paper's
/// two pathologies built in. A shared "matrix size" variable at
/// `msize_va` is read in the termination test of the inner loop (one
/// read per element), and a barrier is taken at the start of the
/// elimination phase. When the harness co-locates the barrier's words
/// with `msize_va` on one page, the barrier traffic freezes that page
/// and every inner-loop read becomes a remote reference — "this
/// dramatically increased the execution time and became a bottleneck
/// with five or more processors". Thawing (the defrost daemon) or
/// separated allocation recovers the performance.
#[allow(clippy::too_many_arguments)] // mirrors run_shared + the anecdote's two extra knobs
pub fn run_shared_anecdote<M: Mem>(
    m: &mut M,
    lay: &GaussLayout,
    cfg: &GaussConfig,
    ec: &EventCount,
    tid: usize,
    p: usize,
    msize_va: Va,
    start: &platinum_runtime::sync::Barrier,
) {
    // The spin-lock barrier at the start of the elimination phase.
    start.wait(m);
    let n = lay.n;
    let mut pivot = vec![0u32; n];
    let mut row_buf = vec![0u32; n];
    if tid == 0 {
        ec.advance(m);
    }
    for k in 0..n.saturating_sub(1) {
        ec.await_at_least(m, k as u32 + 1);
        let width = n - k;
        m.read_block(lay.elem(k, k), &mut pivot[..width]);
        for i in (k + 1..n).filter(|r| owns(tid, p, *r)) {
            m.read_block(lay.elem(i, k), &mut row_buf[..width]);
            // The inner loop's termination test reads the shared matrix
            // size once per element.
            let mut j = 0;
            while j < width {
                let _n_now = m.read(msize_va);
                j += 1;
            }
            eliminate(&mut row_buf[..width], &pivot[..width]);
            m.compute(cfg.compute_ns_per_elem * width as u64);
            m.write_block(lay.elem(i, k), &row_buf[..width]);
            if i == k + 1 {
                ec.advance(m);
            }
        }
    }
}

/// The Uniform-System-style thread body: the same coarse-grain
/// row-partitioned computation, run over scatter-stored data with no
/// replication — every reference to a row stored on another node crosses
/// the switch, at every processor count.
///
/// Run it on a kernel configured with the `NeverReplicate` policy and
/// initialize the matrix with [`init_scattered_rows`].
pub fn run_uniform_system<M: Mem>(
    m: &mut M,
    lay: &GaussLayout,
    cfg: &GaussConfig,
    ec: &EventCount,
    tid: usize,
    p: usize,
) {
    // Same structure; the differences are the policy the kernel runs
    // (static placement) and the scattered storage, which together make
    // the block reads remote.
    run_shared(m, lay, cfg, ec, tid, p)
}

/// The SMP-style message-passing implementation: each thread keeps its
/// rows in pages nobody else ever touches, and the pivot row travels by
/// port messages down a binomial broadcast tree rooted at the owner.
///
/// `ports[t]` is thread `t`'s receive port.
pub fn run_message_passing(
    ctx: &mut UserCtx,
    lay: &GaussLayout,
    cfg: &GaussConfig,
    ports: &[std::sync::Arc<Port>],
    tid: usize,
    p: usize,
) {
    let n = lay.n;
    let mut pivot = vec![0u32; n];
    let mut row_buf = vec![0u32; n];
    // Messages are tagged with their round (word 0) because broadcast
    // trees of adjacent rounds overlap in time: a fast sender's round
    // k+1 message can reach a port before a slow parent's round k
    // message. Early arrivals are stashed until their round comes up.
    let mut stash: std::collections::HashMap<u32, Vec<u32>> = std::collections::HashMap::new();
    for k in 0..n.saturating_sub(1) {
        let width = n - k;
        let owner = k % p;
        if tid == owner {
            ctx.read_block(lay.elem(k, k), &mut pivot[..width]);
        } else {
            let body = match stash.remove(&(k as u32)) {
                Some(body) => body,
                None => loop {
                    let msg = ctx.port_recv(&ports[tid]);
                    let round = msg[0];
                    let body = msg[1..].to_vec();
                    if round == k as u32 {
                        break body;
                    }
                    stash.insert(round, body);
                },
            };
            pivot[..width].copy_from_slice(&body);
        }
        // Binomial-tree forwarding: rank relative to the owner; rank r
        // forwards to r + 2^j for each 2^j > r.
        let rank = (tid + p - owner) % p;
        let mut step = 1usize;
        while step < p {
            if rank < step && rank + step < p {
                let dest = (owner + rank + step) % p;
                let mut msg = Vec::with_capacity(width + 1);
                msg.push(k as u32);
                msg.extend_from_slice(&pivot[..width]);
                ctx.port_send(&ports[dest], &msg);
            }
            step <<= 1;
        }
        for i in (k + 1..n).filter(|r| owns(tid, p, *r)) {
            ctx.read_block(lay.elem(i, k), &mut row_buf[..width]);
            eliminate(&mut row_buf[..width], &pivot[..width]);
            ctx.compute(cfg.compute_ns_per_elem * width as u64);
            ctx.write_block(lay.elem(i, k), &row_buf[..width]);
        }
    }
}

/// Checksum of the eliminated matrix (wrapping sum of all words): equal
/// across processor counts and across the three variants.
pub fn checksum<M: Mem>(m: &mut M, lay: &GaussLayout) -> u64 {
    let mut buf = vec![0u32; lay.n];
    let mut sum = 0u64;
    for row in 0..lay.n {
        m.read_block(lay.elem(row, 0), &mut buf);
        for &w in &buf {
            sum = sum.wrapping_mul(31).wrapping_add(u64::from(w));
        }
    }
    sum
}

/// Reference single-threaded elimination on host memory, for oracle
/// checks in tests.
pub fn reference_checksum(cfg: &GaussConfig) -> u64 {
    let n = cfg.n;
    let mut a: Vec<Vec<i32>> = (0..n)
        .map(|i| (0..n).map(|j| initial(cfg.seed, i, j)).collect())
        .collect();
    for k in 0..n.saturating_sub(1) {
        for i in k + 1..n {
            let factor = a[i][k];
            let (rows_k, rows_i) = a.split_at_mut(i);
            let (pivot, row) = (&rows_k[k], &mut rows_i[0]);
            for j in k..n {
                row[j] = row[j].wrapping_sub(factor.wrapping_mul(pivot[j]));
            }
        }
    }
    let mut sum = 0u64;
    for row in &a {
        for &v in row {
            sum = sum.wrapping_mul(31).wrapping_add(u64::from(v as u32));
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ownership_is_partition() {
        let p = 4;
        for row in 0..100 {
            let owners: Vec<usize> = (0..p).filter(|t| owns(*t, p, row)).collect();
            assert_eq!(owners.len(), 1, "each row has exactly one owner");
        }
    }

    #[test]
    fn initial_values_deterministic_and_nonzero() {
        assert_eq!(initial(1, 2, 3), initial(1, 2, 3));
        assert_ne!(initial(1, 2, 3), initial(1, 3, 2));
        for i in 0..50 {
            for j in 0..50 {
                let v = initial(42, i, j);
                assert!((-999..=1000).contains(&v));
            }
        }
    }

    #[test]
    fn eliminate_kernel_matches_reference() {
        let mut row = [10u32, 20, 30];
        let pivot = [2u32, 3, 4];
        eliminate(&mut row, &pivot);
        // factor = 10: row[j] -= 10 * pivot[j]
        assert_eq!(row[0] as i32, 10 - 10 * 2);
        assert_eq!(row[1] as i32, 20 - 10 * 3);
        assert_eq!(row[2] as i32, 30 - 10 * 4);
    }

    #[test]
    fn layout_rows_are_page_disjoint() {
        let mut zone = Zone::new(0x10000, 1 << 20, 1024);
        let lay = GaussLayout::alloc(&mut zone, 100, 1024);
        // 100 columns fit one 1024-word page; stride is a whole page.
        assert_eq!(lay.row_stride_words, 1024);
        let page = |va: Va| va / 4096;
        assert_ne!(page(lay.elem(0, 99)), page(lay.elem(1, 0)));
    }

    #[test]
    fn reference_checksum_stable() {
        let cfg = GaussConfig {
            n: 24,
            ..Default::default()
        };
        let a = reference_checksum(&cfg);
        let b = reference_checksum(&cfg);
        assert_eq!(a, b);
        let other = reference_checksum(&GaussConfig {
            n: 24,
            seed: 1,
            ..Default::default()
        });
        assert_ne!(a, other);
    }
}
