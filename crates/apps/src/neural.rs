//! The recurrent-backpropagation network simulator (§5.3, Figure 6).
//!
//! "A simulator used by neural network researchers at the University of
//! Rochester studying recurrent backpropagation networks. ... the
//! simulator operates on much less data and at a very fine granularity.
//! ... a three layer network learning a classic encoder problem. There
//! were 40 units and 16 pairs of inputs and outputs. The simulator is
//! parallelized by simple for-loop parallelization on units. Each
//! processor continually simulates a set of units depending only on the
//! atomicity of memory operations for synchronization."
//!
//! The network is a 16-8-16 encoder (40 units). Arithmetic is Q16
//! fixed point, matching the word-granular machine. There is *no*
//! synchronization between processors: activations, deltas, and weights
//! are read and written racily, exactly as the paper describes — the
//! interleaved fine-grain writes are what freezes the shared pages, and
//! the frozen remote accesses are what limits each extra processor to
//! about half the contribution of a local-only processor (Figure 6).

use numa_machine::{Mem, Va};
use platinum_runtime::zones::Zone;

/// Number of input units (and output units) of the encoder.
pub const INPUTS: usize = 16;
/// Number of hidden units.
pub const HIDDEN: usize = 8;
/// Number of output units.
pub const OUTPUTS: usize = 16;
/// Total units, as in the paper.
pub const UNITS: usize = INPUTS + HIDDEN + OUTPUTS;
/// Training patterns (input/output pairs).
pub const PATTERNS: usize = 16;

/// One in Q16 fixed point.
const ONE: i32 = 1 << 16;

/// Simulator configuration.
#[derive(Clone, Debug)]
pub struct NeuralConfig {
    /// Training epochs (sweeps over all patterns).
    pub epochs: usize,
    /// Learning rate in Q16.
    pub eta_q16: i32,
    /// Modelled cost of one multiply-accumulate. The original simulator
    /// did floating-point arithmetic; on the 16.67 MHz MC68020 with
    /// coprocessor support an FP multiply-add lands around 5 us.
    pub compute_ns_per_mac: u64,
    /// Modelled cost of one activation-function evaluation.
    pub compute_ns_per_act: u64,
}

impl NeuralConfig {
    /// The default configuration trained for `epochs` — learning rate
    /// and compute model stay single-sourced in [`Default`].
    pub fn with_epochs(epochs: usize) -> Self {
        Self {
            epochs,
            ..Default::default()
        }
    }
}

impl Default for NeuralConfig {
    fn default() -> Self {
        Self {
            epochs: 40,
            eta_q16: ONE / 2,
            compute_ns_per_mac: 9000,
            compute_ns_per_act: 15000,
        }
    }
}

/// Shared-memory layout: one *unit record* page per unit, as the
/// original simulator's per-unit data structures would lay out.
///
/// Unit `u`'s record holds its activation (word 0), its error term
/// (word 1), and its incoming weights (words 2..). A record is written
/// only by the unit's owner but read by every processor whose units
/// connect to `u` — fine-grain read-write sharing on all 40 record
/// pages. The policy freezes each record on its owner's node, so owners
/// access their units locally while every cross-unit reference goes
/// remote: exactly the "extensive use of remote accesses" of Figure 6,
/// with the hot data spread over all the nodes.
#[derive(Clone, Debug)]
pub struct NeuralLayout {
    /// Base of unit 0's record page.
    pub records: Va,
    /// Page stride between unit records, in words.
    pub unit_stride_words: usize,
    /// The training patterns (one-hot), `PATTERNS * INPUTS` Q16 words,
    /// read-only once initialized.
    pub patterns: Va,
}

/// Word offset of the activation within a unit record.
const REC_ACT: usize = 0;
/// Word offset of the error term within a unit record.
const REC_DELTA: usize = 1;
/// Word offset of the first incoming weight within a unit record.
const REC_W: usize = 2;

impl NeuralLayout {
    /// Pages a zone must hold so [`NeuralLayout::alloc`] succeeds: one
    /// page per unit record plus the pattern pages.
    pub fn zone_pages() -> usize {
        UNITS + 2
    }

    /// Allocates the unit records (one page each) and the pattern page.
    pub fn alloc(zone: &mut Zone) -> Self {
        let stride = zone.page_words();
        let records = zone.alloc_page_aligned(stride * UNITS);
        Self {
            records,
            unit_stride_words: stride,
            patterns: zone.alloc_page_aligned(PATTERNS * INPUTS),
        }
    }

    /// Address of a field of unit `u`'s record.
    #[inline]
    fn rec(&self, u: usize, field: usize) -> Va {
        self.records + 4 * (u * self.unit_stride_words + field) as u64
    }

    /// Address of unit `u`'s activation.
    #[inline]
    pub fn act(&self, u: usize) -> Va {
        self.rec(u, REC_ACT)
    }

    /// Address of unit `u`'s error term.
    #[inline]
    pub fn delta(&self, u: usize) -> Va {
        self.rec(u, REC_DELTA)
    }

    /// Address of `w1[i][h]` (input `i` to hidden `h`), in hidden unit
    /// `h`'s record.
    #[inline]
    pub fn w1(&self, i: usize, h: usize) -> Va {
        self.rec(INPUTS + h, REC_W + i)
    }

    /// Address of `w2[h][o]` (hidden `h` to output `o`), in output unit
    /// `o`'s record.
    #[inline]
    pub fn w2(&self, h: usize, o: usize) -> Va {
        self.rec(INPUTS + HIDDEN + o, REC_W + h)
    }
}

/// Q16 multiply.
#[inline]
fn qmul(a: i32, b: i32) -> i32 {
    ((i64::from(a) * i64::from(b)) >> 16) as i32
}

/// Hard sigmoid in Q16: clamp(x/4 + 1/2, 0, 1).
#[inline]
fn sigmoid(x: i32) -> i32 {
    (x / 4 + ONE / 2).clamp(0, ONE)
}

/// Derivative of the hard sigmoid at pre-activation `x` (0.25 inside the
/// linear region, a small epsilon outside so learning never stalls).
#[inline]
fn dsigmoid(x: i32) -> i32 {
    if (-2 * ONE..=2 * ONE).contains(&x) {
        ONE / 4
    } else {
        ONE / 64
    }
}

/// Deterministic small initial weight.
#[inline]
fn init_weight(seed: u64, idx: usize) -> i32 {
    let x = (idx as u64 ^ seed).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    // In [-0.25, 0.25) Q16.
    ((x >> 40) as i32 & 0x7FFF) - 0x4000
}

/// Initializes the read-only pattern page; call once from a single
/// context before spawning workers.
pub fn init<M: Mem>(m: &mut M, lay: &NeuralLayout) {
    for pat in 0..PATTERNS {
        for i in 0..INPUTS {
            let v = if i == pat { ONE } else { 0 };
            m.write(lay.patterns + 4 * (pat * INPUTS + i) as u64, v as u32);
        }
    }
}

/// Initializes the records of the units owned by `tid`: first touch
/// places each unit's record page on its owner's node.
pub fn init_owned_weights<M: Mem>(m: &mut M, lay: &NeuralLayout, tid: usize, p: usize) {
    for u in (0..UNITS).filter(|u| owns_unit(tid, p, *u)) {
        m.write(lay.act(u), 0);
        m.write(lay.delta(u), 0);
    }
    for h in (0..HIDDEN).filter(|u| owns_unit(tid, p, INPUTS + *u)) {
        for i in 0..INPUTS {
            m.write(lay.w1(i, h), init_weight(1, i * HIDDEN + h) as u32);
        }
    }
    for o in (0..OUTPUTS).filter(|u| owns_unit(tid, p, INPUTS + HIDDEN + *u)) {
        for h in 0..HIDDEN {
            m.write(lay.w2(h, o), init_weight(2, h * OUTPUTS + o) as u32);
        }
    }
}

#[inline]
fn read_q<M: Mem>(m: &mut M, base: Va, idx: usize) -> i32 {
    m.read(base + 4 * idx as u64) as i32
}

/// Whether unit `u` belongs to processor `tid` of `p` (for-loop
/// parallelization on units).
#[inline]
pub fn owns_unit(tid: usize, p: usize, u: usize) -> bool {
    u % p == tid
}

/// One processor's training loop over its units. Completely
/// unsynchronized: other processors' activations and deltas are read
/// whenever they happen to be current, "depending only on the atomicity
/// of memory operations".
pub fn train<M: Mem>(m: &mut M, lay: &NeuralLayout, cfg: &NeuralConfig, tid: usize, p: usize) {
    for _epoch in 0..cfg.epochs {
        for pat in 0..PATTERNS {
            step_pattern(m, lay, cfg, tid, p, pat);
        }
    }
}

/// One pattern presentation for the units owned by `tid`.
fn step_pattern<M: Mem>(
    m: &mut M,
    lay: &NeuralLayout,
    cfg: &NeuralConfig,
    tid: usize,
    p: usize,
    pat: usize,
) {
    // Load input activations for owned input units.
    for i in (0..INPUTS).filter(|u| owns_unit(tid, p, *u)) {
        let v = read_q(m, lay.patterns, pat * INPUTS + i);
        m.write(lay.act(i), v as u32);
    }
    // Forward: hidden.
    for h in (0..HIDDEN).filter(|u| owns_unit(tid, p, INPUTS + *u)) {
        let mut net = 0i32;
        for i in 0..INPUTS {
            let x = m.read(lay.act(i)) as i32;
            let w = m.read(lay.w1(i, h)) as i32;
            net = net.wrapping_add(qmul(w, x));
            m.compute(cfg.compute_ns_per_mac);
        }
        m.write(lay.act(INPUTS + h), sigmoid(net) as u32);
        m.write(lay.delta(INPUTS + h), dsigmoid(net) as u32);
        m.compute(cfg.compute_ns_per_act);
    }
    // Forward + delta + weight update: output.
    for o in (0..OUTPUTS).filter(|u| owns_unit(tid, p, INPUTS + HIDDEN + *u)) {
        let mut net = 0i32;
        for h in 0..HIDDEN {
            let a = m.read(lay.act(INPUTS + h)) as i32;
            let w = m.read(lay.w2(h, o)) as i32;
            net = net.wrapping_add(qmul(w, a));
            m.compute(cfg.compute_ns_per_mac);
        }
        let out = sigmoid(net);
        m.write(lay.act(INPUTS + HIDDEN + o), out as u32);
        m.compute(cfg.compute_ns_per_act);
        let target = if o == pat { ONE } else { 0 };
        let delta = qmul(target.wrapping_sub(out), dsigmoid(net));
        m.write(lay.delta(INPUTS + HIDDEN + o), delta as u32);
        // Update incoming weights (racy reads of hidden activations).
        for h in 0..HIDDEN {
            let a = m.read(lay.act(INPUTS + h)) as i32;
            let va = lay.w2(h, o);
            let w = m.read(va) as i32;
            m.write(va, w.wrapping_add(qmul(cfg.eta_q16, qmul(delta, a))) as u32);
            m.compute(2 * cfg.compute_ns_per_mac);
        }
    }
    // Backward: hidden deltas and first-layer weight updates.
    for h in (0..HIDDEN).filter(|u| owns_unit(tid, p, INPUTS + *u)) {
        let mut err = 0i32;
        for o in 0..OUTPUTS {
            let d = m.read(lay.delta(INPUTS + HIDDEN + o)) as i32;
            // Reading the output units' records from the hidden units'
            // owners is the irreducible fine-grain sharing of
            // backpropagation.
            let w = m.read(lay.w2(h, o)) as i32;
            err = err.wrapping_add(qmul(w, d));
            m.compute(cfg.compute_ns_per_mac);
        }
        let dh = qmul(err, m.read(lay.delta(INPUTS + h)) as i32);
        for i in 0..INPUTS {
            let x = m.read(lay.act(i)) as i32;
            let va = lay.w1(i, h);
            let w = m.read(va) as i32;
            m.write(va, w.wrapping_add(qmul(cfg.eta_q16, qmul(dh, x))) as u32);
            m.compute(2 * cfg.compute_ns_per_mac);
        }
    }
}

/// Evaluates the network on all patterns from one context (no learning),
/// returning the summed absolute output error in floating point (where
/// 1.0 is a full-scale error on one output).
pub fn total_error<M: Mem>(m: &mut M, lay: &NeuralLayout) -> f64 {
    let mut err = 0i64;
    for pat in 0..PATTERNS {
        let mut hidden = [0i32; HIDDEN];
        for (h, hv) in hidden.iter_mut().enumerate() {
            let mut net = 0i32;
            for i in 0..INPUTS {
                let x = read_q(m, lay.patterns, pat * INPUTS + i);
                let w = m.read(lay.w1(i, h)) as i32;
                net = net.wrapping_add(qmul(w, x));
            }
            *hv = sigmoid(net);
        }
        for o in 0..OUTPUTS {
            let mut net = 0i32;
            for (h, &hv) in hidden.iter().enumerate() {
                let w = m.read(lay.w2(h, o)) as i32;
                net = net.wrapping_add(qmul(w, hv));
            }
            let out = sigmoid(net);
            let target = if o == pat { ONE } else { 0 };
            err += i64::from((target - out).abs());
        }
    }
    err as f64 / f64::from(ONE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_machine::mem_iface::test_support::FlatMem;
    use platinum_runtime::zones::Zone;

    fn setup() -> (FlatMem, NeuralLayout) {
        let mut m = FlatMem::new(0, 1);
        let mut zone = Zone::new(0x1000, 1 << 16, 1024);
        let lay = NeuralLayout::alloc(&mut zone);
        init(&mut m, &lay);
        init_owned_weights(&mut m, &lay, 0, 1);
        (m, lay)
    }

    #[test]
    fn fixed_point_helpers() {
        assert_eq!(qmul(ONE, ONE), ONE);
        assert_eq!(qmul(ONE / 2, ONE / 2), ONE / 4);
        assert_eq!(sigmoid(0), ONE / 2);
        assert_eq!(sigmoid(10 * ONE), ONE);
        assert_eq!(sigmoid(-10 * ONE), 0);
        assert_eq!(dsigmoid(0), ONE / 4);
        assert_eq!(dsigmoid(5 * ONE), ONE / 64);
    }

    #[test]
    fn unit_partition() {
        for u in 0..UNITS {
            let owners: Vec<usize> = (0..4).filter(|t| owns_unit(*t, 4, u)).collect();
            assert_eq!(owners.len(), 1);
        }
    }

    #[test]
    fn training_reduces_error_single_proc() {
        let (mut m, lay) = setup();
        let before = total_error(&mut m, &lay);
        let cfg = NeuralConfig {
            epochs: 60,
            ..Default::default()
        };
        train(&mut m, &lay, &cfg, 0, 1);
        let after = total_error(&mut m, &lay);
        assert!(
            after < before * 0.7,
            "training must reduce error: {before} -> {after}"
        );
    }

    #[test]
    fn patterns_are_one_hot() {
        let (mut m, lay) = setup();
        for pat in 0..PATTERNS {
            let mut sum = 0i64;
            for i in 0..INPUTS {
                sum += i64::from(read_q(&mut m, lay.patterns, pat * INPUTS + i));
            }
            assert_eq!(sum, i64::from(ONE), "pattern {pat} must be one-hot");
        }
    }
}
