//! `platinum-apps`: the application programs of the PLATINUM paper.
//!
//! §5 reports measurements of three programs, each with a distinct
//! memory-access pattern; this crate implements all three, plus the
//! synthetic workloads used to validate the §4.1 migrate-vs-remote
//! analysis:
//!
//! * [`gauss`] — the simulated (integer) Gaussian elimination of §5.1 and
//!   Figure 1, in three programming styles: transparent shared memory
//!   (PLATINUM), Uniform-System style with static placement and explicit
//!   pivot copying, and SMP-style message passing over ports;
//! * [`mergesort`] — the tree merge sort of §5.2 and Figure 5, generic
//!   over [`numa_machine::Mem`] so the same code runs on PLATINUM and on
//!   the Sequent-like UMA comparator;
//! * [`neural`] — the recurrent-backpropagation encoder simulator of §5.3
//!   and Figure 6: fine-grain unsynchronized for-loop parallelism whose
//!   shared pages the policy correctly freezes;
//! * [`workloads`] — parameterized sharing patterns (round-robin shared
//!   structure access with controllable reference density) used to
//!   measure the §4.1 crossover empirically.
//!
//! Applications are written against the [`numa_machine::Mem`] trait and a
//! caller-provided memory layout, so the harness decides which machine,
//! kernel, and policy they run on.

#![warn(missing_docs)]

pub mod capture;
pub mod gauss;
pub mod harness;
pub mod mergesort;
pub mod neural;
pub mod workloads;
