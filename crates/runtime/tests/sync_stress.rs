//! Multithreaded stress tests of the synchronization primitives running
//! on real PLATINUM coherent memory: mutual exclusion, barrier
//! generations, and event-count ordering must all hold while the pages
//! underneath them freeze and thaw.

use platinum_runtime::par::PlatinumHarness;
use platinum_runtime::sync::{Barrier, EventCount, SpinLock};

use numa_machine::Mem;

#[test]
fn spinlock_provides_mutual_exclusion() {
    let h = PlatinumHarness::new(4);
    let mut zone = h.alloc_zone(2);
    let lock_va = zone.alloc_page_aligned(1);
    let counter = zone.alloc_page_aligned(1);
    let lock = SpinLock::new(lock_va);
    const OPS: u32 = 300;

    h.run(4, |_, ctx| {
        for _ in 0..OPS {
            lock.with(ctx, |ctx| {
                // Non-atomic read-modify-write: only safe under the lock.
                let v = ctx.read(counter);
                ctx.compute(1000);
                ctx.write(counter, v + 1);
            });
        }
    });
    let (vals, _) = h.run(1, |_, ctx| ctx.read(counter));
    assert_eq!(vals[0], 4 * OPS, "lost updates => mutual exclusion broken");
}

#[test]
fn lock_acquirer_inherits_release_time() {
    let h = PlatinumHarness::new(2);
    let mut zone = h.alloc_zone(1);
    let lock = SpinLock::new(zone.alloc_words(1));
    let (times, _) = h.run(2, |tid, ctx| {
        if tid == 0 {
            lock.acquire(ctx);
            ctx.compute(50_000_000); // hold for 50 ms
            lock.release(ctx);
            ctx.vtime()
        } else {
            // Give worker 0 a head start in real time so it usually wins
            // the lock first; either way the invariants below hold.
            std::thread::yield_now();
            lock.acquire(ctx);
            let t = ctx.vtime();
            lock.release(ctx);
            t
        }
    });
    // Whoever acquired second cannot have done so before the first
    // holder's release (minus nothing: release times propagate).
    let later = times[0].max(times[1]);
    assert!(
        later >= 50_000_000,
        "second acquisition at {later} ns cannot precede the 50 ms hold"
    );
}

#[test]
fn barrier_runs_many_generations() {
    let h = PlatinumHarness::new(4);
    let mut zone = h.alloc_zone(2);
    let counters = zone.alloc_page_aligned(4);
    let b1 = zone.alloc_page_aligned(2);
    let barrier = Barrier::new(b1, b1 + 4, 4);
    const ROUNDS: u32 = 40;

    h.run(4, |tid, ctx| {
        for round in 0..ROUNDS {
            // Phase A: everyone writes its own slot.
            ctx.write(counters + 4 * tid as u64, round);
            barrier.wait(ctx);
            // Phase B: everyone must see everyone's phase-A writes.
            for other in 0..4u64 {
                let v = ctx.read(counters + 4 * other);
                assert_eq!(v, round, "barrier failed to order round {round}");
            }
            barrier.wait(ctx);
        }
    });
}

#[test]
fn event_count_orders_producer_chain() {
    let h = PlatinumHarness::new(3);
    let mut zone = h.alloc_zone(2);
    let data = zone.alloc_page_aligned(64);
    let ec = EventCount::new(zone.alloc_page_aligned(1));
    const ITEMS: u32 = 48;

    h.run(3, |tid, ctx| {
        if tid == 0 {
            for i in 0..ITEMS {
                ctx.write(data + 4 * (i % 64) as u64, i + 1);
                ec.advance(ctx);
            }
        } else {
            for i in 0..ITEMS {
                ec.await_at_least(ctx, i + 1);
                let v = ctx.read(data + 4 * (i % 64) as u64);
                assert!(v > i, "consumer {tid} saw stale item {i}: {v}");
            }
        }
    });
    let (final_count, _) = h.run(1, |_, ctx| ec.current(ctx));
    assert_eq!(final_count[0], ITEMS);
}

#[test]
fn sync_pages_freeze_under_contention() {
    // The §4.2 phenomenon that motivates allocation zones: a heavily
    // contended lock page ends up frozen.
    let h = PlatinumHarness::new(4);
    let mut zone = h.alloc_zone(2);
    let lock = SpinLock::new(zone.alloc_page_aligned(1));
    let scratch = zone.alloc_page_aligned(4);
    h.run(4, |tid, ctx| {
        for _ in 0..60 {
            lock.with(ctx, |ctx| {
                let v = ctx.read(scratch);
                ctx.write(scratch, v + tid as u32);
            });
        }
    });
    let report = h.kernel.report();
    assert!(
        !report.ever_frozen().is_empty(),
        "contended synchronization pages must freeze:\n{report}"
    );
}
