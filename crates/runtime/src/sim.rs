//! One-call simulator setup: the [`SimBuilder`] fluent facade.
//!
//! Booting a PLATINUM simulation by hand takes five steps — machine
//! config, `Machine::new`, `Kernel::with_config`, `create_space`, and
//! per-thread `attach` — plus tracer and fault-plan installation for
//! instrumented runs. The builder folds all of that into one chain:
//!
//! ```
//! use platinum_runtime::sim::SimBuilder;
//! use platinum::PolicyKind;
//!
//! let sim = SimBuilder::nodes(4).policy(PolicyKind::Platinum).build();
//! let zone = sim.alloc_zone(1);
//! let v = sim.spawn(0, |ctx| {
//!     use numa_machine::Mem;
//!     ctx.write(zone.base(), 7);
//!     ctx.read(zone.base())
//! });
//! assert_eq!(v.unwrap(), 7);
//! ```

use std::path::{Path, PathBuf};
use std::sync::Arc;

use numa_machine::{Machine, MachineConfig, Topology};
use platinum::trace::{TraceConfig, Tracer};
use platinum::{
    AddressSpace, FaultPlan, Kernel, KernelConfig, PolicyKind, PtableConfig, ReplicationPolicy,
    Rights, ShootdownMode, UserCtx,
};

use crate::measure::RunStats;
use crate::par::run_workers;
use crate::zones::Zone;

/// Fluent builder for a booted simulation. Entry point: [`SimBuilder::nodes`].
///
/// Every knob is optional; the defaults are the paper's (PLATINUM policy,
/// per-processor-Pmap shootdown, 1 s defrost period) on a machine with a
/// deep enough frame pool that replication never hits memory pressure.
pub struct SimBuilder {
    nodes: usize,
    machine: Option<MachineConfig>,
    frames_per_node: Option<usize>,
    topology: Option<Topology>,
    policy: Option<Box<dyn ReplicationPolicy>>,
    kernel: KernelConfig,
    trace: Option<(PathBuf, TraceConfig)>,
}

impl SimBuilder {
    /// Starts a builder for a `nodes`-node machine (one processor + one
    /// memory module per node, BBN Butterfly Plus latencies).
    pub fn nodes(nodes: usize) -> Self {
        Self {
            nodes,
            machine: None,
            frames_per_node: None,
            topology: None,
            policy: None,
            kernel: KernelConfig::default(),
            trace: None,
        }
    }

    /// Replaces the whole machine configuration (overrides
    /// [`SimBuilder::nodes`] and [`SimBuilder::frames_per_node`]).
    pub fn machine_config(mut self, cfg: MachineConfig) -> Self {
        self.machine = Some(cfg);
        self
    }

    /// Physical frames per memory module (default 4096: deep enough that
    /// benchmarks replicate freely without frame exhaustion).
    pub fn frames_per_node(mut self, frames: usize) -> Self {
        self.frames_per_node = Some(frames);
        self
    }

    /// Installs a machine description (interconnect latency classes).
    /// Applies on top of whichever machine configuration the builder
    /// ends up with — the default one or an explicit
    /// [`SimBuilder::machine_config`] — so harnesses can vary the
    /// interconnect without re-stating frame counts or timing knobs.
    /// Without this, the machine resolves to the flat Butterfly built
    /// from its `TimingConfig`.
    pub fn topology(mut self, topo: Topology) -> Self {
        self.topology = Some(topo);
        self
    }

    /// Selects a placement policy by kind. The selector is also recorded
    /// in the kernel configuration, so `sim.kernel.config().policy`
    /// reports what the simulation was booted with.
    pub fn policy_kind(mut self, kind: PolicyKind) -> Self {
        self.kernel.policy = kind;
        self.policy = None;
        self
    }

    /// Selects a placement policy by kind (alias of
    /// [`SimBuilder::policy_kind`], kept for existing call sites).
    pub fn policy(self, kind: PolicyKind) -> Self {
        self.policy_kind(kind)
    }

    /// Installs a custom placement policy object (overrides
    /// [`SimBuilder::policy_kind`]).
    pub fn policy_box(mut self, policy: Box<dyn ReplicationPolicy>) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Replaces the whole kernel configuration (later shootdown/defrost/
    /// cmap/faults calls edit this).
    pub fn kernel_config(mut self, cfg: KernelConfig) -> Self {
        self.kernel = cfg;
        self
    }

    /// Selects the shootdown mechanism (PLATINUM's per-processor Pmap or
    /// the Mach-style shared-Pmap comparator).
    pub fn shootdown(mut self, mode: ShootdownMode) -> Self {
        self.kernel.shootdown = mode;
        self
    }

    /// Defrost daemon period t2, in virtual nanoseconds.
    pub fn defrost_ns(mut self, t2: u64) -> Self {
        self.kernel.t2_defrost_ns = t2;
        self
    }

    /// Number of Cmap directory shards (a host-side concurrency knob).
    pub fn cmap_shards(mut self, shards: usize) -> Self {
        self.kernel.cmap_shards = shards;
        self
    }

    /// Installs a protocol-event tracer at build time and remembers
    /// `path`; [`Sim::write_trace`] exports the Chrome/Perfetto JSON
    /// there after the run.
    pub fn trace(mut self, path: impl AsRef<Path>) -> Self {
        self.trace = Some((path.as_ref().to_path_buf(), TraceConfig::default()));
        self
    }

    /// Like [`SimBuilder::trace`] with an explicit ring capacity.
    pub fn trace_with(mut self, path: impl AsRef<Path>, cfg: TraceConfig) -> Self {
        self.trace = Some((path.as_ref().to_path_buf(), cfg));
        self
    }

    /// Installs a deterministic fault-injection plan. Without one, every
    /// injection hook in the kernel is a single pointer test.
    pub fn faults(mut self, plan: Arc<FaultPlan>) -> Self {
        self.kernel.faults = Some(plan);
        self
    }

    /// Configures the translation fabric: how page-table walks are
    /// charged and where translation structures live. The default
    /// (centralized placement) is bit-identical to a kernel without the
    /// subsystem.
    pub fn ptable(mut self, cfg: PtableConfig) -> Self {
        self.kernel.ptable = cfg;
        self
    }

    /// Boots the machine and kernel and creates the application's address
    /// space.
    ///
    /// # Panics
    ///
    /// Panics on an invalid machine configuration — simulation setup is
    /// programmer-controlled.
    pub fn build(self) -> Sim {
        let mut mcfg = self.machine.unwrap_or_else(|| {
            let mut c = MachineConfig::with_nodes(self.nodes);
            c.frames_per_node = self.frames_per_node.unwrap_or(4096);
            c
        });
        if self.topology.is_some() {
            mcfg.topology = self.topology;
        }
        let machine = Machine::new(mcfg).expect("valid machine config");
        let kernel = match self.policy {
            Some(policy) => Kernel::with_config(Arc::clone(&machine), policy, self.kernel),
            None => Kernel::from_config(Arc::clone(&machine), self.kernel),
        };
        let trace_path = self.trace.map(|(path, tcfg)| {
            kernel.install_tracer(Tracer::new(tcfg));
            path
        });
        let space = kernel.create_space();
        Sim {
            machine,
            kernel,
            space,
            trace_path,
        }
    }
}

/// A booted simulation: machine, kernel, and one application address
/// space, ready to attach threads.
pub struct Sim {
    /// The simulated NUMA machine.
    pub machine: Arc<Machine>,
    /// The kernel booted on it.
    pub kernel: Arc<Kernel>,
    /// The application's address space.
    pub space: Arc<AddressSpace>,
    trace_path: Option<PathBuf>,
}

impl Sim {
    /// The number of processors.
    pub fn nprocs(&self) -> usize {
        self.machine.nprocs()
    }

    /// Attaches a thread to `proc` in the application's space (virtual
    /// clock starting at 0). The returned context lives until dropped;
    /// at most one thread per processor.
    pub fn attach(&self, proc: usize) -> platinum::Result<UserCtx> {
        self.kernel.attach(Arc::clone(&self.space), proc, 0)
    }

    /// Attaches a thread to `proc`, runs `entry` on it, and detaches.
    pub fn spawn<R>(
        &self,
        proc: usize,
        entry: impl FnOnce(&mut UserCtx) -> R,
    ) -> platinum::Result<R> {
        let mut ctx = self.attach(proc)?;
        Ok(entry(&mut ctx))
    }

    /// Runs `f(worker_index, ctx)` on processors `0..n` in parallel and
    /// collects results plus per-worker statistics.
    pub fn run<F, R>(&self, n: usize, f: F) -> (Vec<R>, RunStats)
    where
        F: Fn(usize, &mut UserCtx) -> R + Sync,
        R: Send,
    {
        run_workers(&self.kernel, &self.space, n, f)
    }

    /// Creates a memory object of `pages` pages, maps it into the
    /// application's space, and wraps it as an allocation [`Zone`].
    pub fn alloc_zone(&self, pages: usize) -> Zone {
        let object = self.kernel.create_object(pages);
        let base = self
            .space
            .map_anywhere(object, Rights::RW)
            .expect("fresh mapping cannot conflict");
        let words = pages * self.machine.cfg().words_per_page();
        Zone::new(base, words, self.machine.cfg().words_per_page())
    }

    /// The tracer installed by [`SimBuilder::trace`], if any.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.kernel.tracer()
    }

    /// Exports the collected trace as Chrome/Perfetto JSON to the path
    /// given to [`SimBuilder::trace`]. Returns the path written, or
    /// `None` when no tracer was requested.
    pub fn write_trace(&self) -> std::io::Result<Option<&Path>> {
        let (Some(path), Some(tracer)) = (self.trace_path.as_deref(), self.kernel.tracer()) else {
            return Ok(None);
        };
        let json = platinum::trace::chrome::chrome_trace_string(&tracer.snapshot());
        std::fs::write(path, json)?;
        Ok(Some(path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_machine::Mem;

    #[test]
    fn builder_boots_and_spawns() {
        let sim = SimBuilder::nodes(2).policy(PolicyKind::Platinum).build();
        assert_eq!(sim.nprocs(), 2);
        let zone = sim.alloc_zone(1);
        let base = zone.base();
        let v = sim
            .spawn(0, |ctx| {
                ctx.write(base, 41);
                ctx.read(base) + 1
            })
            .expect("processor 0 free");
        assert_eq!(v, 42);
    }

    #[test]
    fn builder_full_chain_with_faults_and_trace() {
        let dir = std::env::temp_dir().join("platinum-simbuilder-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let sim = SimBuilder::nodes(2)
            .frames_per_node(256)
            .policy(PolicyKind::Platinum)
            .shootdown(ShootdownMode::PerProcessorPmap)
            .defrost_ns(1_000_000)
            .cmap_shards(4)
            .trace(&path)
            .faults(Arc::new(FaultPlan::chaos(7, 0))) // plan installed, rate 0
            .build();
        assert!(sim.kernel.fault_plan().is_some());
        let zone = sim.alloc_zone(1);
        let base = zone.base();
        let (vals, _) = sim.run(2, |i, ctx| {
            ctx.fetch_add(base, 1);
            i
        });
        assert_eq!(vals, vec![0, 1]);
        let written = sim.write_trace().expect("trace export");
        assert_eq!(written, Some(path.as_path()));
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("traceEvents"));
    }

    #[test]
    fn builder_default_defrost_matches_paper() {
        // §4.2: the defrost daemon period t2 is 1 second. The builder
        // must boot with exactly that unless overridden.
        let sim = SimBuilder::nodes(2).build();
        assert_eq!(sim.kernel.config().t2_defrost_ns, 1_000_000_000);
        let sim = SimBuilder::nodes(2).defrost_ns(5_000_000).build();
        assert_eq!(sim.kernel.config().t2_defrost_ns, 5_000_000);
    }

    #[test]
    fn policy_kind_selects_and_records() {
        for kind in PolicyKind::FIG1_SET {
            let sim = SimBuilder::nodes(2).policy_kind(kind).build();
            assert_eq!(sim.kernel.config().policy, kind);
            assert_eq!(sim.kernel.policy().name(), kind.build().name());
        }
        // An explicit policy object wins over the recorded kind.
        let sim = SimBuilder::nodes(2)
            .policy_kind(PolicyKind::RemoteAlways)
            .policy_box(Box::new(platinum::PlatinumPolicy::paper_default()))
            .build();
        assert_eq!(sim.kernel.policy().name(), "platinum");
    }

    #[test]
    fn builder_topology_applies_to_both_machine_paths() {
        use numa_machine::{TimingConfig, Topology};
        let t = TimingConfig::default();
        // Default machine path.
        let sim = SimBuilder::nodes(8)
            .topology(Topology::hier2(8, 2, &t))
            .build();
        assert_eq!(sim.machine.topology().name(), "hier2");
        // Explicit machine_config path: the topology still lands.
        let sim = SimBuilder::nodes(8)
            .machine_config(MachineConfig::with_nodes(8))
            .topology(Topology::hier2(8, 2, &t))
            .build();
        assert_eq!(sim.machine.topology().name(), "hier2");
        // No topology: the flat Butterfly default.
        let sim = SimBuilder::nodes(2).build();
        assert_eq!(sim.machine.topology().name(), "flat");
    }

    #[test]
    fn run_matches_harness_boilerplate() {
        // The facade and the hand-rolled boot produce the same simulation.
        let sim = SimBuilder::nodes(2).build();
        let by_hand = crate::par::PlatinumHarness::new(2);
        assert_eq!(sim.nprocs(), by_hand.nprocs());
        assert_eq!(
            sim.machine.cfg().frames_per_node,
            by_hand.kernel.machine().cfg().frames_per_node
        );
    }
}
