//! Disjoint memory allocation zones (§6 of the paper).
//!
//! "Data with different access patterns should not be co-located on a
//! single page. The private data of each thread should be separated from
//! private data of other threads and from shared data. Read-only data
//! should be kept separate from modifiable data. Coarse-grain modifiable
//! data should be separated from fine-grain modifiable data such as
//! locks."
//!
//! A [`Zone`] is a bump allocator over a virtual address range (typically
//! one mapped memory object per zone). Because zones are distinct mapped
//! ranges, data allocated from different zones can never share a page;
//! within a zone, [`Zone::alloc_page_aligned`] gives page isolation for
//! individual allocations. "Because a typical NUMA multiprocessor has a
//! very large physical memory, the internal fragmentation introduced by
//! this strategy has little impact."

use numa_machine::Va;

/// A bump allocator over a range of virtual addresses.
///
/// Word-granular: sizes are in 32-bit words. Not thread-safe by design —
/// allocation happens during single-threaded application setup, before
/// workers are spawned (the paper's programs allocate their zones in the
/// startup phase).
#[derive(Debug)]
pub struct Zone {
    base: Va,
    words: usize,
    next: usize,
    page_words: usize,
}

impl Zone {
    /// Creates a zone over `[base, base + 4*words)` with pages of
    /// `page_words` words.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not word aligned or `page_words` is not a
    /// power of two.
    pub fn new(base: Va, words: usize, page_words: usize) -> Self {
        assert_eq!(base % 4, 0, "zone base must be word aligned");
        assert!(
            page_words.is_power_of_two(),
            "page_words must be a power of two"
        );
        Self {
            base,
            words,
            next: 0,
            page_words,
        }
    }

    /// The zone's base address.
    pub fn base(&self) -> Va {
        self.base
    }

    /// The page size this zone aligns to, in words.
    pub fn page_words(&self) -> usize {
        self.page_words
    }

    /// Words still available.
    pub fn remaining_words(&self) -> usize {
        self.words - self.next
    }

    /// Allocates `n` words, word aligned.
    ///
    /// # Panics
    ///
    /// Panics when the zone is exhausted — sizing zones is part of
    /// application setup, and overflow is a setup bug.
    pub fn alloc_words(&mut self, n: usize) -> Va {
        assert!(
            self.next + n <= self.words,
            "zone exhausted: want {n} words, {} left",
            self.remaining_words()
        );
        let va = self.base + 4 * self.next as u64;
        self.next += n;
        va
    }

    /// Allocates `n` words starting on a fresh page boundary, and leaves
    /// the remainder of the final page unused, so the allocation shares a
    /// page with nothing else — the §6 prescription for data whose access
    /// pattern differs from its neighbours'.
    pub fn alloc_page_aligned(&mut self, n: usize) -> Va {
        let misalign = (self.base as usize / 4 + self.next) % self.page_words;
        if misalign != 0 {
            let pad = self.page_words - misalign;
            assert!(
                self.next + pad <= self.words,
                "zone exhausted during alignment padding"
            );
            self.next += pad;
        }
        let va = self.alloc_words(n);
        // Round the cursor up so the *next* allocation starts on a fresh
        // page too.
        let tail = (self.base as usize / 4 + self.next) % self.page_words;
        if tail != 0 {
            let pad = (self.page_words - tail).min(self.words - self.next);
            self.next += pad;
        }
        va
    }

    /// Allocates one full page.
    pub fn alloc_page(&mut self) -> Va {
        self.alloc_page_aligned(self.page_words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_allocation() {
        let mut z = Zone::new(0x1000, 64, 16);
        let a = z.alloc_words(3);
        let b = z.alloc_words(5);
        assert_eq!(a, 0x1000);
        assert_eq!(b, 0x100c);
        assert_eq!(z.remaining_words(), 56);
    }

    #[test]
    fn page_aligned_isolation() {
        let mut z = Zone::new(0x1000, 64, 16); // 16-word pages
        let a = z.alloc_words(3); // dirties page 0
        let b = z.alloc_page_aligned(2); // must start on page 1
        let c = z.alloc_words(1); // must not share b's page
        assert_eq!(a, 0x1000);
        assert_eq!(b, 0x1000 + 16 * 4);
        assert_eq!(c, 0x1000 + 32 * 4);
    }

    #[test]
    fn page_aligned_when_already_aligned() {
        let mut z = Zone::new(0x1000, 64, 16);
        let a = z.alloc_page_aligned(16);
        let b = z.alloc_page_aligned(1);
        assert_eq!(a, 0x1000);
        assert_eq!(b, 0x1000 + 16 * 4);
    }

    #[test]
    #[should_panic(expected = "zone exhausted")]
    fn exhaustion_panics() {
        let mut z = Zone::new(0x1000, 8, 16);
        let _ = z.alloc_words(9);
    }
}
