//! Synchronization primitives on simulated coherent memory.
//!
//! The state word of every primitive lives in *simulated* memory and is
//! touched through [`Mem`], so synchronization traffic exercises the
//! coherency protocol exactly as the paper describes: "active use of
//! synchronization variables will cause their pages to be frozen" (§4.2)
//! — which is why the [`crate::zones`] module exists to keep them off
//! everyone else's pages.
//!
//! # Timing model
//!
//! Spin iterations use [`Mem::read_spin`] (uncharged): under execution-
//! driven simulation the number of real spin iterations is an artifact of
//! host scheduling, so waiting time is instead modelled analytically —
//! the releaser records its virtual release time and the acquirer's clock
//! advances to at least that. A final charged access models the
//! successful observation. The protocol side effects of spinning (faults,
//! freezing) still occur through the uncharged reads.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use numa_machine::{Mem, Va};

#[inline]
fn backoff(spins: &mut u32) {
    std::hint::spin_loop();
    *spins = spins.wrapping_add(1);
    if spins.is_multiple_of(8) {
        std::thread::yield_now();
    }
}

/// A test-and-test-and-set spin lock on a word of coherent memory.
///
/// Clone handles freely; all clones denote the same lock.
#[derive(Clone)]
pub struct SpinLock {
    word: Va,
    /// Virtual time of the most recent release (host-side bookkeeping;
    /// see the module docs).
    release_vtime: Arc<AtomicU64>,
}

impl SpinLock {
    /// Wraps the (zero-initialized) word at `va` as a lock.
    pub fn new(va: Va) -> Self {
        Self {
            word: va,
            release_vtime: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The lock word's address (for instrumentation: finding out whether
    /// the lock's page got frozen).
    pub fn va(&self) -> Va {
        self.word
    }

    /// Acquires the lock.
    pub fn acquire<M: Mem>(&self, m: &mut M) {
        let mut spins = 0u32;
        m.begin_wait();
        loop {
            // Test-and-test-and-set: spin reading before attempting the
            // atomic, as one did on the Butterfly to avoid hammering the
            // remote module with RMWs.
            if m.read_spin(self.word) == 0 && m.compare_exchange(self.word, 0, 1).is_ok() {
                break;
            }
            backoff(&mut spins);
        }
        m.end_wait();
        // The critical section cannot begin before the previous holder
        // released.
        m.advance_to(self.release_vtime.load(Ordering::Acquire));
        m.trace_lock(self.word, true);
    }

    /// Releases the lock.
    ///
    /// # Panics
    ///
    /// Panics if the lock was not held (the word was not 1).
    pub fn release<M: Mem>(&self, m: &mut M) {
        m.trace_lock(self.word, false);
        self.release_vtime.fetch_max(m.vtime(), Ordering::AcqRel);
        let prev = m.swap(self.word, 0);
        assert_eq!(prev, 1, "releasing a lock that was not held");
    }

    /// Runs `f` under the lock.
    pub fn with<M: Mem, R>(&self, m: &mut M, f: impl FnOnce(&mut M) -> R) -> R {
        self.acquire(m);
        let r = f(m);
        self.release(m);
        r
    }
}

/// A sense-reversing barrier for a fixed set of participants.
///
/// Uses two words of coherent memory (arrival count and generation) and a
/// host-side table of per-generation release times for exact virtual-time
/// propagation.
#[derive(Clone)]
pub struct Barrier {
    count_va: Va,
    gen_va: Va,
    n: u32,
    /// `releases[g]` = virtual time at which generation `g` was released.
    releases: Arc<Mutex<Vec<u64>>>,
}

impl Barrier {
    /// Wraps two zero-initialized words (`count_va`, `gen_va`) as a
    /// barrier for `n` participants.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(count_va: Va, gen_va: Va, n: u32) -> Self {
        assert!(n > 0, "a barrier needs at least one participant");
        Self {
            count_va,
            gen_va,
            n,
            releases: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// The generation word's address (instrumentation).
    pub fn va(&self) -> Va {
        self.gen_va
    }

    /// Waits until all `n` participants arrive.
    pub fn wait<M: Mem>(&self, m: &mut M) {
        let gen = m.read(self.gen_va);
        let arrived = m.fetch_add(self.count_va, 1) + 1;
        if arrived == self.n {
            // Last arriver: record the release time, reset, and open the
            // next generation.
            {
                let mut rel = self.releases.lock();
                if rel.len() <= gen as usize {
                    rel.resize(gen as usize + 1, 0);
                }
                rel[gen as usize] = m.vtime();
            }
            m.write(self.count_va, 0);
            m.write(self.gen_va, gen + 1);
        } else {
            let mut spins = 0u32;
            m.begin_wait();
            while m.read_spin(self.gen_va) == gen {
                backoff(&mut spins);
            }
            m.end_wait();
            // One charged read models observing the flip; then propagate
            // the releaser's time.
            let _ = m.read(self.gen_va);
            let rel = {
                let rel = self.releases.lock();
                rel.get(gen as usize).copied().unwrap_or(0)
            };
            m.advance_to(rel);
        }
    }
}

/// An event count (the synchronization primitive the paper's Gaussian
/// elimination uses, §5.1): a monotonically increasing counter that
/// threads can advance and await.
#[derive(Clone)]
pub struct EventCount {
    va: Va,
    /// `times[v-1]` = virtual time at which the count reached `v`.
    times: Arc<Mutex<Vec<u64>>>,
}

impl EventCount {
    /// Wraps the zero-initialized word at `va` as an event count.
    pub fn new(va: Va) -> Self {
        Self {
            va,
            times: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// The counter word's address (instrumentation).
    pub fn va(&self) -> Va {
        self.va
    }

    /// Advances the count by one, returning the new value.
    pub fn advance<M: Mem>(&self, m: &mut M) -> u32 {
        let new = m.fetch_add(self.va, 1) + 1;
        let mut times = self.times.lock();
        if times.len() < new as usize {
            times.resize(new as usize, 0);
        }
        times[new as usize - 1] = m.vtime();
        new
    }

    /// Reads the current count (charged).
    pub fn current<M: Mem>(&self, m: &mut M) -> u32 {
        m.read(self.va)
    }

    /// Waits until the count reaches at least `target`.
    pub fn await_at_least<M: Mem>(&self, m: &mut M, target: u32) {
        if target == 0 {
            return;
        }
        let mut spins = 0u32;
        m.begin_wait();
        while m.read_spin(self.va) < target {
            backoff(&mut spins);
        }
        m.end_wait();
        let _ = m.read(self.va);
        let t = {
            let times = self.times.lock();
            times.get(target as usize - 1).copied().unwrap_or(0)
        };
        m.advance_to(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_machine::mem_iface::test_support::FlatMem;

    #[test]
    fn spinlock_single_thread() {
        let mut m = FlatMem::new(0, 1);
        let l = SpinLock::new(0x100);
        l.acquire(&mut m);
        assert_eq!(m.read_spin(0x100), 1);
        l.release(&mut m);
        assert_eq!(m.read_spin(0x100), 0);
        let out = l.with(&mut m, |m| m.vtime());
        assert!(out > 0);
    }

    #[test]
    #[should_panic(expected = "not held")]
    fn release_unheld_panics() {
        let mut m = FlatMem::new(0, 1);
        let l = SpinLock::new(0x100);
        l.release(&mut m);
    }

    #[test]
    fn lock_propagates_release_time() {
        // Two logical contexts sharing one FlatMem store is awkward, so
        // model the handoff directly: ctx A releases late, ctx B acquires
        // with an early clock and must be dragged forward.
        let mut a = FlatMem::new(0, 2);
        let l = SpinLock::new(0x0);
        l.acquire(&mut a);
        a.set_vtime(1_000_000);
        l.release(&mut a);

        let mut b = FlatMem::new(1, 2);
        // Give b the same backing word state: lock is free in its copy.
        b.words.insert(0x0, 0);
        let l2 = l.clone();
        l2.acquire(&mut b);
        assert!(b.vtime() >= 1_000_000, "acquirer inherits release time");
    }

    #[test]
    fn barrier_single_participant_never_blocks() {
        let mut m = FlatMem::new(0, 1);
        let b = Barrier::new(0x0, 0x4, 1);
        for _ in 0..3 {
            b.wait(&mut m);
        }
        assert_eq!(m.read_spin(0x4), 3, "three generations passed");
        assert_eq!(m.read_spin(0x0), 0, "count reset each time");
    }

    #[test]
    fn event_count_advance_await() {
        let mut m = FlatMem::new(0, 1);
        let ec = EventCount::new(0x8);
        assert_eq!(ec.advance(&mut m), 1);
        m.set_vtime(5_000);
        assert_eq!(ec.advance(&mut m), 2);
        let mut w = FlatMem::new(1, 2);
        w.words.insert(0x8, 2); // already satisfied in w's view
        ec.await_at_least(&mut w, 2);
        assert!(w.vtime() >= 5_000, "await propagates the advance time");
        ec.await_at_least(&mut w, 0); // trivially satisfied
    }
}
