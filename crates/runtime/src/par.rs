//! Parallel spawn helpers: one worker thread per simulated processor.

use std::sync::Arc;

use numa_machine::uma::{UmaConfig, UmaCtx, UmaMachine};
use numa_machine::{MachineConfig, Mem};
use platinum::{
    AddressSpace, Kernel, KernelConfig, PlatinumPolicy, ReplicationPolicy, Rights, UserCtx,
};

use crate::measure::{RunStats, WorkerStats};
use crate::zones::Zone;

/// A convenience bundle: a booted machine + kernel + one address space,
/// ready to run an application. This is the "shell" the paper's
/// programming experiments used (§9).
pub struct PlatinumHarness {
    /// The kernel.
    pub kernel: Arc<Kernel>,
    /// The application's address space.
    pub space: Arc<AddressSpace>,
}

impl PlatinumHarness {
    /// Boots a `nodes`-processor machine with the paper's default policy.
    pub fn new(nodes: usize) -> Self {
        Self::with_policy(nodes, Box::new(PlatinumPolicy::paper_default()))
    }

    /// Boots with a specific replication policy. (Benchmarks replicate
    /// freely; the builder's default frame pool is deeper than the
    /// Butterfly's 4 MB so frame exhaustion never perturbs the curves —
    /// documented substitution; see DESIGN.md.)
    pub fn with_policy(nodes: usize, policy: Box<dyn ReplicationPolicy>) -> Self {
        crate::sim::SimBuilder::nodes(nodes)
            .policy_box(policy)
            .build()
            .into()
    }

    /// Boots with full control of machine and kernel configuration.
    /// Thin delegate to [`crate::sim::SimBuilder`].
    ///
    /// # Panics
    ///
    /// Panics on an invalid machine configuration — harness setup is
    /// programmer-controlled.
    pub fn with_config(
        machine: MachineConfig,
        policy: Box<dyn ReplicationPolicy>,
        kernel: KernelConfig,
    ) -> Self {
        crate::sim::SimBuilder::nodes(machine.nodes)
            .machine_config(machine)
            .policy_box(policy)
            .kernel_config(kernel)
            .build()
            .into()
    }

    /// The number of processors.
    pub fn nprocs(&self) -> usize {
        self.kernel.machine().nprocs()
    }
}

impl From<crate::sim::Sim> for PlatinumHarness {
    fn from(sim: crate::sim::Sim) -> Self {
        Self {
            kernel: sim.kernel,
            space: sim.space,
        }
    }
}

impl PlatinumHarness {
    /// Creates a memory object of `pages` pages, maps it into the
    /// application's space, and wraps it as an allocation [`Zone`].
    pub fn alloc_zone(&self, pages: usize) -> Zone {
        let object = self.kernel.create_object(pages);
        let base = self
            .space
            .map_anywhere(object, Rights::RW)
            .expect("fresh mapping cannot conflict");
        let words = pages * self.kernel.machine().cfg().words_per_page();
        Zone::new(base, words, self.kernel.machine().cfg().words_per_page())
    }

    /// Runs `f(worker_index, ctx)` on processors `0..n` in parallel and
    /// collects results plus per-worker statistics.
    pub fn run<F, R>(&self, n: usize, f: F) -> (Vec<R>, RunStats)
    where
        F: Fn(usize, &mut UserCtx) -> R + Sync,
        R: Send,
    {
        run_workers(&self.kernel, &self.space, n, f)
    }
}

/// Runs `f(worker_index, ctx)` on processors `0..n` of `kernel`, one OS
/// thread per simulated processor, starting all virtual clocks at 0.
///
/// # Panics
///
/// Panics if any worker panics, or if a processor is already occupied.
pub fn run_workers<F, R>(
    kernel: &Arc<Kernel>,
    space: &Arc<AddressSpace>,
    n: usize,
    f: F,
) -> (Vec<R>, RunStats)
where
    F: Fn(usize, &mut UserCtx) -> R + Sync,
    R: Send,
{
    assert!(n >= 1 && n <= kernel.machine().nprocs());
    let f = &f;
    let mut out: Vec<Option<(R, WorkerStats)>> = Vec::new();
    out.resize_with(n, || None);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .map(|p| {
                let kernel = Arc::clone(kernel);
                let space = Arc::clone(space);
                s.spawn(move || {
                    let mut ctx = kernel
                        .attach(space, p, 0)
                        .expect("processor free for worker");
                    let r = f(p, &mut ctx);
                    let stats = WorkerStats {
                        proc: p,
                        vtime_ns: ctx.vtime(),
                        counters: ctx.counters(),
                    };
                    (r, stats)
                })
            })
            .collect();
        for (p, h) in handles.into_iter().enumerate() {
            out[p] = Some(h.join().expect("worker panicked"));
        }
    });
    let mut results = Vec::with_capacity(n);
    let mut workers = Vec::with_capacity(n);
    for slot in out {
        let (r, w) = slot.expect("every worker reports");
        results.push(r);
        workers.push(w);
    }
    (results, RunStats { workers })
}

/// Runs `f(worker_index, ctx)` on `n` processors of a UMA comparator
/// machine (Figure 5's Sequent Symmetry stand-in).
pub fn run_uma_workers<F, R>(machine: &Arc<UmaMachine>, n: usize, f: F) -> (Vec<R>, RunStats)
where
    F: Fn(usize, &mut UmaCtx) -> R + Sync,
    R: Send,
{
    assert!(n >= 1 && n <= machine.cfg().procs);
    let f = &f;
    let mut out: Vec<Option<(R, WorkerStats)>> = Vec::new();
    out.resize_with(n, || None);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .map(|p| {
                let machine = Arc::clone(machine);
                s.spawn(move || {
                    let mut ctx = UmaCtx::new(machine, p);
                    let r = f(p, &mut ctx);
                    let stats = WorkerStats {
                        proc: p,
                        vtime_ns: ctx.vtime(),
                        counters: ctx.counters(),
                    };
                    (r, stats)
                })
            })
            .collect();
        for (p, h) in handles.into_iter().enumerate() {
            out[p] = Some(h.join().expect("worker panicked"));
        }
    });
    let mut results = Vec::with_capacity(n);
    let mut workers = Vec::with_capacity(n);
    for slot in out {
        let (r, w) = slot.expect("every worker reports");
        results.push(r);
        workers.push(w);
    }
    (results, RunStats { workers })
}

/// Builds a UMA comparator machine with `procs` processors and enough
/// memory for `mem_words` words.
pub fn uma_machine(procs: usize, mem_words: usize) -> Arc<UmaMachine> {
    UmaMachine::new(UmaConfig {
        procs,
        mem_words,
        ..UmaConfig::default()
    })
    .expect("valid UMA config")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_workers() {
        let h = PlatinumHarness::new(4);
        let mut zone = h.alloc_zone(1);
        let counter = zone.alloc_words(1);
        let (results, stats) = h.run(4, |i, ctx| {
            ctx.fetch_add(counter, 1);
            i * 10
        });
        assert_eq!(results, vec![0, 10, 20, 30]);
        assert_eq!(stats.workers.len(), 4);
        assert!(stats.elapsed_ns() > 0);
        let (v, _) = h.run(1, |_, ctx| ctx.read(counter));
        assert_eq!(v[0], 4);
    }

    #[test]
    fn harness_runs_twice_reusing_processors() {
        let h = PlatinumHarness::new(2);
        let mut zone = h.alloc_zone(1);
        let word = zone.alloc_words(1);
        let (_, s1) = h.run(2, |_, ctx| ctx.fetch_add(word, 1));
        let (_, s2) = h.run(2, |_, ctx| ctx.fetch_add(word, 1));
        assert_eq!(s1.workers.len(), 2);
        assert_eq!(s2.workers.len(), 2);
    }

    #[test]
    fn uma_workers_run() {
        let m = uma_machine(3, 1 << 16);
        let base = m.alloc_words(4);
        let (_, stats) = run_uma_workers(&m, 3, |i, ctx| {
            ctx.write(base + 4 * i as u64, i as u32);
            ctx.read(base + 4 * i as u64)
        });
        assert_eq!(stats.workers.len(), 3);
        assert!(stats.elapsed_ns() > 0);
    }
}
