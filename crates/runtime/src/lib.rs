//! `platinum-runtime`: the user-level run-time library for PLATINUM.
//!
//! §6 of the paper: "A run-time library for defining disjoint memory
//! allocation zones and for specifying page-aligned allocation helps
//! PLATINUM programmers [separate data with different access patterns]
//! with a minimum of effort, even without compiler support." §9: "we are
//! rapidly accumulating run-time libraries, shells, and other support
//! software to further ease the programming process."
//!
//! This crate is that library:
//!
//! * [`zones`] — disjoint, page-aligned allocation zones so that private,
//!   read-shared, write-shared, and synchronization data never co-habit a
//!   page (the §4.2 anecdote is what happens when they do);
//! * [`sync`] — spin locks, barriers, and event counts implemented *on
//!   simulated coherent memory* (so their pages freeze and thaw exactly
//!   like the paper describes) with virtual-time propagation from
//!   releasers to acquirers;
//! * [`par`] — spawn helpers that bind one worker thread per simulated
//!   processor and collect per-worker timing/statistics;
//! * [`measure`] — speedup bookkeeping shared by the benchmark harness.
//!
//! Everything generic is written against [`numa_machine::Mem`], so the
//! same synchronization primitives serve applications running on the
//! PLATINUM kernel and on the UMA comparator machine.

#![warn(missing_docs)]

pub mod measure;
pub mod par;
pub mod sim;
pub mod sync;
pub mod zones;

pub use measure::{RunStats, WorkerStats};
pub use par::{run_uma_workers, run_workers, PlatinumHarness};
pub use sim::{Sim, SimBuilder};
pub use sync::{Barrier, EventCount, SpinLock};
pub use zones::Zone;
