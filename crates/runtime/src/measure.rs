//! Measurement bookkeeping for parallel runs.

use numa_machine::AccessCounters;

/// One worker's outcome.
#[derive(Clone, Debug)]
pub struct WorkerStats {
    /// The simulated processor the worker ran on.
    pub proc: usize,
    /// The worker's final virtual time, ns.
    pub vtime_ns: u64,
    /// The worker's access counters.
    pub counters: AccessCounters,
}

/// The outcome of a parallel run.
#[derive(Clone, Debug)]
pub struct RunStats {
    /// Per-worker outcomes.
    pub workers: Vec<WorkerStats>,
}

impl RunStats {
    /// The run's execution time: the paper measures wall-clock time of
    /// the whole computation, which in virtual time is the maximum over
    /// the participating processors.
    pub fn elapsed_ns(&self) -> u64 {
        self.workers.iter().map(|w| w.vtime_ns).max().unwrap_or(0)
    }

    /// The run's execution time in milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed_ns() as f64 / 1e6
    }

    /// All workers' counters summed.
    pub fn merged_counters(&self) -> AccessCounters {
        let mut total = AccessCounters::default();
        for w in &self.workers {
            total.merge(&w.counters);
        }
        total
    }

    /// Load imbalance: max worker time over mean worker time (1.0 =
    /// perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        if self.workers.is_empty() {
            return 1.0;
        }
        let max = self.elapsed_ns() as f64;
        let mean =
            self.workers.iter().map(|w| w.vtime_ns as f64).sum::<f64>() / self.workers.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// Speedup of a parallel time against a serial baseline.
pub fn speedup(serial_ns: u64, parallel_ns: u64) -> f64 {
    if parallel_ns == 0 {
        return 0.0;
    }
    serial_ns as f64 / parallel_ns as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(proc: usize, vtime: u64) -> WorkerStats {
        WorkerStats {
            proc,
            vtime_ns: vtime,
            counters: AccessCounters::default(),
        }
    }

    #[test]
    fn elapsed_is_max() {
        let r = RunStats {
            workers: vec![w(0, 100), w(1, 250), w(2, 180)],
        };
        assert_eq!(r.elapsed_ns(), 250);
        assert!((r.imbalance() - 250.0 / (530.0 / 3.0)).abs() < 1e-9);
    }

    #[test]
    fn speedup_math() {
        assert_eq!(speedup(1000, 250), 4.0);
        assert_eq!(speedup(1000, 0), 0.0);
    }

    #[test]
    fn empty_run() {
        let r = RunStats { workers: vec![] };
        assert_eq!(r.elapsed_ns(), 0);
        assert_eq!(r.imbalance(), 1.0);
    }
}
