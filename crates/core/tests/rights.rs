//! Access-rights enforcement at the virtual-memory level: the coherency
//! protocol may restrict physical mappings below the granted rights, but
//! never grants beyond them.

use std::sync::Arc;

use numa_machine::{Machine, MachineConfig, Mem};
use platinum::{Kernel, KernelError, Rights};

fn kernel() -> Arc<Kernel> {
    let m = Machine::new(MachineConfig {
        nodes: 2,
        frames_per_node: 16,
        skew_window_ns: None,
        ..MachineConfig::default()
    })
    .unwrap();
    Kernel::new(m)
}

#[test]
fn read_only_grant_rejects_writes_and_atomics() {
    let kernel = kernel();
    let space = kernel.create_space();
    let object = kernel.create_object(1);
    let va = space.map_anywhere(object, Rights::RO).unwrap();
    let mut ctx = kernel.attach(space, 0, 0).unwrap();
    assert_eq!(ctx.try_read(va).unwrap(), 0);
    assert!(matches!(ctx.try_write(va, 1), Err(KernelError::Access(_))));
    // Atomics require write access too — the fault handler treats them
    // as writes.
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        ctx.fetch_add(va, 1);
    }));
    assert!(r.is_err(), "fetch_add on a read-only grant must fail");
}

#[test]
fn same_object_different_rights_in_different_spaces() {
    // "Neither the virtual address range nor the access rights need be
    // the same in every address space" (§1.1).
    let kernel = kernel();
    let object = kernel.create_object(1);
    let writer_space = kernel.create_space();
    let reader_space = kernel.create_space();
    let wva = writer_space
        .map_anywhere(Arc::clone(&object), Rights::RW)
        .unwrap();
    let rva = reader_space.map_anywhere(object, Rights::RO).unwrap();

    let mut w = kernel.attach(writer_space, 0, 0).unwrap();
    let mut r = kernel.attach(reader_space, 1, 0).unwrap();
    w.write(wva, 41);
    w.suspend();
    assert_eq!(r.read(rva), 41, "shared object, different va and rights");
    assert!(r.try_write(rva, 1).is_err());
    // Suspend the reader before the writer invalidates its replica (the
    // single test thread cannot acknowledge its own shootdown).
    r.suspend();
    w.resume();
    w.write(wva, 42);
    r.resume();
    assert_eq!(r.read(rva), 42);
}

#[test]
fn misaligned_accesses_error() {
    let kernel = kernel();
    let space = kernel.create_space();
    let object = kernel.create_object(1);
    let va = space.map_anywhere(object, Rights::RW).unwrap();
    let mut ctx = kernel.attach(space, 0, 0).unwrap();
    assert!(ctx.try_read(va + 2).is_err());
    assert!(ctx.try_write(va + 1, 0).is_err());
}

#[test]
fn unmapped_guard_pages_fault() {
    let kernel = kernel();
    let space = kernel.create_space();
    let a = kernel.create_object(1);
    let b = kernel.create_object(1);
    let va_a = space.map_anywhere(a, Rights::RW).unwrap();
    let va_b = space.map_anywhere(b, Rights::RW).unwrap();
    let mut ctx = kernel.attach(space, 0, 0).unwrap();
    ctx.write(va_a, 1);
    ctx.write(va_b, 2);
    // map_anywhere leaves a guard page between regions: an off-by-one
    // page overrun is a bus error, not silent corruption.
    let guard = va_a + 4096;
    assert!(guard < va_b, "layout sanity");
    assert!(ctx.try_read(guard).is_err(), "guard page must be unmapped");
}
