//! Integration tests for deterministic fault injection and the kernel's
//! graceful-degradation ladders: replay determinism, escalation to a
//! frozen page and its defrost, block-transfer retry, and the
//! frame-allocation fallback ring.

use std::sync::Arc;

use numa_machine::{Machine, MachineConfig, Mem};
use platinum::trace::{EventKind, TraceConfig, TraceEvent, Tracer};
use platinum::{
    FaultPlan, FaultSite, Kernel, KernelConfig, KernelError, PlatinumPolicy, Rights, UserCtx,
};

fn machine(nodes: usize) -> Arc<Machine> {
    Machine::new(MachineConfig {
        nodes,
        frames_per_node: 64,
        skew_window_ns: None,
        ..MachineConfig::default()
    })
    .unwrap()
}

fn kernel_with_plan(nodes: usize, plan: Arc<FaultPlan>) -> Arc<Kernel> {
    Kernel::with_config(
        machine(nodes),
        Box::new(PlatinumPolicy::paper_default()),
        KernelConfig {
            faults: Some(plan),
            ..KernelConfig::default()
        },
    )
}

fn setup(nodes: usize, plan: Arc<FaultPlan>) -> (Arc<Kernel>, Arc<Tracer>, u64, Vec<UserCtx>) {
    let kernel = kernel_with_plan(nodes, plan);
    let tracer = Tracer::new(TraceConfig::default());
    assert!(kernel.install_tracer(Arc::clone(&tracer)));
    let space = kernel.create_space();
    let object = kernel.create_object(4);
    let va = space.map_anywhere(object, Rights::RW).unwrap();
    let ctxs = (0..nodes)
        .map(|p| kernel.attach(Arc::clone(&space), p, 0).unwrap())
        .collect();
    (kernel, tracer, va, ctxs)
}

/// A deterministic sequential schedule with enough protocol traffic
/// (replication, invalidation, migration) to give every injection site a
/// chance to fire.
fn scripted_run(plan: Arc<FaultPlan>) -> (Vec<u32>, Vec<TraceEvent>, u64) {
    const P: usize = 4;
    let (kernel, tracer, va, mut ctxs) = setup(P, plan);
    let page_bytes = (kernel.machine().cfg().words_per_page() * 4) as u64;
    let mut values = Vec::new();
    // Exactly one processor is active at any step, so shootdowns always
    // find their targets inactive (applied lazily, never awaited) and
    // the schedule is sequential-safe even with injection everywhere.
    for ctx in &mut ctxs[1..] {
        ctx.suspend();
    }
    let mut active = 0usize;
    for round in 0..6u32 {
        for w in 0..P {
            for actor in std::iter::once(w).chain((0..P).filter(|&p| p != w)) {
                if actor != active {
                    ctxs[active].suspend();
                    ctxs[actor].resume();
                    active = actor;
                }
                let a = va + (w as u64 % 4) * page_bytes;
                if actor == w {
                    ctxs[w].write(a, round * 100 + w as u32);
                }
                values.push(ctxs[actor].read(a));
            }
        }
    }
    let vtime = ctxs.iter().map(|c| c.vtime()).max().unwrap();
    (values, tracer.snapshot().events, vtime)
}

/// Running the same schedule under the same plan twice reproduces the
/// exact injected-event sequence — the fault schedule is replayable, not
/// merely statistically similar.
#[test]
fn same_plan_same_schedule_replays_bit_identically() {
    let mk = || Arc::new(FaultPlan::chaos(1234, 80_000));
    let (v1, t1, vt1) = scripted_run(mk());
    let (v2, t2, vt2) = scripted_run(mk());
    assert_eq!(v1, v2, "observed values diverged across replays");
    assert_eq!(vt1, vt2, "virtual time diverged across replays");
    assert_eq!(t1.len(), t2.len(), "trace lengths diverged");
    for (a, b) in t1.iter().zip(&t2) {
        assert_eq!(
            (a.vtime, a.kind, a.code, a.page, a.arg),
            (b.vtime, b.kind, b.code, b.page, b.arg),
            "trace event diverged"
        );
    }
    let injected = t1
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                EventKind::MemError
                    | EventKind::ShootdownTimeout
                    | EventKind::TransferFault
                    | EventKind::AllocFault
            )
        })
        .count();
    assert!(injected > 0, "the plan never fired; determinism is vacuous");
}

/// Dropping every shootdown ack exhausts the retry budget, and the
/// kernel escalates: the page is frozen in place (the paper's degraded
/// mode) rather than left incoherent. The defrost daemon later thaws it
/// and replication resumes.
#[test]
fn exhausted_ack_retries_escalate_to_freeze_then_defrost() {
    let plan = Arc::new(FaultPlan::new(9).with_rate(FaultSite::ShootdownAck, 1_000_000));
    let (kernel, tracer, va, mut ctxs) = setup(2, plan);

    // Writer establishes the page and suspends (so the reader's
    // replicate applies its downgrade lazily, without awaiting an ack
    // from a parked thread); a *live* reader then replicates it. Only
    // active targets are interrupted, so escalation needs the reader's
    // processor to keep the space active and keep servicing its
    // doorbell while the writer invalidates and every IPI is dropped.
    ctxs[0].write(va, 7);
    ctxs[0].suspend();
    let mut reader = ctxs.remove(1);
    let (ready_tx, ready_rx) = std::sync::mpsc::channel();
    std::thread::scope(|s| {
        s.spawn(move || {
            assert_eq!(reader.read(va), 7, "replica carries the data");
            ready_tx.send(()).unwrap();
            // Spin on the page until the writer's update lands; each
            // access services pending shootdown interrupts.
            while reader.read(va) != 8 {
                std::hint::spin_loop();
            }
        });
        ready_rx.recv().unwrap();
        ctxs[0].resume();
        ctxs[0].write(va, 8);
    });

    let page = kernel.cpage_for_va(ctxs[0].space(), va).unwrap();
    assert!(page.lock().frozen, "escalation must freeze the page");
    let s = kernel.stats().snapshot();
    assert!(s.shootdown_timeouts > 0, "timeouts were injected");
    assert_eq!(s.freezes, 1);

    let trace = tracer.snapshot();
    let freeze = trace
        .of_kind(EventKind::Freeze)
        .next()
        .expect("freeze event recorded");
    assert_eq!(freeze.code, 2, "code 2 marks a degraded-mode freeze");
    let recovery = trace
        .of_kind(EventKind::FaultRecovery)
        .find(|e| e.code == FaultSite::ShootdownAck as u8)
        .expect("the resend ladder records its recovery span");
    assert!(recovery.arg <= recovery.vtime, "span begins before it ends");

    // Degraded mode still works — the frozen page serves remote
    // references — and the daemon eventually thaws it.
    let space = Arc::clone(ctxs[0].space());
    let mut reader = kernel.attach(space, 1, 0).unwrap();
    assert_eq!(reader.read(va), 8, "frozen page reads coherently");
    // The thaw's own shootdown must find the reader inactive — both
    // contexts are driven from this one thread, so an awaited ack from
    // an active reader could never be serviced.
    reader.suspend();
    kernel.run_defrost(&mut ctxs[0]);
    reader.resume();
    assert!(!page.lock().frozen, "defrost thaws the escalated page");
    assert_eq!(reader.read(va), 8, "replication works again after thaw");
    assert_eq!(kernel.stats().snapshot().thaws, 1);
}

/// A block transfer that fails mid-copy is retried whole-page; the
/// destination is never published with a torn prefix, so every word of
/// the replica matches the source.
#[test]
fn failed_block_transfer_retries_whole_page() {
    let plan = Arc::new(FaultPlan::new(5).with_rate(FaultSite::BlockTransfer, 1_000_000));
    let (kernel, tracer, va, mut ctxs) = setup(2, plan);
    let words = kernel.machine().cfg().words_per_page().min(64);

    for w in 0..words as u64 {
        ctxs[0].write(va + 4 * w, 0xA000_0000 | w as u32);
    }
    ctxs[0].suspend();
    ctxs[1].resume();
    for w in 0..words as u64 {
        assert_eq!(
            ctxs[1].read(va + 4 * w),
            0xA000_0000 | w as u32,
            "word {w} torn by a failed transfer"
        );
    }

    let s = kernel.stats().snapshot();
    assert!(s.transfer_faults > 0, "transfer faults were injected");
    assert!(s.fault_recoveries > 0, "and recovered from");
    let trace = tracer.snapshot();
    assert!(trace.count(EventKind::TransferFault) > 0);
    for r in trace.of_kind(EventKind::FaultRecovery) {
        assert!(r.arg <= r.vtime, "malformed recovery span");
    }
}

/// A transient read error during a replication copy is recovered by
/// re-reading (or switching source copies); the replica is still exact.
#[test]
fn transient_read_errors_recover_with_correct_data() {
    let plan = Arc::new(FaultPlan::new(11).with_rate(FaultSite::FrameRead, 1_000_000));
    let (kernel, _tracer, va, mut ctxs) = setup(2, plan);

    ctxs[0].write(va, 0xCAFE);
    ctxs[0].suspend();
    ctxs[1].resume();
    assert_eq!(ctxs[1].read(va), 0xCAFE);

    let s = kernel.stats().snapshot();
    assert!(s.mem_errors > 0, "read errors were injected");
    assert!(s.fault_recoveries > 0, "and recovered from");
}

/// A module that refuses allocations redirects them to the next-best
/// module in the ring; OutOfMemory surfaces only when every module
/// refuses.
#[test]
fn alloc_denial_falls_back_to_next_module() {
    let plan = Arc::new(FaultPlan::new(3).with_alloc_deny_mask(1 << 0));
    let (kernel, _tracer, va, mut ctxs) = setup(2, plan);

    // Processor 0's first touch would normally land on module 0; the
    // deny mask forces the frame onto module 1.
    ctxs[0].write(va, 42);
    assert_eq!(ctxs[0].read(va), 42);
    let page = kernel.cpage_for_va(ctxs[0].space(), va).unwrap();
    {
        let g = page.lock();
        assert_eq!(g.copies.len(), 1);
        assert_eq!(
            g.copies[0].module_id(),
            1,
            "frame must land on the module that accepted the allocation"
        );
    }
    let s = kernel.stats().snapshot();
    assert!(s.alloc_faults > 0, "the refusal was recorded");
    assert!(s.fault_recoveries > 0, "so was the fallback recovery");
}

/// With every module refusing, allocation fails with OutOfMemory — and
/// the fallible access path reports it instead of panicking.
#[test]
fn alloc_denied_everywhere_is_out_of_memory() {
    let plan = Arc::new(FaultPlan::new(3).with_alloc_deny_mask(0b11));
    let kernel = kernel_with_plan(2, plan);
    let space = kernel.create_space();
    let object = kernel.create_object(1);
    let va = space.map_anywhere(object, Rights::RW).unwrap();
    let mut ctx = kernel.attach(space, 0, 0).unwrap();
    match ctx.try_write(va, 1) {
        Err(KernelError::OutOfMemory) => {}
        other => panic!("expected OutOfMemory, got {other:?}"),
    }
}
