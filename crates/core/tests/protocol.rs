//! Deterministic tests of the coherency protocol: every transition of the
//! paper's Figure 4, driven single-threaded through multiple processor
//! contexts.
//!
//! Convention: a context is `suspend`ed whenever another processor's
//! operation might shoot it down (a suspended processor is "inactive" in
//! the paper's sense — it is not interrupted and applies changes on
//! resume). This makes each test a deterministic protocol trace.

use std::sync::Arc;

use numa_machine::{Machine, MachineConfig, Mem};
use platinum::{
    AceStyle, AlwaysReplicate, CpState, Kernel, NeverReplicate, PlatinumPolicy, ReplicationPolicy,
    Rights, UserCtx,
};

fn machine(nodes: usize) -> Arc<Machine> {
    Machine::new(MachineConfig {
        nodes,
        frames_per_node: 64,
        skew_window_ns: None,
        ..MachineConfig::default()
    })
    .unwrap()
}

fn setup_with_policy(
    nodes: usize,
    policy: Box<dyn ReplicationPolicy>,
) -> (Arc<Kernel>, u64, Vec<UserCtx>) {
    let kernel = Kernel::with_policy(machine(nodes), policy);
    let space = kernel.create_space();
    let object = kernel.create_object(4);
    let va = space.map_anywhere(object, Rights::RW).unwrap();
    let ctxs: Vec<UserCtx> = (0..nodes)
        .map(|p| kernel.attach(Arc::clone(&space), p, 0).unwrap())
        .collect();
    (kernel, va, ctxs)
}

fn setup(nodes: usize) -> (Arc<Kernel>, u64, Vec<UserCtx>) {
    setup_with_policy(nodes, Box::new(PlatinumPolicy::paper_default()))
}

/// State snapshot helpers.
fn state_of(kernel: &Kernel, ctx: &UserCtx, va: u64) -> CpState {
    kernel.cpage_for_va(ctx.space(), va).unwrap().lock().state
}

fn copies_of(kernel: &Kernel, ctx: &UserCtx, va: u64) -> usize {
    kernel
        .cpage_for_va(ctx.space(), va)
        .unwrap()
        .lock()
        .copies
        .len()
}

#[test]
fn empty_to_present1_on_read() {
    let (kernel, va, mut ctxs) = setup(2);
    let v = ctxs[0].read(va);
    assert_eq!(v, 0, "fresh pages are zero-filled");
    let page = kernel.cpage_for_va(ctxs[0].space(), va).unwrap();
    let g = page.lock();
    assert_eq!(g.state, CpState::Present1);
    assert_eq!(g.copies.len(), 1);
    assert_eq!(g.copies[0].module_id(), 0, "copy allocated locally");
    assert!(!g.has_writer());
    g.check_invariants().unwrap();
}

#[test]
fn empty_to_modified_on_write() {
    let (kernel, va, mut ctxs) = setup(2);
    ctxs[1].write(va, 7);
    let page = kernel.cpage_for_va(ctxs[1].space(), va).unwrap();
    let g = page.lock();
    assert_eq!(g.state, CpState::Modified);
    assert_eq!(g.copies.len(), 1);
    assert_eq!(g.copies[0].module_id(), 1);
    assert!(g.has_writer());
    g.check_invariants().unwrap();
}

#[test]
fn present1_to_present_plus_on_remote_read() {
    let (kernel, va, mut ctxs) = setup(3);
    ctxs[0].write(va + 4, 11); // modified on node 0
    ctxs[0].suspend();

    // Reader on node 1: restrict (node 0 inactive, not awaited), then
    // replicate.
    assert_eq!(ctxs[1].read(va + 4), 11);
    assert_eq!(state_of(&kernel, &ctxs[1], va), CpState::PresentPlus);
    assert_eq!(copies_of(&kernel, &ctxs[1], va), 2);

    // A third reader grows the directory again.
    assert_eq!(ctxs[2].read(va + 4), 11);
    assert_eq!(copies_of(&kernel, &ctxs[2], va), 3);
    assert_eq!(kernel.stats().snapshot().replications, 2);
    ctxs[0].resume();
}

#[test]
fn present1_local_write_upgrades_without_invalidation() {
    let (kernel, va, mut ctxs) = setup(2);
    let _ = ctxs[0].read(va); // present1 on node 0
    assert_eq!(state_of(&kernel, &ctxs[0], va), CpState::Present1);
    ctxs[0].write(va, 5); // same node: upgrade
    let page = kernel.cpage_for_va(ctxs[0].space(), va).unwrap();
    let g = page.lock();
    assert_eq!(g.state, CpState::Modified);
    assert_eq!(
        g.last_invalidation, None,
        "present1->modified performs no invalidation (§3.2)"
    );
    assert_eq!(g.copies.len(), 1);
}

#[test]
fn present_plus_write_collapses_to_modified() {
    let (kernel, va, mut ctxs) = setup(3);
    let _ = ctxs[0].read(va);
    let _ = ctxs[1].read(va);
    let _ = ctxs[2].read(va);
    assert_eq!(copies_of(&kernel, &ctxs[0], va), 3);

    ctxs[1].suspend();
    ctxs[2].suspend();
    ctxs[0].write(va, 9);

    let page = kernel.cpage_for_va(ctxs[0].space(), va).unwrap();
    {
        let g = page.lock();
        assert_eq!(g.state, CpState::Modified);
        assert_eq!(g.copies.len(), 1);
        assert_eq!(g.copies[0].module_id(), 0, "the local copy survives");
        assert!(g.last_invalidation.is_some(), "this was an invalidation");
        g.check_invariants().unwrap();
    }
    let s = kernel.stats().snapshot();
    assert_eq!(s.invalidations, 1);
    assert_eq!(s.frames_freed, 2);

    // Readers resume, re-fault, and see the new value... but the page was
    // just invalidated, so the policy freezes rather than replicates.
    ctxs[1].resume();
    assert_eq!(ctxs[1].read(va), 9);
    assert_eq!(
        copies_of(&kernel, &ctxs[1], va),
        1,
        "frozen: no replication"
    );
}

#[test]
fn modified_remote_read_restricts_writer() {
    let (kernel, va, mut ctxs) = setup(2);
    ctxs[0].write(va, 3);
    ctxs[0].suspend();
    assert_eq!(ctxs[1].read(va), 3);
    assert_eq!(state_of(&kernel, &ctxs[1], va), CpState::PresentPlus);

    // The writer resumes; its mapping was restricted, so the next write
    // faults and collapses the replicas again.
    ctxs[1].suspend();
    ctxs[0].resume();
    ctxs[0].write(va, 4);
    assert_eq!(state_of(&kernel, &ctxs[0], va), CpState::Modified);
    ctxs[1].resume();
    assert_eq!(ctxs[1].read(va), 4, "reader must observe the new value");
}

#[test]
fn modified_remote_write_migrates() {
    let (kernel, va, mut ctxs) = setup(2);
    ctxs[0].write(va, 1); // modified on node 0
    ctxs[0].suspend();
    ctxs[1].write(va, 2); // first remote write: no recent invalidation -> migrate
    let page = kernel.cpage_for_va(ctxs[1].space(), va).unwrap();
    {
        let g = page.lock();
        assert_eq!(g.state, CpState::Modified);
        assert_eq!(g.copies.len(), 1);
        assert_eq!(g.copies[0].module_id(), 1, "page migrated to the writer");
        assert_eq!(g.migrations, 1);
        assert!(g.last_invalidation.is_some());
    }
    let s = kernel.stats().snapshot();
    assert_eq!(s.migrations, 1);
    assert_eq!(s.frames_freed, 1);
    ctxs[0].resume();
    assert_eq!(ctxs[0].read(va), 2, "old node re-faults and sees new data");
}

#[test]
fn write_ping_pong_freezes_page() {
    let (kernel, va, mut ctxs) = setup(2);
    ctxs[0].write(va, 1);
    ctxs[0].suspend();
    ctxs[1].write(va, 2); // migrate, stamps the invalidation history
    ctxs[1].suspend();
    ctxs[0].resume();
    ctxs[0].write(va, 3); // within t1 of the invalidation: freeze
    let page = kernel.cpage_for_va(ctxs[0].space(), va).unwrap();
    {
        let g = page.lock();
        assert!(g.frozen, "interleaved writes must freeze the page");
        assert_eq!(g.state, CpState::Modified);
        assert_eq!(g.copies.len(), 1);
        assert_eq!(g.copies[0].module_id(), 1, "frozen page stays where it was");
        g.check_invariants().unwrap();
    }
    let s = kernel.stats().snapshot();
    assert_eq!(s.freezes, 1);
    assert!(s.remote_maps >= 1);
    // Both processors keep working on the single frozen copy.
    ctxs[1].resume();
    assert_eq!(ctxs[1].read(va), 3);
    ctxs[1].write(va, 4);
    assert_eq!(ctxs[0].read(va), 4);
    // No further protocol work: still one copy, still frozen.
    assert_eq!(copies_of(&kernel, &ctxs[0], va), 1);
}

#[test]
fn defrost_thaws_frozen_page() {
    let (kernel, va, mut ctxs) = setup(2);
    // Freeze the page as above.
    ctxs[0].write(va, 1);
    ctxs[0].suspend();
    ctxs[1].write(va, 2);
    ctxs[1].suspend();
    ctxs[0].resume();
    ctxs[0].write(va, 3);
    assert!(
        kernel
            .cpage_for_va(ctxs[0].space(), va)
            .unwrap()
            .lock()
            .frozen
    );

    // The defrost daemon runs (ctx 1 suspended: not awaited).
    kernel.run_defrost(&mut ctxs[0]);
    let page = kernel.cpage_for_va(ctxs[0].space(), va).unwrap();
    {
        let g = page.lock();
        assert!(!g.frozen);
        assert_eq!(g.state, CpState::Present1, "thawed page has no writers");
        assert_eq!(g.thaws, 1);
    }
    // Later (outside t1) the page replicates freely again.
    ctxs[0].compute(20_000_000); // 20 ms of virtual time
    assert_eq!(ctxs[0].read(va), 3);
    ctxs[1].resume();
    ctxs[1].compute(20_000_000);
    assert_eq!(ctxs[1].read(va), 3);
    assert_eq!(
        copies_of(&kernel, &ctxs[1], va),
        2,
        "post-thaw reads replicate again"
    );
}

#[test]
fn explicit_thaw() {
    let (kernel, va, mut ctxs) = setup(2);
    ctxs[0].write(va, 1);
    ctxs[0].suspend();
    ctxs[1].write(va, 2);
    ctxs[1].suspend();
    ctxs[0].resume();
    ctxs[0].write(va, 3);
    assert!(
        kernel
            .cpage_for_va(ctxs[0].space(), va)
            .unwrap()
            .lock()
            .frozen
    );
    ctxs[0].thaw(va).unwrap();
    assert!(
        !kernel
            .cpage_for_va(ctxs[0].space(), va)
            .unwrap()
            .lock()
            .frozen
    );
}

#[test]
fn thaw_on_access_variant_replicates_after_t1() {
    let policy = PlatinumPolicy {
        t1_ns: 10_000_000,
        thaw_on_access: true,
    };
    let (kernel, va, mut ctxs) = setup_with_policy(3, Box::new(policy));
    ctxs[0].write(va, 1);
    ctxs[0].suspend();
    ctxs[1].write(va, 2);
    ctxs[1].suspend();
    ctxs[0].resume();
    ctxs[0].write(va, 3);
    assert!(
        kernel
            .cpage_for_va(ctxs[0].space(), va)
            .unwrap()
            .lock()
            .frozen
    );
    ctxs[0].suspend();

    // Within t1 a mapping-less processor still gets a remote mapping.
    assert_eq!(ctxs[2].read(va), 3);
    assert!(
        kernel
            .cpage_for_va(ctxs[2].space(), va)
            .unwrap()
            .lock()
            .frozen
    );

    // After t1 expires, the next *fault* thaws the page without waiting
    // for the defrost daemon. ctx2 holds a read-only mapping, so a write
    // faults; the policy replies Replicate and the page migrates-and-thaws.
    // (ctx1, the holder of the old copy, is suspended and therefore not
    // interrupted; it applies the invalidation on resume.)
    ctxs[2].compute(20_000_000);
    ctxs[2].write(va, 9);
    let page = kernel.cpage_for_va(ctxs[2].space(), va).unwrap();
    {
        let g = page.lock();
        assert!(!g.frozen, "access must thaw after t1 under this variant");
        assert_eq!(g.thaws, 1);
        assert_eq!(g.copies[0].module_id(), 2, "thaw-by-migration moved it");
    }
    ctxs[0].resume();
    assert_eq!(ctxs[0].read(va), 9);
}

#[test]
fn never_replicate_remote_maps() {
    let (kernel, va, mut ctxs) = setup_with_policy(3, Box::new(NeverReplicate));
    ctxs[0].write(va, 42);
    assert_eq!(ctxs[1].read(va), 42);
    assert_eq!(ctxs[2].read(va), 42);
    let page = kernel.cpage_for_va(ctxs[0].space(), va).unwrap();
    let g = page.lock();
    assert_eq!(g.copies.len(), 1, "static placement never replicates");
    assert_eq!(g.copies[0].module_id(), 0, "first touch placed it");
    let s = kernel.stats().snapshot();
    assert_eq!(s.replications, 0);
    assert_eq!(s.remote_maps, 2);
    assert!(
        !g.frozen,
        "remote mapping without interference is not a freeze"
    );
}

#[test]
fn never_replicate_remote_write_keeps_placement() {
    let (kernel, va, mut ctxs) = setup_with_policy(2, Box::new(NeverReplicate));
    ctxs[0].write(va, 1);
    ctxs[0].suspend();
    ctxs[1].write(va, 2);
    let page = kernel.cpage_for_va(ctxs[1].space(), va).unwrap();
    let g = page.lock();
    assert_eq!(g.copies[0].module_id(), 0, "page never moves");
    assert_eq!(g.migrations, 0);
    drop(g);
    ctxs[0].resume();
    assert_eq!(ctxs[0].read(va), 2);
}

#[test]
fn always_replicate_never_freezes() {
    let (kernel, va, mut ctxs) = setup_with_policy(2, Box::new(AlwaysReplicate));
    for round in 0..4u32 {
        ctxs[1].suspend();
        ctxs[0].resume();
        ctxs[0].write(va, round * 2);
        ctxs[0].suspend();
        ctxs[1].resume();
        ctxs[1].write(va, round * 2 + 1);
    }
    let s = kernel.stats().snapshot();
    assert_eq!(s.freezes, 0);
    assert!(s.migrations >= 7, "every remote write migrates");
    // Suspend the current writer before reading from the other node: the
    // read restricts the writer's mapping via shootdown.
    ctxs[1].suspend();
    ctxs[0].resume();
    assert_eq!(ctxs[0].read(va), 7);
}

#[test]
fn ace_style_bounds_migrations_then_freezes() {
    let (kernel, va, mut ctxs) = setup_with_policy(2, Box::new(AceStyle { max_migrations: 2 }));
    ctxs[0].write(va, 0);
    for round in 1..6u32 {
        let (a, b) = if round % 2 == 1 { (0, 1) } else { (1, 0) };
        ctxs[a].suspend();
        ctxs[b].resume();
        ctxs[b].write(va, round);
    }
    let s = kernel.stats().snapshot();
    assert_eq!(s.migrations, 2, "ACE migrates at most max_migrations times");
    let page = kernel.cpage_for_va(ctxs[0].space(), va).unwrap();
    assert!(page.lock().frozen, "then freezes in place for good");
}

#[test]
fn replication_preserves_data_and_invalidation_propagates() {
    let (_kernel, va, mut ctxs) = setup(4);
    // Fill a whole page on node 0.
    for i in 0..64u64 {
        ctxs[0].write(va + 4 * i, i as u32 * 3);
    }
    ctxs[0].suspend();
    // Everyone replicates and checks the full contents.
    for ctx in ctxs.iter_mut().skip(1) {
        for i in 0..64u64 {
            assert_eq!(ctx.read(va + 4 * i), i as u32 * 3);
        }
    }
    // Node 1 rewrites one word: replicas must die.
    ctxs[2].suspend();
    ctxs[3].suspend();
    ctxs[1].write(va + 4, 999);
    ctxs[2].resume();
    assert_eq!(ctxs[2].read(va + 4), 999, "stale replica must not be read");
    ctxs[3].resume();
    assert_eq!(ctxs[3].read(va + 4), 999);
    ctxs[0].resume();
    assert_eq!(ctxs[0].read(va + 4), 999);
}

#[test]
fn two_address_spaces_share_one_object_coherently() {
    let kernel = Kernel::new(machine(2));
    let object = kernel.create_object(1);
    let s1 = kernel.create_space();
    let s2 = kernel.create_space();
    let va1 = s1.map_anywhere(Arc::clone(&object), Rights::RW).unwrap();
    let va2 = s2.map_anywhere(Arc::clone(&object), Rights::RO).unwrap();
    let mut a = kernel.attach(Arc::clone(&s1), 0, 0).unwrap();
    let mut b = kernel.attach(Arc::clone(&s2), 1, 0).unwrap();

    a.write(va1, 77);
    a.suspend();
    assert_eq!(b.read(va2), 77, "different space, same object page");

    // The writer invalidates the replica through the *other* space's
    // Cmap queue (the binding list spans spaces).
    b.suspend();
    a.resume();
    a.write(va1, 78);
    b.resume();
    assert_eq!(b.read(va2), 78);

    // And the read-only space cannot write.
    assert!(b.try_write(va2, 1).is_err());
}

#[test]
fn protection_and_bus_errors() {
    let (kernel, _va, mut ctxs) = setup(1);
    // Untouched address far beyond any region: bus error.
    let r = ctxs[0].try_read(0x4000_0000);
    assert!(r.is_err());
    // Read-only region rejects writes at the VM level.
    let ro = kernel.create_object(1);
    let ro_va = ctxs[0]
        .space()
        .map_at(ro, 0, 1, 0x4100_0000, Rights::RO)
        .map(|_| 0x4100_0000u64)
        .unwrap();
    assert_eq!(ctxs[0].try_read(ro_va).unwrap(), 0);
    assert!(ctxs[0].try_write(ro_va, 1).is_err());
}

#[test]
fn atomic_ops_are_coherent_on_frozen_page() {
    let (kernel, va, mut ctxs) = setup(2);
    // Freeze the page with interleaved writes.
    ctxs[0].write(va, 0);
    ctxs[0].suspend();
    ctxs[1].write(va, 0);
    ctxs[1].suspend();
    ctxs[0].resume();
    ctxs[0].write(va, 0);
    ctxs[1].resume();
    assert!(
        kernel
            .cpage_for_va(ctxs[0].space(), va)
            .unwrap()
            .lock()
            .frozen
    );

    // Atomic increments from both processors through remote mappings.
    for _ in 0..50 {
        ctxs[0].fetch_add(va, 1);
        ctxs[1].fetch_add(va, 1);
    }
    assert_eq!(ctxs[0].read(va), 100);
    assert_eq!(ctxs[1].compare_exchange(va, 100, 7), Ok(100));
    assert_eq!(ctxs[0].swap(va, 9), 7);
}

#[test]
fn migration_of_thread_refaults_pages() {
    let (kernel, va, mut ctxs) = setup(3);
    ctxs[1].suspend();
    ctxs[2].suspend();
    let mut ctx = ctxs.remove(0);
    ctx.write(va, 5);
    assert_eq!(state_of(&kernel, &ctx, va), CpState::Modified);

    // Kill the other contexts so their processors free up... not needed:
    // migrate to an unoccupied processor is impossible (all occupied), so
    // drop one.
    drop(ctxs.pop()); // frees processor 2
    ctx.migrate(2).unwrap();
    assert_eq!(ctx.proc_id(), 2);
    // The thread's data follows it on the next write fault (migration
    // policy: no recent invalidation).
    ctx.write(va, 6);
    let page = kernel.cpage_for_va(ctx.space(), va).unwrap();
    assert_eq!(page.lock().copies[0].module_id(), 2);
    assert_eq!(ctx.read(va), 6);
    // Migrating onto an occupied processor fails.
    assert!(ctx.migrate(1).is_err());
}

#[test]
fn read_block_and_write_block_roundtrip_across_pages() {
    let (_kernel, va, mut ctxs) = setup(2);
    let n = 3000usize; // spans three 4 KB pages
    let src: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(2654435761)).collect();
    ctxs[0].write_block(va, &src);
    ctxs[0].suspend();
    let mut dst = vec![0u32; n];
    ctxs[1].read_block(va, &mut dst);
    assert_eq!(src, dst);
}

#[test]
fn post_mortem_report_shows_frozen_pages() {
    let (kernel, va, mut ctxs) = setup(2);
    ctxs[0].write(va, 1);
    ctxs[0].suspend();
    ctxs[1].write(va, 2);
    ctxs[1].suspend();
    ctxs[0].resume();
    ctxs[0].write(va, 3);
    let report = kernel.report();
    assert_eq!(report.ever_frozen().len(), 1);
    assert!(report.totals.faults >= 3);
    let text = report.to_string();
    assert!(
        text.contains("FROZEN"),
        "report must flag frozen pages:\n{text}"
    );
}
