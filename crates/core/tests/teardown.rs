//! Tests of unmapping, memory-object destruction, and replica
//! reclamation under memory pressure.

use std::sync::Arc;

use numa_machine::{Machine, MachineConfig, Mem};
use platinum::{Kernel, KernelError, Rights, UserCtx};

fn machine(nodes: usize, frames: usize) -> Arc<Machine> {
    Machine::new(MachineConfig {
        nodes,
        frames_per_node: frames,
        skew_window_ns: None,
        ..MachineConfig::default()
    })
    .unwrap()
}

fn attach_all(kernel: &Arc<Kernel>, space: &Arc<platinum::AddressSpace>, n: usize) -> Vec<UserCtx> {
    (0..n)
        .map(|p| kernel.attach(Arc::clone(space), p, 0).unwrap())
        .collect()
}

#[test]
fn unmap_invalidates_translations_everywhere() {
    let kernel = Kernel::new(machine(3, 32));
    let space = kernel.create_space();
    let object = kernel.create_object(2);
    let va = space.map_anywhere(Arc::clone(&object), Rights::RW).unwrap();
    let mut ctxs = attach_all(&kernel, &space, 3);

    ctxs[0].write(va, 7);
    ctxs[0].suspend();
    assert_eq!(ctxs[1].read(va), 7);
    assert_eq!(ctxs[2].read(va), 7);
    ctxs[2].suspend();

    // Processor 1 unmaps while 0 and 2 are inactive; their stale
    // translations die via the message queue.
    let kernel2 = Arc::clone(&kernel);
    kernel2.unmap(&mut ctxs[1], va).unwrap();

    // The region is gone: accesses now bus-error.
    assert!(ctxs[1].try_read(va).is_err());
    ctxs[0].resume();
    assert!(ctxs[0].try_read(va).is_err());

    // Unmapping again fails cleanly.
    assert!(matches!(
        kernel2.unmap(&mut ctxs[1], va),
        Err(KernelError::Access(_))
    ));

    // The object survives and can be re-bound with its data intact.
    let va2 = space.map_anywhere(object, Rights::RW).unwrap();
    assert_eq!(ctxs[1].read(va2), 7, "object data survives unmapping");
}

#[test]
fn destroy_object_frees_frames_and_requires_no_bindings() {
    let kernel = Kernel::new(machine(2, 32));
    let space = kernel.create_space();
    let object = kernel.create_object(3);
    let va = space.map_anywhere(Arc::clone(&object), Rights::RW).unwrap();
    let mut ctxs = attach_all(&kernel, &space, 2);

    // Touch all three pages from both nodes (replicas on page 0).
    for pg in 0..3u64 {
        ctxs[0].write(va + pg * 4096, pg as u32);
    }
    ctxs[0].suspend();
    for pg in 0..3u64 {
        assert_eq!(ctxs[1].read(va + pg * 4096), pg as u32);
    }
    let before = kernel.machine().frames_allocated();
    assert!(before >= 3, "at least one frame per touched page: {before}");

    // Destruction is refused while the binding exists.
    assert!(matches!(
        kernel.destroy_object(&mut ctxs[1], &object),
        Err(KernelError::ObjectInUse(_))
    ));

    kernel.unmap(&mut ctxs[1], va).unwrap();
    kernel.destroy_object(&mut ctxs[1], &object).unwrap();
    assert_eq!(
        kernel.machine().frames_allocated(),
        0,
        "all frames must return to the free pool"
    );
}

#[test]
fn replica_eviction_survives_memory_pressure() {
    // Node 0 has very few frames; a reader on node 0 replicating many
    // pages must evict older replicas instead of dying.
    let kernel = Kernel::new(machine(2, 8));
    let space = kernel.create_space();
    let object = kernel.create_object(6);
    let va = space.map_anywhere(object, Rights::RW).unwrap();
    let mut ctxs = attach_all(&kernel, &space, 2);

    // Writer on node 1 fills six pages (6 of node 1's 8 frames).
    for pg in 0..6u64 {
        ctxs[1].write(va + pg * 4096, 100 + pg as u32);
    }
    ctxs[1].suspend();
    ctxs[0].compute(20_000_000); // past t1: replication allowed

    // Reader on node 0 walks all six pages twice. Its module has 8
    // frames; replicas must be evicted to keep going, and every value
    // must still be correct.
    for round in 0..2 {
        for pg in 0..6u64 {
            assert_eq!(
                ctxs[0].read(va + pg * 4096),
                100 + pg as u32,
                "round {round} page {pg}"
            );
        }
    }
    // Also allocate fresh pages on node 0 to force eviction for *owned*
    // data, not just replicas.
    let obj2 = kernel.create_object(5);
    let va2 = space.map_anywhere(obj2, Rights::RW).unwrap();
    for pg in 0..5u64 {
        ctxs[0].write(va2 + pg * 4096, pg as u32);
    }
    for pg in 0..5u64 {
        assert_eq!(ctxs[0].read(va2 + pg * 4096), pg as u32);
    }
    assert!(
        kernel.stats().snapshot().reclaims > 0,
        "memory pressure must have evicted replicas"
    );
}

#[test]
fn out_of_memory_without_evictable_replicas_is_reported() {
    // Every frame on node 0 holds a *sole* copy: nothing is evictable,
    // so allocation must fail cleanly rather than evict someone's data.
    let kernel = Kernel::new(machine(1, 4));
    let space = kernel.create_space();
    let object = kernel.create_object(5);
    let va = space.map_anywhere(object, Rights::RW).unwrap();
    let mut ctx = kernel.attach(space, 0, 0).unwrap();
    for pg in 0..4u64 {
        ctx.try_write(va + pg * 4096, 1).unwrap();
    }
    let err = ctx.try_write(va + 4 * 4096, 1);
    assert!(
        matches!(err, Err(KernelError::OutOfMemory)),
        "expected OutOfMemory, got {err:?}"
    );
}

#[test]
fn reclaim_prefers_replicas_and_keeps_sole_copies() {
    let kernel = Kernel::new(machine(2, 4));
    let space = kernel.create_space();
    // Two pages of private data on node 0 (sole copies), then replicas
    // of remote pages until node 0 fills; further replicas must evict
    // only the replicas.
    let private = kernel.create_object(2);
    let pva = space.map_anywhere(private, Rights::RW).unwrap();
    let shared = kernel.create_object(4);
    let sva = space.map_anywhere(shared, Rights::RW).unwrap();
    let mut ctxs = attach_all(&kernel, &space, 2);
    ctxs[0].write(pva, 11);
    ctxs[0].write(pva + 4096, 22);
    ctxs[1].suspend();
    ctxs[1].resume();
    for pg in 0..4u64 {
        ctxs[1].write(sva + pg * 4096, pg as u32);
    }
    ctxs[1].suspend();
    ctxs[0].compute(20_000_000);
    // Node 0 has 2 frames free; reading 4 shared pages forces eviction
    // of earlier replicas, never the private pages.
    for pg in 0..4u64 {
        assert_eq!(ctxs[0].read(sva + pg * 4096), pg as u32);
    }
    assert_eq!(ctxs[0].read(pva), 11, "sole copies must never be evicted");
    assert_eq!(ctxs[0].read(pva + 4096), 22);
}
