//! Regression test: the steady-state fault path performs zero heap
//! allocations.
//!
//! The slow-path overhaul gave every processor a `FaultScratch` — a
//! reusable `ShootdownBatch`, a `CmapMsg` pool, and drain/dying-frame
//! scratch vectors — so a fault that migrates a page, shoots down the
//! peer, and updates the directory touches the allocator only while the
//! pools warm up. This binary installs a counting global allocator
//! (which is why the test lives alone in its own integration target) and
//! pins the property down: after a warm-up phase, a long migration
//! ping-pong between two processors must allocate nothing at all.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use numa_machine::{Machine, MachineConfig, Mem};
use platinum::{Kernel, KernelConfig, PlatinumPolicy, Rights};

struct Counting;
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(l) }
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        unsafe { System.dealloc(p, l) }
    }
    unsafe fn realloc(&self, p: *mut u8, l: Layout, n: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(p, l, n) }
    }
}

#[global_allocator]
static A: Counting = Counting;

#[test]
fn steady_state_fault_path_is_allocation_free() {
    let machine = Machine::new(MachineConfig {
        nodes: 2,
        frames_per_node: 64,
        skew_window_ns: None,
        fast_path: true,
        ..MachineConfig::default()
    })
    .unwrap();
    // t1 = 0: invalidations are never "recent", so the page migrates on
    // every write fault and never freezes — the pure slow-path regime.
    let kernel = Kernel::with_config(
        machine,
        Box::new(PlatinumPolicy {
            t1_ns: 0,
            ..PlatinumPolicy::paper_default()
        }),
        KernelConfig::default(),
    );
    let space = kernel.create_space();
    let object = kernel.create_object(1);
    let va = space.map_anywhere(object, Rights::RW).unwrap();
    let mut a = kernel.attach(Arc::clone(&space), 0, 0).unwrap();
    let mut b = kernel.attach(space, 1, 0).unwrap();

    // One ping: each side faults (migrate + shootdown + directory
    // update) with the peer suspended, so the peer applies the queued
    // invalidation lazily on resume — the fault_heavy mix's kernel.
    let mut ping = |k: u32| {
        b.suspend();
        a.write(va, k);
        b.resume();
        a.suspend();
        b.write(va, k);
        a.resume();
    };

    // Warm-up: message pools, queue and batch capacities, thread-table
    // growth all settle here.
    for k in 0..512 {
        ping(k);
    }

    let before = ALLOCS.load(Ordering::Relaxed);
    for k in 0..4096 {
        ping(k);
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state fault path allocated {} times over 8192 faults",
        after - before
    );
}
