//! Big-machine round-trip tests: processor ids at and beyond 64 through
//! the directory, refmask, and shootdown paths.
//!
//! Before the `ProcSet` redesign the directory masks were bare `u64`s,
//! so `1u64 << module` silently truncated every id ≥ 64: processor 64
//! would read a page, never appear in `copies_mask` or the Cmap
//! refmask, and keep a stale replica through the next invalidation —
//! a *wrong answer*, not a wrong statistic. These tests drive random
//! reader/writer sets on machines of 65–128 nodes (plus a deterministic
//! 256-node sweep) and assert the full round trip: every reader lands
//! in the directory and the refmask, the writer's shootdown reaches
//! all of them, and the re-read observes the written value.

use std::collections::BTreeSet;
use std::sync::Arc;

use numa_machine::{Machine, MachineConfig, Mem};
use platinum::{CpState, Kernel, PlatinumPolicy, Rights, UserCtx};
use proptest::prelude::*;

fn machine(nodes: usize) -> Arc<Machine> {
    Machine::new(MachineConfig {
        nodes,
        frames_per_node: 8,
        skew_window_ns: None,
        ..MachineConfig::default()
    })
    .unwrap()
}

/// Attaches one suspended context per involved processor. Tests resume
/// exactly one at a time, so every protocol step is a deterministic
/// single-threaded trace (the convention of `protocol.rs`).
fn attach_suspended(kernel: &Arc<Kernel>, procs: &[usize]) -> (u64, Vec<UserCtx>) {
    let space = kernel.create_space();
    let object = kernel.create_object(1);
    let va = space.map_anywhere(object, Rights::RW).unwrap();
    let ctxs = procs
        .iter()
        .map(|&p| {
            let mut c = kernel.attach(Arc::clone(&space), p, 0).unwrap();
            c.suspend();
            c
        })
        .collect();
    (va, ctxs)
}

/// One full protocol round trip for the given reader set and writer:
/// replicate to every reader, shoot all replicas down from the writer,
/// and verify the directory, refmask, and re-read values at each stage.
fn round_trip(nodes: usize, readers: &[usize], writer: usize) {
    let kernel = Kernel::with_policy(machine(nodes), Box::new(PlatinumPolicy::paper_default()));
    let mut procs: Vec<usize> = readers.to_vec();
    if !procs.contains(&writer) {
        procs.push(writer);
    }
    let (va, mut ctxs) = attach_suspended(&kernel, &procs);
    let widx = procs.iter().position(|&p| p == writer).unwrap();

    // Every reader faults in a local replica.
    for (i, &p) in procs.iter().enumerate() {
        if p == writer && !readers.contains(&p) {
            continue;
        }
        ctxs[i].resume();
        assert_eq!(ctxs[i].read(va), 0, "fresh pages are zero-filled");
        ctxs[i].suspend();
    }

    let space = Arc::clone(ctxs[0].space());
    let page = kernel.cpage_for_va(&space, va).unwrap();
    {
        let g = page.lock();
        let modules: BTreeSet<usize> = g.copies.iter().map(|pp| pp.module_id()).collect();
        let expected: BTreeSet<usize> = readers.iter().copied().collect();
        assert_eq!(
            modules, expected,
            "directory must hold one replica per reader, ids ≥ 64 included"
        );
        for &r in readers {
            assert!(
                g.copies_mask.contains(r),
                "copies_mask lost reader {r} on a {nodes}-node machine"
            );
        }
        g.check_invariants().unwrap();
    }
    // The Cmap refmask saw every reader too.
    let refs = space.cmap().refs_of(space.vpn_of(va)).unwrap();
    for &r in readers {
        assert!(refs.contains(r), "cmap refmask lost reader {r}");
    }

    // The writer invalidates every replica (suspended processors apply
    // the shootdown on resume).
    ctxs[widx].resume();
    ctxs[widx].write(va, 42);
    ctxs[widx].suspend();
    {
        let g = page.lock();
        assert_eq!(g.state, CpState::Modified);
        assert_eq!(g.copies.len(), 1, "all other replicas invalidated");
        assert_eq!(g.copies[0].module_id(), writer);
        assert!(g.writer_mask.contains(writer));
        g.check_invariants().unwrap();
    }

    // Every reader re-reads through the coherence protocol: a stale
    // replica surviving because its owner's id truncated out of the
    // shootdown mask would return 0 here.
    for (i, &p) in procs.iter().enumerate() {
        if !readers.contains(&p) {
            continue;
        }
        ctxs[i].resume();
        assert_eq!(
            ctxs[i].read(va),
            42,
            "reader {p} saw a stale replica after the writer's shootdown"
        );
        ctxs[i].suspend();
    }
}

/// Reader sets that always straddle the old 64-bit boundary: a few ids
/// below 64, a few at-or-above (folded into `[64, nodes)`), and a
/// writer ≥ 64.
fn big_scenarios() -> impl Strategy<Value = (usize, Vec<usize>, usize)> {
    (
        65usize..129,
        proptest::collection::vec(0usize..64, 1..4),
        proptest::collection::vec(0usize..4096, 1..4),
        0usize..4096,
    )
        .prop_map(|(nodes, low, high_raw, w_raw)| {
            let span = nodes - 64;
            let mut readers: BTreeSet<usize> = low.into_iter().collect();
            readers.extend(high_raw.into_iter().map(|r| 64 + r % span));
            let writer = 64 + w_raw % span;
            (nodes, readers.into_iter().collect(), writer)
        })
}

proptest! {
    // Each case boots a 65–128 node machine; keep the count modest.
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn ids_beyond_64_round_trip_directory_refmask_shootdown(
        scenario in big_scenarios()
    ) {
        let (nodes, readers, writer) = scenario;
        round_trip(nodes, &readers, writer);
    }
}

#[test]
fn boundary_ids_round_trip_on_a_256_node_machine() {
    // The exact boundary ids the u64 masks used to truncate, plus the
    // top of the supported range.
    round_trip(256, &[0, 63, 64, 65, 127, 128, 255], 255);
    round_trip(256, &[63, 64], 64);
}
