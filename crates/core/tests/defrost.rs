//! Tests of the defrost daemon beyond the happy path: empty runs, pages
//! thawed between enrollment and activation, a thaw racing live faults
//! on the same Cpage from real threads, and the t2 activation schedule
//! under the virtual-clock skew window.

use std::sync::Arc;

use numa_machine::{Machine, MachineConfig, Mem};
use platinum::trace::{EventKind, TraceConfig, Tracer};
use platinum::{Kernel, KernelConfig, PlatinumPolicy, Rights, UserCtx};

fn machine_with(nodes: usize, skew: Option<u64>) -> Arc<Machine> {
    Machine::new(MachineConfig {
        nodes,
        frames_per_node: 64,
        skew_window_ns: skew,
        ..MachineConfig::default()
    })
    .unwrap()
}

fn setup(nodes: usize) -> (Arc<Kernel>, u64, Vec<UserCtx>) {
    let kernel = Kernel::new(machine_with(nodes, None));
    let space = kernel.create_space();
    let object = kernel.create_object(2);
    let va = space.map_anywhere(object, Rights::RW).unwrap();
    let ctxs = (0..nodes)
        .map(|p| kernel.attach(Arc::clone(&space), p, 0).unwrap())
        .collect();
    (kernel, va, ctxs)
}

fn freeze_page(va: u64, ctxs: &mut [UserCtx]) {
    ctxs[0].write(va, 1);
    ctxs[0].suspend();
    ctxs[1].write(va, 2);
    ctxs[1].suspend();
    ctxs[0].resume();
    ctxs[0].write(va, 3);
}

#[test]
fn empty_frozen_list_run_is_harmless() {
    let (kernel, va, mut ctxs) = setup(2);
    ctxs[0].write(va, 1);
    for _ in 0..3 {
        kernel.run_defrost(&mut ctxs[0]);
    }
    let s = kernel.stats().snapshot();
    assert_eq!(s.defrost_runs, 3, "every run counts, even an empty one");
    assert_eq!(s.thaws, 0);
    assert_eq!(ctxs[0].read(va), 1, "memory is untouched");
}

/// A page thawed between enrollment and the daemon's activation (here by
/// the explicit thaw call exposed to run-time support) must be skipped:
/// the daemon examines it but thaws nothing.
#[test]
fn daemon_skips_page_thawed_since_enrollment() {
    let (kernel, va, mut ctxs) = setup(2);
    let tracer = Tracer::new(TraceConfig::default());
    kernel.install_tracer(Arc::clone(&tracer));
    freeze_page(va, &mut ctxs);
    assert!(
        kernel
            .cpage_for_va(ctxs[0].space(), va)
            .unwrap()
            .lock()
            .frozen
    );

    ctxs[0].thaw(va).unwrap(); // beats the daemon to it
    kernel.run_defrost(&mut ctxs[0]);

    let s = kernel.stats().snapshot();
    assert_eq!(s.freezes, 1);
    assert_eq!(s.thaws, 1, "only the explicit thaw; the daemon added none");
    let run = tracer
        .snapshot()
        .of_kind(EventKind::DefrostRun)
        .next()
        .copied()
        .expect("one daemon run");
    assert_eq!(run.page, 1, "the enrolled page was examined");
    assert_eq!(run.arg, 0, "but nothing was thawed");
}

/// Freezing the same page again after a thaw re-enrolls it, and the next
/// daemon run thaws it again — enrollment is per freeze, not per page
/// lifetime.
#[test]
fn refreeze_after_thaw_reenrolls() {
    let (kernel, va, mut ctxs) = setup(2);
    freeze_page(va, &mut ctxs);
    kernel.run_defrost(&mut ctxs[0]);
    assert!(
        !kernel
            .cpage_for_va(ctxs[0].space(), va)
            .unwrap()
            .lock()
            .frozen
    );

    // Same interleaving, still inside t1 of the defrost invalidation:
    // freezes again.
    ctxs[0].suspend();
    ctxs[1].resume();
    ctxs[1].write(va, 4);
    ctxs[1].suspend();
    ctxs[0].resume();
    ctxs[0].write(va, 5);
    assert!(
        kernel
            .cpage_for_va(ctxs[0].space(), va)
            .unwrap()
            .lock()
            .frozen
    );

    kernel.run_defrost(&mut ctxs[0]);
    let s = kernel.stats().snapshot();
    assert_eq!(s.freezes, 2);
    assert_eq!(s.thaws, 2);
    ctxs[1].resume();
    assert_eq!(ctxs[1].read(va), 5, "data survives the whole dance");
}

/// Real threads: faulting workers hammer one Cpage (freezing it over and
/// over) while another processor repeatedly runs the daemon, so thaws
/// race live faults on the same page. Coherence and liveness must hold,
/// and every freeze/thaw transition must stay consistent.
#[test]
fn thaw_races_concurrent_faults() {
    const WORKERS: usize = 3;
    const OPS: u32 = 2_000;
    let kernel = Kernel::new(machine_with(WORKERS + 1, Some(5_000_000)));
    let space = kernel.create_space();
    let object = kernel.create_object(1);
    let va = space.map_anywhere(object, Rights::RW).unwrap();

    std::thread::scope(|s| {
        for p in 0..WORKERS {
            let kernel = Arc::clone(&kernel);
            let space = Arc::clone(&space);
            s.spawn(move || {
                let mut ctx = kernel.attach(space, p, 0).unwrap();
                for _ in 0..OPS {
                    ctx.fetch_add(va, 1);
                }
            });
        }
        // The daemon's processor: thaw whatever froze, as fast as the
        // workers can freeze it.
        let kernel2 = Arc::clone(&kernel);
        let space2 = Arc::clone(&space);
        s.spawn(move || {
            let mut ctx = kernel2.attach(space2, WORKERS, 0).unwrap();
            for _ in 0..200 {
                kernel2.run_defrost(&mut ctx);
                ctx.compute(50_000);
                std::thread::yield_now();
            }
            ctx.suspend();
        });
    });

    let mut ctx = kernel.attach(space, 0, 0).unwrap();
    assert_eq!(
        ctx.read(va),
        WORKERS as u32 * OPS,
        "no update lost across freeze/thaw races"
    );
    let s = kernel.stats().snapshot();
    assert!(s.defrost_runs >= 200);
    let page = kernel.cpage_for_va(ctx.space(), va).unwrap();
    let g = page.lock();
    g.check_invariants().unwrap();
    assert!(
        u64::from(g.thaws) <= s.thaws,
        "per-page thaw count cannot exceed the machine total"
    );
}

/// The t2 schedule under a skew window: the daemon activates only when a
/// processor's clock crosses the next scheduled tick, activations are
/// spaced at least t2 apart in virtual time, and none fires before the
/// first tick. Driven deterministically from one processor (the other is
/// suspended and publishes idle, so the window machinery runs in the
/// entry path without ever throttling the driver).
#[test]
fn t2_activation_ordering_under_skew_window() {
    const T2: u64 = 2_000_000; // 2 ms, small enough to hit repeatedly
    let kernel = Kernel::with_config(
        machine_with(2, Some(5_000_000)),
        Box::new(PlatinumPolicy::paper_default()),
        KernelConfig {
            t2_defrost_ns: T2,
            ..KernelConfig::default()
        },
    );
    let tracer = Tracer::new(TraceConfig::default());
    kernel.install_tracer(Arc::clone(&tracer));
    let space = kernel.create_space();
    let object = kernel.create_object(1);
    let va = space.map_anywhere(object, Rights::RW).unwrap();
    let mut other = kernel.attach(Arc::clone(&space), 1, 0).unwrap();
    other.suspend();
    let mut ctx = kernel.attach(space, 0, 0).unwrap();

    // ~40 ms of virtual time, with enough accesses for the entry path to
    // poll the daemon's schedule regularly.
    for i in 0..400u32 {
        ctx.compute(100_000);
        ctx.write(va + u64::from(i % 8) * 4, i);
        let _ = ctx.read(va);
    }

    let trace = tracer.snapshot();
    let mut runs: Vec<_> = trace.of_kind(EventKind::DefrostRun).copied().collect();
    assert!(
        runs.len() >= 2,
        "40 ms of virtual work at t2 = 2 ms must activate the daemon repeatedly \
         (got {})",
        runs.len()
    );
    // Activations are claimed by CAS on the next-run tick: each claim
    // reschedules the next one t2 later, so activation times never
    // regress and consecutive activations are at least t2 apart.
    runs.sort_by_key(|e| e.seq);
    for pair in runs.windows(2) {
        assert!(
            pair[1].vtime >= pair[0].vtime + T2,
            "daemon activations closer than t2: {} then {}",
            pair[0].vtime,
            pair[1].vtime
        );
    }
    // The first activation cannot precede the first scheduled tick, and
    // n activations need at least n*t2 of virtual time.
    assert!(runs[0].vtime >= T2);
    let last = runs.last().unwrap().vtime;
    assert!(runs.len() as u64 <= last / T2);
}
