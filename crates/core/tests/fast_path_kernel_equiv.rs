//! Kernel-level equivalence of the host fast path and the sharded Cmap.
//!
//! Two properties the hot-path overhaul must preserve:
//!
//! 1. With `MachineConfig::fast_path` off, every observable — virtual
//!    times, access counters, kernel event counts, values read, the
//!    final Cmap directory — is bit-identical to a fast-path run of the
//!    same single-threaded schedule.
//! 2. The Cmap shard count is transparent: a concurrent read-mostly
//!    stress run leaves the same final directory state (and the same
//!    per-page protocol timeline) at 1 shard as at 16.

use std::sync::Arc;

use numa_machine::{AccessCounters, Machine, MachineConfig, Mem, ProcSet};
use platinum::trace::{EventKind, TraceConfig, Tracer};
use platinum::{
    AlwaysReplicate, FaultPlan, Kernel, KernelConfig, PlatinumPolicy, Rights, StatsSnapshot,
    UserCtx,
};

fn machine(nodes: usize, fast_path: bool) -> Arc<Machine> {
    Machine::new(MachineConfig {
        nodes,
        frames_per_node: 256,
        skew_window_ns: None,
        fast_path,
        ..MachineConfig::default()
    })
    .unwrap()
}

/// Everything a run exposes; two runs of the same schedule must agree on
/// all of it.
#[derive(Debug, PartialEq)]
struct Observation {
    vtimes: Vec<u64>,
    counters: Vec<AccessCounters>,
    stats: StatsSnapshot,
    values: Vec<u32>,
    directory: Vec<(u64, u64, Rights, ProcSet)>,
}

fn directory_of(space: &platinum::AddressSpace) -> Vec<(u64, u64, Rights, ProcSet)> {
    let mut dir: Vec<_> = space
        .cmap()
        .snapshot()
        .into_iter()
        .map(|(vpn, e)| (vpn, e.cpage.0, e.rights, e.refs()))
        .collect();
    dir.sort_by_key(|&(vpn, ..)| vpn);
    dir
}

/// A deterministic single-threaded schedule over four processors:
/// replication (everyone reads everything), hot loops (ATC hits),
/// invalidating writes and atomics against suspended peers (lazy
/// message application), plus error paths (misaligned, unmapped).
fn run_scripted(
    fast_path: bool,
    cmap_shards: usize,
    faults: Option<Arc<FaultPlan>>,
) -> Observation {
    const P: usize = 4;
    const PAGES: usize = 8;
    let kernel = Kernel::with_config(
        machine(P, fast_path),
        Box::new(PlatinumPolicy::paper_default()),
        KernelConfig {
            cmap_shards,
            faults,
            ..KernelConfig::default()
        },
    );
    let space = kernel.create_space();
    let object = kernel.create_object(PAGES);
    let va = space.map_anywhere(object, Rights::RW).unwrap();
    let page_bytes = (kernel.machine().cfg().words_per_page() * 4) as u64;
    let page = |i: usize| va + i as u64 * page_bytes;
    let mut ctxs: Vec<UserCtx> = (0..P)
        .map(|p| kernel.attach(Arc::clone(&space), p, 0).unwrap())
        .collect();
    let mut values = Vec::new();

    // Replication sweep: every processor touches every page.
    for ctx in &mut ctxs {
        for i in 0..PAGES {
            values.push(ctx.read(page(i)));
        }
    }

    // Hot loops: repeated hits on a resident page, mixed offsets.
    for (p, ctx) in ctxs.iter_mut().enumerate() {
        let base = page(p * 2 % PAGES);
        for k in 0..32u64 {
            values.push(ctx.read(base + (k % 16) * 4));
        }
    }

    // Error paths must behave identically: misaligned and unmapped.
    for (p, ctx) in ctxs.iter_mut().enumerate() {
        values.push(match ctx.try_read(page(0) + 2) {
            Ok(v) => v,
            Err(_) => 0xdead_0000 + p as u32,
        });
        values.push(match ctx.try_write(0x10, 1) {
            Ok(()) => 0,
            Err(_) => 0xbeef_0000 + p as u32,
        });
    }

    // Invalidating writes and atomics: the writer's peers are suspended
    // (shootdown posts messages, no interrupts), then resume and read
    // the new value back, applying the queued invalidations lazily.
    for writer in 0..P {
        for p in (0..P).filter(|&p| p != writer) {
            ctxs[p].suspend();
        }
        ctxs[writer].write(page(writer), 0x100 + writer as u32);
        values.push(ctxs[writer].fetch_add(page((writer + 4) % PAGES), 3));
        values.push(ctxs[writer].swap(page((writer + 4) % PAGES) + 8, writer as u32));
        for p in (0..P).filter(|&p| p != writer) {
            ctxs[p].resume();
        }
        for ctx in &mut ctxs {
            values.push(ctx.read(page(writer)));
            values.push(ctx.read(page((writer + 4) % PAGES)));
        }
    }

    Observation {
        vtimes: ctxs.iter().map(|c| c.vtime()).collect(),
        counters: ctxs.iter().map(|c| c.counters()).collect(),
        stats: kernel.stats().snapshot(),
        values,
        directory: directory_of(&space),
    }
}

#[test]
fn fast_path_run_is_bit_identical_to_reference_run() {
    let fast = run_scripted(true, 16, None);
    let slow = run_scripted(false, 16, None);
    assert_eq!(fast.values, slow.values, "observed values diverged");
    assert_eq!(fast.vtimes, slow.vtimes, "virtual times diverged");
    assert_eq!(fast.counters, slow.counters, "access counters diverged");
    assert_eq!(fast.stats, slow.stats, "kernel event counters diverged");
    assert_eq!(fast.directory, slow.directory, "Cmap directory diverged");
    // The workload exercised the fast path for real.
    let hits: u64 = fast.counters.iter().map(|c| c.atc_hits).sum();
    assert!(
        hits > 100,
        "expected a hot-loop-dominated run, got {hits} hits"
    );
}

#[test]
fn cmap_shard_count_is_transparent_in_a_scripted_run() {
    let one = run_scripted(true, 1, None);
    let many = run_scripted(true, 16, None);
    assert_eq!(one, many, "shard count changed an observable");
}

/// Fault injection lives entirely on the kernel slow path and keys its
/// decisions off virtual time, which the two translation paths agree on
/// by construction — so the bit-for-bit equivalence must survive an
/// active fault plan, injected recoveries and all.
#[test]
fn fast_path_equivalence_holds_under_injection() {
    let plan = Arc::new(FaultPlan::chaos(42, 60_000));
    let fast = run_scripted(true, 16, Some(Arc::clone(&plan)));
    let slow = run_scripted(false, 16, Some(plan));
    assert_eq!(fast.values, slow.values, "observed values diverged");
    assert_eq!(fast.vtimes, slow.vtimes, "virtual times diverged");
    assert_eq!(fast.counters, slow.counters, "access counters diverged");
    assert_eq!(fast.stats, slow.stats, "kernel event counters diverged");
    assert_eq!(fast.directory, slow.directory, "Cmap directory diverged");
    let injected = fast.stats.mem_errors
        + fast.stats.shootdown_timeouts
        + fast.stats.transfer_faults
        + fast.stats.alloc_faults;
    assert!(
        injected > 0,
        "the plan must actually fire for this test to mean anything"
    );
    assert!(
        fast.stats.fault_recoveries > 0,
        "recoveries must be recorded"
    );
}

/// Concurrent stress: eight threads race read faults over 32 pages under
/// AlwaysReplicate (a deterministic final state: every processor ends
/// with a local replica of every page). Compares the 1-shard and
/// 16-shard directories and the per-page protocol timeline recorded by
/// the tracer.
type StressOutcome = (
    Vec<(u64, Rights, ProcSet)>,
    Vec<(u64, usize)>,
    StatsSnapshot,
);

fn run_stress(cmap_shards: usize) -> StressOutcome {
    const P: usize = 8;
    const PAGES: usize = 32;
    let kernel = Kernel::with_config(
        machine(P, true),
        Box::new(AlwaysReplicate),
        KernelConfig {
            cmap_shards,
            ..KernelConfig::default()
        },
    );
    let tracer = Tracer::new(TraceConfig::default());
    assert!(kernel.install_tracer(Arc::clone(&tracer)));
    let space = kernel.create_space();
    let object = kernel.create_object(PAGES);
    let va = space.map_anywhere(object, Rights::RO).unwrap();
    let page_bytes = (kernel.machine().cfg().words_per_page() * 4) as u64;

    std::thread::scope(|s| {
        for p in 0..P {
            let kernel = Arc::clone(&kernel);
            let space = Arc::clone(&space);
            s.spawn(move || {
                let mut ctx = kernel.attach(space, p, 0).unwrap();
                // Each processor sweeps from a different start page, three
                // times, so faults on every page race across threads.
                for round in 0..3 {
                    for i in 0..PAGES {
                        let pg = (p * 4 + i + round) % PAGES;
                        ctx.read(va + pg as u64 * page_bytes);
                    }
                }
            });
        }
    });

    let trace = tracer.snapshot();
    let mut replicated: Vec<(u64, usize)> = (0..PAGES as u64)
        .map(|pg| {
            let page_id = kernel
                .cpage_for_va(&space, va + pg * page_bytes)
                .unwrap()
                .id()
                .0;
            let n = trace
                .of_kind(EventKind::Replicate)
                .filter(|e| e.page == page_id)
                .count();
            (pg, n)
        })
        .collect();
    replicated.sort();
    // Cpage ids are allocated in first-fault order, which racing threads
    // decide; the schedule-invariant directory state is (vpn, rights,
    // refmask), with the ids merely required to be distinct.
    let dir = directory_of(&space);
    let distinct: std::collections::HashSet<u64> = dir.iter().map(|&(_, id, ..)| id).collect();
    assert_eq!(distinct.len(), dir.len(), "duplicate cpage ids");
    (
        dir.into_iter()
            .map(|(vpn, _, rights, refs)| (vpn, rights, refs))
            .collect(),
        replicated,
        kernel.stats().snapshot(),
    )
}

#[test]
fn sharded_cmap_stress_matches_single_lock_directory() {
    let (dir1, timeline1, stats1) = run_stress(1);
    let (dir16, timeline16, stats16) = run_stress(16);
    assert_eq!(dir1, dir16, "final directory state depends on shard count");
    assert_eq!(
        timeline1, timeline16,
        "per-page replication timeline depends on shard count"
    );
    assert_eq!(stats1, stats16, "kernel event counts depend on shard count");
    // And the state is the deterministic one the policy promises: every
    // page replicated to each of the 7 non-first-toucher processors.
    for &(pg, n) in &timeline1 {
        assert_eq!(n, 7, "page {pg} must be replicated 7 times, got {n}");
    }
}
