//! End-to-end tests of the tracer wired through the kernel: drive real
//! protocol scenarios, then check the recorded event stream — kinds,
//! processors, pages, ordering, agreement with the aggregate counters,
//! and the exported Chrome JSON.

use std::sync::Arc;

use numa_machine::{Machine, MachineConfig, Mem};
use platinum::trace::{chrome, EventKind, FaultResolution, TraceConfig, Tracer};
use platinum::{CpState, Kernel, PlatinumPolicy, Rights, UserCtx};

fn traced_setup(nodes: usize) -> (Arc<Kernel>, Arc<Tracer>, u64, Vec<UserCtx>) {
    let machine = Machine::new(MachineConfig {
        nodes,
        frames_per_node: 64,
        skew_window_ns: None,
        ..MachineConfig::default()
    })
    .unwrap();
    let kernel = Kernel::with_policy(machine, Box::new(PlatinumPolicy::paper_default()));
    let tracer = Tracer::new(TraceConfig::default());
    assert!(kernel.install_tracer(Arc::clone(&tracer)));
    let space = kernel.create_space();
    let object = kernel.create_object(4);
    let va = space.map_anywhere(object, Rights::RW).unwrap();
    let ctxs: Vec<UserCtx> = (0..nodes)
        .map(|p| kernel.attach(Arc::clone(&space), p, 0).unwrap())
        .collect();
    (kernel, tracer, va, ctxs)
}

/// The ping-pong freeze of `protocol.rs`, but asserted on the trace:
/// which processor froze the page, what preceded it, and that the
/// defrost daemon's thaw closes the story.
#[test]
fn freeze_and_thaw_appear_in_trace_order() {
    let (kernel, tracer, va, mut ctxs) = traced_setup(2);
    ctxs[0].write(va, 1);
    ctxs[0].suspend();
    ctxs[1].write(va, 2); // migrate: stamps invalidation history
    ctxs[1].suspend();
    ctxs[0].resume();
    ctxs[0].write(va, 3); // within t1: freeze (emitted by cpu 0)
    kernel.run_defrost(&mut ctxs[0]); // thaw

    let trace = tracer.snapshot();
    assert_eq!(trace.dropped, 0);

    let page = kernel.cpage_for_va(ctxs[0].space(), va).unwrap().id().0;
    let freezes: Vec<_> = trace.of_kind(EventKind::Freeze).collect();
    assert_eq!(freezes.len(), 1);
    assert_eq!(freezes[0].proc, 0, "cpu 0 took the freezing fault");
    assert_eq!(freezes[0].page, page);
    assert!(
        freezes[0].arg < 10_000_000,
        "freeze records the invalidation age, which must be inside t1 \
         (got {} ns)",
        freezes[0].arg
    );

    let thaws: Vec<_> = trace.of_kind(EventKind::Thaw).collect();
    assert_eq!(thaws.len(), 1);
    assert_eq!(thaws[0].page, page);
    assert_eq!(thaws[0].code, 0, "code 0 = defrost-daemon thaw");
    assert!(thaws[0].seq > freezes[0].seq, "thaw follows the freeze");
    assert!(thaws[0].vtime >= freezes[0].vtime);

    // The freeze was triggered by interleaved-write invalidation.
    let invalidations: Vec<_> = trace.of_kind(EventKind::Invalidate).collect();
    assert!(!invalidations.is_empty());
    assert!(
        invalidations.iter().any(|e| e.seq < freezes[0].seq),
        "an invalidation precedes the freeze"
    );

    // A defrost run bracketed the thaw and reports what it did.
    let runs: Vec<_> = trace.of_kind(EventKind::DefrostRun).collect();
    assert_eq!(runs.len(), 1);
    assert_eq!(runs[0].page, 1, "one page examined");
    assert_eq!(runs[0].arg, 1, "one page thawed");
}

/// Every fault produces a begin and, on success, a matched end on the
/// same processor with `begin <= end` in virtual time.
#[test]
fn fault_begin_end_pairs_match() {
    let (_kernel, tracer, va, mut ctxs) = traced_setup(3);
    ctxs[0].write(va, 1);
    ctxs[0].suspend();
    let _ = ctxs[1].read(va);
    ctxs[1].suspend(); // ctx2's write below shoots this mapping down
    let _ = ctxs[2].read(va + 4);
    ctxs[2].write(va + 4, 9);

    let trace = tracer.snapshot();
    let begins = trace.count(EventKind::FaultBegin);
    let ends = trace.count(EventKind::FaultEnd);
    assert_eq!(begins, ends, "every successful fault closes its span");
    assert!(begins >= 4);
    for e in trace.of_kind(EventKind::FaultEnd) {
        assert!(
            e.arg <= e.vtime,
            "fault end carries its begin time: {} > {}",
            e.arg,
            e.vtime
        );
        assert!(FaultResolution::from_u8(e.code).is_some());
    }
    // First touch on cpu0's write, replication on cpu1's read.
    let resolutions: Vec<u8> = trace.of_kind(EventKind::FaultEnd).map(|e| e.code).collect();
    assert!(resolutions.contains(&(FaultResolution::FirstTouch as u8)));
    assert!(resolutions.contains(&(FaultResolution::Replicated as u8)));
}

/// The aggregate counters are derived from the same choke point as the
/// trace, so for every kind: counter == number of traced events.
#[test]
fn counters_agree_with_trace() {
    let (kernel, tracer, va, mut ctxs) = traced_setup(3);
    ctxs[0].write(va, 1);
    ctxs[0].suspend();
    let _ = ctxs[1].read(va);
    ctxs[1].suspend();
    ctxs[2].write(va, 2);
    ctxs[2].suspend();
    ctxs[0].resume();
    ctxs[0].write(va, 3);
    kernel.run_defrost(&mut ctxs[0]);

    let trace = tracer.snapshot();
    assert_eq!(trace.dropped, 0, "agreement only holds with no drops");
    for kind in EventKind::ALL.into_iter().filter(|k| k.kernel_recorded()) {
        assert_eq!(
            kernel.stats().count(kind),
            trace.count(kind) as u64,
            "counter and trace disagree on {}",
            kind.name()
        );
    }
    // And the named snapshot fields line up with protocol reality.
    let s = kernel.stats().snapshot();
    assert_eq!(s.freezes, 1);
    assert_eq!(s.thaws, 1);
    assert!(s.migrations >= 1);
}

/// The exported Chrome JSON puts the freeze instant on the emitting
/// processor's track with the virtual timestamp in microseconds.
#[test]
fn chrome_export_places_events_on_processor_tracks() {
    let (kernel, tracer, va, mut ctxs) = traced_setup(2);
    ctxs[0].write(va, 1);
    ctxs[0].suspend();
    ctxs[1].write(va, 2);
    ctxs[1].suspend();
    ctxs[0].resume();
    ctxs[0].write(va, 3); // freeze on cpu 0
    kernel.run_defrost(&mut ctxs[0]);

    let trace = tracer.snapshot();
    let freeze = trace.of_kind(EventKind::Freeze).next().expect("a freeze");
    assert_eq!(freeze.proc, 0);
    let json = chrome::chrome_trace_string(&trace);

    // The exact record the exporter must have produced for this event.
    let expected = format!(
        "{{\"name\":\"freeze\",\"cat\":\"protocol\",\"ph\":\"i\",\"s\":\"t\",\
         \"pid\":{},\"tid\":{},\"ts\":{}.{:03},",
        freeze.phase,
        freeze.proc,
        freeze.vtime / 1000,
        freeze.vtime % 1000
    );
    assert!(
        json.contains(&expected),
        "freeze instant missing or on the wrong track;\nwanted {expected}"
    );
    assert!(json.contains("\"name\":\"thaw\""));
    assert!(json.contains("\"name\":\"cpu0\""));
    assert!(json.contains("\"name\":\"cpu1\""));
    // Fault slices span begin->end.
    assert!(json.contains("\"ph\":\"X\""));
}

/// With no tracer installed the kernel still counts events — tracing is
/// observability, not bookkeeping.
#[test]
fn counters_work_without_tracer() {
    let machine = Machine::new(MachineConfig {
        nodes: 2,
        frames_per_node: 64,
        skew_window_ns: None,
        ..MachineConfig::default()
    })
    .unwrap();
    let kernel = Kernel::with_policy(machine, Box::new(PlatinumPolicy::paper_default()));
    assert!(kernel.tracer().is_none());
    let space = kernel.create_space();
    let object = kernel.create_object(1);
    let va = space.map_anywhere(object, Rights::RW).unwrap();
    let mut ctx = kernel.attach(Arc::clone(&space), 0, 0).unwrap();
    ctx.write(va, 5);
    assert_eq!(ctx.read(va), 5);
    let s = kernel.stats().snapshot();
    assert_eq!(s.faults, 1, "one coherent fault, counted tracelessly");
}

/// A second `install_tracer` is rejected; the first stays in place.
#[test]
fn install_tracer_is_first_wins() {
    let (kernel, tracer, va, mut ctxs) = traced_setup(2);
    let other = Tracer::new(TraceConfig::default());
    assert!(!kernel.install_tracer(Arc::clone(&other)));
    ctxs[0].write(va, 1);
    assert!(tracer.emitted() > 0, "events go to the first tracer");
    assert_eq!(other.emitted(), 0);
    assert_eq!(
        kernel
            .cpage_for_va(ctxs[0].space(), va)
            .unwrap()
            .lock()
            .state,
        CpState::Modified
    );
}
