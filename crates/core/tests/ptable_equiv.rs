//! Bit-identity of the translation fabric's centralized default.
//!
//! The fabric's contract (ISSUE 10): under
//! [`PtablePlacement::Centralized`] — the `KernelConfig` default — every
//! observable of a run must be bit-identical to a pre-fabric kernel's.
//! `PtableConfig::off()` *is* the pre-fabric kernel: accounting
//! disabled, no walk arithmetic, no hooks taken. A scripted schedule and
//! a proptest over random schedules both compare the full transcript —
//! virtual times, access counters, kernel statistics, observed values,
//! the Cmap directory, and every trace event — across the two
//! configurations.
//!
//! The charged placements are then sanity-checked for the opposite:
//! `home_node` must *change* virtual time (walks are real charges) while
//! leaving every correctness observable — values read, directory state —
//! untouched, and must walk exactly once per ATC miss on both
//! translation paths.

use std::sync::Arc;

use numa_machine::{AccessCounters, Machine, MachineConfig, Mem, ProcSet};
use platinum::trace::{TraceConfig, TraceEvent, Tracer};
use platinum::{
    Kernel, KernelConfig, PlatinumPolicy, PtableConfig, PtablePlacement, Rights, StatsSnapshot,
    UserCtx,
};
use proptest::prelude::*;

fn machine(nodes: usize, fast_path: bool) -> Arc<Machine> {
    Machine::new(MachineConfig {
        nodes,
        frames_per_node: 64,
        skew_window_ns: None,
        fast_path,
        ..MachineConfig::default()
    })
    .unwrap()
}

/// Everything a run exposes; two runs of the same schedule must agree
/// on all of it for the bit-identity claim.
#[derive(Debug, PartialEq)]
struct Observation {
    vtimes: Vec<u64>,
    counters: Vec<AccessCounters>,
    stats: StatsSnapshot,
    values: Vec<u32>,
    directory: Vec<(u64, u64, Rights, ProcSet)>,
    events: Vec<TraceEvent>,
}

fn directory_of(space: &platinum::AddressSpace) -> Vec<(u64, u64, Rights, ProcSet)> {
    let mut dir: Vec<_> = space
        .cmap()
        .snapshot()
        .into_iter()
        .map(|(vpn, e)| (vpn, e.cpage.0, e.rights, e.refs()))
        .collect();
    dir.sort_by_key(|&(vpn, ..)| vpn);
    dir
}

/// One step of a schedule: processor `p` reads or writes `page` at
/// `word`, with every other processor suspended (lazy invalidation
/// application — the regime where translation state actually churns).
#[derive(Clone, Copy, Debug)]
struct Step {
    p: usize,
    page: usize,
    word: u64,
    write: bool,
}

/// Runs `steps` single-threadedly under `ptable` and captures the full
/// transcript.
fn run_schedule(
    procs: usize,
    pages: usize,
    fast_path: bool,
    ptable: PtableConfig,
    steps: &[Step],
) -> Observation {
    let kernel = Kernel::with_config(
        machine(procs, fast_path),
        Box::new(PlatinumPolicy::paper_default()),
        KernelConfig {
            ptable,
            ..KernelConfig::default()
        },
    );
    let tracer = Tracer::new(TraceConfig::default());
    assert!(kernel.install_tracer(Arc::clone(&tracer)));
    let space = kernel.create_space();
    let object = kernel.create_object(pages);
    let va = space.map_anywhere(object, Rights::RW).unwrap();
    let page_bytes = (kernel.machine().cfg().words_per_page() * 4) as u64;
    let mut ctxs: Vec<UserCtx> = (0..procs)
        .map(|p| kernel.attach(Arc::clone(&space), p, 0).unwrap())
        .collect();
    for c in ctxs.iter_mut().skip(1) {
        c.suspend();
    }
    let mut active = 0usize;
    let mut values = Vec::new();
    for (k, s) in steps.iter().enumerate() {
        if s.p != active {
            ctxs[s.p].resume();
            ctxs[active].suspend();
            active = s.p;
        }
        let addr = va + s.page as u64 * page_bytes + (s.word % 16) * 4;
        if s.write {
            ctxs[s.p].write(addr, k as u32);
        } else {
            values.push(ctxs[s.p].read(addr));
        }
    }
    for c in ctxs.iter_mut().filter(|c| c.core().id() != active) {
        c.resume();
    }
    Observation {
        vtimes: ctxs.iter().map(|c| c.vtime()).collect(),
        counters: ctxs.iter().map(|c| c.counters()).collect(),
        stats: kernel.stats().snapshot(),
        values,
        directory: directory_of(&space),
        events: tracer.snapshot().events,
    }
}

/// A deterministic schedule that churns translations: replication
/// sweeps, hot loops, and migrating writes.
fn scripted_steps(procs: usize, pages: usize) -> Vec<Step> {
    let mut steps = Vec::new();
    for p in 0..procs {
        for page in 0..pages {
            steps.push(Step {
                p,
                page,
                word: page as u64,
                write: false,
            });
        }
    }
    for p in 0..procs {
        for k in 0..24u64 {
            steps.push(Step {
                p,
                page: p % pages,
                word: k,
                write: false,
            });
        }
    }
    for round in 0..3 {
        for p in 0..procs {
            steps.push(Step {
                p,
                page: (p + round) % pages,
                word: p as u64,
                write: true,
            });
            steps.push(Step {
                p: (p + 1) % procs,
                page: (p + round) % pages,
                word: p as u64,
                write: false,
            });
        }
    }
    steps
}

#[test]
fn centralized_default_is_bit_identical_to_pre_fabric_kernel() {
    let steps = scripted_steps(4, 6);
    let with_fabric = run_schedule(4, 6, true, PtableConfig::default(), &steps);
    let without = run_schedule(4, 6, true, PtableConfig::off(), &steps);
    assert_eq!(
        with_fabric, without,
        "centralized fabric changed a run observable"
    );
    // ... and the default really is centralized-with-accounting, not off.
    assert_eq!(
        PtableConfig::default().placement,
        PtablePlacement::Centralized
    );
    assert!(PtableConfig::default().accounting);
}

#[test]
fn centralized_bit_identity_holds_on_the_reference_path_too() {
    let steps = scripted_steps(4, 6);
    let with_fabric = run_schedule(4, 6, false, PtableConfig::default(), &steps);
    let without = run_schedule(4, 6, false, PtableConfig::off(), &steps);
    assert_eq!(
        with_fabric, without,
        "centralized fabric changed a reference-path observable"
    );
}

/// Charged placements are the opposite contract: walks cost virtual
/// time (so vtimes and the trace change) but correctness observables —
/// values, directory — cannot.
#[test]
fn charged_walks_move_time_but_not_state() {
    let steps = scripted_steps(4, 6);
    let centralized = run_schedule(4, 6, true, PtableConfig::default(), &steps);
    let charged = run_schedule(
        4,
        6,
        true,
        PtableConfig::with_placement(PtablePlacement::HomeNode),
        &steps,
    );
    assert_eq!(
        charged.values, centralized.values,
        "walk charges changed a value"
    );
    assert_eq!(
        charged.directory, centralized.directory,
        "walk charges changed the directory"
    );
    assert!(
        charged.stats.pt_walks > 0,
        "the schedule must actually miss the ATC"
    );
    assert_eq!(
        centralized.stats.pt_walks, 0,
        "centralized accounting must not surface as kernel events"
    );
    assert!(
        charged.vtimes.iter().sum::<u64>() > centralized.vtimes.iter().sum::<u64>(),
        "charged walks must cost virtual time"
    );
}

/// Walk-count parity: the fast and reference translation paths must
/// agree on *which* accesses miss, so a charged placement stays
/// bit-identical across `MachineConfig::fast_path` — the same
/// equivalence every other kernel feature maintains.
#[test]
fn charged_placement_is_fast_path_invariant() {
    let steps = scripted_steps(4, 6);
    let cfg = PtableConfig::with_placement(PtablePlacement::ReplicatedOnFault);
    let fast = run_schedule(4, 6, true, cfg, &steps);
    let slow = run_schedule(4, 6, false, cfg, &steps);
    assert_eq!(fast, slow, "translation path changed a fabric observable");
    assert!(fast.stats.pt_walks > 0 && fast.stats.pt_populates > 0);
}

/// Random-schedule strategy: up to 60 steps over 3 processors and 4
/// pages, mixing reads and writes.
fn schedules() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec((0usize..3, 0usize..4, 0u64..16, any::<bool>()), 1..60).prop_map(
        |raw| {
            raw.into_iter()
                .map(|(p, page, word, write)| Step {
                    p,
                    page,
                    word,
                    write,
                })
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The satellite contract: under the centralized default, *any*
    /// schedule's transcript — vtimes, stats, traces — matches the
    /// pre-fabric kernel's bit for bit.
    #[test]
    fn centralized_matches_pre_fabric_on_random_schedules(steps in schedules()) {
        let with_fabric = run_schedule(3, 4, true, PtableConfig::default(), &steps);
        let without = run_schedule(3, 4, true, PtableConfig::off(), &steps);
        prop_assert_eq!(with_fabric, without);
    }
}
