//! Precision tests: the shootdown mechanism's targeting claims (§3.1),
//! port semantics, and the thread registry.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use numa_machine::{Machine, MachineConfig, Mem};
use platinum::{AddressSpace, Kernel, KernelConfig, Rights, ShootdownMode, ThreadState, UserCtx};

fn machine(nodes: usize) -> Arc<Machine> {
    Machine::new(MachineConfig {
        nodes,
        frames_per_node: 64,
        skew_window_ns: None,
        ..MachineConfig::default()
    })
    .unwrap()
}

/// Runs `measured` on processor 0 while live poller threads keep
/// processors `pollers` active; each poller runs `warm` first.
fn with_pollers<T: Send>(
    kernel: &Arc<Kernel>,
    space: &Arc<AddressSpace>,
    pollers: &[usize],
    warm: impl Fn(usize, &mut UserCtx) + Sync,
    measured: impl FnOnce(&mut UserCtx) -> T + Send,
) -> T {
    let stop = AtomicBool::new(false);
    let ready = AtomicUsize::new(0);
    let (warm, stop_ref, ready_ref) = (&warm, &stop, &ready);
    std::thread::scope(|s| {
        for &p in pollers {
            let kernel = Arc::clone(kernel);
            let space = Arc::clone(space);
            s.spawn(move || {
                let mut ctx = kernel.attach(space, p, 0).unwrap();
                warm(p, &mut ctx);
                ready_ref.fetch_add(1, Ordering::Release);
                while !stop_ref.load(Ordering::Acquire) {
                    ctx.poll();
                    std::thread::yield_now();
                }
            });
        }
        let mut ctx = kernel.attach(Arc::clone(space), 0, 0).unwrap();
        while ready.load(Ordering::Acquire) < pollers.len() {
            std::thread::yield_now();
        }
        let out = measured(&mut ctx);
        stop.store(true, Ordering::Release);
        out
    })
}

/// "The set of target processors is thus restricted to those that are
/// actually using a mapping for this Cpage. Furthermore, a processor
/// need only be interrupted ... if the address space is currently
/// active" — live processors that never touched the page get no IPI.
#[test]
fn shootdown_interrupts_only_actual_users() {
    let kernel = Kernel::new(machine(6));
    let space = kernel.create_space();
    let object = kernel.create_object(2);
    let va = space.map_anywhere(object, Rights::RW).unwrap();
    let before = Arc::new(AtomicUsize::new(0));
    let before_ref = Arc::clone(&before);
    let kernel_ref = Arc::clone(&kernel);
    let sent = with_pollers(
        &kernel,
        &space,
        &[1, 2, 3, 4, 5],
        move |p, ctx| {
            if p <= 2 {
                // Processors 1 and 2 hold read mappings of the page.
                ctx.compute(20_000_000);
                let _ = ctx.read(va);
            } else {
                // 3..5 run in the same space but never touch the page.
                ctx.write(va + 4096, p as u32);
            }
            before_ref.store(
                kernel_ref.stats().snapshot().ipis_sent as usize,
                Ordering::Release,
            );
        },
        |ctx| {
            // Processor 0 creates its own copy (present+ w/ 1 and 2),
            // ages past t1, then writes: only 1 and 2 are interrupted.
            ctx.compute(20_000_000);
            let _ = ctx.read(va);
            ctx.compute(20_000_000);
            let before = kernel.stats().snapshot().ipis_sent;
            ctx.write(va, 9);
            kernel.stats().snapshot().ipis_sent - before
        },
    );
    assert_eq!(
        sent, 2,
        "exactly two IPIs (the replica holders); live processors that \
         never referenced the page are not interrupted"
    );
}

/// The Mach-style comparator interrupts *every* processor with the space
/// active, referenced or not — the count difference §3.1 criticizes.
#[test]
fn mach_comparator_interrupts_everyone_active() {
    let m = machine(6);
    let cfg = KernelConfig {
        shootdown: ShootdownMode::SharedPmapStall,
        ..Default::default()
    };
    let kernel = Kernel::with_config(m, Box::new(platinum::PlatinumPolicy::paper_default()), cfg);
    let space = kernel.create_space();
    let object = kernel.create_object(2);
    let va = space.map_anywhere(object, Rights::RW).unwrap();
    let kernel2 = Arc::clone(&kernel);
    let sent = with_pollers(
        &kernel,
        &space,
        &[1, 2, 3, 4, 5],
        move |p, ctx| {
            if p <= 2 {
                ctx.compute(20_000_000);
                let _ = ctx.read(va);
            } else {
                ctx.write(va + 4096, p as u32);
            }
        },
        |ctx| {
            ctx.compute(20_000_000);
            let _ = ctx.read(va);
            ctx.compute(20_000_000);
            let before = kernel2.stats().snapshot().ipis_sent;
            ctx.write(va, 9);
            kernel2.stats().snapshot().ipis_sent - before
        },
    );
    assert_eq!(
        sent, 5,
        "Mach mode interrupts every active processor regardless of \
         whether it referenced the page"
    );
}

/// With every target inactive, no IPI is sent at all — the change is
/// applied lazily from the message queue on reactivation.
#[test]
fn inactive_targets_get_messages_not_interrupts() {
    let kernel = Kernel::new(machine(4));
    let space = kernel.create_space();
    let object = kernel.create_object(1);
    let va = space.map_anywhere(object, Rights::RW).unwrap();
    let mut ctxs: Vec<_> = (0..4)
        .map(|p| kernel.attach(Arc::clone(&space), p, 0).unwrap())
        .collect();
    for c in ctxs.iter_mut() {
        c.compute(20_000_000);
        let _ = c.read(va);
    }
    for c in ctxs.iter_mut().skip(1) {
        c.suspend();
    }
    let before = kernel.stats().snapshot().ipis_sent;
    ctxs[0].compute(20_000_000);
    ctxs[0].write(va, 1);
    assert_eq!(
        kernel.stats().snapshot().ipis_sent - before,
        0,
        "no IPIs to inactive processors"
    );
    // The dying-copy holders (1, 2, 3) have pending messages; they apply
    // on resume.
    for p in 1..4 {
        assert!(
            !space.cmap().pending_for(p).is_empty(),
            "processor {p} must have a pending invalidation"
        );
    }
    ctxs[1].resume();
    assert_eq!(ctxs[1].read(va), 1);
    assert!(space.cmap().pending_for(1).is_empty(), "applied on resume");
}

#[test]
fn port_try_recv_and_multiple_senders() {
    let kernel = Kernel::new(machine(3));
    let space = kernel.create_space();
    let port = kernel.create_port();
    let mut rx = kernel.attach(Arc::clone(&space), 0, 0).unwrap();
    assert!(rx.port_try_recv(&port).is_none(), "empty port");
    assert!(port.is_empty());

    let mut a = kernel.attach(Arc::clone(&space), 1, 0).unwrap();
    let mut b = kernel.attach(Arc::clone(&space), 2, 0).unwrap();
    a.port_send(&port, &[1, 10]);
    b.port_send(&port, &[2, 20]);
    a.port_send(&port, &[1, 11]);
    assert_eq!(port.len(), 3);

    // FIFO overall; per-sender order preserved.
    let m1 = rx.port_recv(&port);
    let m2 = rx.port_recv(&port);
    let m3 = rx.port_try_recv(&port).expect("third message queued");
    let from_a: Vec<u32> = [&m1, &m2, &m3]
        .iter()
        .filter(|m| m[0] == 1)
        .map(|m| m[1])
        .collect();
    assert_eq!(from_a, vec![10, 11], "per-sender FIFO");
    assert!(port.is_empty());
}

#[test]
fn port_receive_advances_clock_past_send() {
    let kernel = Kernel::new(machine(2));
    let space = kernel.create_space();
    let port = kernel.create_port();
    let mut tx = kernel.attach(Arc::clone(&space), 0, 0).unwrap();
    let mut rx = kernel.attach(space, 1, 0).unwrap();
    tx.compute(5_000_000);
    tx.port_send(&port, &[1]);
    let sent_at = tx.vtime();
    let _ = rx.port_recv(&port);
    assert!(
        rx.vtime() >= sent_at,
        "message causality: receive at {} cannot precede send at {sent_at}",
        rx.vtime()
    );
}

#[test]
fn thread_registry_tracks_lifecycle_and_migration() {
    let kernel = Kernel::new(machine(4));
    let space = kernel.create_space();
    let id = {
        let mut ctx = kernel.attach(Arc::clone(&space), 0, 0).unwrap();
        let id = ctx.thread_id();
        let info = kernel.thread_info(id).unwrap();
        assert_eq!(info.proc, 0);
        assert_eq!(info.state, ThreadState::Running);
        assert_eq!(info.migrations, 0);

        ctx.suspend();
        assert_eq!(
            kernel.thread_info(id).unwrap().state,
            ThreadState::Suspended
        );
        ctx.resume();

        ctx.migrate(2).unwrap();
        let info = kernel.thread_info(id).unwrap();
        assert_eq!(info.proc, 2);
        assert_eq!(info.migrations, 1);
        id
    };
    // Dropped: terminated, name still resolvable.
    let info = kernel.thread_info(id).unwrap();
    assert_eq!(info.state, ThreadState::Terminated);
    assert_eq!(kernel.thread_list().len(), 1);

    // A second thread gets a fresh global name.
    let ctx2 = kernel.attach(space, 1, 0).unwrap();
    assert_ne!(ctx2.thread_id(), id);
}

#[test]
fn switch_space_updates_registry_and_protects_old_mappings() {
    let kernel = Kernel::new(machine(2));
    let s1 = kernel.create_space();
    let s2 = kernel.create_space();
    let o1 = kernel.create_object(1);
    let va1 = s1.map_anywhere(o1, Rights::RW).unwrap();

    let mut ctx = kernel.attach(Arc::clone(&s1), 0, 0).unwrap();
    ctx.write(va1, 123);
    ctx.switch_space(Arc::clone(&s2));
    assert_eq!(kernel.thread_info(ctx.thread_id()).unwrap().space, s2.id());
    // va1 is not mapped in s2.
    assert!(ctx.try_read(va1).is_err());
    ctx.switch_space(s1);
    assert_eq!(ctx.read(va1), 123);
}
