//! Property test: the PLATINUM policy behind the new [`PlacementPolicy`]
//! trait decides exactly as the pre-refactor inline logic did.
//!
//! The policy-lab refactor carved the replication decision out of the
//! fault path into a trait object. The paper's numbers depend on the
//! decision function staying *bit-identical* — a policy that freezes one
//! fault earlier or later changes every virtual time downstream. This
//! test transcribes the pre-refactor decision function verbatim and
//! replays random fault streams through both, for both the paper-default
//! and the thaw-on-access variants.

use platinum::{CpState, FaultAction, FaultInfo, PlacementPolicy, PlatinumPolicy};
use proptest::prelude::*;

/// The §4.2 decision logic exactly as it was inlined before the
/// `PlacementPolicy` trait existed (freeze window `t1_ns`, optional
/// thaw-on-access variant).
fn legacy_decide(t1_ns: u64, thaw_on_access: bool, info: &FaultInfo) -> FaultAction {
    let recently_invalidated = match info.last_invalidation {
        Some(t) => info.now.saturating_sub(t) < t1_ns,
        None => false,
    };
    if info.frozen {
        if thaw_on_access && !recently_invalidated {
            return FaultAction::Replicate;
        }
        return FaultAction::RemoteMap { freeze: true };
    }
    if recently_invalidated {
        FaultAction::RemoteMap { freeze: true }
    } else {
        FaultAction::Replicate
    }
}

fn states() -> impl Strategy<Value = CpState> {
    (0u8..4).prop_map(|i| match i {
        0 => CpState::Empty,
        1 => CpState::Present1,
        2 => CpState::PresentPlus,
        _ => CpState::Modified,
    })
}

fn maybe_time() -> impl Strategy<Value = Option<u64>> {
    (any::<bool>(), 0u64..40_000_000).prop_map(|(some, t)| some.then_some(t))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn platinum_trait_matches_prerefactor_inline_logic(
        // Times near the t1 = 10 ms boundary are the interesting region;
        // the stream also crosses it from both sides.
        now in 0u64..40_000_000,
        last_invalidation in maybe_time(),
        frozen in any::<bool>(),
        migrations in 0u32..5,
        state in states(),
        write in any::<bool>(),
        thaw_on_access in any::<bool>(),
    ) {
        let info = FaultInfo {
            now,
            last_invalidation,
            frozen,
            migrations,
            state,
            write,
        };
        let policy = PlatinumPolicy { thaw_on_access, ..PlatinumPolicy::paper_default() };
        let t1 = PlatinumPolicy::paper_default().t1_ns;
        let via_trait: &dyn PlacementPolicy = &policy;
        prop_assert_eq!(
            via_trait.decide(&info),
            legacy_decide(t1, thaw_on_access, &info),
            "decision diverged for {:?} (thaw_on_access={})", info, thaw_on_access
        );
    }
}

/// The boundary cases the random stream might miss: exactly at the
/// freeze window, one below, one above, and the no-history case.
#[test]
fn platinum_trait_matches_at_t1_boundary() {
    let policy = PlatinumPolicy::paper_default();
    let t1 = policy.t1_ns;
    for (now, last) in [
        (t1, Some(0)),
        (t1 - 1, Some(0)),
        (t1 + 1, Some(0)),
        (0, Some(0)),
        (u64::MAX, Some(u64::MAX)),
        (0, None),
    ] {
        for frozen in [false, true] {
            let info = FaultInfo {
                now,
                last_invalidation: last,
                frozen,
                migrations: 0,
                state: CpState::PresentPlus,
                write: false,
            };
            assert_eq!(
                policy.decide(&info),
                legacy_decide(t1, false, &info),
                "boundary case diverged: now={now} last={last:?} frozen={frozen}"
            );
        }
    }
}
