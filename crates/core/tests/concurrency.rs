//! Multithreaded stress tests of the kernel: real OS threads drive real
//! simulated processors, so these exercise the concurrent fault handler,
//! cross-shootdowns between simultaneous initiators, the IPI doorbell
//! polling that prevents initiator deadlock, and data coherence under
//! replication/migration/freezing.
//!
//! Because replicas are genuine copies of real memory, any protocol bug
//! that lets replicas diverge or loses an update fails these assertions.

use std::sync::Arc;

use numa_machine::{Machine, MachineConfig, Mem};
use platinum::{AlwaysReplicate, Kernel, PlatinumPolicy, Rights};

fn machine(nodes: usize) -> Arc<Machine> {
    Machine::new(MachineConfig {
        nodes,
        frames_per_node: 128,
        skew_window_ns: Some(5_000_000),
        ..MachineConfig::default()
    })
    .unwrap()
}

#[test]
fn shared_counter_no_lost_updates() {
    const THREADS: usize = 4;
    const OPS: u32 = 5_000;
    let kernel = Kernel::new(machine(THREADS));
    let space = kernel.create_space();
    let object = kernel.create_object(1);
    let va = space.map_anywhere(object, Rights::RW).unwrap();

    std::thread::scope(|s| {
        for p in 0..THREADS {
            let kernel = Arc::clone(&kernel);
            let space = Arc::clone(&space);
            s.spawn(move || {
                let mut ctx = kernel.attach(space, p, 0).unwrap();
                for _ in 0..OPS {
                    ctx.fetch_add(va, 1);
                }
            });
        }
    });

    let mut ctx = kernel.attach(space, 0, 0).unwrap();
    assert_eq!(ctx.read(va), THREADS as u32 * OPS);
    // Interleaved atomic writes from every node must have frozen the page.
    let page = kernel.cpage_for_va(ctx.space(), va).unwrap();
    assert_eq!(page.lock().copies.len(), 1);
}

#[test]
fn per_word_monotonicity_under_replication() {
    // One writer bumps every word of a page through increasing versions;
    // readers replicate concurrently. Coherence requires that no reader
    // ever observes a word going backwards.
    const WORDS: u64 = 64;
    const ROUNDS: u32 = 300;
    const READERS: usize = 3;
    let kernel = Kernel::new(machine(READERS + 1));
    let space = kernel.create_space();
    let object = kernel.create_object(1);
    let va = space.map_anywhere(object, Rights::RW).unwrap();

    std::thread::scope(|s| {
        // Writer on processor 0.
        {
            let kernel = Arc::clone(&kernel);
            let space = Arc::clone(&space);
            s.spawn(move || {
                let mut ctx = kernel.attach(space, 0, 0).unwrap();
                for round in 1..=ROUNDS {
                    for w in 0..WORDS {
                        ctx.write(va + 4 * w, round);
                    }
                }
            });
        }
        for p in 1..=READERS {
            let kernel = Arc::clone(&kernel);
            let space = Arc::clone(&space);
            s.spawn(move || {
                let mut ctx = kernel.attach(space, p, 0).unwrap();
                let mut last = [0u32; WORDS as usize];
                for _ in 0..ROUNDS {
                    for w in 0..WORDS {
                        let v = ctx.read(va + 4 * w);
                        assert!(
                            v >= last[w as usize],
                            "word {w} went backwards: {} -> {v}",
                            last[w as usize]
                        );
                        assert!(v <= ROUNDS, "impossible value {v}");
                        last[w as usize] = v;
                    }
                }
            });
        }
    });
}

#[test]
fn concurrent_initiators_do_not_deadlock() {
    // Every thread writes every page in a rotated order, so shootdowns
    // constantly target other active initiators. The doorbell polling in
    // the wait loops must keep this live.
    const THREADS: usize = 4;
    const PAGES: usize = 6;
    const ROUNDS: usize = 60;
    let kernel = Kernel::new(machine(THREADS));
    let space = kernel.create_space();
    let object = kernel.create_object(PAGES);
    let va = space.map_anywhere(object, Rights::RW).unwrap();
    let page_bytes = kernel.machine().cfg().page_bytes();

    std::thread::scope(|s| {
        for p in 0..THREADS {
            let kernel = Arc::clone(&kernel);
            let space = Arc::clone(&space);
            s.spawn(move || {
                let mut ctx = kernel.attach(space, p, 0).unwrap();
                for r in 0..ROUNDS {
                    for i in 0..PAGES {
                        let page = (p + i + r) % PAGES;
                        ctx.fetch_add(va + page as u64 * page_bytes, 1);
                    }
                }
            });
        }
    });

    let mut ctx = kernel.attach(space, 0, 0).unwrap();
    for page in 0..PAGES {
        assert_eq!(
            ctx.read(va + page as u64 * page_bytes),
            (THREADS * ROUNDS) as u32,
            "page {page} lost updates"
        );
    }
}

#[test]
fn always_replicate_is_coherent_under_contention() {
    // The most protocol-hostile policy: every remote write migrates.
    const THREADS: usize = 3;
    const OPS: u32 = 400;
    let kernel = Kernel::with_policy(machine(THREADS), Box::new(AlwaysReplicate));
    let space = kernel.create_space();
    let object = kernel.create_object(1);
    let va = space.map_anywhere(object, Rights::RW).unwrap();

    std::thread::scope(|s| {
        for p in 0..THREADS {
            let kernel = Arc::clone(&kernel);
            let space = Arc::clone(&space);
            s.spawn(move || {
                let mut ctx = kernel.attach(space, p, 0).unwrap();
                for _ in 0..OPS {
                    ctx.fetch_add(va, 1);
                }
            });
        }
    });
    let mut ctx = kernel.attach(space, 0, 0).unwrap();
    assert_eq!(ctx.read(va), THREADS as u32 * OPS);
    assert!(
        kernel.stats().snapshot().migrations > 0,
        "the policy must actually have migrated"
    );
}

#[test]
fn ports_block_and_deliver_in_order_per_sender() {
    let kernel = Kernel::new(machine(3));
    let space = kernel.create_space();
    let port = kernel.create_port();
    // A shared page being written concurrently ensures shootdowns happen
    // while the receiver is blocked; a blocked (deactivated) receiver
    // must never stall them.
    let object = kernel.create_object(1);
    let va = space.map_anywhere(object, Rights::RW).unwrap();

    std::thread::scope(|s| {
        {
            let kernel = Arc::clone(&kernel);
            let space = Arc::clone(&space);
            let port = Arc::clone(&port);
            s.spawn(move || {
                let mut rx = kernel.attach(space, 0, 0).unwrap();
                let mut seen = 0u32;
                let mut last = 0u32;
                while seen < 100 {
                    let msg = rx.port_recv(&port);
                    assert_eq!(msg.len(), 2);
                    assert!(msg[1] > last, "per-sender FIFO violated");
                    last = msg[1];
                    seen += 1;
                }
            });
        }
        {
            let kernel = Arc::clone(&kernel);
            let space = Arc::clone(&space);
            let port = Arc::clone(&port);
            s.spawn(move || {
                let mut tx = kernel.attach(space, 1, 0).unwrap();
                for i in 1..=100u32 {
                    tx.write(va, i); // churn coherent memory too
                    tx.port_send(&port, &[7, i]);
                }
            });
        }
        {
            let kernel = Arc::clone(&kernel);
            let space = Arc::clone(&space);
            s.spawn(move || {
                let mut w = kernel.attach(space, 2, 0).unwrap();
                for i in 0..200u32 {
                    w.write(va, i);
                }
            });
        }
    });
    assert!(port.is_empty());
}

#[test]
fn freeze_then_quiet_period_then_replication_recovers() {
    // Phase change: heavy write sharing (freeze), then read-only phase.
    // After a defrost the system must recover replication. Uses the
    // paper's policy with a short t1/t2 so the phases fit in test time.
    let m = machine(3);
    let cfg = platinum::KernelConfig {
        t2_defrost_ns: 50_000_000, // 50 ms virtual
        ..Default::default()
    };
    let kernel = Kernel::with_config(
        m,
        Box::new(PlatinumPolicy {
            t1_ns: 10_000_000,
            thaw_on_access: false,
        }),
        cfg,
    );
    let space = kernel.create_space();
    let object = kernel.create_object(1);
    let va = space.map_anywhere(object, Rights::RW).unwrap();

    // Phase 1: interleaved writes from all nodes.
    std::thread::scope(|s| {
        for p in 0..3 {
            let kernel = Arc::clone(&kernel);
            let space = Arc::clone(&space);
            s.spawn(move || {
                let mut ctx = kernel.attach(space, p, 0).unwrap();
                for i in 0..200u32 {
                    ctx.fetch_add(va, 1);
                    ctx.compute(10_000 * (p as u64 + 1) + u64::from(i % 7));
                }
            });
        }
    });
    assert_eq!(
        kernel.report().ever_frozen().len(),
        1,
        "phase 1 must freeze"
    );

    // Phase 2: read-only, far in the future; the defrost daemon fires and
    // replication resumes.
    std::thread::scope(|s| {
        for p in 0..3 {
            let kernel = Arc::clone(&kernel);
            let space = Arc::clone(&space);
            s.spawn(move || {
                let mut ctx = kernel.attach(space, p, 100_000_000).unwrap();
                for _ in 0..50 {
                    assert_eq!(ctx.read(va), 600);
                    ctx.compute(1_000_000);
                }
            });
        }
    });
    let snap = kernel.stats().snapshot();
    assert!(snap.thaws >= 1, "defrost must have thawed the page");
    assert!(
        snap.replications >= 1,
        "replication must resume after the thaw"
    );
}
