//! The kernel object: registries, configuration, and processor slots.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::{MutexGuard, RwLock};

use numa_machine::{Machine, ProcCore};
use platinum_faults::FaultPlan;
use platinum_ptable::{PtableConfig, WalkSnapshot, WalkStats};
use platinum_trace::{EventKind, Tracer};

use crate::coherent::cpage::{Cpage, CpageInner, CpageTable};
use crate::coherent::defrost::DefrostState;
use crate::coherent::policy::{PlacementPolicy, PlatinumPolicy, PolicyKind};
use crate::coherent::reclaim::ReclaimState;
use crate::coherent::signal::ActiveSpace;
use crate::costs::KernelCosts;
use crate::error::{KernelError, Result};
use crate::hostprof::HostProf;
use crate::ids::{AsId, ObjId, PortId, ThreadId};
use crate::port::Port;
use crate::stats::{KernelStats, MemoryReport};
use crate::thread::{ThreadInfo, ThreadTable};
use crate::user::UserCtx;
use crate::vm::object::MemoryObject;
use crate::vm::space::AddressSpace;

/// Which shootdown mechanism the kernel uses (§3.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShootdownMode {
    /// PLATINUM's mechanism: per-processor Pmaps, Cmap message queues,
    /// and interrupts only for processors that actually hold a
    /// translation and have the space active.
    PerProcessorPmap,
    /// The Mach-style comparator: a shared Pmap per space forces the
    /// initiator to interrupt *every* processor with the space active and
    /// to stall them while it updates the shared table. Used by the §4
    /// micro-benchmark to reproduce the ~7 us vs ~55 us comparison.
    SharedPmapStall,
}

/// Kernel configuration.
#[derive(Clone, Debug)]
pub struct KernelConfig {
    /// The cost model.
    pub costs: KernelCosts,
    /// Defrost daemon period t2 (§4.2; the paper sets 1 s).
    pub t2_defrost_ns: u64,
    /// Shootdown mechanism.
    pub shootdown: ShootdownMode,
    /// Number of directory shards in each address space's Cmap (a nonzero
    /// power of two). Purely a host-side concurrency knob: protocol
    /// behaviour is identical at any shard count.
    pub cmap_shards: usize,
    /// Which placement policy [`Kernel::from_config`] boots with. The
    /// explicit-`Box` constructors ([`Kernel::with_policy`],
    /// [`Kernel::with_config`]) override this selector and leave it
    /// untouched, so it records the *configured* kind, not necessarily
    /// the installed object.
    pub policy: PolicyKind,
    /// Deterministic fault-injection plan, if any. With `None` (the
    /// default) every injection hook is a single pointer test and the
    /// kernel behaves bit-identically to a build without the subsystem.
    pub faults: Option<Arc<FaultPlan>>,
    /// Translation-fabric configuration: how page-table walks are charged
    /// and where translation structures live. The default (centralized
    /// placement) charges nothing and emits nothing, so it is
    /// bit-identical to a kernel without the subsystem.
    pub ptable: PtableConfig,
}

impl Default for KernelConfig {
    fn default() -> Self {
        Self {
            costs: KernelCosts::default(),
            t2_defrost_ns: 1_000_000_000,
            shootdown: ShootdownMode::PerProcessorPmap,
            cmap_shards: crate::coherent::cmap::DEFAULT_SHARDS,
            policy: PolicyKind::Platinum,
            faults: None,
            ptable: PtableConfig::default(),
        }
    }
}

/// Per-processor kernel slot: thread occupancy and the set of address
/// spaces currently *active* on the processor.
///
/// Activity gates shootdown interrupts: "a processor need only be
/// interrupted to perform the change if the address space is currently
/// active. The remainder of the target processors will update their Pmaps
/// when they activate the address space" (§3.1).
pub(crate) struct ProcSlot {
    /// Whether a thread is bound to the processor (the simulator runs at
    /// most one thread per processor; see DESIGN.md).
    pub occupied: AtomicBool,
    /// The address space active on this processor, as a lock-free word.
    /// Its sequentially-consistent orderings carry the
    /// post-message-then-check-activity handshake that a mutex provided
    /// before; see [`ActiveSpace`] for the argument.
    pub active: ActiveSpace,
}

/// The PLATINUM kernel.
///
/// Owns the registries of the globally-named abstractions (§1.1: memory
/// objects, address spaces, ports, threads), the coherent page table, the
/// replication policy, and the defrost daemon state. All activity runs on
/// user threads that enter the kernel through their [`UserCtx`].
pub struct Kernel {
    machine: Arc<Machine>,
    cfg: KernelConfig,
    policy: Box<dyn PlacementPolicy>,
    pub(crate) cpages: CpageTable,
    objects: RwLock<Vec<Arc<MemoryObject>>>,
    spaces: RwLock<Vec<Arc<AddressSpace>>>,
    ports: RwLock<Vec<Arc<Port>>>,
    pub(crate) slots: Box<[ProcSlot]>,
    pub(crate) stats: KernelStats,
    pub(crate) defrost: DefrostState,
    pub(crate) reclaim: ReclaimState,
    pub(crate) threads: ThreadTable,
    pub(crate) hostprof: HostProf,
    /// Translation-fabric tallies (walk/populate/invalidation virtual
    /// time). Held outside [`KernelStats`]: the centralized placement
    /// *accounts* walks here without charging or recording them, so this
    /// state is deliberately invisible to the equivalence suites.
    pub(crate) walk_stats: WalkStats,
}

impl Kernel {
    /// Boots a kernel on `machine` with the paper's default policy and
    /// configuration.
    pub fn new(machine: Arc<Machine>) -> Arc<Self> {
        Self::with_policy(machine, Box::new(PlatinumPolicy::paper_default()))
    }

    /// Boots a kernel with a specific placement policy.
    pub fn with_policy(machine: Arc<Machine>, policy: Box<dyn PlacementPolicy>) -> Arc<Self> {
        Self::with_config(machine, policy, KernelConfig::default())
    }

    /// Boots a kernel entirely from a [`KernelConfig`], instantiating the
    /// policy named by [`KernelConfig::policy`].
    pub fn from_config(machine: Arc<Machine>, cfg: KernelConfig) -> Arc<Self> {
        let policy = cfg.policy.build();
        Self::with_config(machine, policy, cfg)
    }

    /// Boots a kernel with full control of policy and configuration. The
    /// explicit policy object wins over [`KernelConfig::policy`].
    pub fn with_config(
        machine: Arc<Machine>,
        policy: Box<dyn PlacementPolicy>,
        cfg: KernelConfig,
    ) -> Arc<Self> {
        let slots = (0..machine.nprocs())
            .map(|_| ProcSlot {
                occupied: AtomicBool::new(false),
                active: ActiveSpace::new(),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let defrost = DefrostState::new(cfg.t2_defrost_ns);
        let reclaim = ReclaimState::new(machine.nprocs());
        Arc::new(Self {
            machine,
            cfg,
            policy,
            cpages: CpageTable::new(),
            objects: RwLock::new(Vec::new()),
            spaces: RwLock::new(Vec::new()),
            ports: RwLock::new(Vec::new()),
            slots,
            stats: KernelStats::default(),
            defrost,
            reclaim,
            threads: ThreadTable::new(),
            hostprof: HostProf::default(),
            walk_stats: WalkStats::new(),
        })
    }

    /// The machine the kernel runs on.
    pub fn machine(&self) -> &Arc<Machine> {
        &self.machine
    }

    /// The kernel configuration.
    pub fn config(&self) -> &KernelConfig {
        &self.cfg
    }

    /// The active placement policy.
    pub fn policy(&self) -> &dyn PlacementPolicy {
        self.policy.as_ref()
    }

    /// The installed fault-injection plan, if any. `None` on healthy
    /// runs, which keeps every injection hook down to one pointer test.
    #[inline]
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.cfg.faults.as_deref()
    }

    /// Creates a memory object of `pages` pages, homing its metadata
    /// round-robin across nodes (kernel decentralization, §2.2).
    pub fn create_object(&self, pages: usize) -> Arc<MemoryObject> {
        let mut objs = self.objects.write();
        let id = ObjId(objs.len() as u32);
        let home = id.index() % self.machine.nprocs();
        let obj = Arc::new(MemoryObject::new(id, home, pages));
        objs.push(Arc::clone(&obj));
        obj
    }

    /// Creates a memory object homed on a specific node.
    pub fn create_object_homed(&self, pages: usize, home: usize) -> Arc<MemoryObject> {
        let mut objs = self.objects.write();
        let id = ObjId(objs.len() as u32);
        let obj = Arc::new(MemoryObject::new(id, home % self.machine.nprocs(), pages));
        objs.push(Arc::clone(&obj));
        obj
    }

    /// Looks up a memory object by name.
    pub fn object(&self, id: ObjId) -> Result<Arc<MemoryObject>> {
        self.objects
            .read()
            .get(id.index())
            .cloned()
            .ok_or(KernelError::NoSuchObject(id))
    }

    /// Creates an address space, homing its metadata round-robin.
    pub fn create_space(&self) -> Arc<AddressSpace> {
        let mut spaces = self.spaces.write();
        let id = AsId(spaces.len() as u32);
        let home = id.index() % self.machine.nprocs();
        let space = Arc::new(AddressSpace::new(
            id,
            home,
            self.machine.cfg().page_shift,
            self.cfg.cmap_shards,
            self.machine.nprocs(),
        ));
        spaces.push(Arc::clone(&space));
        space
    }

    /// Looks up an address space by name.
    pub fn space(&self, id: AsId) -> Result<Arc<AddressSpace>> {
        self.spaces
            .read()
            .get(id.index())
            .cloned()
            .ok_or(KernelError::NoSuchSpace(id))
    }

    /// Creates a port.
    pub fn create_port(&self) -> Arc<Port> {
        let mut ports = self.ports.write();
        let id = PortId(ports.len() as u32);
        let home = id.index() % self.machine.nprocs();
        let port = Arc::new(Port::new(id, home));
        ports.push(Arc::clone(&port));
        port
    }

    /// Looks up a port by name.
    pub fn port(&self, id: PortId) -> Result<Arc<Port>> {
        self.ports
            .read()
            .get(id.index())
            .cloned()
            .ok_or(KernelError::NoSuchPort(id))
    }

    /// Binds a new thread to processor `proc`, executing in `space`.
    /// Returns the user context the thread drives.
    ///
    /// At most one thread may be bound to a processor at a time (the
    /// simulator does not multiplex threads on a processor; see
    /// DESIGN.md). Fails with [`KernelError::ProcessorBusy`] otherwise.
    pub fn attach(
        self: &Arc<Self>,
        space: Arc<AddressSpace>,
        proc: usize,
        start_vtime: u64,
    ) -> Result<UserCtx> {
        let slot = &self.slots[proc];
        if slot
            .occupied
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return Err(KernelError::ProcessorBusy(proc));
        }
        let core = ProcCore::new(Arc::clone(&self.machine), proc, start_vtime);
        Ok(UserCtx::new(Arc::clone(self), core, space))
    }

    /// A snapshot of one thread's kernel state.
    pub fn thread_info(&self, id: ThreadId) -> Option<ThreadInfo> {
        self.threads.get(id)
    }

    /// Snapshots of every thread ever created.
    pub fn thread_list(&self) -> Vec<ThreadInfo> {
        self.threads.all()
    }

    /// The coherent page backing `va` in `space`, if that page has ever
    /// been touched (instrumentation and tests).
    pub fn cpage_for_va(&self, space: &AddressSpace, va: numa_machine::Va) -> Option<Arc<Cpage>> {
        let entry = space.cmap().entry(space.vpn_of(va))?;
        self.cpages.get(entry.cpage)
    }

    /// Kernel-wide event counters.
    pub fn stats(&self) -> &KernelStats {
        &self.stats
    }

    /// Host-time slow-path phase profiler (disabled until
    /// [`HostProf::enable`] is called).
    pub fn host_prof(&self) -> &HostProf {
        &self.hostprof
    }

    /// A snapshot of the translation fabric's walk/populate/invalidation
    /// tallies (virtual time, accounted per placement; see
    /// [`WalkSnapshot`] for the derived locality metrics).
    pub fn walk_snapshot(&self) -> WalkSnapshot {
        self.walk_stats.snapshot()
    }

    /// Installs a protocol-event tracer (delegates to the machine, which
    /// owns the registry so hardware-level events land on the same
    /// timeline). Returns `false` if a tracer was already installed.
    pub fn install_tracer(&self, tracer: Arc<Tracer>) -> bool {
        self.machine.install_tracer(tracer)
    }

    /// The installed tracer, if any.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.machine.tracer()
    }

    /// Records one kernel event: bumps the [`KernelStats`] counter for
    /// `kind` and, when tracing is compiled in and a tracer is installed,
    /// emits the event against `proc`'s virtual clock. Every protocol
    /// emit site goes through here, which is what guarantees that the
    /// counters and the trace agree event for event.
    ///
    /// Public so instrumented tiers above the kernel (the server workload
    /// driver's per-request records) flow through the same choke point as
    /// the protocol's own events.
    #[inline]
    pub fn record(&self, proc: usize, vtime: u64, kind: EventKind, code: u8, page: u64, arg: u64) {
        self.stats.record(proc, kind);
        #[cfg(feature = "trace")]
        if let Some(t) = self.machine.tracer() {
            t.emit(proc, vtime, kind, code, page, arg);
        }
        #[cfg(not(feature = "trace"))]
        let _ = (proc, vtime, code, page, arg);
    }

    /// Builds the post-mortem memory-management report (§4.2).
    pub fn report(&self) -> MemoryReport {
        MemoryReport::build(&self.cpages, &self.stats)
    }

    /// Locks a coherent page from the fault path: polls the caller's IPI
    /// doorbell while waiting (so two initiators can never deadlock) and
    /// accumulates the paper's per-page contention measure.
    pub(crate) fn lock_cpage<'a>(
        &self,
        ctx: &mut UserCtx,
        page: &'a Cpage,
    ) -> MutexGuard<'a, CpageInner> {
        // Fast path.
        if let Some(g) = page.try_lock() {
            return g;
        }
        let mut waited_ns = 0u64;
        let mut spins = 0u32;
        loop {
            if ctx.core.take_ipi() {
                ctx.drain_messages();
            }
            std::hint::spin_loop();
            spins = spins.wrapping_add(1);
            if spins.is_multiple_of(8) {
                std::thread::yield_now();
            }
            // Model each retry as a brief kernel delay.
            waited_ns += 200;
            if let Some(mut g) = page.try_lock() {
                ctx.core.charge(waited_ns);
                g.lock_wait_ns += waited_ns;
                self.record(
                    ctx.core.id(),
                    ctx.core.vtime(),
                    EventKind::LockWait,
                    0,
                    page.id().0,
                    waited_ns,
                );
                return g;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_machine::MachineConfig;

    fn kernel() -> Arc<Kernel> {
        let m = Machine::new(MachineConfig {
            nodes: 4,
            frames_per_node: 32,
            skew_window_ns: None,
            ..MachineConfig::default()
        })
        .unwrap();
        Kernel::new(m)
    }

    #[test]
    fn registries() {
        let k = kernel();
        let o = k.create_object(4);
        assert_eq!(o.id(), ObjId(0));
        assert!(k.object(ObjId(0)).is_ok());
        assert!(matches!(
            k.object(ObjId(9)),
            Err(KernelError::NoSuchObject(_))
        ));
        let s = k.create_space();
        assert_eq!(s.id(), AsId(0));
        assert!(k.space(AsId(0)).is_ok());
        let p = k.create_port();
        assert!(k.port(p.id()).is_ok());
    }

    #[test]
    fn object_homes_round_robin() {
        let k = kernel();
        let homes: Vec<usize> = (0..6).map(|_| k.create_object(1).home()).collect();
        assert_eq!(homes, vec![0, 1, 2, 3, 0, 1]);
        assert_eq!(k.create_object_homed(1, 9).home(), 1, "wraps modulo nodes");
    }

    #[test]
    fn attach_excludes_double_binding() {
        let k = kernel();
        let s = k.create_space();
        let ctx = k.attach(Arc::clone(&s), 2, 0).unwrap();
        assert!(matches!(
            k.attach(Arc::clone(&s), 2, 0),
            Err(KernelError::ProcessorBusy(2))
        ));
        drop(ctx);
        // Dropping the context releases the processor.
        assert!(k.attach(s, 2, 0).is_ok());
    }

    #[test]
    fn default_config() {
        let k = kernel();
        assert_eq!(k.config().t2_defrost_ns, 1_000_000_000);
        assert_eq!(k.config().shootdown, ShootdownMode::PerProcessorPmap);
        assert_eq!(k.policy().name(), "platinum");
    }
}
