//! The physical map (Pmap) layer: per-processor translation caches.
//!
//! "While Mach uses a single shared page table (Pmap) per address space,
//! each processor in PLATINUM must have its own private Pmap per address
//! space. Since a Pmap is only a cache of the valid virtual-to-physical
//! translations, it need not contain mappings for everything in an
//! address space, rather only a working set for that processor" (§3.1).
//!
//! In this implementation each processor's thread owns one [`Pmap`]
//! covering all address spaces it runs in, keyed by (space, vpn). Only
//! the owning thread ever touches it — shootdown targets update their own
//! Pmap from the Cmap synchronization handler — which is exactly the
//! property that lets PLATINUM avoid Mach's shootdown races.

use numa_machine::{PhysPage, Vpn};

use crate::hash::FastMap;
use crate::ids::AsId;

/// One cached virtual-to-physical translation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PmapEntry {
    /// The backing physical page.
    pub pp: PhysPage,
    /// Whether the translation permits writes. The coherency protocol
    /// keeps this at least as restrictive as the Cpage state requires.
    pub writable: bool,
}

/// A processor's private physical map.
#[derive(Default)]
pub struct Pmap {
    entries: FastMap<(AsId, Vpn), PmapEntry>,
}

impl Pmap {
    /// An empty Pmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// The translation for (`space`, `vpn`), if cached.
    #[inline]
    pub fn lookup(&self, space: AsId, vpn: Vpn) -> Option<PmapEntry> {
        self.entries.get(&(space, vpn)).copied()
    }

    /// Installs (or replaces) a translation.
    pub fn enter(&mut self, space: AsId, vpn: Vpn, entry: PmapEntry) {
        self.entries.insert((space, vpn), entry);
    }

    /// Removes a translation, returning it if present.
    pub fn remove(&mut self, space: AsId, vpn: Vpn) -> Option<PmapEntry> {
        self.entries.remove(&(space, vpn))
    }

    /// Downgrades a translation to read-only; no-op if absent.
    pub fn restrict_to_read(&mut self, space: AsId, vpn: Vpn) {
        if let Some(e) = self.entries.get_mut(&(space, vpn)) {
            e.writable = false;
        }
    }

    /// Removes every translation of `space` (space teardown).
    pub fn remove_space(&mut self, space: AsId) {
        self.entries.retain(|(s, _), _| *s != space);
    }

    /// The number of cached translations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the Pmap caches nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enter_lookup_remove() {
        let mut p = Pmap::new();
        let e = PmapEntry {
            pp: PhysPage::new(1, 2),
            writable: true,
        };
        assert!(p.lookup(AsId(0), 5).is_none());
        p.enter(AsId(0), 5, e);
        assert_eq!(p.lookup(AsId(0), 5), Some(e));
        assert!(p.lookup(AsId(1), 5).is_none(), "keyed by space too");
        assert_eq!(p.remove(AsId(0), 5), Some(e));
        assert!(p.is_empty());
    }

    #[test]
    fn restrict() {
        let mut p = Pmap::new();
        p.enter(
            AsId(0),
            7,
            PmapEntry {
                pp: PhysPage::new(0, 0),
                writable: true,
            },
        );
        p.restrict_to_read(AsId(0), 7);
        assert!(!p.lookup(AsId(0), 7).unwrap().writable);
        // Restricting an absent entry is a no-op.
        p.restrict_to_read(AsId(0), 99);
    }

    #[test]
    fn remove_space_scopes() {
        let mut p = Pmap::new();
        let e = PmapEntry {
            pp: PhysPage::new(0, 0),
            writable: false,
        };
        p.enter(AsId(0), 1, e);
        p.enter(AsId(0), 2, e);
        p.enter(AsId(1), 1, e);
        p.remove_space(AsId(0));
        assert_eq!(p.len(), 1);
        assert!(p.lookup(AsId(1), 1).is_some());
    }
}
