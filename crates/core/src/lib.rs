//! `platinum`: the PLATINUM kernel — a coherent memory abstraction for
//! NUMA multiprocessors.
//!
//! This crate reimplements the memory-management system of *The
//! Implementation of a Coherent Memory Abstraction on a NUMA
//! Multiprocessor: Experiences with PLATINUM* (Cox & Fowler, SOSP 1989)
//! on the simulated Butterfly-Plus-like machine provided by the
//! `numa-machine` crate.
//!
//! # Architecture
//!
//! The memory management system is constructed in three layers (§2.1):
//!
//! 1. **Virtual memory** ([`vm`]): address spaces and memory objects;
//!    virtual ranges bind to object pages, objects bind to coherent
//!    pages.
//! 2. **Coherent memory** ([`coherent`]): the one-to-many mapping from
//!    coherent pages to physical pages, kept consistent by a
//!    directory-based selective-invalidation protocol extended with the
//!    NUMA-specific option of *remote mapping* — the ability to disable
//!    caching block-by-block when fine-grain write-sharing would make the
//!    protocol more expensive than remote access. Includes the
//!    replication [`coherent::policy`] family, the freeze/defrost
//!    machinery, and the shootdown mechanism.
//! 3. **Physical map** ([`pmap`]): per-processor, per-space translation
//!    caches backing the hardware ATC.
//!
//! # Using the kernel
//!
//! ```
//! use numa_machine::{Machine, MachineConfig, Mem};
//! use platinum::{Kernel, Rights};
//!
//! let machine = Machine::new(MachineConfig::with_nodes(4)).unwrap();
//! let kernel = Kernel::new(machine);
//! let space = kernel.create_space();
//! let object = kernel.create_object(2); // two pages
//! let base = space.map_anywhere(object, Rights::RW).unwrap();
//!
//! // Bind a thread to processor 0 and touch coherent memory.
//! let mut ctx = kernel.attach(space, 0, 0).unwrap();
//! ctx.write(base, 42);
//! assert_eq!(ctx.read(base), 42);
//! ```
//!
//! Threads on different processors attach their own contexts and share
//! the same coherent pages; the kernel replicates, migrates, or freezes
//! pages underneath them transparently.

#![warn(missing_docs)]

pub mod coherent;
pub mod costs;
pub mod error;
pub(crate) mod hash;
pub mod hostprof;
pub mod ids;
pub mod pmap;
pub mod port;
pub mod stats;
pub mod thread;
pub mod vm;

mod kernel;
mod user;

pub use coherent::cpage::{CpState, Cpage, CpageInner};
pub use coherent::policy::PolicyKind;
pub use coherent::policy::{
    AceStyle, AlwaysReplicate, FaultAction, FaultInfo, LocalFirstTouch, MigrateOnly,
    NeverReplicate, PlacementPolicy, PlatinumPolicy, RemoteAlways, ReplicateOnly,
    ReplicationPolicy,
};
pub use costs::KernelCosts;
pub use error::{KernelError, Result};
pub use ids::{AsId, CpageId, ObjId, PortId, Rights, ThreadId};
pub use kernel::{Kernel, KernelConfig, ShootdownMode};
/// Deterministic fault-injection plans (re-exported so downstream crates
/// need not depend on `platinum-faults` directly).
pub use platinum_faults as faults;
pub use platinum_faults::{FaultPlan, FaultSite};
/// The translation fabric: NUMA-charged page-table walks and per-node
/// Pmap replicas (re-exported so downstream crates need not depend on
/// `platinum-ptable` directly).
pub use platinum_ptable as ptable;
pub use platinum_ptable::{PtableConfig, PtablePlacement, WalkSnapshot};
/// The protocol-event tracer (re-exported so downstream crates need not
/// depend on `platinum-trace` directly).
pub use platinum_trace as trace;
pub use port::Port;
pub use stats::{CpageReport, KernelStats, MemoryReport, StatsSnapshot};
pub use thread::{ThreadInfo, ThreadState};
pub use user::UserCtx;
pub use vm::object::MemoryObject;
pub use vm::space::{AddressSpace, Region};
