//! Ports: globally-named message queues (§1.1 of the paper).
//!
//! "A port is a message queue that can have any number of senders and
//! receivers. Messages are variable-length arrays of zero or more bytes.
//! Globally named, ports provide a communication medium usable by threads
//! that do not share a common memory object. They also provide blocking
//! synchronization."
//!
//! Messages here are arrays of 32-bit words (the machine's unit of
//! access). A send charges the block-transfer rate for the message body;
//! a blocked receiver deactivates its address space so shootdowns never
//! wait on it, exactly as a thread blocked in the kernel would on the
//! real system.

use std::collections::VecDeque;

use parking_lot::{Condvar, Mutex};

use crate::ids::PortId;
use crate::user::UserCtx;

struct Message {
    data: Vec<u32>,
    /// The sender's virtual time when the send completed; the receiver's
    /// clock advances to at least this (message causality).
    sent_at: u64,
}

/// A port: a multi-sender, multi-receiver message queue.
pub struct Port {
    id: PortId,
    home: usize,
    queue: Mutex<VecDeque<Message>>,
    available: Condvar,
}

impl Port {
    pub(crate) fn new(id: PortId, home: usize) -> Self {
        Self {
            id,
            home,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        }
    }

    /// The port's global name.
    pub fn id(&self) -> PortId {
        self.id
    }

    /// The node homing the port's kernel state (cost model).
    pub fn home(&self) -> usize {
        self.home
    }

    /// The number of queued messages.
    pub fn len(&self) -> usize {
        self.queue.lock().len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.lock().is_empty()
    }
}

impl UserCtx {
    /// Sends `data` to `port`. Never blocks (queues are unbounded, as in
    /// the paper's model).
    pub fn port_send(&mut self, port: &Port, data: &[u32]) {
        let costs = &self.kernel.config().costs;
        let block_word_ns = self.kernel.machine().cfg().timing.block_word_ns;
        // Fixed kernel overhead plus the copy into kernel memory at the
        // block-transfer rate.
        self.core
            .charge(costs.port_op_ns + data.len() as u64 * block_word_ns);
        let msg = Message {
            data: data.to_vec(),
            sent_at: self.core.vtime(),
        };
        let mut q = port.queue.lock();
        q.push_back(msg);
        port.available.notify_one();
    }

    /// Receives the next message from `port`, blocking until one arrives.
    ///
    /// While blocked the thread's address space is deactivated, so
    /// shootdown initiators never wait on it; mapping changes are applied
    /// on reactivation (§3.1).
    pub fn port_recv(&mut self, port: &Port) -> Vec<u32> {
        let costs_port_op = self.kernel.config().costs.port_op_ns;
        let block_word_ns = self.kernel.machine().cfg().timing.block_word_ns;
        let msg = self.block_in_kernel(|| {
            let mut q = port.queue.lock();
            loop {
                if let Some(m) = q.pop_front() {
                    return m;
                }
                port.available.wait(&mut q);
            }
        });
        // Causality: the receive completes no earlier than the send.
        self.core.advance_to(msg.sent_at);
        self.core
            .charge(costs_port_op + msg.data.len() as u64 * block_word_ns);
        msg.data
    }

    /// Receives a message if one is queued, without blocking.
    pub fn port_try_recv(&mut self, port: &Port) -> Option<Vec<u32>> {
        let m = port.queue.lock().pop_front()?;
        let block_word_ns = self.kernel.machine().cfg().timing.block_word_ns;
        self.core.advance_to(m.sent_at);
        self.core
            .charge(self.kernel.config().costs.port_op_ns + m.data.len() as u64 * block_word_ns);
        Some(m.data)
    }
}
