//! The kernel's cost model.
//!
//! The simulator charges the virtual clock of the processor executing a
//! kernel operation. Costs are decomposed the way §4 of the paper
//! decomposes its measurements: a fixed trap/dispatch overhead plus a
//! number of modelled kernel data-structure references, each charged at
//! the machine's local or remote word latency depending on where the
//! structure is homed. Defaults are calibrated so that the §4
//! micro-operations land inside the paper's published ranges on the
//! default 16-node machine:
//!
//! * page-sized block transfer: ~1.11 ms (from the machine's 1100 ns/word),
//! * read miss replicating a non-modified page: 1.34-1.38 ms,
//! * read miss replicating a modified page (one restrict IPI): 1.38-1.59 ms,
//! * write miss on a `present+` page (one invalidate IPI, one page freed):
//!   0.25-0.45 ms,
//! * incremental cost per additional interrupted processor: <= 17 us
//!   (~7 us IPI + ~10 us to free a page).

/// Tunable cost constants for kernel operations (nanoseconds / counts).
#[derive(Clone, Debug)]
pub struct KernelCosts {
    /// Fixed overhead of entering the coherent page fault handler: trap,
    /// state save, dispatch, return. The dominant part of the paper's
    /// ~0.23 ms fixed overhead for "allocating and mapping a physical
    /// page" on the 16.67 MHz MC68020.
    pub fault_fixed_ns: u64,
    /// Modelled references to the faulting address space's Cmap (homed on
    /// the space's home node).
    pub cmap_lookup_refs: u32,
    /// Modelled references to the Cpage table entry (homed on the page's
    /// home node). These are what make the paper's "kernel data structures
    /// local vs. remote" spread (~40 us) appear.
    pub cpage_touch_refs: u32,
    /// Modelled local references to install a Pmap + ATC entry.
    pub map_refs: u32,
    /// Extra fixed cost of a virtual-memory-layer fault (region lookup,
    /// Cmap entry creation) the first time a page is touched in a space.
    pub vm_fault_ns: u64,
    /// Cost to post one Cmap message (remote writes into the target
    /// space's queue).
    pub post_msg_refs: u32,
    /// Cost charged to a *target* applying one Cmap message to its own
    /// Pmap and ATC.
    pub apply_msg_ns: u64,
    /// Extra initiator-side cost per target under the Mach-style
    /// shared-Pmap shootdown comparator. Black et al. measured ~55 us
    /// incremental per processor on a 16-processor Encore Multimax; we
    /// charge their constant minus our modelled IPI so the comparator
    /// reproduces the published comparison (see DESIGN.md).
    pub mach_stall_extra_ns: u64,
    /// Fixed cost of a port send/receive, excluding the per-word copy.
    pub port_op_ns: u64,
    /// Cost of moving a thread's kernel stack when the thread migrates
    /// (§2.2: "explicitly moving the kernel stack with the thread").
    pub thread_migrate_ns: u64,
    /// Cost of one defrost daemon activation, excluding per-page work.
    pub defrost_run_ns: u64,
}

impl Default for KernelCosts {
    fn default() -> Self {
        Self {
            fault_fixed_ns: 200_000,
            cmap_lookup_refs: 4,
            cpage_touch_refs: 8,
            map_refs: 8,
            vm_fault_ns: 60_000,
            post_msg_refs: 2,
            apply_msg_ns: 5_000,
            mach_stall_extra_ns: 48_000,
            port_op_ns: 30_000,
            thread_migrate_ns: 150_000,
            defrost_run_ns: 20_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_land_in_paper_ranges() {
        // Sanity-check the calibration arithmetic that the doc comment
        // promises, on the default machine timing (320 ns local word,
        // 5000 ns remote read, 1100 ns/word block transfer, 1024-word
        // pages).
        let c = KernelCosts::default();
        let local = 320u64;
        let copy = 1024 * 1100;
        // All kernel data local: fixed + (4 + 8 + 8) modelled local refs.
        let fixed_local = c.fault_fixed_ns
            + u64::from(c.cmap_lookup_refs + c.cpage_touch_refs + c.map_refs) * local;
        let read_miss_local = fixed_local + copy;
        assert!(
            (1_300_000..=1_400_000).contains(&read_miss_local),
            "read miss w/ local kernel data = {read_miss_local} ns, expected ~1.34 ms"
        );
        // Cmap and Cpage structures remote: those refs at ~5000 ns.
        let remote = 5000u64;
        let fixed_remote = c.fault_fixed_ns
            + u64::from(c.cmap_lookup_refs + c.cpage_touch_refs) * remote
            + u64::from(c.map_refs) * local;
        let read_miss_remote = fixed_remote + copy;
        assert!(
            (1_350_000..=1_450_000).contains(&read_miss_remote),
            "read miss w/ remote kernel data = {read_miss_remote} ns, expected ~1.38 ms"
        );
    }
}
