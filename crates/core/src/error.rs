//! Kernel error types.

use core::fmt;

use numa_machine::{AccessErr, Va};

use crate::ids::{AsId, ObjId, PortId};

/// An error returned by a kernel operation.
///
/// Marked `#[non_exhaustive]`: downstream matches must keep a catch-all
/// arm, so future degraded-mode variants are not a breaking change.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum KernelError {
    /// A user memory access failed unrecoverably (bus error, protection
    /// violation at the virtual-memory level, misalignment).
    Access(AccessErr),
    /// No physical frame could be allocated on any memory module.
    OutOfMemory,
    /// The named address space does not exist.
    NoSuchSpace(AsId),
    /// The named memory object does not exist.
    NoSuchObject(ObjId),
    /// The named port does not exist.
    NoSuchPort(PortId),
    /// A mapping request overlapped an existing region.
    MappingConflict(Va),
    /// A mapping request referenced pages beyond the end of the object.
    BadRange,
    /// The requested rights exceed what the region grants.
    RightsExceeded,
    /// The target processor already runs a thread (the simulator binds at
    /// most one thread per processor; see DESIGN.md).
    ProcessorBusy(usize),
    /// The object still has live bindings and cannot be destroyed.
    ObjectInUse(ObjId),
    /// A transient memory-module error persisted past the retry budget
    /// with no other copy to recover from (fault injection).
    TransientMemoryError {
        /// The module whose frame read kept failing.
        module: usize,
    },
    /// A shootdown target never acknowledged within the retry budget
    /// (fault injection); the page was frozen as the degraded mode.
    ShootdownTimeout {
        /// The processor that stayed silent.
        proc: usize,
    },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::Access(e) => write!(f, "access error: {e}"),
            KernelError::OutOfMemory => write!(f, "out of physical memory"),
            KernelError::NoSuchSpace(id) => write!(f, "no such address space: {id}"),
            KernelError::NoSuchObject(id) => write!(f, "no such memory object: {id}"),
            KernelError::NoSuchPort(id) => write!(f, "no such port: {id}"),
            KernelError::MappingConflict(va) => {
                write!(f, "mapping conflicts with existing region at {va:#x}")
            }
            KernelError::BadRange => write!(f, "page range beyond end of object"),
            KernelError::RightsExceeded => write!(f, "requested rights exceed the grant"),
            KernelError::ProcessorBusy(p) => write!(f, "processor {p} already runs a thread"),
            KernelError::ObjectInUse(id) => write!(f, "object {id} still has bindings"),
            KernelError::TransientMemoryError { module } => {
                write!(f, "unrecovered transient memory error on module {module}")
            }
            KernelError::ShootdownTimeout { proc } => {
                write!(f, "shootdown ack from processor {proc} timed out")
            }
        }
    }
}

impl std::error::Error for KernelError {}

impl From<AccessErr> for KernelError {
    fn from(e: AccessErr) -> Self {
        KernelError::Access(e)
    }
}

/// Convenience alias for kernel results.
pub type Result<T> = std::result::Result<T, KernelError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_from() {
        let e: KernelError = AccessErr::Protection(0x40).into();
        assert_eq!(e.to_string(), "access error: protection fault at 0x40");
        assert_eq!(
            KernelError::OutOfMemory.to_string(),
            "out of physical memory"
        );
        assert_eq!(
            KernelError::ProcessorBusy(3).to_string(),
            "processor 3 already runs a thread"
        );
        assert_eq!(
            KernelError::TransientMemoryError { module: 2 }.to_string(),
            "unrecovered transient memory error on module 2"
        );
        assert_eq!(
            KernelError::ShootdownTimeout { proc: 5 }.to_string(),
            "shootdown ack from processor 5 timed out"
        );
    }
}
