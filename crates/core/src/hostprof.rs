//! Host-time phase profiling for the fault slow path.
//!
//! The simulator's virtual clock says what the *modelled* machine spends;
//! this module says where the *host* spends wall-clock while serving it,
//! bucketed by slow-path phase. It exists for the throughput benchmarks
//! (`host_throughput` reports the buckets per mix) and costs one relaxed
//! load and a predictable branch per instrumented span while disabled, so
//! it stays compiled into release kernels.
//!
//! The buckets overlap deliberately: `fault` spans the whole coherent
//! fault handler, while `shootdown`, `transfer`, and `directory` time the
//! components nested inside it (and `directory` also counts message
//! drains outside any fault). Read `fault` as the total and the rest as
//! its attribution.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// A slow-path phase bucket.
#[derive(Clone, Copy, Debug)]
pub enum HostPhase {
    /// The coherent fault handler, entry to exit.
    Fault = 0,
    /// Shootdown posting and acknowledgment waits.
    Shootdown = 1,
    /// Page block transfers.
    Transfer = 2,
    /// Directory and translation updates: message drains and `map_page`.
    Directory = 3,
    /// Simulated page-table walks on ATC misses (the translation fabric).
    Walk = 4,
}

/// Wall-clock nanoseconds spent per [`HostPhase`], collected only while
/// enabled.
#[derive(Debug, Default)]
pub struct HostProf {
    enabled: AtomicBool,
    buckets: [AtomicU64; 5],
}

/// A point-in-time copy of the five buckets, in nanoseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HostProfSnapshot {
    /// Total wall-clock inside the coherent fault handler.
    pub fault_ns: u64,
    /// Wall-clock posting shootdowns and awaiting acknowledgments.
    pub shootdown_ns: u64,
    /// Wall-clock in page block transfers.
    pub transfer_ns: u64,
    /// Wall-clock updating directories: message drains and `map_page`.
    pub directory_ns: u64,
    /// Wall-clock in simulated page-table walks (outside any fault).
    pub walk_ns: u64,
}

impl HostProf {
    /// Starts collecting.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Stops collecting (the buckets keep their totals).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Begins a span: `None` while disabled, so the off path never reads
    /// the host clock.
    #[inline(always)]
    pub(crate) fn begin(&self) -> Option<Instant> {
        if self.enabled.load(Ordering::Relaxed) {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Ends a span begun with [`HostProf::begin`].
    #[inline(always)]
    pub(crate) fn end(&self, phase: HostPhase, begin: Option<Instant>) {
        if let Some(t) = begin {
            self.buckets[phase as usize]
                .fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }

    /// Copies out the bucket totals.
    pub fn snapshot(&self) -> HostProfSnapshot {
        HostProfSnapshot {
            fault_ns: self.buckets[HostPhase::Fault as usize].load(Ordering::Relaxed),
            shootdown_ns: self.buckets[HostPhase::Shootdown as usize].load(Ordering::Relaxed),
            transfer_ns: self.buckets[HostPhase::Transfer as usize].load(Ordering::Relaxed),
            directory_ns: self.buckets[HostPhase::Directory as usize].load(Ordering::Relaxed),
            walk_ns: self.buckets[HostPhase::Walk as usize].load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_collect_nothing() {
        let p = HostProf::default();
        let t = p.begin();
        assert!(t.is_none());
        p.end(HostPhase::Fault, t);
        assert_eq!(p.snapshot(), HostProfSnapshot::default());
    }

    #[test]
    fn enabled_spans_accumulate() {
        let p = HostProf::default();
        p.enable();
        let t = p.begin();
        assert!(t.is_some());
        std::thread::sleep(std::time::Duration::from_millis(1));
        p.end(HostPhase::Transfer, t);
        assert!(p.snapshot().transfer_ns > 0);
        assert_eq!(p.snapshot().fault_ns, 0);
        p.disable();
        let t = p.begin();
        p.end(HostPhase::Transfer, t);
    }
}
