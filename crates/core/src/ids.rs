//! Globally-named kernel object identifiers.
//!
//! PLATINUM's fundamental abstractions — threads, memory objects, ports,
//! and address spaces — "all appear in a single flat global name space"
//! (§1.1 of the paper). Identifiers are small indices into kernel
//! registries.

use core::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// The global name of an address space.
    AsId,
    "as"
);
id_type!(
    /// The global name of a memory object (an ordered list of coherent
    /// pages that can be bound into any address space).
    ObjId,
    "obj"
);
id_type!(
    /// The global name of a port (a message queue with any number of
    /// senders and receivers).
    PortId,
    "port"
);
id_type!(
    /// The global name of a kernel thread.
    ThreadId,
    "thr"
);

/// The identity of a coherent page.
///
/// Also used (plus one) as the owner tag in the machines' inverted page
/// tables, so it is 64-bit.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CpageId(pub u64);

impl CpageId {
    /// The raw index into the coherent page table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for CpageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cp{}", self.0)
    }
}

/// Access rights to a range of virtual addresses, as granted by the
/// virtual memory system (the virtual-to-coherent level).
///
/// The coherency protocol may *further* restrict the virtual-to-physical
/// mapping below these rights (§3.2: "the virtual-to-physical mapping is
/// restricted in order to implement the coherency protocol").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Rights {
    /// Reads permitted.
    pub read: bool,
    /// Writes (and atomic read-modify-writes) permitted.
    pub write: bool,
}

impl Rights {
    /// Read-only access.
    pub const RO: Rights = Rights {
        read: true,
        write: false,
    };
    /// Read-write access.
    pub const RW: Rights = Rights {
        read: true,
        write: true,
    };

    /// Whether these rights include `other`.
    pub fn covers(&self, other: Rights) -> bool {
        (!other.read || self.read) && (!other.write || self.write)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_display() {
        assert_eq!(format!("{}", AsId(3)), "as3");
        assert_eq!(format!("{:?}", ObjId(1)), "obj1");
        assert_eq!(format!("{:?}", CpageId(9)), "cp9");
        assert_eq!(PortId(2).index(), 2);
    }

    #[test]
    fn rights_covering() {
        assert!(Rights::RW.covers(Rights::RO));
        assert!(Rights::RW.covers(Rights::RW));
        assert!(!Rights::RO.covers(Rights::RW));
        assert!(Rights::RO.covers(Rights::RO));
    }
}
