//! Kernel instrumentation and the post-mortem memory-management report.
//!
//! "In addition to timing data, the kernel produces a detailed report on
//! the behavior of memory management. For each Cpage this includes the
//! number of coherent memory faults, a measure of contention in the Cpage
//! fault handler for that page, and whether the Cpage was frozen by the
//! replication policy" (§4.2). That report diagnosed the frozen
//! spin-lock-page bottleneck in the Gaussian elimination anecdote; the
//! `anecdote_freeze` bench reproduces that workflow with this module.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::coherent::cpage::{CpState, CpageTable};
use crate::ids::CpageId;

/// Machine-wide kernel event counters.
#[derive(Default)]
pub struct KernelStats {
    /// Coherent-memory page faults handled.
    pub faults: AtomicU64,
    /// Faults that fell through to the virtual-memory layer (first touch).
    pub vm_faults: AtomicU64,
    /// Page replications performed (a new physical copy created).
    pub replications: AtomicU64,
    /// Page migrations performed (copy moved, original invalidated).
    pub migrations: AtomicU64,
    /// Remote mappings created instead of replication/migration.
    pub remote_maps: AtomicU64,
    /// Pages frozen by the replication policy.
    pub freezes: AtomicU64,
    /// Pages thawed (defrost daemon or explicit).
    pub thaws: AtomicU64,
    /// Protocol invalidation events (the ones that feed the policy's
    /// interference history).
    pub invalidations: AtomicU64,
    /// Shootdown operations initiated.
    pub shootdowns: AtomicU64,
    /// Interprocessor interrupts sent.
    pub ipis_sent: AtomicU64,
    /// Physical frames freed by the protocol.
    pub frames_freed: AtomicU64,
    /// Defrost daemon activations.
    pub defrost_runs: AtomicU64,
    /// Replica evictions performed under memory pressure.
    pub reclaims: AtomicU64,
}

impl KernelStats {
    /// Increments `counter`.
    #[inline]
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` to `counter`.
    #[inline]
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// A plain-value snapshot of the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            faults: self.faults.load(Ordering::Relaxed),
            vm_faults: self.vm_faults.load(Ordering::Relaxed),
            replications: self.replications.load(Ordering::Relaxed),
            migrations: self.migrations.load(Ordering::Relaxed),
            remote_maps: self.remote_maps.load(Ordering::Relaxed),
            freezes: self.freezes.load(Ordering::Relaxed),
            thaws: self.thaws.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            shootdowns: self.shootdowns.load(Ordering::Relaxed),
            ipis_sent: self.ipis_sent.load(Ordering::Relaxed),
            frames_freed: self.frames_freed.load(Ordering::Relaxed),
            defrost_runs: self.defrost_runs.load(Ordering::Relaxed),
            reclaims: self.reclaims.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value snapshot of [`KernelStats`]; field meanings match the
/// counters there.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Coherent-memory page faults handled.
    pub faults: u64,
    /// Faults that fell through to the virtual-memory layer.
    pub vm_faults: u64,
    /// Page replications performed.
    pub replications: u64,
    /// Page migrations performed.
    pub migrations: u64,
    /// Remote mappings created instead of replication/migration.
    pub remote_maps: u64,
    /// Pages frozen by the replication policy.
    pub freezes: u64,
    /// Pages thawed.
    pub thaws: u64,
    /// Protocol invalidation events.
    pub invalidations: u64,
    /// Shootdown operations initiated.
    pub shootdowns: u64,
    /// Interprocessor interrupts sent.
    pub ipis_sent: u64,
    /// Physical frames freed.
    pub frames_freed: u64,
    /// Defrost daemon activations.
    pub defrost_runs: u64,
    /// Replica evictions under memory pressure.
    pub reclaims: u64,
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "kernel events:")?;
        writeln!(f, "  faults            {:>10}", self.faults)?;
        writeln!(f, "  vm faults         {:>10}", self.vm_faults)?;
        writeln!(f, "  replications      {:>10}", self.replications)?;
        writeln!(f, "  migrations        {:>10}", self.migrations)?;
        writeln!(f, "  remote maps       {:>10}", self.remote_maps)?;
        writeln!(f, "  freezes           {:>10}", self.freezes)?;
        writeln!(f, "  thaws             {:>10}", self.thaws)?;
        writeln!(f, "  invalidations     {:>10}", self.invalidations)?;
        writeln!(f, "  shootdowns        {:>10}", self.shootdowns)?;
        writeln!(f, "  IPIs sent         {:>10}", self.ipis_sent)?;
        writeln!(f, "  frames freed      {:>10}", self.frames_freed)?;
        writeln!(f, "  defrost runs      {:>10}", self.defrost_runs)?;
        writeln!(f, "  replica reclaims  {:>10}", self.reclaims)
    }
}

/// Per-coherent-page line of the post-mortem report.
#[derive(Clone, Debug)]
pub struct CpageReport {
    /// The page.
    pub id: CpageId,
    /// Node homing its metadata.
    pub home: usize,
    /// Protocol state at report time.
    pub state: CpState,
    /// Physical copies at report time.
    pub copies: usize,
    /// Coherent-memory faults taken on this page.
    pub faults: u64,
    /// Whether the page is frozen right now.
    pub frozen_now: bool,
    /// Times the policy froze the page.
    pub freezes: u32,
    /// Times the page was thawed.
    pub thaws: u32,
    /// Replications of this page.
    pub replications: u32,
    /// Migrations of this page.
    pub migrations: u32,
    /// Contention measure: virtual ns spent waiting for this page's lock
    /// in the fault handler.
    pub lock_wait_ns: u64,
}

/// The post-mortem memory-management report.
pub struct MemoryReport {
    /// One line per coherent page ever created.
    pub pages: Vec<CpageReport>,
    /// Machine-wide event counters.
    pub totals: StatsSnapshot,
}

impl MemoryReport {
    pub(crate) fn build(table: &CpageTable, stats: &KernelStats) -> Self {
        let pages = table
            .snapshot()
            .into_iter()
            .map(|p| {
                let g = p.lock();
                CpageReport {
                    id: p.id(),
                    home: p.home(),
                    state: g.state,
                    copies: g.copies.len(),
                    faults: g.faults,
                    frozen_now: g.frozen,
                    freezes: g.freezes,
                    thaws: g.thaws,
                    replications: g.replications,
                    migrations: g.migrations,
                    lock_wait_ns: g.lock_wait_ns,
                }
            })
            .collect();
        Self {
            pages,
            totals: stats.snapshot(),
        }
    }

    /// The pages that were ever frozen — the report field that diagnosed
    /// the §4.2 anecdote.
    pub fn ever_frozen(&self) -> Vec<&CpageReport> {
        self.pages.iter().filter(|p| p.freezes > 0).collect()
    }

    /// The `n` pages with the highest fault-handler contention.
    pub fn most_contended(&self, n: usize) -> Vec<&CpageReport> {
        let mut v: Vec<&CpageReport> = self.pages.iter().collect();
        v.sort_by_key(|p| std::cmp::Reverse(p.lock_wait_ns));
        v.truncate(n);
        v
    }
}

impl fmt::Display for MemoryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:>6} {:>5} {:>9} {:>7} {:>7} {:>7} {:>6} {:>6} {:>6} {:>12}",
            "cpage", "home", "state", "copies", "faults", "repl", "migr", "frz", "thaw", "lockwait_us"
        )?;
        for p in &self.pages {
            // Keep the report readable: skip untouched pages.
            if p.faults == 0 && p.copies == 0 {
                continue;
            }
            writeln!(
                f,
                "{:>6} {:>5} {:>9} {:>7} {:>7} {:>7} {:>6} {:>6} {:>6} {:>12.1}{}",
                format!("{:?}", p.id),
                p.home,
                format!("{:?}", p.state),
                p.copies,
                p.faults,
                p.replications,
                p.migrations,
                p.freezes,
                p.thaws,
                p.lock_wait_ns as f64 / 1000.0,
                if p.frozen_now { "  [FROZEN]" } else { "" },
            )?;
        }
        write!(f, "{}", self.totals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let s = KernelStats::default();
        KernelStats::bump(&s.faults);
        KernelStats::bump(&s.faults);
        KernelStats::add(&s.ipis_sent, 5);
        let snap = s.snapshot();
        assert_eq!(snap.faults, 2);
        assert_eq!(snap.ipis_sent, 5);
        assert_eq!(snap.migrations, 0);
        let text = snap.to_string();
        assert!(text.contains("IPIs sent"));
    }

    #[test]
    fn report_from_table() {
        let t = CpageTable::new();
        let p = t.alloc(2);
        {
            let mut g = p.lock();
            g.faults = 7;
            g.freezes = 1;
            g.lock_wait_ns = 5000;
        }
        let stats = KernelStats::default();
        let r = MemoryReport::build(&t, &stats);
        assert_eq!(r.pages.len(), 1);
        assert_eq!(r.pages[0].faults, 7);
        assert_eq!(r.ever_frozen().len(), 1);
        assert_eq!(r.most_contended(5).len(), 1);
        assert!(r.to_string().contains("cp0"));
    }
}
