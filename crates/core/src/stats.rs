//! Kernel instrumentation and the post-mortem memory-management report.
//!
//! "In addition to timing data, the kernel produces a detailed report on
//! the behavior of memory management. For each Cpage this includes the
//! number of coherent memory faults, a measure of contention in the Cpage
//! fault handler for that page, and whether the Cpage was frozen by the
//! replication policy" (§4.2). That report diagnosed the frozen
//! spin-lock-page bottleneck in the Gaussian elimination anecdote; the
//! `anecdote_freeze` bench reproduces that workflow with this module.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use platinum_trace::EventKind;

use crate::coherent::cpage::{CpState, CpageTable};
use crate::ids::CpageId;

/// One processor's stripe of the kernel event counters, padded to its own
/// cache lines so recording processors never false-share.
#[repr(align(128))]
struct StatsStripe {
    counters: [AtomicU64; EventKind::COUNT],
}

impl Default for StatsStripe {
    fn default() -> Self {
        Self {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// The stripe count matches the machine's hard limit of 64 processors
/// (the width of the protocol's bitmasks).
const STRIPES: usize = 64;

/// Machine-wide kernel event counters.
///
/// One counter per [`EventKind`], incremented by [`Kernel::record`]
/// (`crate::kernel`) — the same call that emits the event to the tracer,
/// so counters and traces can never disagree: a count is exactly the
/// number of events of that kind ever recorded.
///
/// Counters are striped per recording processor: a record is one relaxed
/// add on a processor-private cache line, and reads sum the stripes. This
/// keeps the hot fault path free of cross-processor cache-line traffic.
pub struct KernelStats {
    stripes: Box<[StatsStripe]>,
}

impl Default for KernelStats {
    fn default() -> Self {
        let mut v = Vec::with_capacity(STRIPES);
        v.resize_with(STRIPES, StatsStripe::default);
        Self {
            stripes: v.into_boxed_slice(),
        }
    }
}

impl KernelStats {
    /// Counts one event of `kind`, recorded by processor `proc`.
    ///
    /// Each stripe has exactly one writer: every record call passes the
    /// calling processor's own id (shootdown initiators record IPIs under
    /// their own id, not the target's), and a processor is driven by one
    /// thread at a time (`Kernel::attach` enforces exclusivity). A plain
    /// load+store therefore cannot lose updates, and it compiles to an
    /// ordinary add instead of a locked read-modify-write — this is the
    /// hottest instruction in the fault path's instrumentation.
    #[inline]
    pub(crate) fn record(&self, proc: usize, kind: EventKind) {
        let c = &self.stripes[proc & (STRIPES - 1)].counters[kind as usize];
        c.store(c.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
    }

    /// The number of events of `kind` recorded so far (all processors).
    #[inline]
    pub fn count(&self, kind: EventKind) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.counters[kind as usize].load(Ordering::Relaxed))
            .sum()
    }

    /// A plain-value snapshot of the counters. The named fields select
    /// the protocol-level kinds; [`KernelStats::count`] reaches the rest.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            faults: self.count(EventKind::FaultBegin),
            vm_faults: self.count(EventKind::VmFault),
            replications: self.count(EventKind::Replicate),
            migrations: self.count(EventKind::Migrate),
            remote_maps: self.count(EventKind::RemoteMap),
            freezes: self.count(EventKind::Freeze),
            thaws: self.count(EventKind::Thaw),
            invalidations: self.count(EventKind::Invalidate),
            shootdowns: self.count(EventKind::ShootdownInit),
            ipis_sent: self.count(EventKind::Ipi),
            frames_freed: self.count(EventKind::FrameFree),
            defrost_runs: self.count(EventKind::DefrostRun),
            reclaims: self.count(EventKind::ReplicaEvict),
            mem_errors: self.count(EventKind::MemError),
            shootdown_timeouts: self.count(EventKind::ShootdownTimeout),
            transfer_faults: self.count(EventKind::TransferFault),
            alloc_faults: self.count(EventKind::AllocFault),
            fault_recoveries: self.count(EventKind::FaultRecovery),
            server_requests: self.count(EventKind::ServerRequest),
            pt_walks: self.count(EventKind::PtWalk),
            pt_populates: self.count(EventKind::PtPopulate),
            pt_invals: self.count(EventKind::PtInval),
            pt_inval_drops: self.count(EventKind::PtInvalDrop),
        }
    }
}

/// Plain-value snapshot of [`KernelStats`]; field meanings match the
/// counters there.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Coherent-memory page faults handled.
    pub faults: u64,
    /// Faults that fell through to the virtual-memory layer.
    pub vm_faults: u64,
    /// Page replications performed.
    pub replications: u64,
    /// Page migrations performed.
    pub migrations: u64,
    /// Remote mappings created instead of replication/migration.
    pub remote_maps: u64,
    /// Pages frozen by the replication policy.
    pub freezes: u64,
    /// Pages thawed.
    pub thaws: u64,
    /// Protocol invalidation events.
    pub invalidations: u64,
    /// Shootdown operations initiated.
    pub shootdowns: u64,
    /// Interprocessor interrupts sent.
    pub ipis_sent: u64,
    /// Physical frames freed.
    pub frames_freed: u64,
    /// Defrost daemon activations.
    pub defrost_runs: u64,
    /// Replica evictions under memory pressure.
    pub reclaims: u64,
    /// Injected transient memory-module errors observed on frame reads.
    pub mem_errors: u64,
    /// Shootdown ack timeouts (injected dropped acks noticed).
    pub shootdown_timeouts: u64,
    /// Injected block-transfer failures (whole-page retries).
    pub transfer_faults: u64,
    /// Injected allocation refusals (fallback to another module).
    pub alloc_faults: u64,
    /// Fault-injection episodes that completed recovery.
    pub fault_recoveries: u64,
    /// Requests completed by the server workload tier.
    pub server_requests: u64,
    /// Charged page-table walks performed by the translation fabric
    /// (zero under the centralized placement, which accounts walks
    /// without charging them).
    pub pt_walks: u64,
    /// Per-node translation-replica populations.
    pub pt_populates: u64,
    /// Translation-replica stale marks written into shootdown rounds
    /// (one per round that staled at least one replica).
    pub pt_invals: u64,
    /// Injected drops of translation-replica stale marks.
    pub pt_inval_drops: u64,
}

impl StatsSnapshot {
    /// The events recorded since `earlier` was taken: field-wise
    /// `self - earlier`. Benchmark phases snapshot before and after a
    /// measured region and report the delta.
    ///
    /// Saturates at zero, so a stale `earlier` from a different kernel
    /// cannot underflow.
    pub fn delta(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            faults: self.faults.saturating_sub(earlier.faults),
            vm_faults: self.vm_faults.saturating_sub(earlier.vm_faults),
            replications: self.replications.saturating_sub(earlier.replications),
            migrations: self.migrations.saturating_sub(earlier.migrations),
            remote_maps: self.remote_maps.saturating_sub(earlier.remote_maps),
            freezes: self.freezes.saturating_sub(earlier.freezes),
            thaws: self.thaws.saturating_sub(earlier.thaws),
            invalidations: self.invalidations.saturating_sub(earlier.invalidations),
            shootdowns: self.shootdowns.saturating_sub(earlier.shootdowns),
            ipis_sent: self.ipis_sent.saturating_sub(earlier.ipis_sent),
            frames_freed: self.frames_freed.saturating_sub(earlier.frames_freed),
            defrost_runs: self.defrost_runs.saturating_sub(earlier.defrost_runs),
            reclaims: self.reclaims.saturating_sub(earlier.reclaims),
            mem_errors: self.mem_errors.saturating_sub(earlier.mem_errors),
            shootdown_timeouts: self
                .shootdown_timeouts
                .saturating_sub(earlier.shootdown_timeouts),
            transfer_faults: self.transfer_faults.saturating_sub(earlier.transfer_faults),
            alloc_faults: self.alloc_faults.saturating_sub(earlier.alloc_faults),
            fault_recoveries: self
                .fault_recoveries
                .saturating_sub(earlier.fault_recoveries),
            server_requests: self.server_requests.saturating_sub(earlier.server_requests),
            pt_walks: self.pt_walks.saturating_sub(earlier.pt_walks),
            pt_populates: self.pt_populates.saturating_sub(earlier.pt_populates),
            pt_invals: self.pt_invals.saturating_sub(earlier.pt_invals),
            pt_inval_drops: self.pt_inval_drops.saturating_sub(earlier.pt_inval_drops),
        }
    }

    /// Total injected faults observed, across every injection site.
    pub fn injected_faults(&self) -> u64 {
        self.mem_errors
            + self.shootdown_timeouts
            + self.transfer_faults
            + self.alloc_faults
            + self.pt_inval_drops
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "kernel events:")?;
        writeln!(f, "  faults            {:>10}", self.faults)?;
        writeln!(f, "  vm faults         {:>10}", self.vm_faults)?;
        writeln!(f, "  replications      {:>10}", self.replications)?;
        writeln!(f, "  migrations        {:>10}", self.migrations)?;
        writeln!(f, "  remote maps       {:>10}", self.remote_maps)?;
        writeln!(f, "  freezes           {:>10}", self.freezes)?;
        writeln!(f, "  thaws             {:>10}", self.thaws)?;
        writeln!(f, "  invalidations     {:>10}", self.invalidations)?;
        writeln!(f, "  shootdowns        {:>10}", self.shootdowns)?;
        writeln!(f, "  IPIs sent         {:>10}", self.ipis_sent)?;
        writeln!(f, "  frames freed      {:>10}", self.frames_freed)?;
        writeln!(f, "  defrost runs      {:>10}", self.defrost_runs)?;
        writeln!(f, "  replica reclaims  {:>10}", self.reclaims)?;
        // Server-tier and fault-injection counters only clutter runs that
        // did not exercise them.
        if self.server_requests > 0 {
            writeln!(f, "  server requests   {:>10}", self.server_requests)?;
        }
        if self.pt_walks + self.pt_populates + self.pt_invals > 0 {
            writeln!(f, "  pt walks          {:>10}", self.pt_walks)?;
            writeln!(f, "  pt populates      {:>10}", self.pt_populates)?;
            writeln!(f, "  pt invalidations  {:>10}", self.pt_invals)?;
        }
        if self.injected_faults() + self.fault_recoveries > 0 {
            writeln!(f, "  mem errors        {:>10}", self.mem_errors)?;
            writeln!(f, "  ack timeouts      {:>10}", self.shootdown_timeouts)?;
            writeln!(f, "  transfer faults   {:>10}", self.transfer_faults)?;
            writeln!(f, "  alloc faults      {:>10}", self.alloc_faults)?;
            writeln!(f, "  pt inval drops    {:>10}", self.pt_inval_drops)?;
            writeln!(f, "  fault recoveries  {:>10}", self.fault_recoveries)?;
        }
        Ok(())
    }
}

/// Per-coherent-page line of the post-mortem report.
#[derive(Clone, Debug)]
pub struct CpageReport {
    /// The page.
    pub id: CpageId,
    /// Node homing its metadata.
    pub home: usize,
    /// Protocol state at report time.
    pub state: CpState,
    /// Physical copies at report time.
    pub copies: usize,
    /// Coherent-memory faults taken on this page.
    pub faults: u64,
    /// Whether the page is frozen right now.
    pub frozen_now: bool,
    /// Times the policy froze the page.
    pub freezes: u32,
    /// Times the page was thawed.
    pub thaws: u32,
    /// Replications of this page.
    pub replications: u32,
    /// Migrations of this page.
    pub migrations: u32,
    /// Contention measure: virtual ns spent waiting for this page's lock
    /// in the fault handler.
    pub lock_wait_ns: u64,
}

/// The post-mortem memory-management report.
pub struct MemoryReport {
    /// One line per coherent page ever created.
    pub pages: Vec<CpageReport>,
    /// Machine-wide event counters.
    pub totals: StatsSnapshot,
}

impl MemoryReport {
    pub(crate) fn build(table: &CpageTable, stats: &KernelStats) -> Self {
        let pages = table
            .snapshot()
            .into_iter()
            .map(|p| {
                let g = p.lock();
                CpageReport {
                    id: p.id(),
                    home: p.home(),
                    state: g.state,
                    copies: g.copies.len(),
                    faults: g.faults,
                    frozen_now: g.frozen,
                    freezes: g.freezes,
                    thaws: g.thaws,
                    replications: g.replications,
                    migrations: g.migrations,
                    lock_wait_ns: g.lock_wait_ns,
                }
            })
            .collect();
        Self {
            pages,
            totals: stats.snapshot(),
        }
    }

    /// The pages that were ever frozen — the report field that diagnosed
    /// the §4.2 anecdote.
    pub fn ever_frozen(&self) -> Vec<&CpageReport> {
        self.pages.iter().filter(|p| p.freezes > 0).collect()
    }

    /// The `n` pages with the highest fault-handler contention.
    pub fn most_contended(&self, n: usize) -> Vec<&CpageReport> {
        let mut v: Vec<&CpageReport> = self.pages.iter().collect();
        v.sort_by_key(|p| std::cmp::Reverse(p.lock_wait_ns));
        v.truncate(n);
        v
    }
}

impl fmt::Display for MemoryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:>6} {:>5} {:>9} {:>7} {:>7} {:>7} {:>6} {:>6} {:>6} {:>12}",
            "cpage",
            "home",
            "state",
            "copies",
            "faults",
            "repl",
            "migr",
            "frz",
            "thaw",
            "lockwait_us"
        )?;
        for p in &self.pages {
            // Keep the report readable: skip untouched pages.
            if p.faults == 0 && p.copies == 0 {
                continue;
            }
            writeln!(
                f,
                "{:>6} {:>5} {:>9} {:>7} {:>7} {:>7} {:>6} {:>6} {:>6} {:>12.1}{}",
                format!("{:?}", p.id),
                p.home,
                format!("{:?}", p.state),
                p.copies,
                p.faults,
                p.replications,
                p.migrations,
                p.freezes,
                p.thaws,
                p.lock_wait_ns as f64 / 1000.0,
                if p.frozen_now { "  [FROZEN]" } else { "" },
            )?;
        }
        write!(f, "{}", self.totals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_records() {
        let s = KernelStats::default();
        s.record(0, EventKind::FaultBegin);
        s.record(1, EventKind::FaultBegin);
        for p in 0..5 {
            s.record(p, EventKind::Ipi);
        }
        let snap = s.snapshot();
        assert_eq!(snap.faults, 2, "counts sum across per-processor stripes");
        assert_eq!(snap.ipis_sent, 5);
        assert_eq!(snap.migrations, 0);
        // Kinds outside the named snapshot are still counted.
        s.record(63, EventKind::LockWait);
        assert_eq!(s.count(EventKind::LockWait), 1);
        let text = snap.to_string();
        assert!(text.contains("IPIs sent"));
    }

    #[test]
    fn snapshot_delta() {
        let s = KernelStats::default();
        s.record(0, EventKind::Freeze);
        let before = s.snapshot();
        s.record(2, EventKind::Freeze);
        s.record(0, EventKind::Thaw);
        let after = s.snapshot();
        let d = after.delta(&before);
        assert_eq!(d.freezes, 1);
        assert_eq!(d.thaws, 1);
        assert_eq!(d.faults, 0);
        assert_eq!(before.delta(&after), StatsSnapshot::default(), "saturates");
    }

    #[test]
    fn report_from_table() {
        let t = CpageTable::new();
        let p = t.alloc(2);
        {
            let mut g = p.lock();
            g.faults = 7;
            g.freezes = 1;
            g.lock_wait_ns = 5000;
        }
        let stats = KernelStats::default();
        let r = MemoryReport::build(&t, &stats);
        assert_eq!(r.pages.len(), 1);
        assert_eq!(r.pages[0].faults, 7);
        assert_eq!(r.ever_frozen().len(), 1);
        assert_eq!(r.most_contended(5).len(), 1);
        assert!(r.to_string().contains("cp0"));
    }
}
