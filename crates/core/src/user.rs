//! The user context: a thread's view of the coherent memory abstraction.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use numa_machine::{
    AccessErr, AccessKind, FastPath, Frame, Mem, PhysPage, ProcCore, ProcSet, Va, Vpn,
};
use platinum_ptable::{PtableConfig, PtablePlacement};
use platinum_trace::EventKind;

use crate::coherent::cmap::{CmapMsg, Directive};
use crate::coherent::scratch::FaultScratch;
use crate::coherent::shootdown::ShootdownBatch;
use crate::error::{KernelError, Result};
use crate::ids::ThreadId;
use crate::kernel::Kernel;
use crate::pmap::Pmap;
use crate::thread::ThreadState;
use crate::vm::space::AddressSpace;

/// A kernel thread's execution context on one processor.
///
/// `UserCtx` implements [`Mem`], so application code written against that
/// trait runs on PLATINUM coherent memory transparently: every access
/// translates through the processor's ATC and private Pmap, and missing
/// or restricted translations trap into the kernel's coherent fault
/// handler — the mechanism of §2.1. The context also carries the thread's
/// kernel entry points (ports, migration, explicit thaw).
///
/// Exactly one `UserCtx` exists per processor at a time, driven by one OS
/// thread; it is created by [`Kernel::attach`].
pub struct UserCtx {
    pub(crate) kernel: Arc<Kernel>,
    pub(crate) core: ProcCore,
    pub(crate) space: Arc<AddressSpace>,
    pub(crate) pmap: Pmap,
    page_shift: u32,
    /// Cached `space.asid()`, kept in sync by [`UserCtx::switch_space`];
    /// read on the access fast path.
    asid: u32,
    /// Cached copy of the kernel's translation-fabric configuration, so
    /// the ATC-miss path tests one local flag instead of chasing the
    /// kernel config.
    pub(crate) ptable: PtableConfig,
    thread: ThreadId,
    /// Reusable slow-path buffers; see [`FaultScratch`].
    pub(crate) scratch: FaultScratch,
}

impl UserCtx {
    pub(crate) fn new(kernel: Arc<Kernel>, core: ProcCore, space: Arc<AddressSpace>) -> Self {
        let page_shift = kernel.machine().cfg().page_shift;
        let thread = kernel.threads.register(core.id(), space.id());
        let asid = space.asid();
        let ptable = kernel.config().ptable;
        let mut ctx = Self {
            kernel,
            core,
            space,
            pmap: Pmap::new(),
            page_shift,
            asid,
            ptable,
            thread,
            scratch: FaultScratch::default(),
        };
        ctx.activate_space();
        ctx
    }

    /// The thread's global name (§1.1: threads are globally named).
    pub fn thread_id(&self) -> ThreadId {
        self.thread
    }

    /// The kernel this context belongs to.
    pub fn kernel(&self) -> &Arc<Kernel> {
        &self.kernel
    }

    /// The address space the thread executes in.
    pub fn space(&self) -> &Arc<AddressSpace> {
        &self.space
    }

    /// The processor's accumulated access counters.
    pub fn counters(&self) -> numa_machine::AccessCounters {
        self.core.counters()
    }

    /// Direct access to the processor core (harness/instrumentation use).
    pub fn core(&self) -> &ProcCore {
        &self.core
    }

    // ----- Address-space activity (§3.1) ---------------------------------

    /// Marks the current space active on this processor and applies any
    /// mapping changes that arrived while it was inactive. "Each processor
    /// is responsible for making these changes before running any thread
    /// in that address space" (§2.3).
    fn activate_space(&mut self) {
        let id = self.space.id();
        self.kernel.slots[self.core.id()].active.set_active(id.0);
        self.drain_messages();
        self.core.wake();
    }

    /// Marks the current space inactive (the thread is blocking in the
    /// kernel or terminating) and acknowledges outstanding changes so no
    /// initiator waits on a blocked processor.
    fn deactivate_space(&mut self) {
        let id = self.space.id();
        self.kernel.slots[self.core.id()].active.clear_active(id.0);
        self.drain_messages();
        self.core.set_idle();
    }

    /// Blocks "in the kernel": deactivates, runs `wait` (which may park
    /// the OS thread), then reactivates. Used by port receive.
    pub(crate) fn block_in_kernel<T>(&mut self, wait: impl FnOnce() -> T) -> T {
        self.deactivate_space();
        let out = wait();
        self.activate_space();
        out
    }

    /// Suspends the thread: the address space is deactivated and the
    /// processor marked idle, as when blocking in the kernel. While
    /// suspended the processor is never interrupted by shootdowns —
    /// pending mapping changes are applied on [`UserCtx::resume`]
    /// (§3.1's activity optimization).
    pub fn suspend(&mut self) {
        self.deactivate_space();
        self.kernel
            .threads
            .set_state(self.thread, ThreadState::Suspended);
    }

    /// Resumes a [`UserCtx::suspend`]ed thread, applying any mapping
    /// changes that arrived while it was suspended.
    pub fn resume(&mut self) {
        self.activate_space();
        self.kernel
            .threads
            .set_state(self.thread, ThreadState::Running);
    }

    /// Switches the thread to a different address space.
    pub fn switch_space(&mut self, space: Arc<AddressSpace>) {
        self.deactivate_space();
        self.space = space;
        self.asid = self.space.asid();
        self.activate_space();
        self.kernel.threads.set_space(self.thread, self.space.id());
    }

    /// Moves the thread to another processor (the explicit thread
    /// migration operation of §1.1). The kernel stack moves with the
    /// thread (§2.2), charged via the cost model.
    ///
    /// Fails with [`KernelError::ProcessorBusy`] if a thread is already
    /// bound there. The Pmap does *not* move: translations are a
    /// per-processor working set, so the thread faults its pages in at
    /// the new location.
    pub fn migrate(&mut self, new_proc: usize) -> Result<()> {
        if new_proc == self.core.id() {
            return Ok(());
        }
        let slot = &self.kernel.slots[new_proc];
        if slot
            .occupied
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return Err(KernelError::ProcessorBusy(new_proc));
        }
        self.deactivate_space();
        // Release the reference bits this processor holds so shootdowns
        // stop targeting it, and drop its private Pmap.
        for (vpn, entry) in self.space.cmap().snapshot() {
            if self.pmap.remove(self.space.id(), vpn).is_some() {
                entry.clear_ref(self.core.id());
            }
        }
        self.core.atc().flush_all();
        let old = self.core.id();
        let vtime = self.core.vtime() + self.kernel.config().costs.thread_migrate_ns;
        self.core = ProcCore::new(Arc::clone(self.kernel.machine()), new_proc, vtime);
        self.kernel.slots[old]
            .occupied
            .store(false, Ordering::Release);
        self.activate_space();
        self.kernel.threads.set_proc(self.thread, new_proc);
        Ok(())
    }

    // ----- IPI / Cmap message handling (§2.3, §3.1) -----------------------

    /// The Cmap synchronization handler: applies pending mapping-change
    /// messages for the active space to this processor's Pmap and ATC,
    /// then acknowledges them.
    pub(crate) fn drain_messages(&mut self) {
        let me = self.core.id();
        let space_id = self.space.id();
        let mut msgs = std::mem::take(&mut self.scratch.drained);
        self.space.cmap().pending_for_into(me, &mut msgs);
        if msgs.is_empty() {
            self.scratch.drained = msgs;
            return;
        }
        let span = self.kernel.hostprof.begin();
        // One count per message applied: deterministic however a batched
        // initiator's posts group into doorbell services.
        self.core.counters_mut().ipis_handled += msgs.len() as u64;
        let apply_ns = self.kernel.config().costs.apply_msg_ns;
        for m in &msgs {
            let code = match m.directive {
                Directive::Invalidate => 0,
                Directive::InvalidateModules(_) => 1,
                Directive::RestrictToRead => 2,
            };
            match &m.directive {
                Directive::Invalidate => {
                    if self.pmap.remove(space_id, m.vpn).is_some() {
                        self.space.cmap().with_entry(m.vpn, |e| e.clear_ref(me));
                    }
                    self.core.atc().invalidate(self.space.asid(), m.vpn);
                }
                Directive::InvalidateModules(modules) => {
                    let points_into = self
                        .pmap
                        .lookup(space_id, m.vpn)
                        .map(|e| modules.contains(e.pp.module_id()))
                        .unwrap_or(false);
                    if points_into {
                        self.pmap.remove(space_id, m.vpn);
                        self.space.cmap().with_entry(m.vpn, |e| e.clear_ref(me));
                        self.core.atc().invalidate(self.space.asid(), m.vpn);
                    }
                }
                Directive::RestrictToRead => {
                    self.pmap.restrict_to_read(space_id, m.vpn);
                    self.core.atc().restrict_to_read(self.space.asid(), m.vpn);
                }
            }
            self.core.charge(apply_ns);
            m.ack(me, self.core.vtime());
            self.kernel.record(
                me,
                self.core.vtime(),
                EventKind::ShootdownAck,
                code,
                m.vpn,
                0,
            );
        }
        msgs.clear();
        self.scratch.drained = msgs;
        self.kernel
            .hostprof
            .end(crate::hostprof::HostPhase::Directory, span);
    }

    /// Hands out the processor's shootdown batch for one operation.
    pub(crate) fn take_batch(&mut self) -> ShootdownBatch {
        std::mem::take(&mut self.scratch.batch)
    }

    /// Returns the (flushed) batch so its buffers are reused.
    pub(crate) fn put_batch(&mut self, batch: ShootdownBatch) {
        self.scratch.batch = batch;
    }

    /// Produces a shootdown message from the per-processor pool.
    pub(crate) fn alloc_msg(
        &mut self,
        vpn: Vpn,
        directive: Directive,
        targets: &ProcSet,
    ) -> Arc<CmapMsg> {
        self.scratch.alloc_msg(vpn, directive, targets)
    }

    /// Services the IPI doorbell — and nothing else: no access-counter
    /// tick, no throttling, no defrost opportunity. External spin loops
    /// that must stay responsive to shootdowns *without* perturbing the
    /// kernel-entry schedule (the reference-trace recorder's gate, the
    /// replay engine's turn wait) call this instead of touching memory.
    pub fn service_ipis(&mut self) {
        if self.core.take_ipi() {
            self.drain_messages();
        }
    }

    /// Kernel entry bookkeeping performed on every access: service the
    /// IPI doorbell, keep the virtual clock published, respect the skew
    /// window, and run the defrost daemon when its period elapses.
    #[inline]
    pub(crate) fn enter(&mut self) {
        if self.core.take_ipi() {
            self.drain_messages();
        }
        if self.core.tick() {
            self.slow_tick();
        }
    }

    #[cold]
    fn slow_tick(&mut self) {
        while self.core.should_throttle() {
            if self.core.take_ipi() {
                self.drain_messages();
            }
            std::hint::spin_loop();
            std::thread::yield_now();
        }
        let kernel = Arc::clone(&self.kernel);
        kernel.maybe_defrost(self);
    }

    // ----- Translation and data access ------------------------------------

    #[inline]
    fn vpn_of(&self, va: Va) -> Vpn {
        va >> self.page_shift
    }

    #[inline]
    fn word_of(&self, va: Va) -> usize {
        ((va & ((1u64 << self.page_shift) - 1)) >> 2) as usize
    }

    /// Translates `va` for the given access, faulting into the kernel as
    /// needed. Returns the physical page.
    #[inline]
    fn translate(&mut self, va: Va, write: bool) -> Result<PhysPage> {
        if va & 3 != 0 {
            return Err(KernelError::Access(AccessErr::Misaligned(va)));
        }
        let vpn = self.vpn_of(va);
        loop {
            self.enter();
            let asid = self.space.asid();
            match self.core.atc().lookup(asid, vpn) {
                Some((pp, w)) => {
                    // A rights fault is not a miss: the hardware already
                    // holds the translation, so no walk happens.
                    if !write || w {
                        return Ok(pp);
                    }
                }
                None => {
                    // A true ATC miss: the hardware walks the page
                    // tables before the Pmap (software) lookup decides
                    // whether to trap.
                    if self.ptable.accounting {
                        self.pt_walk(vpn);
                    }
                    if let Some(e) = self.pmap.lookup(self.space.id(), vpn) {
                        if !write || e.writable {
                            self.core.atc_insert(asid, vpn, e.pp, e.writable);
                            return Ok(e.pp);
                        }
                    }
                }
            }
            let kernel = Arc::clone(&self.kernel);
            kernel.coherent_fault(self, va, write)?;
        }
    }

    /// One simulated multi-level page-table walk on an ATC miss — the
    /// translation fabric's charge point. Exactly one walk happens per
    /// faulting access: the fault installs the ATC entry, so the retry
    /// iteration hits.
    ///
    /// Under the centralized placement the walk is *accounted* but not
    /// charged: pure arithmetic against the resolved latency to the
    /// space's home, tallied outside every equivalence-compared
    /// observable, which keeps the default bit-identical to a kernel
    /// without the subsystem. The charged placements move the clock
    /// through the contention-aware module path and record a `PtWalk`.
    #[cold]
    fn pt_walk(&mut self, vpn: Vpn) {
        let cfg = self.ptable;
        let span = self.kernel.hostprof.begin();
        let me = self.core.id();
        let refs = u64::from(cfg.walk_refs());
        if cfg.placement == PtablePlacement::Centralized {
            let home = self.space.home();
            let ns = refs * self.core.word_latency_to(home, AccessKind::Read);
            self.kernel.walk_stats.record_walk(me, ns, home == me);
        } else {
            let target = match cfg.placement {
                PtablePlacement::Centralized => unreachable!("handled above"),
                PtablePlacement::HomeNode => self.space.replica().home(),
                PtablePlacement::ReplicatedAll => {
                    // Every node earns a replica on its first walk.
                    if self.space.replica().join(me) {
                        let home = self.space.replica().home();
                        let t0 = self.core.vtime();
                        self.core.charge_word_block(
                            PhysPage::new(home, 0),
                            AccessKind::Read,
                            u64::from(cfg.populate_refs),
                        );
                        let ns = self.core.vtime() - t0;
                        self.kernel.walk_stats.record_populate(me, ns);
                        self.kernel.record(
                            me,
                            self.core.vtime(),
                            EventKind::PtPopulate,
                            cfg.placement as u8,
                            u64::from(self.space.id().0),
                            ns,
                        );
                    }
                    me
                }
                PtablePlacement::ReplicatedOnFault => self.space.replica().walk_target(me),
            };
            let t0 = self.core.vtime();
            self.core
                .charge_word_block(PhysPage::new(target, 0), AccessKind::Read, refs);
            let ns = self.core.vtime() - t0;
            self.kernel.walk_stats.record_walk(me, ns, target == me);
            self.kernel.record(
                me,
                self.core.vtime(),
                EventKind::PtWalk,
                cfg.placement as u8,
                vpn,
                ns,
            );
        }
        self.kernel
            .hostprof
            .end(crate::hostprof::HostPhase::Walk, span);
    }

    /// Continues translation after a [`ProcCore::fast_path`] probe came
    /// back [`FastPath::Miss`] (`missed`) or [`FastPath::NoRights`]
    /// (`!missed`): picks up [`UserCtx::translate`]'s loop exactly where
    /// the probe left it, so the fast path and the reference path perform
    /// the same enter/probe/fault sequence access for access.
    #[cold]
    fn translate_after_probe(&mut self, va: Va, write: bool, missed: bool) -> Result<PhysPage> {
        if missed {
            let vpn = self.vpn_of(va);
            if self.ptable.accounting {
                self.pt_walk(vpn);
            }
            if let Some(e) = self.pmap.lookup(self.space.id(), vpn) {
                if !write || e.writable {
                    self.core.atc_insert(self.asid, vpn, e.pp, e.writable);
                    return Ok(e.pp);
                }
            }
        }
        let kernel = Arc::clone(&self.kernel);
        kernel.coherent_fault(self, va, write)?;
        self.translate(va, write)
    }

    #[inline]
    fn translate_or_panic(&mut self, va: Va, write: bool) -> PhysPage {
        match self.translate(va, write) {
            Ok(pp) => pp,
            Err(e) => Self::die(e),
        }
    }

    #[cold]
    fn die(e: KernelError) -> ! {
        panic!("unrecoverable memory access: {e}")
    }

    /// The single data-access path every word-granular operation goes
    /// through: probe the ATC fast path when enabled (charged probe, or
    /// the uncharged variant for spin reads), fall back into the
    /// reference translation loop on a miss or rights fault, then run
    /// `op` against the physical frame. The fast and slow routes perform
    /// the same enter()/probe/fault sequence access for access, so every
    /// virtual-time charge and counter is identical either way.
    #[inline]
    fn data_access<R>(
        &mut self,
        va: Va,
        write: bool,
        kind: AccessKind,
        charged: bool,
        op: impl FnOnce(&Frame, usize) -> R,
    ) -> Result<R> {
        let word = self.word_of(va);
        if self.core.fast_path_enabled() && va & 3 == 0 {
            self.enter();
            let vpn = self.vpn_of(va);
            let probe = if charged {
                self.core.fast_path(self.asid, vpn, write, kind)
            } else {
                self.core.fast_probe(self.asid, vpn, write)
            };
            let missed = match probe {
                FastPath::Hit(frame) => return Ok(op(frame, word)),
                FastPath::Miss => true,
                FastPath::NoRights => false,
            };
            let pp = self.translate_after_probe(va, write, missed)?;
            if charged {
                self.core.charge_word_access(pp, kind);
            }
            return Ok(op(self.kernel.machine().frame_data(pp), word));
        }
        let pp = self.translate(va, write)?;
        if charged {
            self.core.charge_word_access(pp, kind);
        }
        Ok(op(self.kernel.machine().frame_data(pp), word))
    }

    /// Fallible read (kernel-style API; the [`Mem`] methods are one-line
    /// panicking wrappers, like a program dying on a bus error).
    #[inline]
    pub fn try_read(&mut self, va: Va) -> Result<u32> {
        self.data_access(va, false, AccessKind::Read, true, |f, w| f.load(w))
    }

    /// Fallible write.
    #[inline]
    pub fn try_write(&mut self, va: Va, val: u32) -> Result<()> {
        self.data_access(va, true, AccessKind::Write, true, |f, w| f.store(w, val))
    }

    /// Explicitly thaws the coherent page backing `va`, if frozen
    /// (§4.2: "all new mappings to a Cpage are to that single physical
    /// page" until the page "is explicitly thawed").
    pub fn thaw(&mut self, va: Va) -> Result<()> {
        let kernel = Arc::clone(&self.kernel);
        kernel.thaw_va(self, va)
    }
}

impl Mem for UserCtx {
    fn proc_id(&self) -> usize {
        self.core.id()
    }

    fn nprocs(&self) -> usize {
        self.kernel.machine().nprocs()
    }

    fn vtime(&self) -> u64 {
        self.core.vtime()
    }

    fn advance_to(&mut self, t: u64) {
        self.core.advance_to(t);
    }

    fn set_vtime(&mut self, t: u64) {
        self.core.set_vtime(t);
    }

    fn compute(&mut self, ns: u64) {
        self.core.charge_compute(ns);
    }

    #[inline]
    fn read(&mut self, va: Va) -> u32 {
        self.try_read(va).unwrap_or_else(|e| Self::die(e))
    }

    #[inline]
    fn write(&mut self, va: Va, val: u32) {
        self.try_write(va, val).unwrap_or_else(|e| Self::die(e))
    }

    #[inline]
    fn read_spin(&mut self, va: Va) -> u32 {
        // Uncharged: spin waiting is modelled analytically by the
        // synchronization primitives, but the access still exercises the
        // protocol (it faults, it can freeze pages).
        self.data_access(va, false, AccessKind::Read, false, |f, w| f.load(w))
            .unwrap_or_else(|e| Self::die(e))
    }

    #[inline]
    fn fetch_add(&mut self, va: Va, delta: u32) -> u32 {
        self.data_access(va, true, AccessKind::Atomic, true, |f, w| {
            f.fetch_add(w, delta)
        })
        .unwrap_or_else(|e| Self::die(e))
    }

    #[inline]
    fn compare_exchange(
        &mut self,
        va: Va,
        current: u32,
        new: u32,
    ) -> std::result::Result<u32, u32> {
        self.data_access(va, true, AccessKind::Atomic, true, |f, w| {
            f.compare_exchange(w, current, new)
        })
        .unwrap_or_else(|e| Self::die(e))
    }

    #[inline]
    fn swap(&mut self, va: Va, val: u32) -> u32 {
        self.data_access(va, true, AccessKind::Atomic, true, |f, w| f.swap(w, val))
            .unwrap_or_else(|e| Self::die(e))
    }

    fn poll(&mut self) {
        self.enter();
    }

    fn begin_wait(&mut self) {
        self.core.begin_wait();
    }

    fn end_wait(&mut self) {
        self.core.end_wait();
    }

    fn trace_lock(&mut self, va: Va, acquire: bool) {
        let kind = if acquire {
            EventKind::LockAcquire
        } else {
            EventKind::LockRelease
        };
        self.kernel
            .record(self.core.id(), self.core.vtime(), kind, 0, va, 0);
    }

    fn read_block(&mut self, va: Va, dst: &mut [u32]) {
        // Translate once per page, then stream the words with batched
        // charging — a software copy loop with the per-page fault cost
        // paid once, like the real machine.
        let words_per_page = 1usize << (self.page_shift - 2);
        let mut done = 0usize;
        while done < dst.len() {
            let addr = va + 4 * done as u64;
            let pp = self.translate_or_panic(addr, false);
            let word0 = self.word_of(addr);
            let n = (words_per_page - word0).min(dst.len() - done);
            self.core.charge_word_block(pp, AccessKind::Read, n as u64);
            self.kernel
                .machine()
                .frame_data(pp)
                .load_slice(word0, &mut dst[done..done + n]);
            done += n;
        }
    }

    fn write_block(&mut self, va: Va, src: &[u32]) {
        let words_per_page = 1usize << (self.page_shift - 2);
        let mut done = 0usize;
        while done < src.len() {
            let addr = va + 4 * done as u64;
            let pp = self.translate_or_panic(addr, true);
            let word0 = self.word_of(addr);
            let n = (words_per_page - word0).min(src.len() - done);
            self.core.charge_word_block(pp, AccessKind::Write, n as u64);
            self.kernel
                .machine()
                .frame_data(pp)
                .store_slice(word0, &src[done..done + n]);
            done += n;
        }
    }
}

impl Drop for UserCtx {
    fn drop(&mut self) {
        self.deactivate_space();
        self.kernel
            .threads
            .set_state(self.thread, ThreadState::Terminated);
        self.kernel.slots[self.core.id()]
            .occupied
            .store(false, Ordering::Release);
    }
}
