//! The kernel's thread registry.
//!
//! "A thread is a kernel-scheduled thread of control. At any time it is
//! bound to a single processor. An explicit migration operation can move
//! it to another location. It is, however, constrained to execute within
//! a single address space" (§1.1). Threads are globally named, like every
//! PLATINUM abstraction.
//!
//! In the simulator a thread is driven by one OS thread through its
//! [`crate::UserCtx`]; this module is the kernel-side bookkeeping: the
//! global name, the processor binding, the address space, and the
//! lifecycle state, all visible through [`crate::Kernel::thread_info`].

use parking_lot::RwLock;

use crate::ids::{AsId, ThreadId};

/// A thread's lifecycle state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThreadState {
    /// Bound to a processor and executing (its address space is active).
    Running,
    /// Blocked in the kernel or explicitly suspended; not interrupted by
    /// shootdowns (§3.1's activity optimization).
    Suspended,
    /// Detached from its processor; the name remains valid for queries.
    Terminated,
}

/// A snapshot of one thread's kernel state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ThreadInfo {
    /// The thread's global name.
    pub id: ThreadId,
    /// The processor the thread is (or was last) bound to.
    pub proc: usize,
    /// The address space the thread executes in.
    pub space: AsId,
    /// Lifecycle state.
    pub state: ThreadState,
    /// Times the thread migrated between processors.
    pub migrations: u32,
}

/// The registry of all threads ever created.
pub(crate) struct ThreadTable {
    threads: RwLock<Vec<ThreadInfo>>,
}

impl ThreadTable {
    pub(crate) fn new() -> Self {
        Self {
            threads: RwLock::new(Vec::new()),
        }
    }

    /// Registers a new thread bound to `proc` in `space`.
    pub(crate) fn register(&self, proc: usize, space: AsId) -> ThreadId {
        let mut t = self.threads.write();
        let id = ThreadId(t.len() as u32);
        t.push(ThreadInfo {
            id,
            proc,
            space,
            state: ThreadState::Running,
            migrations: 0,
        });
        id
    }

    /// Updates a thread's state.
    pub(crate) fn set_state(&self, id: ThreadId, state: ThreadState) {
        if let Some(info) = self.threads.write().get_mut(id.index()) {
            info.state = state;
        }
    }

    /// Records a migration to `proc`.
    pub(crate) fn set_proc(&self, id: ThreadId, proc: usize) {
        if let Some(info) = self.threads.write().get_mut(id.index()) {
            info.proc = proc;
            info.migrations += 1;
        }
    }

    /// Records an address-space switch.
    pub(crate) fn set_space(&self, id: ThreadId, space: AsId) {
        if let Some(info) = self.threads.write().get_mut(id.index()) {
            info.space = space;
        }
    }

    /// A snapshot of one thread.
    pub(crate) fn get(&self, id: ThreadId) -> Option<ThreadInfo> {
        self.threads.read().get(id.index()).copied()
    }

    /// Snapshots of all threads ever created.
    pub(crate) fn all(&self) -> Vec<ThreadInfo> {
        self.threads.read().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_bookkeeping() {
        let t = ThreadTable::new();
        let a = t.register(0, AsId(0));
        let b = t.register(3, AsId(1));
        assert_eq!(a, ThreadId(0));
        assert_eq!(b, ThreadId(1));
        assert_eq!(t.get(a).unwrap().state, ThreadState::Running);

        t.set_state(a, ThreadState::Suspended);
        assert_eq!(t.get(a).unwrap().state, ThreadState::Suspended);

        t.set_proc(b, 5);
        let info = t.get(b).unwrap();
        assert_eq!(info.proc, 5);
        assert_eq!(info.migrations, 1);

        t.set_space(b, AsId(2));
        assert_eq!(t.get(b).unwrap().space, AsId(2));

        t.set_state(b, ThreadState::Terminated);
        assert_eq!(t.all().len(), 2);
        assert!(t.get(ThreadId(9)).is_none());
    }
}
