//! Coherent pages: the directory-based heart of the protocol.

use parking_lot::{Mutex, MutexGuard, RwLock};

use numa_machine::{PhysPage, ProcSet};

use crate::ids::{AsId, CpageId};

/// The state of a coherent page (§3.2, Figure 4 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CpState {
    /// No physical pages back the Cpage; no virtual-to-physical mappings
    /// exist.
    Empty,
    /// Exactly one physical page backs the Cpage and all
    /// virtual-to-physical mappings are restricted to read access.
    Present1,
    /// Two or more physical pages in different memory modules back the
    /// Cpage; all mappings are read-only.
    PresentPlus,
    /// One physical page backs the Cpage and at least one mapping allows
    /// write access.
    Modified,
}

/// The mutable state of one coherent page, protected by the page's lock.
///
/// This combines the paper's Cpage table entry (§2.3): the directory of
/// physical pages (a module bitmask plus the page list), the
/// write-mapping indicator, the time of the most recent invalidation and
/// the frozen flag — plus per-page bookkeeping for shootdown targeting
/// and the post-mortem report.
#[derive(Debug)]
pub struct CpageInner {
    /// Protocol state.
    pub state: CpState,
    /// Directory: the physical pages backing this Cpage.
    pub copies: Vec<PhysPage>,
    /// Directory: the set of memory modules holding a copy.
    pub copies_mask: ProcSet,
    /// Processors currently granted a *writable* virtual-to-physical
    /// mapping (nonzero only in the `modified` state). The directory
    /// "indicates whether there is a virtual-to-physical translation
    /// allowing write access" (§2.3); tracking the holders lets the
    /// restrict shootdown interrupt only the writers.
    pub writer_mask: ProcSet,
    /// Virtual time of the most recent invalidation performed by the
    /// coherency protocol, if any. Drives the replication policy (§4.2).
    pub last_invalidation: Option<u64>,
    /// Whether the replication policy has frozen the page (all new
    /// mappings go to the single physical copy).
    pub frozen: bool,
    /// Processors whose Pmap maps a copy *not* on their own node (remote
    /// mappings created for frozen/unreplicated pages); used to target
    /// shootdowns precisely.
    pub remote_map_mask: ProcSet,
    /// Every (address space, virtual page) this Cpage is bound at. A
    /// protocol shootdown "must affect every address space in which the
    /// Cpage is mapped" (§3.1).
    pub bindings: Vec<(AsId, u64)>,
    /// Number of migrations performed (for the ACE-style policy and
    /// statistics).
    pub migrations: u32,
    /// Statistics: coherent-memory faults taken on this page.
    pub faults: u64,
    /// Statistics: times the page was frozen.
    pub freezes: u32,
    /// Statistics: times the page was thawed (defrost or explicit).
    pub thaws: u32,
    /// Statistics: replications performed.
    pub replications: u32,
    /// Statistics: virtual-time nanoseconds spent waiting for this page's
    /// lock in the fault handler — the paper's "measure of contention in
    /// the Cpage fault handler for that page" (§4.2).
    pub lock_wait_ns: u64,
}

impl CpageInner {
    fn new() -> Self {
        Self {
            state: CpState::Empty,
            copies: Vec::new(),
            copies_mask: ProcSet::empty(),
            writer_mask: ProcSet::empty(),
            last_invalidation: None,
            frozen: false,
            remote_map_mask: ProcSet::empty(),
            bindings: Vec::new(),
            migrations: 0,
            faults: 0,
            freezes: 0,
            thaws: 0,
            replications: 0,
            lock_wait_ns: 0,
        }
    }

    /// Whether some virtual-to-physical mapping currently allows writes.
    #[inline]
    pub fn has_writer(&self) -> bool {
        !self.writer_mask.is_empty()
    }

    /// Whether a copy exists on `module`.
    #[inline]
    pub fn has_copy_on(&self, module: usize) -> bool {
        self.copies_mask.contains(module)
    }

    /// The copy on `module`, if any.
    pub fn copy_on(&self, module: usize) -> Option<PhysPage> {
        self.copies
            .iter()
            .copied()
            .find(|pp| pp.module_id() == module)
    }

    /// Adds `pp` to the directory.
    ///
    /// # Panics
    ///
    /// Panics if the module already holds a copy — the protocol never
    /// allocates two copies of one Cpage on one module.
    pub fn add_copy(&mut self, pp: PhysPage) {
        assert!(
            !self.has_copy_on(pp.module_id()),
            "duplicate copy of a Cpage on module {}",
            pp.module_id()
        );
        self.copies_mask.insert(pp.module_id());
        self.copies.push(pp);
    }

    /// Removes the copy on `module` from the directory, returning it.
    ///
    /// # Panics
    ///
    /// Panics if no copy exists there.
    pub fn remove_copy_on(&mut self, module: usize) -> PhysPage {
        let idx = self
            .copies
            .iter()
            .position(|pp| pp.module_id() == module)
            .expect("removing a copy that does not exist");
        self.copies_mask.remove(module);
        self.copies.swap_remove(idx)
    }

    /// Checks the internal invariants that the protocol maintains; test
    /// and debug support.
    pub fn check_invariants(&self) -> std::result::Result<(), String> {
        let mask_count = self.copies_mask.count();
        if mask_count != self.copies.len() {
            return Err(format!(
                "directory mask has {mask_count} members but {} copies listed",
                self.copies.len()
            ));
        }
        for pp in &self.copies {
            if !self.has_copy_on(pp.module_id()) {
                return Err(format!("copy {pp:?} not in mask"));
            }
        }
        match self.state {
            CpState::Empty => {
                if !self.copies.is_empty() {
                    return Err("empty state with physical copies".into());
                }
                if self.has_writer() {
                    return Err("empty state with a writable mapping".into());
                }
            }
            CpState::Present1 => {
                if self.copies.len() != 1 {
                    return Err(format!("present1 with {} copies", self.copies.len()));
                }
                if self.has_writer() {
                    return Err("present1 with a writable mapping".into());
                }
            }
            CpState::PresentPlus => {
                if self.copies.len() < 2 {
                    return Err(format!("present+ with {} copies", self.copies.len()));
                }
                if self.has_writer() {
                    return Err("present+ with a writable mapping".into());
                }
            }
            CpState::Modified => {
                if self.copies.len() != 1 {
                    return Err(format!("modified with {} copies", self.copies.len()));
                }
            }
        }
        if self.frozen {
            if self.copies.len() != 1 {
                return Err("frozen page must have exactly one physical copy".into());
            }
            if self.state != CpState::Modified {
                return Err("frozen page must be in the modified state".into());
            }
        }
        Ok(())
    }
}

/// One coherent page: identity, metadata home node, and locked state.
pub struct Cpage {
    id: CpageId,
    /// The node homing this page's kernel metadata (for the cost model:
    /// the paper's fault times differ with kernel-data locality, §4).
    home: usize,
    inner: Mutex<CpageInner>,
    /// Lock-free slow-path flags: transfer-in-flight and directory-update
    /// epoch, letting a migration's block transfer overlap the targets'
    /// directory updates (see [`crate::coherent::signal`]).
    signal: crate::coherent::signal::AtomicSignal,
}

impl Cpage {
    /// The page's identity.
    pub fn id(&self) -> CpageId {
        self.id
    }

    /// The page's slow-path synchronization flags.
    pub fn signal(&self) -> &crate::coherent::signal::AtomicSignal {
        &self.signal
    }

    /// The node homing the page's metadata.
    pub fn home(&self) -> usize {
        self.home
    }

    /// Locks the page state unconditionally (non-fault paths and tests;
    /// the fault handler uses a polling try-lock so it can keep servicing
    /// IPIs).
    pub fn lock(&self) -> MutexGuard<'_, CpageInner> {
        self.inner.lock()
    }

    /// Attempts to lock the page state without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, CpageInner>> {
        self.inner.try_lock()
    }
}

/// The table of all coherent pages (§2.3: "the Cpage table is the list of
/// all coherent pages").
///
/// Append-only: ids are stable for the life of the kernel.
pub struct CpageTable {
    pages: RwLock<Vec<std::sync::Arc<Cpage>>>,
}

impl CpageTable {
    /// An empty table.
    pub fn new() -> Self {
        Self {
            pages: RwLock::new(Vec::new()),
        }
    }

    /// Allocates a fresh coherent page in the `empty` state, homed on
    /// `home`.
    pub fn alloc(&self, home: usize) -> std::sync::Arc<Cpage> {
        let mut pages = self.pages.write();
        let id = CpageId(pages.len() as u64);
        let page = std::sync::Arc::new(Cpage {
            id,
            home,
            inner: Mutex::new(CpageInner::new()),
            signal: crate::coherent::signal::AtomicSignal::new(),
        });
        pages.push(std::sync::Arc::clone(&page));
        page
    }

    /// Looks up a page by id.
    pub fn get(&self, id: CpageId) -> Option<std::sync::Arc<Cpage>> {
        self.pages.read().get(id.index()).cloned()
    }

    /// The number of coherent pages ever allocated.
    pub fn len(&self) -> usize {
        self.pages.read().len()
    }

    /// Whether no pages have been allocated.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all pages (for the post-mortem report).
    pub fn snapshot(&self) -> Vec<std::sync::Arc<Cpage>> {
        self.pages.read().clone()
    }
}

impl Default for CpageTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_get() {
        let t = CpageTable::new();
        assert!(t.is_empty());
        let a = t.alloc(0);
        let b = t.alloc(3);
        assert_eq!(a.id(), CpageId(0));
        assert_eq!(b.id(), CpageId(1));
        assert_eq!(b.home(), 3);
        assert_eq!(t.len(), 2);
        assert!(t.get(CpageId(1)).is_some());
        assert!(t.get(CpageId(5)).is_none());
    }

    #[test]
    fn directory_add_remove() {
        let t = CpageTable::new();
        let p = t.alloc(0);
        let mut g = p.lock();
        g.add_copy(PhysPage::new(2, 7));
        g.add_copy(PhysPage::new(5, 1));
        assert!(g.has_copy_on(2));
        assert!(g.has_copy_on(5));
        assert!(!g.has_copy_on(3));
        assert_eq!(g.copy_on(2), Some(PhysPage::new(2, 7)));
        let removed = g.remove_copy_on(2);
        assert_eq!(removed, PhysPage::new(2, 7));
        assert!(!g.has_copy_on(2));
        assert_eq!(g.copies.len(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate copy")]
    fn duplicate_copy_panics() {
        let t = CpageTable::new();
        let p = t.alloc(0);
        let mut g = p.lock();
        g.add_copy(PhysPage::new(2, 7));
        g.add_copy(PhysPage::new(2, 8));
    }

    #[test]
    fn invariants_by_state() {
        let t = CpageTable::new();
        let p = t.alloc(0);
        let mut g = p.lock();
        g.check_invariants().unwrap(); // empty

        g.add_copy(PhysPage::new(0, 0));
        g.state = CpState::Present1;
        g.check_invariants().unwrap();

        g.state = CpState::PresentPlus;
        assert!(g.check_invariants().is_err(), "present+ needs >= 2 copies");
        g.add_copy(PhysPage::new(1, 0));
        g.check_invariants().unwrap();

        g.state = CpState::Modified;
        assert!(
            g.check_invariants().is_err(),
            "modified needs exactly 1 copy"
        );
        g.remove_copy_on(1);
        g.writer_mask = ProcSet::single(0);
        g.check_invariants().unwrap();

        g.frozen = true;
        g.check_invariants().unwrap();
        g.state = CpState::Present1;
        g.writer_mask = ProcSet::empty();
        assert!(
            g.check_invariants().is_err(),
            "frozen page must be in modified state"
        );
    }
}
