//! Per-processor scratch pools for the fault slow path.
//!
//! The fault handler's steady state used to allocate on every trip: a
//! `Vec` of posted shootdown messages, an `Arc<CmapMsg>` per directive, a
//! `Vec` clone when draining the message queue, and a `Vec` of dying
//! frames during reclamation. None of those allocations carried state
//! across faults, so each [`UserCtx`] now owns one [`FaultScratch`] and
//! the slow path recycles its buffers instead — zero steady-state heap
//! traffic (pinned by the `alloc_free` regression test).
//!
//! Buffers are handed out with `mem::take` and restored afterwards, so a
//! re-entrant use (a fault nested inside a drain, say) degrades to a
//! plain allocation instead of corrupting the pool.
//!
//! [`UserCtx`]: crate::user::UserCtx

use std::sync::Arc;

use crate::coherent::cmap::{CmapMsg, Directive};
use crate::coherent::shootdown::ShootdownBatch;
use numa_machine::{PhysPage, ProcSet, Vpn};

/// Upper bound on pooled messages per processor. The steady state cycles
/// through two entries (the queue's retain-compaction holds the previous
/// message until the next post); the headroom covers multi-binding pages
/// and batched multi-page shootdowns without growing the pool forever.
const MSG_POOL_CAP: usize = 32;

/// One processor's reusable slow-path buffers.
#[derive(Default)]
pub(crate) struct FaultScratch {
    /// The in-flight shootdown batch (posted messages + accounting).
    pub(crate) batch: ShootdownBatch,
    /// Drain buffer for pending Cmap messages.
    pub(crate) drained: Vec<Arc<CmapMsg>>,
    /// Reclamation buffer for the frames a directory update frees.
    pub(crate) dying: Vec<PhysPage>,
    /// Recycled shootdown messages; see [`FaultScratch::alloc_msg`].
    msg_pool: Vec<Arc<CmapMsg>>,
}

impl FaultScratch {
    /// Produces a shootdown message, reusing a pooled one when possible.
    ///
    /// A pooled message is reusable exactly when this processor holds the
    /// only reference (`Arc::get_mut` succeeds): every target queue has
    /// compacted its clone away and no waiter still watches it, so the
    /// acknowledged message can be rewritten in place. Otherwise a fresh
    /// message is allocated and remembered for next time.
    pub(crate) fn alloc_msg(
        &mut self,
        vpn: Vpn,
        directive: Directive,
        targets: &ProcSet,
    ) -> Arc<CmapMsg> {
        for slot in &mut self.msg_pool {
            if let Some(msg) = Arc::get_mut(slot) {
                msg.reset(vpn, directive, targets);
                return Arc::clone(slot);
            }
        }
        let msg = CmapMsg::new(vpn, directive, targets);
        if self.msg_pool.len() < MSG_POOL_CAP {
            self.msg_pool.push(Arc::clone(&msg));
        }
        msg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_recycles_exclusive_messages() {
        let mut s = FaultScratch::default();
        let a = s.alloc_msg(1, Directive::Invalidate, &ProcSet::from_mask(0b10));
        let first = Arc::as_ptr(&a);
        // Still shared with the caller: a second request must not reuse it.
        let b = s.alloc_msg(2, Directive::RestrictToRead, &ProcSet::from_mask(0b100));
        assert_ne!(first, Arc::as_ptr(&b));
        drop(a);
        drop(b);
        // Both released: the next request rewrites a pooled message.
        let c = s.alloc_msg(3, Directive::Invalidate, &ProcSet::from_mask(0b1000));
        assert_eq!(first, Arc::as_ptr(&c));
        assert_eq!(c.vpn, 3);
        assert_eq!(c.pending(), ProcSet::from_mask(0b1000));
    }

    #[test]
    fn pool_is_bounded() {
        let mut s = FaultScratch::default();
        let held: Vec<_> = (0..2 * MSG_POOL_CAP as u64)
            .map(|i| s.alloc_msg(i, Directive::Invalidate, &ProcSet::single(0)))
            .collect();
        assert_eq!(s.msg_pool.len(), MSG_POOL_CAP);
        drop(held);
    }
}
