//! Lock-free slow-path synchronization flags.
//!
//! Two pieces of kernel state used to sit behind mutexes on the fault
//! slow path: the per-processor active-space set (taken twice per
//! suspend/resume and once per shootdown target) and the ordering between
//! a migration's block transfer and the targets' directory updates
//! (serialized by waiting for every acknowledgment before starting the
//! copy). Both are single-word facts, so both are replaced here with the
//! atomic flag-word idiom: one atomic per fact, `set_*`/`clear_*`
//! mutators returning the prior state, and a [`LoadedSignal`] snapshot
//! type for readers that must reason about one consistent observation.

use std::sync::atomic::{AtomicU64, Ordering};

/// A block transfer sourced from this page's directory copies is in
/// flight, overlapped with outstanding shootdown acknowledgments.
const TRANSFER: u64 = 1 << 0;

/// The page's directory (its `CpageInner`) is mid-update by a fault
/// handler that has already posted shootdown directives.
const UPDATE_EPOCH: u64 = 1 << 1;

/// Per-Cpage slow-path flags.
///
/// The flags let a migration start its block transfer *before* waiting
/// for shootdown acknowledgments (safe exactly when no awaited target
/// holds a writable translation — readers cannot tear the source frame),
/// so the transfer engine runs while remote processors update their
/// Pmaps, instead of after. Frame reclamation asserts against the
/// snapshot: a frame must never return to the free pool while a transfer
/// that might read it is marked in flight.
#[derive(Debug, Default)]
pub struct AtomicSignal {
    flags: AtomicU64,
}

/// One consistent observation of an [`AtomicSignal`].
#[derive(Clone, Copy, Debug)]
pub struct LoadedSignal {
    flags: u64,
}

impl AtomicSignal {
    /// A signal with no flags raised.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshots the flags.
    #[inline(always)]
    pub fn load(&self) -> LoadedSignal {
        LoadedSignal {
            flags: self.flags.load(Ordering::Acquire),
        }
    }

    /// Raises the transfer-in-flight flag; returns whether it was set.
    #[inline(always)]
    pub fn set_transfer(&self) -> bool {
        let prev = self.flags.fetch_or(TRANSFER, Ordering::AcqRel);
        (prev & TRANSFER) != 0
    }

    /// Clears the transfer-in-flight flag; returns whether it was set.
    #[inline(always)]
    pub fn clear_transfer(&self) -> bool {
        let prev = self.flags.fetch_and(!TRANSFER, Ordering::AcqRel);
        (prev & TRANSFER) != 0
    }

    /// Raises the directory-update epoch flag; returns whether it was set.
    #[inline(always)]
    pub fn set_epoch(&self) -> bool {
        let prev = self.flags.fetch_or(UPDATE_EPOCH, Ordering::AcqRel);
        (prev & UPDATE_EPOCH) != 0
    }

    /// Clears the directory-update epoch flag; returns whether it was set.
    #[inline(always)]
    pub fn clear_epoch(&self) -> bool {
        let prev = self.flags.fetch_and(!UPDATE_EPOCH, Ordering::AcqRel);
        (prev & UPDATE_EPOCH) != 0
    }
}

impl LoadedSignal {
    /// Whether any flag is raised.
    #[inline(always)]
    pub fn has_action(&self) -> bool {
        self.flags != 0
    }

    /// Whether a block transfer is in flight.
    #[inline(always)]
    pub fn transfer(&self) -> bool {
        (self.flags & TRANSFER) != 0
    }

    /// Whether the directory is mid-update.
    #[inline(always)]
    pub fn epoch(&self) -> bool {
        (self.flags & UPDATE_EPOCH) != 0
    }
}

/// The lock-free per-processor active-space word.
///
/// The simulator binds at most one thread — and therefore at most one
/// *current* address space — to a processor, so the "set of active
/// spaces" always has zero or one element. It is stored as `asid + 1` in
/// a single atomic word (0 = none active), replacing a mutex-protected
/// hash set that was locked twice per suspend/resume and once per
/// shootdown target.
///
/// Orderings carry the protocol's Dekker-style handshake (§3.1): a
/// target *activates, then drains* its message queue; an initiator
/// *posts, then checks* activity. Whichever side's queue-mutex critical
/// section runs second sees the other's effect, provided the activity
/// word itself is sequentially consistent — if the target's drain ran
/// before the post, the queue mutex orders the target's earlier
/// `set_active` before the initiator's `is_active` load, so the
/// initiator sees the target as active and interrupts it; otherwise the
/// drain runs after the post and finds the message in the queue. Either
/// way the directive is never missed.
#[derive(Debug, Default)]
pub struct ActiveSpace {
    word: AtomicU64,
}

impl ActiveSpace {
    /// No space active.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks `asid` as the processor's active space.
    #[inline]
    pub fn set_active(&self, asid: u32) {
        self.word.store(u64::from(asid) + 1, Ordering::SeqCst);
    }

    /// Deactivates `asid` if it is the processor's active space.
    /// Idempotent: a suspended thread's teardown deactivates again, and
    /// the second call must be a no-op (as removal from the old hash set
    /// was). Load-then-store suffices because only the processor's own
    /// thread writes its slot.
    #[inline]
    pub fn clear_active(&self, asid: u32) {
        if self.word.load(Ordering::SeqCst) == u64::from(asid) + 1 {
            self.word.store(0, Ordering::SeqCst);
        }
    }

    /// Whether `asid` is the processor's active space.
    #[inline]
    pub fn is_active(&self, asid: u32) -> bool {
        self.word.load(Ordering::SeqCst) == u64::from(asid) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_roundtrip() {
        let s = AtomicSignal::new();
        assert!(!s.load().has_action());
        assert!(!s.set_transfer(), "was clear");
        assert!(s.set_transfer(), "now set");
        assert!(s.load().transfer());
        assert!(!s.load().epoch());
        assert!(!s.set_epoch());
        assert!(s.load().epoch());
        assert!(s.clear_transfer());
        assert!(!s.load().transfer());
        assert!(s.load().epoch(), "clearing one flag leaves the other");
        assert!(s.clear_epoch());
        assert!(!s.load().has_action());
    }

    #[test]
    fn active_space_single_slot() {
        let a = ActiveSpace::new();
        assert!(!a.is_active(0));
        a.set_active(7);
        assert!(a.is_active(7));
        assert!(!a.is_active(0), "asid 0 distinct from none");
        a.clear_active(7);
        assert!(!a.is_active(7));
        a.set_active(0);
        assert!(a.is_active(0));
        a.clear_active(0);
    }
}
