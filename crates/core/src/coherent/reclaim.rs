//! Frame reclamation: unmapping, object teardown, and replica eviction
//! under memory pressure.
//!
//! The paper's kernel ran experiments that fit in the Butterfly's 4 MB
//! nodes and "issues such as ... long-term storage have received only
//! cursory attention"; there is no paging to disk. But replication
//! *consumes* frames, so a production kernel needs a way to give them
//! back: explicit unmapping, memory-object destruction, and — when a
//! module runs out of frames — eviction of replicas (a replica is pure
//! cache: dropping it loses nothing, the next access re-faults).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use numa_machine::{AccessKind, ProcSet, Va};
use parking_lot::MutexGuard;
use platinum_trace::EventKind;

use crate::coherent::cmap::Directive;
use crate::coherent::cpage::{CpState, CpageInner};
use crate::error::{KernelError, Result};
use crate::ids::{CpageId, ObjId};
use crate::kernel::Kernel;
use crate::user::UserCtx;
use crate::vm::object::MemoryObject;

/// Round-robin clock hands for replica eviction — one per node, so
/// reclaim scans on different modules never contend on one cache line
/// and each module's hand sweeps its own frames fairly.
pub(crate) struct ReclaimState {
    hands: Box<[AtomicUsize]>,
}

impl ReclaimState {
    pub(crate) fn new(nodes: usize) -> Self {
        Self {
            hands: (0..nodes.max(1)).map(|_| AtomicUsize::new(0)).collect(),
        }
    }
}

impl Kernel {
    /// Unbinds the region starting at `va` from `ctx`'s address space:
    /// removes the Cmap entries, invalidates every processor's
    /// translations through the shootdown mechanism, and drops the
    /// bindings from the coherent pages. The pages themselves (and their
    /// frames) survive — they belong to the memory object, which may be
    /// bound elsewhere.
    ///
    /// Returns [`KernelError::Access`] when no region starts at `va`.
    ///
    /// The whole region is shot down as one [coalesced batch]: every
    /// page's invalidation directive is posted (with the same per-page
    /// charges, records, and doorbell interrupts as a page-at-a-time
    /// teardown, so the observable behaviour is identical), and the
    /// acknowledgment wait runs once at the end instead of once per page.
    ///
    /// [coalesced batch]: crate::coherent::shootdown::ShootdownBatch
    pub fn unmap(&self, ctx: &mut UserCtx, va: Va) -> Result<()> {
        let space = Arc::clone(ctx.space());
        let region = space.unmap_region(va).ok_or(KernelError::Access(
            numa_machine::AccessErr::NoTranslation(va),
        ))?;
        let me = ctx.core.id();
        let mut items = Vec::new();
        for off in 0..region.pages {
            let vpn = region.vpn_start + off as u64;
            let Some(entry) = space.cmap().remove(vpn) else {
                continue; // never touched in this space
            };
            let Some(cpage) = self.cpages.get(entry.cpage) else {
                continue;
            };
            items.push((vpn, entry, cpage));
        }
        // Take the page locks in page-id order — two concurrent
        // multi-page initiators must not acquire in conflicting orders —
        // but process in region order, which is what a page-at-a-time
        // teardown charges. Every guard is held until the flush, so no
        // fault can observe the half-torn region.
        let mut order: Vec<usize> = (0..items.len()).collect();
        order.sort_unstable_by_key(|&i| items[i].2.id());
        let mut guards: Vec<Option<MutexGuard<CpageInner>>> = Vec::new();
        guards.resize_with(items.len(), || None);
        for &i in &order {
            guards[i] = Some(self.lock_cpage(ctx, &items[i].2));
        }
        let mut batch = ctx.take_batch();
        for (i, (vpn, entry, cpage)) in items.iter().enumerate() {
            let g = guards[i].as_mut().expect("locked above");
            g.bindings.retain(|&(a, v)| !(a == space.id() && v == *vpn));
            // Invalidate every translation installed through this
            // binding. Message-based, like any mapping restriction; the
            // directive is posted to this space's queue so only this
            // space's translations die.
            let targets = entry.refs().without(me);
            if !targets.is_empty() {
                self.batch_post_space(
                    ctx,
                    &mut batch,
                    cpage.id(),
                    &space,
                    *vpn,
                    Directive::Invalidate,
                    &targets,
                );
            }
            if ctx.pmap.remove(space.id(), *vpn).is_some() {
                let asid = space.asid();
                ctx.core.atc().invalidate(asid, *vpn);
            }
            g.writer_mask.clear();
            g.remote_map_mask.clear();
            self.charge_refs(ctx, space.home(), self.config().costs.post_msg_refs);
        }
        self.batch_flush(ctx, &mut batch);
        ctx.put_batch(batch);
        Ok(())
    }

    /// Destroys a memory object: fails with [`KernelError::ObjectInUse`]
    /// while any binding remains; otherwise frees every physical frame of
    /// every coherent page the object ever created and resets the pages
    /// to `empty`.
    pub fn destroy_object(&self, ctx: &mut UserCtx, object: &MemoryObject) -> Result<()> {
        let _: ObjId = object.id();
        // First pass: refuse if any page is still bound anywhere.
        for (_, cpage_id) in object.touched_cpages() {
            if let Some(cpage) = self.cpages.get(cpage_id) {
                let g = self.lock_cpage(ctx, &cpage);
                if !g.bindings.is_empty() {
                    return Err(KernelError::ObjectInUse(object.id()));
                }
            }
        }
        // Second pass: release the frames.
        for (_, cpage_id) in object.touched_cpages() {
            let Some(cpage) = self.cpages.get(cpage_id) else {
                continue;
            };
            let mut g = self.lock_cpage(ctx, &cpage);
            let copies: Vec<_> = g.copies.clone();
            for pp in copies {
                g.remove_copy_on(pp.module_id());
                ctx.core.charge_kernel_ref(pp.module_id(), AccessKind::Read);
                ctx.core
                    .charge_kernel_ref(pp.module_id(), AccessKind::Write);
                self.machine()
                    .module(pp.module_id())
                    .free_frame(pp.frame_id());
                self.record(
                    ctx.core.id(),
                    ctx.core.vtime(),
                    EventKind::FrameFree,
                    0,
                    cpage_id.0,
                    pp.module_id() as u64,
                );
            }
            g.state = CpState::Empty;
            g.writer_mask.clear();
            g.remote_map_mask.clear();
            g.frozen = false;
            debug_assert!(g.check_invariants().is_ok());
        }
        Ok(())
    }

    /// Evicts one replica from `node` to free a frame, if any coherent
    /// page other than `exclude` has a spare copy there. A replica is
    /// pure cache, so eviction is always safe: translations to it are
    /// invalidated and the next access re-faults to another copy.
    ///
    /// Returns whether a frame was freed.
    pub(crate) fn reclaim_replica(&self, ctx: &mut UserCtx, node: usize, exclude: CpageId) -> bool {
        let total = self.cpages.len();
        if total == 0 {
            return false;
        }
        let start = self.reclaim.hands[node].fetch_add(1, Ordering::Relaxed);
        for i in 0..total {
            let idx = (start + i) % total;
            let Some(cpage) = self.cpages.get(CpageId(idx as u64)) else {
                continue;
            };
            if cpage.id() == exclude {
                continue;
            }
            // try_lock only: the caller may hold another page's lock, and
            // blocking here could deadlock two reclaiming processors.
            let Some(mut g) = cpage.try_lock() else {
                continue;
            };
            if g.frozen || g.copies.len() < 2 || !g.has_copy_on(node) {
                continue;
            }
            debug_assert_eq!(g.state, CpState::PresentPlus);
            let victim = ProcSet::single(node);
            let filter = victim.union(&g.remote_map_mask);
            let id = cpage.id();
            self.shootdown(
                ctx,
                id,
                &g,
                Directive::InvalidateModules(victim.clone()),
                &filter,
            );
            // Our own translation may point at the dying copy.
            self.drop_own_mapping_into(ctx, &g, &victim);
            let pp = g.remove_copy_on(node);
            ctx.core.charge_kernel_ref(node, AccessKind::Read);
            ctx.core.charge_kernel_ref(node, AccessKind::Write);
            self.machine().module(node).free_frame(pp.frame_id());
            if g.copies.len() == 1 {
                g.state = CpState::Present1;
            }
            let now = ctx.core.vtime();
            self.record(
                ctx.core.id(),
                now,
                EventKind::FrameFree,
                0,
                id.0,
                node as u64,
            );
            self.record(
                ctx.core.id(),
                now,
                EventKind::ReplicaEvict,
                0,
                id.0,
                node as u64,
            );
            debug_assert!(g.check_invariants().is_ok(), "{:?}", g.check_invariants());
            return true;
        }
        false
    }

    /// Removes the calling processor's own translations that point into
    /// the module set (the shootdown mechanism excludes the initiator).
    pub(crate) fn drop_own_mapping_into(
        &self,
        ctx: &mut UserCtx,
        g: &crate::coherent::cpage::CpageInner,
        modules: &ProcSet,
    ) {
        let me_space = ctx.space().id();
        let asid = ctx.space().asid();
        for &(as_id, vpn) in &g.bindings {
            if as_id != me_space {
                continue;
            }
            let points_in = ctx
                .pmap
                .lookup(as_id, vpn)
                .map(|e| modules.contains(e.pp.module_id()))
                .unwrap_or(false);
            if points_in {
                ctx.pmap.remove(as_id, vpn);
                ctx.core.atc().invalidate(asid, vpn);
                if let Ok(space) = self.space(as_id) {
                    if let Some(e) = space.cmap().entry(vpn) {
                        e.clear_ref(ctx.core.id());
                    }
                }
            }
        }
    }
}
