//! Placement policies: where pages live, when they move, when they freeze.
//!
//! "PLATINUM is designed to support experimentation with a family of
//! policies" (§4.2). The [`PlacementPolicy`] trait is that seam: it decides
//! how a coherency miss is serviced ([`PlacementPolicy::decide`]) and where
//! a first touch places a fresh page ([`PlacementPolicy::place_first_touch`]).
//! The paper's interim policy is [`PlatinumPolicy`]; the Figure 1 baselines
//! are [`MigrateOnly`] (single-copy chasing), [`ReplicateOnly`] (read
//! replication without migration), [`LocalFirstTouch`] (static placement on
//! the first toucher's module), and [`RemoteAlways`] (every page deliberately
//! homed off-node — the all-remote floor). [`NeverReplicate`] (the historical
//! name for static placement), [`AlwaysReplicate`] (coherency at any price),
//! and [`AceStyle`] (Bolosky et al.'s IBM ACE policy discussed in §8) remain
//! for the existing harnesses.

use crate::coherent::cpage::CpState;

/// Everything a policy may consult when deciding how to service a fault.
///
/// The paper's interim policy uses "a minimal history consisting of a
/// timestamp for the most recent invalidation"; other members support the
/// baseline policies.
#[derive(Clone, Copy, Debug)]
pub struct FaultInfo {
    /// The faulting processor's virtual time, ns.
    pub now: u64,
    /// Virtual time of the most recent invalidation by the protocol.
    pub last_invalidation: Option<u64>,
    /// Whether the page is currently frozen.
    pub frozen: bool,
    /// How many times the page has migrated.
    pub migrations: u32,
    /// The page's protocol state.
    pub state: CpState,
    /// Whether the fault wants write access.
    pub write: bool,
}

/// What to do about a miss with no usable local copy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Make (or, for writes, move to) a local physical copy.
    Replicate,
    /// Move the page's single copy to the faulting processor's module,
    /// even for a read — the page chases its referents. Never creates a
    /// second copy and never freezes.
    Migrate,
    /// Map an existing remote copy instead — "using remote memory access
    /// effectively disables caching on a block-by-block basis" (§1).
    RemoteMap {
        /// Whether the page should also be marked frozen (enrolled with
        /// the defrost daemon). Freezing only applies when the decision
        /// was made because of write-sharing interference.
        freeze: bool,
    },
}

/// A page placement policy: how coherency misses are serviced and where
/// first touches land.
pub trait PlacementPolicy: Send + Sync {
    /// Decides how to service a miss that has no usable local copy.
    fn decide(&self, info: &FaultInfo) -> FaultAction;

    /// Picks the module that receives a page's very first physical copy.
    /// `faulter` is the touching processor's module, `vpn` the page's
    /// virtual page number, and `nodes` the machine size. The default —
    /// used by every policy in the paper — is local first touch.
    fn place_first_touch(&self, faulter: usize, _vpn: u64, _nodes: usize) -> usize {
        faulter
    }

    /// Whether a *frozen* page whose freeze window has expired may be
    /// thawed directly by an attempted access, rather than waiting for
    /// the defrost daemon. §4.2 describes both variants and reports no
    /// significant difference between them.
    fn thaw_on_access(&self) -> bool {
        false
    }

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Historical name for [`PlacementPolicy`], kept so existing call sites
/// (`Kernel::with_policy(Box<dyn ReplicationPolicy>)`, harness helpers)
/// keep compiling unchanged.
pub use self::PlacementPolicy as ReplicationPolicy;

/// The paper's interim policy (§4.2): replicate or migrate if the most
/// recent protocol invalidation is at least `t1` in the past, otherwise
/// freeze the page.
#[derive(Clone, Debug)]
pub struct PlatinumPolicy {
    /// The interference window, ns. The paper sets 10 ms and reports
    /// insensitivity from 10 ms up to about 100 ms.
    pub t1_ns: u64,
    /// Which post-freeze variant to use (§4.2): `false` keeps creating
    /// remote mappings until the defrost daemon thaws the page (the
    /// paper's default); `true` lets an access replicate-and-thaw once
    /// `t1` has expired.
    pub thaw_on_access: bool,
}

impl PlatinumPolicy {
    /// The paper's configuration: t1 = 10 ms, defrost-only thawing.
    pub fn paper_default() -> Self {
        Self {
            t1_ns: 10_000_000,
            thaw_on_access: false,
        }
    }
}

impl Default for PlatinumPolicy {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl PlacementPolicy for PlatinumPolicy {
    fn decide(&self, info: &FaultInfo) -> FaultAction {
        let recently_invalidated = match info.last_invalidation {
            Some(t) => info.now.saturating_sub(t) < self.t1_ns,
            None => false,
        };
        if info.frozen {
            if self.thaw_on_access && !recently_invalidated {
                // Alternative policy: the access thaws the page.
                return FaultAction::Replicate;
            }
            // Default policy: remain frozen until the defrost daemon
            // explicitly thaws the page.
            return FaultAction::RemoteMap { freeze: true };
        }
        if recently_invalidated {
            // Active write-sharing: running the protocol would cost more
            // than remote access. Freeze.
            FaultAction::RemoteMap { freeze: true }
        } else {
            FaultAction::Replicate
        }
    }

    fn thaw_on_access(&self) -> bool {
        self.thaw_on_access
    }

    fn name(&self) -> &'static str {
        "platinum"
    }
}

/// Single-copy migration: every miss moves the page's one copy to the
/// faulting module, reads included. No replication, no freezing — the
/// page ping-pongs between sharers, paying a block transfer plus a
/// shootdown per move. One of the Figure 1 baselines.
#[derive(Clone, Copy, Debug, Default)]
pub struct MigrateOnly;

impl PlacementPolicy for MigrateOnly {
    fn decide(&self, _info: &FaultInfo) -> FaultAction {
        FaultAction::Migrate
    }

    fn name(&self) -> &'static str {
        "migrate-only"
    }
}

/// Read replication without migration: read misses replicate freely, but a
/// write miss never moves the page — the writer maps the existing copy
/// remotely. (Writes to widely-read pages still collapse the copy set:
/// that is the coherency protocol, not the policy.)
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplicateOnly;

impl PlacementPolicy for ReplicateOnly {
    fn decide(&self, info: &FaultInfo) -> FaultAction {
        if info.write {
            FaultAction::RemoteMap { freeze: false }
        } else {
            FaultAction::Replicate
        }
    }

    fn name(&self) -> &'static str {
        "replicate-only"
    }
}

/// Static placement, local first touch: a page lives wherever it was first
/// touched and never moves; later sharers map it remotely. This is the
/// behaviour a carefully-written Uniform System program gets from static
/// data scattering (the "local" memory curve of Figure 1).
#[derive(Clone, Copy, Debug, Default)]
pub struct LocalFirstTouch;

impl PlacementPolicy for LocalFirstTouch {
    fn decide(&self, _info: &FaultInfo) -> FaultAction {
        FaultAction::RemoteMap { freeze: false }
    }

    fn name(&self) -> &'static str {
        "local-first-touch"
    }
}

/// The all-remote floor: first touches are deliberately homed on a module
/// *other than* the toucher's, and pages never move, so essentially every
/// reference is a remote reference (Figure 1's "remote" curve — the cost
/// of ignoring locality altogether).
#[derive(Clone, Copy, Debug, Default)]
pub struct RemoteAlways;

impl PlacementPolicy for RemoteAlways {
    fn decide(&self, _info: &FaultInfo) -> FaultAction {
        FaultAction::RemoteMap { freeze: false }
    }

    fn place_first_touch(&self, faulter: usize, vpn: u64, nodes: usize) -> usize {
        if nodes <= 1 {
            return faulter;
        }
        // Spread over every module except the faulter's own.
        (faulter + 1 + (vpn as usize % (nodes - 1))) % nodes
    }

    fn name(&self) -> &'static str {
        "remote-always"
    }
}

/// Static placement: never replicate or migrate; always map the existing
/// copy remotely. First touch decides where a page lives.
///
/// The historical spelling of [`LocalFirstTouch`], kept for the existing
/// harnesses and figures.
#[derive(Clone, Copy, Debug, Default)]
pub struct NeverReplicate;

impl PlacementPolicy for NeverReplicate {
    fn decide(&self, _info: &FaultInfo) -> FaultAction {
        FaultAction::RemoteMap { freeze: false }
    }

    fn name(&self) -> &'static str {
        "never-replicate"
    }
}

/// Always replicate/migrate, regardless of interference history — the
/// behaviour of software caching without the remote-access escape hatch
/// (Li's shared virtual memory, discussed in §1).
#[derive(Clone, Copy, Debug, Default)]
pub struct AlwaysReplicate;

impl PlacementPolicy for AlwaysReplicate {
    fn decide(&self, _info: &FaultInfo) -> FaultAction {
        FaultAction::Replicate
    }

    fn name(&self) -> &'static str {
        "always-replicate"
    }
}

/// Bolosky et al.'s ACE policy (§8): writable pages are never replicated
/// and may migrate only `max_migrations` times before being frozen in
/// place; read-only pages replicate freely.
#[derive(Clone, Copy, Debug)]
pub struct AceStyle {
    /// Migrations permitted before the page is frozen for good.
    pub max_migrations: u32,
}

impl Default for AceStyle {
    fn default() -> Self {
        Self { max_migrations: 2 }
    }
}

impl PlacementPolicy for AceStyle {
    fn decide(&self, info: &FaultInfo) -> FaultAction {
        if info.write || info.state == CpState::Modified {
            // A writable page: migrate a bounded number of times, then
            // freeze in place permanently (no defrost in ACE).
            if info.frozen || info.migrations >= self.max_migrations {
                FaultAction::RemoteMap { freeze: true }
            } else {
                FaultAction::Replicate
            }
        } else {
            FaultAction::Replicate
        }
    }

    fn name(&self) -> &'static str {
        "ace-style"
    }
}

/// Which placement policy to boot the kernel with: a nameable,
/// `Copy`-able selector over the policy family, used by the harnesses,
/// the benchmark binaries, `KernelConfig`, and `SimBuilder`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// The paper's interim policy (t1 = 10 ms, defrost-only thawing).
    Platinum,
    /// The §4.2 alternative: accesses may thaw expired frozen pages.
    PlatinumThawOnAccess,
    /// Single-copy migration, reads included (Figure 1 baseline).
    MigrateOnly,
    /// Read replication without migration (Figure 1 baseline).
    ReplicateOnly,
    /// Static placement on the first toucher's module (Figure 1 "local").
    LocalFirstTouch,
    /// Deliberately off-node placement, no movement (Figure 1 "remote").
    RemoteAlways,
    /// Static placement (the historical Uniform System baseline name).
    NeverReplicate,
    /// Replicate/migrate unconditionally (software-caching baseline).
    AlwaysReplicate,
    /// Bolosky et al.'s ACE policy (§8).
    AceStyle,
}

impl PolicyKind {
    /// The five-policy Figure 1 comparison set, in the order the paper
    /// plots them: the coherent policy, its two mechanisms in isolation,
    /// then the two static placements.
    pub const FIG1_SET: [PolicyKind; 5] = [
        PolicyKind::Platinum,
        PolicyKind::MigrateOnly,
        PolicyKind::ReplicateOnly,
        PolicyKind::LocalFirstTouch,
        PolicyKind::RemoteAlways,
    ];

    /// Instantiates the policy.
    pub fn build(self) -> Box<dyn PlacementPolicy> {
        match self {
            PolicyKind::Platinum => Box::new(PlatinumPolicy::paper_default()),
            PolicyKind::PlatinumThawOnAccess => Box::new(PlatinumPolicy {
                t1_ns: 10_000_000,
                thaw_on_access: true,
            }),
            PolicyKind::MigrateOnly => Box::new(MigrateOnly),
            PolicyKind::ReplicateOnly => Box::new(ReplicateOnly),
            PolicyKind::LocalFirstTouch => Box::new(LocalFirstTouch),
            PolicyKind::RemoteAlways => Box::new(RemoteAlways),
            PolicyKind::NeverReplicate => Box::new(NeverReplicate),
            PolicyKind::AlwaysReplicate => Box::new(AlwaysReplicate),
            PolicyKind::AceStyle => Box::new(AceStyle::default()),
        }
    }

    /// Harness display name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Platinum => "PLATINUM",
            PolicyKind::PlatinumThawOnAccess => "PLATINUM (thaw-on-access)",
            PolicyKind::MigrateOnly => "migrate-only",
            PolicyKind::ReplicateOnly => "replicate-only",
            PolicyKind::LocalFirstTouch => "local-first-touch",
            PolicyKind::RemoteAlways => "remote-always",
            PolicyKind::NeverReplicate => "static placement",
            PolicyKind::AlwaysReplicate => "always-replicate",
            PolicyKind::AceStyle => "ACE-style",
        }
    }
}

impl std::str::FromStr for PolicyKind {
    type Err = String;

    /// Parses the kebab-case selector used by the benchmark binaries.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "platinum" => Ok(PolicyKind::Platinum),
            "platinum-thaw" | "thaw-on-access" => Ok(PolicyKind::PlatinumThawOnAccess),
            "migrate-only" => Ok(PolicyKind::MigrateOnly),
            "replicate-only" => Ok(PolicyKind::ReplicateOnly),
            "local-first-touch" | "local" => Ok(PolicyKind::LocalFirstTouch),
            "remote-always" | "remote" => Ok(PolicyKind::RemoteAlways),
            "never-replicate" => Ok(PolicyKind::NeverReplicate),
            "always-replicate" => Ok(PolicyKind::AlwaysReplicate),
            "ace-style" | "ace" => Ok(PolicyKind::AceStyle),
            other => Err(format!("unknown policy kind: {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(now: u64, last_inval: Option<u64>, frozen: bool) -> FaultInfo {
        FaultInfo {
            now,
            last_invalidation: last_inval,
            frozen,
            migrations: 0,
            state: CpState::Modified,
            write: false,
        }
    }

    #[test]
    fn platinum_replicates_quiet_pages() {
        let p = PlatinumPolicy::paper_default();
        assert_eq!(
            p.decide(&info(50_000_000, None, false)),
            FaultAction::Replicate
        );
        // Invalidation 20 ms ago: outside t1 = 10 ms.
        assert_eq!(
            p.decide(&info(50_000_000, Some(30_000_000), false)),
            FaultAction::Replicate
        );
    }

    #[test]
    fn platinum_freezes_interfering_pages() {
        let p = PlatinumPolicy::paper_default();
        // Invalidation 2 ms ago: inside t1.
        assert_eq!(
            p.decide(&info(50_000_000, Some(48_000_000), false)),
            FaultAction::RemoteMap { freeze: true }
        );
    }

    #[test]
    fn platinum_default_stays_frozen_until_defrost() {
        let p = PlatinumPolicy::paper_default();
        // Frozen long ago, window long expired — still remote-mapped.
        assert_eq!(
            p.decide(&info(500_000_000, Some(10_000_000), true)),
            FaultAction::RemoteMap { freeze: true }
        );
        assert!(!p.thaw_on_access());
    }

    #[test]
    fn platinum_thaw_on_access_variant() {
        let p = PlatinumPolicy {
            t1_ns: 10_000_000,
            thaw_on_access: true,
        };
        // Window expired: the access may thaw.
        assert_eq!(
            p.decide(&info(500_000_000, Some(10_000_000), true)),
            FaultAction::Replicate
        );
        // Window not expired: stays frozen.
        assert_eq!(
            p.decide(&info(15_000_000, Some(10_000_000), true)),
            FaultAction::RemoteMap { freeze: true }
        );
    }

    #[test]
    fn never_and_always() {
        assert_eq!(
            NeverReplicate.decide(&info(0, None, false)),
            FaultAction::RemoteMap { freeze: false }
        );
        assert_eq!(
            AlwaysReplicate.decide(&info(0, Some(0), false)),
            FaultAction::Replicate
        );
    }

    #[test]
    fn migrate_only_always_migrates() {
        let p = MigrateOnly;
        assert_eq!(p.decide(&info(0, None, false)), FaultAction::Migrate);
        let mut i = info(50_000_000, Some(49_000_000), true);
        i.write = true;
        // Even frozen, recently-invalidated pages migrate (and thaw).
        assert_eq!(p.decide(&i), FaultAction::Migrate);
        // First touches stay local.
        assert_eq!(p.place_first_touch(3, 17, 8), 3);
    }

    #[test]
    fn replicate_only_never_moves_for_writes() {
        let p = ReplicateOnly;
        assert_eq!(p.decide(&info(0, None, false)), FaultAction::Replicate);
        let mut i = info(0, None, false);
        i.write = true;
        assert_eq!(p.decide(&i), FaultAction::RemoteMap { freeze: false });
    }

    #[test]
    fn local_first_touch_is_static() {
        let p = LocalFirstTouch;
        let mut i = info(0, None, false);
        assert_eq!(p.decide(&i), FaultAction::RemoteMap { freeze: false });
        i.write = true;
        assert_eq!(p.decide(&i), FaultAction::RemoteMap { freeze: false });
        assert_eq!(p.place_first_touch(5, 99, 8), 5);
    }

    #[test]
    fn remote_always_places_off_node() {
        let p = RemoteAlways;
        for faulter in 0..8 {
            for vpn in 0..64u64 {
                let home = p.place_first_touch(faulter, vpn, 8);
                assert_ne!(home, faulter, "vpn {vpn} landed on the faulter");
                assert!(home < 8);
            }
        }
        // Uniprocessor degenerate case: nowhere else to go.
        assert_eq!(p.place_first_touch(0, 7, 1), 0);
        assert_eq!(
            p.decide(&info(0, None, false)),
            FaultAction::RemoteMap { freeze: false }
        );
    }

    #[test]
    fn ace_bounds_migrations() {
        let p = AceStyle { max_migrations: 2 };
        let mut i = info(0, None, false);
        i.write = true;
        i.migrations = 0;
        assert_eq!(p.decide(&i), FaultAction::Replicate);
        i.migrations = 2;
        assert_eq!(p.decide(&i), FaultAction::RemoteMap { freeze: true });
        // Read-only data replicates freely.
        i.write = false;
        i.state = CpState::Present1;
        i.migrations = 100;
        assert_eq!(p.decide(&i), FaultAction::Replicate);
    }

    #[test]
    fn kind_round_trips_through_parse() {
        for kind in [
            PolicyKind::Platinum,
            PolicyKind::MigrateOnly,
            PolicyKind::ReplicateOnly,
            PolicyKind::LocalFirstTouch,
            PolicyKind::RemoteAlways,
            PolicyKind::NeverReplicate,
            PolicyKind::AlwaysReplicate,
        ] {
            let spelled = kind.build().name().to_string();
            let parsed: PolicyKind = spelled.parse().expect("kebab name parses");
            // Parsing the built policy's name lands on an equivalent kind
            // (NeverReplicate and LocalFirstTouch share behaviour but keep
            // distinct spellings).
            assert_eq!(parsed.build().name(), kind.build().name());
        }
        assert!("no-such-policy".parse::<PolicyKind>().is_err());
    }

    #[test]
    fn fig1_set_is_five_distinct_policies() {
        let names: std::collections::BTreeSet<&str> =
            PolicyKind::FIG1_SET.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 5);
    }
}
