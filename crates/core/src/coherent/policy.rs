//! Replication policies: when to replicate/migrate and when to freeze.
//!
//! "PLATINUM is designed to support experimentation with a family of
//! policies" (§4.2). The [`ReplicationPolicy`] trait is that seam. The
//! paper's interim policy is [`PlatinumPolicy`]; the baselines used by the
//! benchmark harness are [`NeverReplicate`] (static placement, standing in
//! for the Uniform System comparator of Figure 1), [`AlwaysReplicate`]
//! (coherency at any price, the behaviour of pure software caching), and
//! [`AceStyle`] (Bolosky et al.'s IBM ACE policy discussed in §8: never
//! replicate writable pages, migrate a bounded number of times, then
//! freeze).

use crate::coherent::cpage::CpState;

/// Everything a policy may consult when deciding how to service a fault.
///
/// The paper's interim policy uses "a minimal history consisting of a
/// timestamp for the most recent invalidation"; other members support the
/// baseline policies.
#[derive(Clone, Copy, Debug)]
pub struct FaultInfo {
    /// The faulting processor's virtual time, ns.
    pub now: u64,
    /// Virtual time of the most recent invalidation by the protocol.
    pub last_invalidation: Option<u64>,
    /// Whether the page is currently frozen.
    pub frozen: bool,
    /// How many times the page has migrated.
    pub migrations: u32,
    /// The page's protocol state.
    pub state: CpState,
    /// Whether the fault wants write access.
    pub write: bool,
}

/// What to do about a miss with no usable local copy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Make (or, for writes, move to) a local physical copy.
    Replicate,
    /// Map an existing remote copy instead — "using remote memory access
    /// effectively disables caching on a block-by-block basis" (§1).
    RemoteMap {
        /// Whether the page should also be marked frozen (enrolled with
        /// the defrost daemon). Freezing only applies when the decision
        /// was made because of write-sharing interference.
        freeze: bool,
    },
}

/// A replication/migration policy.
pub trait ReplicationPolicy: Send + Sync {
    /// Decides how to service a miss that has no usable local copy.
    fn decide(&self, info: &FaultInfo) -> FaultAction;

    /// Whether a *frozen* page whose freeze window has expired may be
    /// thawed directly by an attempted access, rather than waiting for
    /// the defrost daemon. §4.2 describes both variants and reports no
    /// significant difference between them.
    fn thaw_on_access(&self) -> bool {
        false
    }

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// The paper's interim policy (§4.2): replicate or migrate if the most
/// recent protocol invalidation is at least `t1` in the past, otherwise
/// freeze the page.
#[derive(Clone, Debug)]
pub struct PlatinumPolicy {
    /// The interference window, ns. The paper sets 10 ms and reports
    /// insensitivity from 10 ms up to about 100 ms.
    pub t1_ns: u64,
    /// Which post-freeze variant to use (§4.2): `false` keeps creating
    /// remote mappings until the defrost daemon thaws the page (the
    /// paper's default); `true` lets an access replicate-and-thaw once
    /// `t1` has expired.
    pub thaw_on_access: bool,
}

impl PlatinumPolicy {
    /// The paper's configuration: t1 = 10 ms, defrost-only thawing.
    pub fn paper_default() -> Self {
        Self {
            t1_ns: 10_000_000,
            thaw_on_access: false,
        }
    }
}

impl Default for PlatinumPolicy {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl ReplicationPolicy for PlatinumPolicy {
    fn decide(&self, info: &FaultInfo) -> FaultAction {
        let recently_invalidated = match info.last_invalidation {
            Some(t) => info.now.saturating_sub(t) < self.t1_ns,
            None => false,
        };
        if info.frozen {
            if self.thaw_on_access && !recently_invalidated {
                // Alternative policy: the access thaws the page.
                return FaultAction::Replicate;
            }
            // Default policy: remain frozen until the defrost daemon
            // explicitly thaws the page.
            return FaultAction::RemoteMap { freeze: true };
        }
        if recently_invalidated {
            // Active write-sharing: running the protocol would cost more
            // than remote access. Freeze.
            FaultAction::RemoteMap { freeze: true }
        } else {
            FaultAction::Replicate
        }
    }

    fn thaw_on_access(&self) -> bool {
        self.thaw_on_access
    }

    fn name(&self) -> &'static str {
        "platinum"
    }
}

/// Static placement: never replicate or migrate; always map the existing
/// copy remotely. First touch decides where a page lives.
///
/// This is the behaviour a Uniform System program gets from scattered
/// static data placement, and is the Figure 1 baseline.
#[derive(Clone, Copy, Debug, Default)]
pub struct NeverReplicate;

impl ReplicationPolicy for NeverReplicate {
    fn decide(&self, _info: &FaultInfo) -> FaultAction {
        FaultAction::RemoteMap { freeze: false }
    }

    fn name(&self) -> &'static str {
        "never-replicate"
    }
}

/// Always replicate/migrate, regardless of interference history — the
/// behaviour of software caching without the remote-access escape hatch
/// (Li's shared virtual memory, discussed in §1).
#[derive(Clone, Copy, Debug, Default)]
pub struct AlwaysReplicate;

impl ReplicationPolicy for AlwaysReplicate {
    fn decide(&self, _info: &FaultInfo) -> FaultAction {
        FaultAction::Replicate
    }

    fn name(&self) -> &'static str {
        "always-replicate"
    }
}

/// Bolosky et al.'s ACE policy (§8): writable pages are never replicated
/// and may migrate only `max_migrations` times before being frozen in
/// place; read-only pages replicate freely.
#[derive(Clone, Copy, Debug)]
pub struct AceStyle {
    /// Migrations permitted before the page is frozen for good.
    pub max_migrations: u32,
}

impl Default for AceStyle {
    fn default() -> Self {
        Self { max_migrations: 2 }
    }
}

impl ReplicationPolicy for AceStyle {
    fn decide(&self, info: &FaultInfo) -> FaultAction {
        if info.write || info.state == CpState::Modified {
            // A writable page: migrate a bounded number of times, then
            // freeze in place permanently (no defrost in ACE).
            if info.frozen || info.migrations >= self.max_migrations {
                FaultAction::RemoteMap { freeze: true }
            } else {
                FaultAction::Replicate
            }
        } else {
            FaultAction::Replicate
        }
    }

    fn name(&self) -> &'static str {
        "ace-style"
    }
}

/// Which replication policy to boot the kernel with: a nameable,
/// `Copy`-able selector over the policy family, used by the harnesses,
/// the benchmark binaries, and `SimBuilder`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// The paper's interim policy (t1 = 10 ms, defrost-only thawing).
    Platinum,
    /// The §4.2 alternative: accesses may thaw expired frozen pages.
    PlatinumThawOnAccess,
    /// Static placement (the Uniform System / Figure 1 baseline).
    NeverReplicate,
    /// Replicate/migrate unconditionally (software-caching baseline).
    AlwaysReplicate,
    /// Bolosky et al.'s ACE policy (§8).
    AceStyle,
}

impl PolicyKind {
    /// Instantiates the policy.
    pub fn build(self) -> Box<dyn ReplicationPolicy> {
        match self {
            PolicyKind::Platinum => Box::new(PlatinumPolicy::paper_default()),
            PolicyKind::PlatinumThawOnAccess => Box::new(PlatinumPolicy {
                t1_ns: 10_000_000,
                thaw_on_access: true,
            }),
            PolicyKind::NeverReplicate => Box::new(NeverReplicate),
            PolicyKind::AlwaysReplicate => Box::new(AlwaysReplicate),
            PolicyKind::AceStyle => Box::new(AceStyle::default()),
        }
    }

    /// Harness display name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Platinum => "PLATINUM",
            PolicyKind::PlatinumThawOnAccess => "PLATINUM (thaw-on-access)",
            PolicyKind::NeverReplicate => "static placement",
            PolicyKind::AlwaysReplicate => "always-replicate",
            PolicyKind::AceStyle => "ACE-style",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(now: u64, last_inval: Option<u64>, frozen: bool) -> FaultInfo {
        FaultInfo {
            now,
            last_invalidation: last_inval,
            frozen,
            migrations: 0,
            state: CpState::Modified,
            write: false,
        }
    }

    #[test]
    fn platinum_replicates_quiet_pages() {
        let p = PlatinumPolicy::paper_default();
        assert_eq!(
            p.decide(&info(50_000_000, None, false)),
            FaultAction::Replicate
        );
        // Invalidation 20 ms ago: outside t1 = 10 ms.
        assert_eq!(
            p.decide(&info(50_000_000, Some(30_000_000), false)),
            FaultAction::Replicate
        );
    }

    #[test]
    fn platinum_freezes_interfering_pages() {
        let p = PlatinumPolicy::paper_default();
        // Invalidation 2 ms ago: inside t1.
        assert_eq!(
            p.decide(&info(50_000_000, Some(48_000_000), false)),
            FaultAction::RemoteMap { freeze: true }
        );
    }

    #[test]
    fn platinum_default_stays_frozen_until_defrost() {
        let p = PlatinumPolicy::paper_default();
        // Frozen long ago, window long expired — still remote-mapped.
        assert_eq!(
            p.decide(&info(500_000_000, Some(10_000_000), true)),
            FaultAction::RemoteMap { freeze: true }
        );
        assert!(!p.thaw_on_access());
    }

    #[test]
    fn platinum_thaw_on_access_variant() {
        let p = PlatinumPolicy {
            t1_ns: 10_000_000,
            thaw_on_access: true,
        };
        // Window expired: the access may thaw.
        assert_eq!(
            p.decide(&info(500_000_000, Some(10_000_000), true)),
            FaultAction::Replicate
        );
        // Window not expired: stays frozen.
        assert_eq!(
            p.decide(&info(15_000_000, Some(10_000_000), true)),
            FaultAction::RemoteMap { freeze: true }
        );
    }

    #[test]
    fn never_and_always() {
        assert_eq!(
            NeverReplicate.decide(&info(0, None, false)),
            FaultAction::RemoteMap { freeze: false }
        );
        assert_eq!(
            AlwaysReplicate.decide(&info(0, Some(0), false)),
            FaultAction::Replicate
        );
    }

    #[test]
    fn ace_bounds_migrations() {
        let p = AceStyle { max_migrations: 2 };
        let mut i = info(0, None, false);
        i.write = true;
        i.migrations = 0;
        assert_eq!(p.decide(&i), FaultAction::Replicate);
        i.migrations = 2;
        assert_eq!(p.decide(&i), FaultAction::RemoteMap { freeze: true });
        // Read-only data replicates freely.
        i.write = false;
        i.state = CpState::Present1;
        i.migrations = 100;
        assert_eq!(p.decide(&i), FaultAction::Replicate);
    }
}
