//! Cmap entries and the shootdown message queues (§2.3 of the paper).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use numa_machine::{AtomicProcSet, ProcSet, Vpn};

use crate::hash::FastMap;
use crate::ids::{CpageId, Rights};

/// A Cmap entry: the cached composition of the virtual-to-object and
/// object-to-coherent mappings for one virtual page of one address space.
///
/// "A Cmap entry is analogous to a page table entry. It contains a
/// pointer to the coherent page, an access rights field, and a bit vector
/// called the reference mask" (§2.3).
pub struct CmapEntry {
    /// The coherent page this virtual page maps to.
    pub cpage: CpageId,
    /// The rights the virtual memory system granted (virtual-to-coherent
    /// level). The protocol may restrict the physical mapping further.
    pub rights: Rights,
    /// Reference mask: processor `p` is a member when it holds a
    /// virtual-to-physical translation for this page in its Pmap.
    /// Maintained with atomics so faulting processors and shootdown
    /// targets never need a shared lock.
    pub refmask: AtomicProcSet,
}

impl CmapEntry {
    /// Creates an entry with an empty reference mask, sized for a machine
    /// of `nprocs` processors.
    pub fn new(cpage: CpageId, rights: Rights, nprocs: usize) -> Self {
        Self {
            cpage,
            rights,
            refmask: AtomicProcSet::with_capacity(nprocs),
        }
    }

    /// Marks processor `p` as holding a translation.
    #[inline]
    pub fn set_ref(&self, p: usize) {
        self.refmask.insert(p);
    }

    /// Clears processor `p`'s reference bit.
    #[inline]
    pub fn clear_ref(&self, p: usize) {
        self.refmask.remove(p);
    }

    /// A snapshot of the current reference mask.
    #[inline]
    pub fn refs(&self) -> ProcSet {
        self.refmask.load()
    }
}

/// A shootdown directive carried by a Cmap message (§2.3: "a directive
/// either to invalidate the current translation or to restrict the access
/// rights in it").
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Directive {
    /// Remove the virtual-to-physical translation entirely.
    Invalidate,
    /// Remove the translation only if it points at a physical copy on one
    /// of the modules in the set (used when selected replicas are being
    /// reclaimed; translations to the surviving copy are left intact).
    InvalidateModules(ProcSet),
    /// Downgrade the translation to read-only.
    RestrictToRead,
}

/// A Cmap message: "describes a change made to a virtual address space
/// that affects virtual-to-physical mappings held by two or more
/// processors" (§2.3).
pub struct CmapMsg {
    /// The virtual page whose translation must change.
    pub vpn: Vpn,
    /// What to do to it.
    pub directive: Directive,
    /// Processors that still have to apply the change; each target removes
    /// itself after updating its Pmap ("it applies the change to its
    /// Pmap and removes itself from the target mask").
    pub targets: AtomicProcSet,
    /// The maximum virtual time at which a target acknowledged; the
    /// initiator advances its clock to this after the wait, which is how
    /// shootdown latency propagates between processors in the simulation.
    pub ack_vtime: AtomicU64,
}

impl CmapMsg {
    /// Creates a message for `targets`.
    pub fn new(vpn: Vpn, directive: Directive, targets: &ProcSet) -> Arc<Self> {
        Arc::new(Self {
            vpn,
            directive,
            targets: AtomicProcSet::from_set(targets),
            ack_vtime: AtomicU64::new(0),
        })
    }

    /// Rewrites the message in place for reuse. Requires exclusive access
    /// (`Arc::get_mut`), which proves no queue, target, or waiter still
    /// holds the message — the per-processor message pools rely on this
    /// to recycle acknowledged messages without heap traffic.
    pub fn reset(&mut self, vpn: Vpn, directive: Directive, targets: &ProcSet) {
        self.vpn = vpn;
        self.directive = directive;
        self.targets.store_from(targets);
        *self.ack_vtime.get_mut() = 0;
    }

    /// Removes `p` from the targets, acknowledging the change at virtual
    /// time `now`.
    #[inline]
    pub fn ack(&self, p: usize, now: u64) {
        self.ack_vtime.fetch_max(now, Ordering::AcqRel);
        self.targets.remove(p);
    }

    /// The latest acknowledgment time seen so far.
    #[inline]
    pub fn ack_time(&self) -> u64 {
        self.ack_vtime.load(Ordering::Acquire)
    }

    /// A snapshot of the processors that have not yet applied the change.
    #[inline]
    pub fn pending(&self) -> ProcSet {
        self.targets.load()
    }

    /// Whether processor `p` still has to apply the change.
    #[inline]
    pub fn pending_for_proc(&self, p: usize) -> bool {
        self.targets.contains(p)
    }

    /// Whether any target has yet to apply the change.
    #[inline]
    pub fn has_pending(&self) -> bool {
        !self.targets.is_empty()
    }

    /// Whether any processor in `set` has yet to apply the change — the
    /// snapshot-free test initiators spin on while awaiting their own
    /// targets.
    #[inline]
    pub fn pending_intersects(&self, set: &ProcSet) -> bool {
        self.targets.intersects(set)
    }
}

/// Default number of directory shards. Power of two; tuned so sixteen
/// faulting processors rarely collide on a shard lock.
pub const DEFAULT_SHARDS: usize = 16;

/// One directory shard: a lock over the VPN-to-entry map it stripes.
type Shard = RwLock<FastMap<Vpn, Arc<CmapEntry>>>;

/// The per-address-space Cmap: the virtual-to-coherent page table plus the
/// queues of recent mapping-change messages (§2.3).
///
/// The directory is sharded by virtual page number so concurrent faults on
/// different pages take different locks; consecutive pages land on
/// different shards. Messages are delivered to a private queue per target
/// processor, so a shootdown target drains its own queue without
/// contending with initiators posting to other processors.
pub struct Cmap {
    /// Virtual-to-coherent entries, created lazily on first fault,
    /// striped over `shards.len()` (a power of two) independent maps.
    shards: Box<[Shard]>,
    shard_mask: usize,
    /// "A queue of Cmap messages describing recent changes to the address
    /// space" — one per target processor. A message for several targets is
    /// enqueued on each target's queue; queue `p` only ever holds messages
    /// with `p` in their target set.
    queues: Box<[Mutex<Vec<Arc<CmapMsg>>>]>,
    /// Number of processors on the machine this Cmap serves; sizes new
    /// reference masks.
    nprocs: usize,
}

impl Cmap {
    /// An empty Cmap with the default shard count, sized for a 64-processor
    /// machine (tests and tools; the kernel threads the real count through
    /// [`Cmap::with_shards`]).
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS, 64)
    }

    /// An empty Cmap with `shards` directory shards serving a machine of
    /// `nprocs` processors.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is not a nonzero power of two or `nprocs` is 0.
    pub fn with_shards(shards: usize, nprocs: usize) -> Self {
        assert!(
            shards.is_power_of_two() && shards > 0,
            "Cmap shard count must be a nonzero power of two"
        );
        assert!(nprocs > 0, "Cmap needs at least one processor queue");
        let mut s = Vec::with_capacity(shards);
        s.resize_with(shards, || RwLock::new(FastMap::default()));
        let mut q = Vec::with_capacity(nprocs);
        q.resize_with(nprocs, || Mutex::new(Vec::new()));
        Self {
            shards: s.into_boxed_slice(),
            shard_mask: shards - 1,
            queues: q.into_boxed_slice(),
            nprocs,
        }
    }

    /// The number of directory shards.
    pub fn nshards(&self) -> usize {
        self.shards.len()
    }

    /// The processor count this Cmap was sized for.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// An empty entry for `vpn`-insertion, sized for this machine.
    pub fn make_entry(&self, cpage: CpageId, rights: Rights) -> CmapEntry {
        CmapEntry::new(cpage, rights, self.nprocs)
    }

    #[inline]
    fn shard(&self, vpn: Vpn) -> &RwLock<FastMap<Vpn, Arc<CmapEntry>>> {
        &self.shards[(vpn as usize) & self.shard_mask]
    }

    /// Looks up the entry for `vpn`.
    pub fn entry(&self, vpn: Vpn) -> Option<Arc<CmapEntry>> {
        self.shard(vpn).read().get(&vpn).cloned()
    }

    /// The reference mask of the entry for `vpn`, read without an Arc
    /// round-trip — the shootdown post path only needs the mask.
    pub fn refs_of(&self, vpn: Vpn) -> Option<ProcSet> {
        self.shard(vpn).read().get(&vpn).map(|e| e.refs())
    }

    /// Runs `f` on the entry for `vpn`, if present, under the shard read
    /// lock — the message-apply path's `clear_ref` without cloning the
    /// entry handle.
    pub fn with_entry(&self, vpn: Vpn, f: impl FnOnce(&CmapEntry)) {
        if let Some(e) = self.shard(vpn).read().get(&vpn) {
            f(e);
        }
    }

    /// Inserts an entry for `vpn`, returning the entry actually in the
    /// table (the existing one if another processor raced the insert).
    pub fn insert(&self, vpn: Vpn, entry: CmapEntry) -> Arc<CmapEntry> {
        let mut map = self.shard(vpn).write();
        Arc::clone(map.entry(vpn).or_insert_with(|| Arc::new(entry)))
    }

    /// Removes and returns the entry for `vpn` (unmap).
    pub fn remove(&self, vpn: Vpn) -> Option<Arc<CmapEntry>> {
        self.shard(vpn).write().remove(&vpn)
    }

    /// All (vpn, entry) pairs; report and teardown support.
    pub fn snapshot(&self) -> Vec<(Vpn, Arc<CmapEntry>)> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let map = shard.read();
            out.extend(map.iter().map(|(v, e)| (*v, Arc::clone(e))));
        }
        out
    }

    /// Posts a message: it is enqueued on the private queue of every
    /// processor in its (current) target set.
    pub fn post(&self, msg: Arc<CmapMsg>) {
        for p in msg.pending().iter() {
            let mut q = self.queues[p].lock();
            q.push(Arc::clone(&msg));
            // Compact messages this target has already applied, so a
            // queue that is never drained (idle processor) stays short.
            q.retain(|m| m.pending_for_proc(p));
        }
    }

    /// The messages still pending for processor `p`.
    ///
    /// Non-destructive: the caller applies each change to its own
    /// Pmap/ATC and then acks, which removes `p` from the target set; the
    /// next call compacts acknowledged messages out of the queue. Only
    /// `p`'s private queue is locked, so targets never contend with
    /// initiators posting to other processors.
    pub fn pending_for(&self, p: usize) -> Vec<Arc<CmapMsg>> {
        let mut out = Vec::new();
        self.pending_for_into(p, &mut out);
        out
    }

    /// [`Cmap::pending_for`] into a caller-owned buffer (cleared first),
    /// so the fault path's steady state drains without allocating.
    pub fn pending_for_into(&self, p: usize, out: &mut Vec<Arc<CmapMsg>>) {
        out.clear();
        let mut q = self.queues[p].lock();
        if q.is_empty() {
            return;
        }
        q.retain(|m| m.pending_for_proc(p));
        out.extend(q.iter().cloned());
    }

    /// Number of distinct unacknowledged messages (tests and reporting).
    pub fn queue_len(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        for q in self.queues.iter() {
            for m in q.lock().iter() {
                if m.has_pending() {
                    seen.insert(Arc::as_ptr(m));
                }
            }
        }
        seen.len()
    }
}

impl Default for Cmap {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refmask_bits() {
        let e = CmapEntry::new(CpageId(0), Rights::RW, 16);
        assert!(e.refs().is_empty());
        e.set_ref(3);
        e.set_ref(7);
        assert_eq!(e.refs(), ProcSet::from_mask((1 << 3) | (1 << 7)));
        e.clear_ref(3);
        assert_eq!(e.refs(), ProcSet::single(7));
    }

    #[test]
    fn refmask_holds_big_machine_ids() {
        let e = CmapEntry::new(CpageId(0), Rights::RW, 256);
        e.set_ref(0);
        e.set_ref(200);
        assert_eq!(e.refs().iter().collect::<Vec<_>>(), vec![0, 200]);
        e.clear_ref(200);
        assert_eq!(e.refs(), ProcSet::single(0));
    }

    #[test]
    fn message_ack_drains() {
        let m = CmapMsg::new(5, Directive::Invalidate, &ProcSet::from_mask(0b1011));
        m.ack(0, 100);
        m.ack(3, 250);
        assert_eq!(m.pending(), ProcSet::from_mask(0b0010));
        assert_eq!(m.ack_time(), 250);
        m.ack(1, 50);
        assert!(!m.has_pending());
    }

    #[test]
    fn queue_post_pending_compact() {
        let c = Cmap::new();
        let m1 = CmapMsg::new(1, Directive::Invalidate, &ProcSet::from_mask(0b01));
        let m2 = CmapMsg::new(2, Directive::RestrictToRead, &ProcSet::from_mask(0b11));
        c.post(Arc::clone(&m1));
        c.post(Arc::clone(&m2));
        assert_eq!(c.queue_len(), 2);

        // A message for two targets reaches both private queues.
        let pending0 = c.pending_for(0);
        assert_eq!(pending0.len(), 2);
        let pending1 = c.pending_for(1);
        assert_eq!(pending1.len(), 1);
        assert_eq!(pending1[0].vpn, 2);

        // Queries are non-destructive until the target acks.
        assert_eq!(c.pending_for(0).len(), 2);
        assert_eq!(c.pending_for(1).len(), 1);

        // Acked messages are compacted away by the next query/post.
        m1.ack(0, 1);
        m2.ack(0, 1);
        assert!(c.pending_for(0).is_empty());
        m2.ack(1, 1);
        c.post(CmapMsg::new(
            3,
            Directive::Invalidate,
            &ProcSet::from_mask(0b1),
        ));
        assert_eq!(c.queue_len(), 1);
    }

    #[test]
    fn posted_message_skips_non_targets() {
        let c = Cmap::new();
        c.post(CmapMsg::new(
            4,
            Directive::Invalidate,
            &ProcSet::from_mask(0b100),
        ));
        assert!(c.pending_for(0).is_empty());
        assert!(c.pending_for(1).is_empty());
        let p2 = c.pending_for(2);
        assert_eq!(p2.len(), 1);
        assert_eq!(p2[0].vpn, 4);
    }

    #[test]
    fn messages_reach_targets_beyond_64() {
        let c = Cmap::with_shards(DEFAULT_SHARDS, 128);
        let m = CmapMsg::new(7, Directive::Invalidate, &ProcSet::single(100));
        c.post(Arc::clone(&m));
        assert!(c.pending_for(0).is_empty());
        let q = c.pending_for(100);
        assert_eq!(q.len(), 1);
        m.ack(100, 9);
        assert!(c.pending_for(100).is_empty());
        assert_eq!(m.ack_time(), 9);
    }

    #[test]
    fn acked_messages_are_compacted_not_delivered() {
        let c = Cmap::new();
        let m = CmapMsg::new(9, Directive::RestrictToRead, &ProcSet::from_mask(0b11));
        c.post(Arc::clone(&m));
        // Target 1 somehow applied the change before draining (e.g. the
        // mapping was torn down); its queue must not re-deliver.
        m.ack(1, 10);
        assert!(c.pending_for(1).is_empty());
        assert_eq!(c.pending_for(0).len(), 1);
    }

    #[test]
    fn insert_race_returns_existing() {
        let c = Cmap::new();
        let a = c.insert(9, c.make_entry(CpageId(1), Rights::RO));
        let b = c.insert(9, c.make_entry(CpageId(2), Rights::RW));
        assert!(Arc::ptr_eq(&a, &b), "second insert must not replace");
        assert_eq!(b.cpage, CpageId(1));
        assert!(c.remove(9).is_some());
        assert!(c.entry(9).is_none());
    }

    #[test]
    fn sharding_is_transparent() {
        for shards in [1usize, 4, 16] {
            let c = Cmap::with_shards(shards, 64);
            assert_eq!(c.nshards(), shards);
            for vpn in 0..40u64 {
                c.insert(vpn, c.make_entry(CpageId(vpn), Rights::RW));
            }
            let mut snap = c.snapshot();
            snap.sort_by_key(|(v, _)| *v);
            assert_eq!(snap.len(), 40);
            for (i, (vpn, e)) in snap.iter().enumerate() {
                assert_eq!(*vpn, i as u64);
                assert_eq!(e.cpage, CpageId(i as u64));
            }
            assert!(c.entry(17).is_some());
            assert!(c.remove(17).is_some());
            assert!(c.entry(17).is_none());
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_shard_count_panics() {
        let _ = Cmap::with_shards(12, 16);
    }
}
