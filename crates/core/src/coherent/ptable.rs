//! The kernel side of the translation fabric (`platinum-ptable`).
//!
//! The fabric itself — placements, per-space replica directories, walk
//! tallies — lives in the `platinum-ptable` crate; this module is where
//! the kernel drives it: populating a node's replica from the fault
//! path under the replicate-on-fault placement, and keeping replicas
//! coherent by piggybacking lightweight invalidations on the shootdown
//! rounds the protocol already performs.
//!
//! Replica coherence is *invalidate-only*: a mapping change never ships
//! translation data to holder nodes, it marks the affected entry stale
//! and each holder re-walks — and under replicate-on-fault,
//! re-populates — on its next miss. The invalidation rides the
//! initiator's existing shootdown round: the stale mark is one extra
//! word written into the `CmapMsg` the initiator is already posting at
//! the space's home, so its cost is one write per round, independent of
//! how many replicas exist — no extra interrupts, no acknowledgment
//! wait, no per-holder traffic. Under the centralized placement every
//! hook in this module is a single branch and the kernel is
//! bit-identical to one without the subsystem.

use platinum_faults::FaultSite;
use platinum_ptable::PtablePlacement;
use platinum_trace::EventKind;

use numa_machine::{AccessKind, PhysPage, ProcSet};

use crate::kernel::Kernel;
use crate::user::UserCtx;
use crate::vm::space::AddressSpace;

impl Kernel {
    /// Populates the faulting node's translation replica for the current
    /// space, if the replicate-on-fault placement is active and the node
    /// does not hold one yet — the Mitosis-style copy-on-fault moment:
    /// the fault handler is already paying a kernel entry, so the
    /// replica is built here rather than on the miss path.
    ///
    /// Charges the configured populate cost against the space's home
    /// node (the copy is read from the canonical tables there) and
    /// records one `PtPopulate` event.
    #[inline]
    pub(crate) fn ptable_populate_on_fault(&self, ctx: &mut UserCtx) {
        let cfg = ctx.ptable;
        if !cfg.accounting || cfg.placement != PtablePlacement::ReplicatedOnFault {
            return;
        }
        let me = ctx.core.id();
        if !ctx.space().replica().join(me) {
            return;
        }
        let home = ctx.space().replica().home();
        let space_id = u64::from(ctx.space().id().0);
        let t0 = ctx.core.vtime();
        ctx.core.charge_word_block(
            PhysPage::new(home, 0),
            AccessKind::Read,
            u64::from(cfg.populate_refs),
        );
        let ns = ctx.core.vtime() - t0;
        self.walk_stats.record_populate(me, ns);
        self.record(
            me,
            ctx.core.vtime(),
            EventKind::PtPopulate,
            cfg.placement as u8,
            space_id,
            ns,
        );
    }

    /// Marks the translation-replica entries staled by a mapping change,
    /// piggybacked on the shootdown round the initiator just posted: one
    /// extra word — the stale mark — written into the `CmapMsg` already
    /// sitting at the space's home. Targets observe it when they drain
    /// the message, exactly when they observe the mapping change itself,
    /// so the cost is one write per round regardless of replica count;
    /// no data moves and no acknowledgment is awaited.
    ///
    /// The round is skipped when no replica holder is among `targets` —
    /// the procs the shootdown addresses: a lazily-populated replica
    /// caches a page's entry only while that node's translation is live,
    /// and the procs whose translation survives to this round are
    /// exactly the shootdown targets. Holders outside the set lost
    /// their entry when their own mapping was shot down earlier, so
    /// there is nothing to stale.
    ///
    /// A fault plan may drop the stale mark in transit
    /// ([`FaultSite::PtableInval`]): the initiator waits out an ack
    /// timeout (exponential backoff) and rewrites it, and when the
    /// retry budget is exhausted it escalates by dropping the staled
    /// holders from the replica directory entirely — the degraded mode.
    /// Those holders then walk against the home node until they re-earn
    /// a replica, so the escalation is self-healing and timing-only.
    pub(crate) fn ptable_invalidate(
        &self,
        ctx: &mut UserCtx,
        space: &AddressSpace,
        targets: &ProcSet,
    ) {
        let cfg = ctx.ptable;
        if !cfg.accounting || !cfg.placement.replicates() {
            return;
        }
        let me = ctx.core.id();
        let holders = space.replica().holders().intersect(targets).without(me);
        if holders.is_empty() {
            return;
        }
        let plan = self.fault_plan();
        let space_id = u64::from(space.id().0);
        let stale = holders.iter().count() as u64;
        let begin = ctx.core.vtime();
        let mut attempt = 0u32;
        loop {
            if let Some(plan) = plan {
                if attempt >= plan.max_retries() {
                    // Retry budget exhausted: stop rewriting the mark
                    // and drop the staled replicas instead.
                    for h in holders.iter() {
                        space.replica().drop_holder(h);
                    }
                    self.record(
                        me,
                        ctx.core.vtime(),
                        EventKind::FaultRecovery,
                        FaultSite::PtableInval as u8,
                        space_id,
                        begin,
                    );
                    return;
                }
                if plan.should_inject(FaultSite::PtableInval, ctx.core.vtime(), space_id, attempt) {
                    // Lost in transit: the holders keep walking their
                    // stale replicas until the initiator times out and
                    // rewrites the mark.
                    self.record(
                        me,
                        ctx.core.vtime(),
                        EventKind::PtInvalDrop,
                        attempt.min(255) as u8,
                        space_id,
                        stale,
                    );
                    ctx.core.charge(plan.ack_timeout_ns(attempt + 1));
                    attempt += 1;
                    continue;
                }
            }
            // Delivered: the stale mark, one write into the message at
            // the space's home.
            let t0 = ctx.core.vtime();
            ctx.core.charge_kernel_ref(space.home(), AccessKind::Write);
            self.walk_stats.record_inval(me, ctx.core.vtime() - t0);
            self.record(me, ctx.core.vtime(), EventKind::PtInval, 0, space_id, stale);
            if attempt > 0 {
                self.record(
                    me,
                    ctx.core.vtime(),
                    EventKind::FaultRecovery,
                    FaultSite::PtableInval as u8,
                    space_id,
                    begin,
                );
            }
            return;
        }
    }
}
