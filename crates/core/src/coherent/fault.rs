//! The coherent page fault handler (§3.3 of the paper).
//!
//! "Both the replication mechanism and the data coherency protocol are
//! implemented by the page fault handler." All transitions of Figure 4
//! are driven from here; the policy module only chooses between
//! replication/migration and remote mapping.

use std::sync::Arc;

use numa_machine::{AccessErr, AccessKind, PhysPage, ProcSet, Va};
use platinum_faults::FaultSite;
use platinum_trace::{EventKind, FaultResolution};

use crate::coherent::cmap::{CmapEntry, Directive};
use crate::coherent::cpage::{CpState, Cpage, CpageInner};
use crate::coherent::policy::{FaultAction, FaultInfo};
use crate::error::{KernelError, Result};
use crate::hostprof::HostPhase;
use crate::ids::CpageId;
use crate::kernel::Kernel;
use crate::user::UserCtx;

/// Encodes a policy decision for the `PolicyDecision` event's code byte.
fn action_code(action: FaultAction) -> u8 {
    match action {
        FaultAction::Replicate => 0,
        FaultAction::RemoteMap { freeze: false } => 1,
        FaultAction::RemoteMap { freeze: true } => 2,
        FaultAction::Migrate => 3,
    }
}

impl Kernel {
    /// Handles a coherent-memory fault at `va` on `ctx`'s processor.
    ///
    /// On success the faulting processor's Pmap and ATC hold a
    /// translation sufficient for the access; the caller retries the
    /// access. Errors are unrecoverable (bus error / protection at the
    /// virtual-memory level / out of physical memory).
    pub(crate) fn coherent_fault(&self, ctx: &mut UserCtx, va: Va, write: bool) -> Result<()> {
        let span = self.hostprof.begin();
        let out = self.coherent_fault_inner(ctx, va, write);
        self.hostprof.end(HostPhase::Fault, span);
        out
    }

    fn coherent_fault_inner(&self, ctx: &mut UserCtx, va: Va, write: bool) -> Result<()> {
        let costs = &self.config().costs;
        let begin = ctx.core.vtime();
        ctx.core.charge(costs.fault_fixed_ns);
        ctx.core.counters_mut().faults += 1;
        self.record(
            ctx.core.id(),
            begin,
            EventKind::FaultBegin,
            u8::from(write),
            va,
            0,
        );
        // A fault is a kernel entry: give the defrost daemon its chance
        // to run (its clock interrupt, in the paper's terms) before any
        // page locks are taken.
        self.maybe_defrost(ctx);
        // Under the replicate-on-fault placement, the kernel builds this
        // node's translation replica while it is already in the fault
        // handler (one branch otherwise).
        self.ptable_populate_on_fault(ctx);

        let vpn = ctx.space().vpn_of(va);
        // Cmap lookup, charged at the space's home node (§3.3: "the Cpage
        // fault handler searches the Cmap for an entry that maps the
        // faulting virtual address").
        let space = Arc::clone(ctx.space());
        self.charge_refs(ctx, space.home(), costs.cmap_lookup_refs);
        let entry = match space.cmap().entry(vpn) {
            Some(e) => e,
            // "Otherwise, the fault is passed to the virtual memory fault
            // handler."
            None => self.vm_fault(ctx, va)?,
        };
        // Virtual-memory-level rights check.
        if write && !entry.rights.write {
            return Err(KernelError::Access(AccessErr::Protection(va)));
        }
        if !entry.rights.read {
            return Err(KernelError::Access(AccessErr::Protection(va)));
        }

        let cpage = self
            .cpages
            .get(entry.cpage)
            .expect("cmap entry points at a missing cpage");
        let mut g = self.lock_cpage(ctx, &cpage);
        g.faults += 1;
        self.charge_refs(ctx, cpage.home(), costs.cpage_touch_refs);

        let resolution = if write {
            self.write_fault(ctx, &cpage, &mut g, &entry, vpn)?
        } else {
            self.read_fault(ctx, &cpage, &mut g, &entry, vpn)?
        };
        drop(g);
        // The FaultEnd carries the begin time, so an exporter can render
        // the fault as an interval on the processor's track. Error paths
        // (protection, out of memory) leave the interval open: the
        // thread is dead, not resumed.
        self.record(
            ctx.core.id(),
            ctx.core.vtime(),
            EventKind::FaultEnd,
            resolution as u8,
            cpage.id().0,
            begin,
        );
        Ok(())
    }

    /// The virtual-memory layer: resolves `va` to a region, creates the
    /// coherent page on first touch, and installs the Cmap entry.
    fn vm_fault(&self, ctx: &mut UserCtx, va: Va) -> Result<Arc<CmapEntry>> {
        let costs = &self.config().costs;
        ctx.core.charge(costs.vm_fault_ns);
        self.record(
            ctx.core.id(),
            ctx.core.vtime(),
            EventKind::VmFault,
            0,
            va,
            0,
        );
        let space = Arc::clone(ctx.space());
        let vpn = space.vpn_of(va);
        let region = space
            .region_for(vpn)
            .ok_or(KernelError::Access(AccessErr::BusError(va)))?;
        // First touch homes the page's metadata on the touching node.
        let cpage_id =
            region
                .object
                .cpage_for(region.object_page(vpn), &self.cpages, ctx.core.id());
        let entry = space
            .cmap()
            .insert(vpn, space.cmap().make_entry(cpage_id, region.rights));
        // Record the binding so protocol shootdowns reach every address
        // space this page is mapped in (§3.1).
        let cpage = self.cpages.get(cpage_id).expect("fresh cpage exists");
        let mut g = self.lock_cpage(ctx, &cpage);
        let binding = (space.id(), vpn);
        if !g.bindings.contains(&binding) {
            g.bindings.push(binding);
        }
        Ok(entry)
    }

    // ------------------------------------------------------------------
    // Read faults
    // ------------------------------------------------------------------

    fn read_fault(
        &self,
        ctx: &mut UserCtx,
        cpage: &Cpage,
        g: &mut CpageInner,
        entry: &CmapEntry,
        vpn: u64,
    ) -> Result<FaultResolution> {
        let me = ctx.core.id();

        // A local physical copy may already exist (the page can be shared
        // by multiple address spaces); find it through the inverted page
        // table, which uses strictly local accesses (§3.3).
        let mut recover_begin: Option<u64> = None;
        if g.has_copy_on(me) {
            let pp = self.ipt_find(ctx, me, cpage)?;
            if !self.transient_read_error(ctx, cpage, g, pp, &mut recover_begin)? {
                self.record_read_recovery(ctx, cpage, recover_begin);
                self.map_page(ctx, entry, vpn, pp, false, g);
                return Ok(FaultResolution::LocalHit);
            }
            // The local copy was discarded as corrupt: fall through to
            // the policy path, which recovers by re-replicating from a
            // valid directory copy.
        }

        let res = match g.state {
            CpState::Empty => {
                // First backing page: allocate and zero-fill where the
                // policy homes first touches (locally for every policy in
                // the paper; off-node for the remote-placement baseline).
                let home = self
                    .policy()
                    .place_first_touch(me, vpn, self.machine().nprocs());
                let pp = self.alloc_frame(ctx, home, cpage, &ProcSet::empty())?;
                self.charge_zero_fill(ctx);
                g.add_copy(pp);
                g.state = CpState::Present1;
                self.map_page(ctx, entry, vpn, pp, false, g);
                Ok(FaultResolution::FirstTouch)
            }
            CpState::Present1 | CpState::PresentPlus | CpState::Modified => {
                let info = FaultInfo {
                    now: ctx.core.vtime(),
                    last_invalidation: g.last_invalidation,
                    frozen: g.frozen,
                    migrations: g.migrations,
                    state: g.state,
                    write: false,
                };
                let action = self.policy().decide(&info);
                self.record_decision(ctx, cpage.id(), &info, action);
                match action {
                    FaultAction::Replicate => self.replicate_here(ctx, cpage, g, entry, vpn),
                    FaultAction::Migrate => self.migrate_here(ctx, cpage, g, entry, vpn, false),
                    FaultAction::RemoteMap { freeze } => {
                        let pp = g.copies[0];
                        self.freeze_if_needed(ctx, cpage, g, freeze);
                        g.remote_map_mask.insert(me);
                        self.record(
                            me,
                            ctx.core.vtime(),
                            EventKind::RemoteMap,
                            0,
                            cpage.id().0,
                            pp.module_id() as u64,
                        );
                        self.map_page(ctx, entry, vpn, pp, false, g);
                        Ok(FaultResolution::RemoteMapped)
                    }
                }
            }
        };
        self.record_read_recovery(ctx, cpage, recover_begin);
        res
    }

    /// Closes a transient-read-error episode: records the recovery span
    /// once the fault resolved against a valid copy.
    fn record_read_recovery(&self, ctx: &UserCtx, cpage: &Cpage, begin: Option<u64>) {
        if let Some(b) = begin {
            self.record(
                ctx.core.id(),
                ctx.core.vtime(),
                EventKind::FaultRecovery,
                FaultSite::FrameRead as u8,
                cpage.id().0,
                b,
            );
        }
    }

    /// Fault hook for a read hitting a local copy: decides whether an
    /// injected transient memory error corrupts the read. With other
    /// directory copies available, the local replica is discarded and the
    /// caller falls back to the policy path (re-replication from a valid
    /// copy); a sole copy is re-read under the bounded retry budget, so
    /// the access always completes. Returns whether the local copy was
    /// discarded.
    fn transient_read_error(
        &self,
        ctx: &mut UserCtx,
        cpage: &Cpage,
        g: &mut CpageInner,
        pp: PhysPage,
        recover_begin: &mut Option<u64>,
    ) -> Result<bool> {
        let Some(plan) = self.fault_plan() else {
            return Ok(false);
        };
        let key = (pp.module_id() as u64) << 32 | pp.frame_id() as u64;
        if !plan.should_inject(FaultSite::FrameRead, ctx.core.vtime(), key, 0) {
            return Ok(false);
        }
        let me = ctx.core.id();
        *recover_begin = Some(ctx.core.vtime());
        ctx.core.charge(plan.retry_ns());
        self.record(
            me,
            ctx.core.vtime(),
            EventKind::MemError,
            0,
            cpage.id().0,
            pp.module_id() as u64,
        );
        if g.copies.len() > 1 {
            // Other copies exist: drop the corrupt replica. The
            // module-selective shootdown removes every translation into
            // the dead frame; ours is excluded and handled inline.
            let mine = ProcSet::single(me);
            self.drop_own_mapping_into(ctx, g, &mine);
            self.invalidate_copies(ctx, cpage, g, &mine)?;
            if g.copies.len() == 1 {
                g.state = CpState::Present1;
            }
            return Ok(true);
        }
        // Sole copy: nowhere else to recover from; re-read the flaky
        // frame until a read sticks (forced at the retry budget).
        let mut attempt = 1u32;
        while plan.should_inject(FaultSite::FrameRead, ctx.core.vtime(), key, attempt) {
            ctx.core.charge(plan.retry_ns());
            self.record(
                me,
                ctx.core.vtime(),
                EventKind::MemError,
                attempt.min(255) as u8,
                cpage.id().0,
                pp.module_id() as u64,
            );
            attempt += 1;
        }
        Ok(false)
    }

    /// Records the `PolicyDecision` event: which action the policy chose
    /// and (in `arg`) the age of the interference history it consulted.
    fn record_decision(&self, ctx: &UserCtx, page: CpageId, info: &FaultInfo, action: FaultAction) {
        let age = info
            .last_invalidation
            .map(|t| info.now.saturating_sub(t))
            .unwrap_or(u64::MAX);
        self.record(
            ctx.core.id(),
            info.now,
            EventKind::PolicyDecision,
            action_code(action),
            page.0,
            age,
        );
    }

    /// Replicates the page onto the faulting processor's node for a read:
    /// restrict any writer first, block-transfer a copy, grow the
    /// directory.
    fn replicate_here(
        &self,
        ctx: &mut UserCtx,
        cpage: &Cpage,
        g: &mut CpageInner,
        entry: &CmapEntry,
        vpn: u64,
    ) -> Result<FaultResolution> {
        let me = ctx.core.id();
        if g.state == CpState::Modified {
            // "The handler uses the shootdown mechanism to restrict all
            // virtual-to-physical translations for the Cpage to read-only
            // access" (§3.3).
            let writers = g.writer_mask.without(me);
            if !writers.is_empty() {
                self.shootdown(ctx, cpage.id(), g, Directive::RestrictToRead, &writers);
            }
            // Restrict own writable mapping, if any.
            ctx.pmap.restrict_to_read(ctx.space().id(), vpn);
            let asid = ctx.space().asid();
            ctx.core.atc().restrict_to_read(asid, vpn);
            g.writer_mask.clear();
            g.state = CpState::Present1;
        }
        if g.frozen {
            // Thaw-on-access variant of the policy (code 1 = thawed by an
            // access rather than by the defrost daemon).
            g.frozen = false;
            g.thaws += 1;
            self.record(me, ctx.core.vtime(), EventKind::Thaw, 1, cpage.id().0, 0);
        }
        // "The handler then performs a block transfer from another
        // physical copy" (§3.3) — any copy. Spreading requesters across
        // the existing copies turns a broadcast (every processor reading
        // a freshly written page, e.g. the Gaussian pivot row) into a
        // logarithmic fan-out instead of serializing every transfer at
        // one source engine.
        let src = g.copies[me % g.copies.len()];
        let pp = self.alloc_frame(ctx, me, cpage, &g.copies_mask)?;
        let src = self.copy_page(ctx, cpage, g, src, pp);
        g.add_copy(pp);
        g.state = if g.copies.len() >= 2 {
            CpState::PresentPlus
        } else {
            CpState::Present1
        };
        g.replications += 1;
        self.record(
            me,
            ctx.core.vtime(),
            EventKind::Replicate,
            0,
            cpage.id().0,
            src.module_id() as u64,
        );
        self.map_page(ctx, entry, vpn, pp, false, g);
        Ok(FaultResolution::Replicated)
    }

    // ------------------------------------------------------------------
    // Write faults
    // ------------------------------------------------------------------

    fn write_fault(
        &self,
        ctx: &mut UserCtx,
        cpage: &Cpage,
        g: &mut CpageInner,
        entry: &CmapEntry,
        vpn: u64,
    ) -> Result<FaultResolution> {
        let me = ctx.core.id();

        if let Some(local_pp) = g.copy_on(me) {
            return match g.state {
                CpState::Empty => unreachable!("empty state cannot have copies"),
                CpState::Modified => {
                    self.map_page(ctx, entry, vpn, local_pp, true, g);
                    Ok(FaultResolution::LocalHit)
                }
                CpState::Present1 => {
                    // "The transition from present1 to modified requires
                    // neither [an invalidation nor a reclamation]" (§3.2).
                    g.state = CpState::Modified;
                    self.map_page(ctx, entry, vpn, local_pp, true, g);
                    Ok(FaultResolution::LocalHit)
                }
                CpState::PresentPlus => {
                    // Local copy survives; invalidate and reclaim every
                    // other replica (§3.3).
                    let dying = g.copies_mask.without(me);
                    let escalated = self.invalidate_copies(ctx, cpage, g, &dying)?;
                    g.state = CpState::Modified;
                    g.last_invalidation = Some(ctx.core.vtime());
                    if escalated {
                        self.freeze_degraded(ctx, cpage, g);
                    }
                    self.record(
                        me,
                        ctx.core.vtime(),
                        EventKind::Invalidate,
                        0,
                        cpage.id().0,
                        me as u64,
                    );
                    self.map_page(ctx, entry, vpn, local_pp, true, g);
                    Ok(FaultResolution::LocalHit)
                }
            };
        }

        // No local copy.
        if g.state == CpState::Empty {
            let home = self
                .policy()
                .place_first_touch(me, vpn, self.machine().nprocs());
            let pp = self.alloc_frame(ctx, home, cpage, &ProcSet::empty())?;
            self.charge_zero_fill(ctx);
            g.add_copy(pp);
            g.state = CpState::Modified;
            self.map_page(ctx, entry, vpn, pp, true, g);
            return Ok(FaultResolution::FirstTouch);
        }

        let info = FaultInfo {
            now: ctx.core.vtime(),
            last_invalidation: g.last_invalidation,
            frozen: g.frozen,
            migrations: g.migrations,
            state: g.state,
            write: true,
        };
        let action = self.policy().decide(&info);
        self.record_decision(ctx, cpage.id(), &info, action);
        match action {
            FaultAction::Replicate | FaultAction::Migrate => {
                self.migrate_here(ctx, cpage, g, entry, vpn, true)
            }
            FaultAction::RemoteMap { freeze } => {
                // Write through a remote mapping. If the page is
                // replicated, first collapse it to a single copy.
                let mut escalated = false;
                if g.state == CpState::PresentPlus {
                    let survivor = g.copies[0];
                    let dying = g.copies_mask.without(survivor.module_id());
                    escalated = self.invalidate_copies(ctx, cpage, g, &dying)?;
                    g.last_invalidation = Some(ctx.core.vtime());
                    self.record(
                        me,
                        ctx.core.vtime(),
                        EventKind::Invalidate,
                        0,
                        cpage.id().0,
                        survivor.module_id() as u64,
                    );
                }
                let pp = g.copies[0];
                g.state = CpState::Modified;
                self.freeze_if_needed(ctx, cpage, g, freeze);
                if escalated {
                    self.freeze_degraded(ctx, cpage, g);
                }
                g.remote_map_mask.insert(me);
                self.record(
                    me,
                    ctx.core.vtime(),
                    EventKind::RemoteMap,
                    1,
                    cpage.id().0,
                    pp.module_id() as u64,
                );
                self.map_page(ctx, entry, vpn, pp, true, g);
                Ok(FaultResolution::RemoteMapped)
            }
        }
    }

    /// Migrates the page's single copy to the faulting processor's node:
    /// copy the data here, invalidate every other translation, reclaim
    /// the old copies. `write` faults leave the page modified and mapped
    /// writable; read migrations (the migrate-only baseline chasing a
    /// read) leave a single read-only copy.
    fn migrate_here(
        &self,
        ctx: &mut UserCtx,
        cpage: &Cpage,
        g: &mut CpageInner,
        entry: &CmapEntry,
        vpn: u64,
        write: bool,
    ) -> Result<FaultResolution> {
        let me = ctx.core.id();
        // Copy sources are stable: either read-only replicas or a single
        // modified copy whose writers we are about to invalidate — and no
        // writer can race us while we hold the page lock, because
        // granting write access requires this lock.
        let src = g.copies[0];
        let pp = self.alloc_frame(ctx, me, cpage, &g.copies_mask)?;
        // Invalidate every translation to the old copies, ours included.
        let dying = g.copies_mask.clone();
        let everyone_else = ProcSet::full(self.machine().nprocs()).without(me);
        let mut batch = ctx.take_batch();
        self.batch_post(
            ctx,
            &mut batch,
            cpage.id(),
            g,
            Directive::Invalidate,
            &everyone_else,
        );
        cpage.signal().set_epoch();
        if ctx.pmap.remove(ctx.space().id(), vpn).is_some() {
            let asid = ctx.space().asid();
            ctx.core.atc().invalidate(asid, vpn);
        }
        // Overlap the block transfer with the targets' own Pmap updates
        // when no awaited target holds a writable translation (readers
        // cannot tear the source); otherwise wait the writers out first.
        // The virtual-time charges are identical either way — the ack
        // wait is a real-time handshake that charges nothing — so the
        // overlap is pure host-time overlap.
        let out;
        let src = if !g.writer_mask.intersects(&batch.awaited()) {
            cpage.signal().set_transfer();
            let src = self.copy_page(ctx, cpage, g, src, pp);
            cpage.signal().clear_transfer();
            out = self.batch_flush(ctx, &mut batch);
            src
        } else {
            out = self.batch_flush(ctx, &mut batch);
            self.copy_page(ctx, cpage, g, src, pp)
        };
        ctx.put_batch(batch);
        self.reclaim_copies(ctx, cpage, g, &dying)?;
        g.writer_mask.clear();
        g.remote_map_mask.clear();
        g.add_copy(pp);
        g.state = if write {
            CpState::Modified
        } else {
            CpState::Present1
        };
        g.last_invalidation = Some(ctx.core.vtime());
        g.migrations += 1;
        if g.frozen {
            g.frozen = false;
            g.thaws += 1;
            self.record(me, ctx.core.vtime(), EventKind::Thaw, 1, cpage.id().0, 0);
        }
        if out.escalated {
            // A shootdown target exhausted its ack-retry budget: fall
            // back to the paper's degraded mode and freeze the page so
            // further faults remote-map instead of moving it again.
            self.freeze_degraded(ctx, cpage, g);
        }
        self.record(
            me,
            ctx.core.vtime(),
            EventKind::Migrate,
            0,
            cpage.id().0,
            src.module_id() as u64,
        );
        self.record(
            me,
            ctx.core.vtime(),
            EventKind::Invalidate,
            0,
            cpage.id().0,
            me as u64,
        );
        self.map_page(ctx, entry, vpn, pp, write, g);
        cpage.signal().clear_epoch();
        Ok(FaultResolution::Migrated)
    }

    /// Invalidates the translations pointing into `dying` (a module set)
    /// and reclaims those frames. Translations to surviving copies are
    /// left alone thanks to the module-selective directive. Returns
    /// whether the shootdown escalated (a dropped-ack ladder exhausted
    /// its retries); callers that leave the page modified react by
    /// freezing it.
    fn invalidate_copies(
        &self,
        ctx: &mut UserCtx,
        cpage: &Cpage,
        g: &mut CpageInner,
        dying: &ProcSet,
    ) -> Result<bool> {
        // Target processors on the dying modules plus any processor known
        // to hold a remote mapping (§3.1: the target set "is restricted to
        // those that are actually using a mapping for this Cpage").
        let filter = dying.union(&g.remote_map_mask);
        let out = self.shootdown(
            ctx,
            cpage.id(),
            g,
            Directive::InvalidateModules(dying.clone()),
            &filter,
        );
        self.reclaim_copies(ctx, cpage, g, dying)?;
        Ok(out.escalated)
    }

    /// Frees every directory copy on the modules in `mask`.
    fn reclaim_copies(
        &self,
        ctx: &mut UserCtx,
        cpage: &Cpage,
        g: &mut CpageInner,
        mask: &ProcSet,
    ) -> Result<()> {
        // A transfer sourced from this directory must never overlap frame
        // reclamation: the copy engine could read a frame that is already
        // back in the free pool.
        debug_assert!(!cpage.signal().load().transfer());
        let mut dying = std::mem::take(&mut ctx.scratch.dying);
        dying.clear();
        dying.extend(
            g.copies
                .iter()
                .copied()
                .filter(|pp| mask.contains(pp.module_id())),
        );
        for &pp in &dying {
            g.remove_copy_on(pp.module_id());
            // "Freeing a physical page uses one remote memory read and one
            // write" (§4).
            ctx.core.charge_kernel_ref(pp.module_id(), AccessKind::Read);
            ctx.core
                .charge_kernel_ref(pp.module_id(), AccessKind::Write);
            self.machine()
                .module(pp.module_id())
                .free_frame(pp.frame_id());
            self.record(
                ctx.core.id(),
                ctx.core.vtime(),
                EventKind::FrameFree,
                0,
                cpage.id().0,
                pp.module_id() as u64,
            );
        }
        dying.clear();
        ctx.scratch.dying = dying;
        Ok(())
    }

    /// Freezes the page because a shootdown escalated: a target exhausted
    /// its ack-retry budget, so the kernel stops moving the page around
    /// and falls back to the paper's degraded mode (remote references to
    /// a single pinned copy) until the defrost daemon thaws it. Code 2 in
    /// the `Freeze` event distinguishes escalation from a policy freeze.
    fn freeze_degraded(&self, ctx: &mut UserCtx, cpage: &Cpage, g: &mut CpageInner) {
        if g.frozen || g.state != CpState::Modified {
            return;
        }
        g.frozen = true;
        g.freezes += 1;
        self.record(
            ctx.core.id(),
            ctx.core.vtime(),
            EventKind::Freeze,
            2,
            cpage.id().0,
            0,
        );
        self.defrost.enroll(cpage.id());
    }

    /// Marks the page frozen and enrolls it with the defrost daemon, when
    /// the policy asked for a freeze and the state allows it (a frozen
    /// page is always in the modified state, §4.2).
    fn freeze_if_needed(&self, ctx: &mut UserCtx, cpage: &Cpage, g: &mut CpageInner, freeze: bool) {
        if freeze && !g.frozen && g.state == CpState::Modified {
            g.frozen = true;
            g.freezes += 1;
            let now = ctx.core.vtime();
            let age = g
                .last_invalidation
                .map(|t| now.saturating_sub(t))
                .unwrap_or(u64::MAX);
            self.record(ctx.core.id(), now, EventKind::Freeze, 0, cpage.id().0, age);
            self.defrost.enroll(cpage.id());
        }
    }

    // ------------------------------------------------------------------
    // Mechanics
    // ------------------------------------------------------------------

    /// Installs the translation on the faulting processor: Pmap entry,
    /// ATC entry, reference-mask bit, writer bookkeeping.
    fn map_page(
        &self,
        ctx: &mut UserCtx,
        entry: &CmapEntry,
        vpn: u64,
        pp: PhysPage,
        writable: bool,
        g: &mut CpageInner,
    ) {
        let span = self.hostprof.begin();
        let me = ctx.core.id();
        self.charge_refs_local(ctx, self.config().costs.map_refs);
        ctx.pmap
            .enter(ctx.space.id(), vpn, crate::pmap::PmapEntry { pp, writable });
        let asid = ctx.space.asid();
        ctx.core.atc_insert(asid, vpn, pp, writable);
        entry.set_ref(me);
        if writable {
            g.writer_mask.insert(me);
            debug_assert_eq!(g.state, CpState::Modified);
        }
        if pp.module_id() == me {
            g.remote_map_mask.remove(me);
        } else {
            // Remote frame: make sure module-selective shootdowns reach
            // us. Fault paths pre-set this bit; allocation fallback can
            // also land a "local" placement on another module.
            g.remote_map_mask.insert(me);
        }
        debug_assert!(g.check_invariants().is_ok(), "{:?}", g.check_invariants());
        self.hostprof.end(HostPhase::Directory, span);
    }

    /// Block-transfers the page from a directory copy into the
    /// not-yet-published frame `dst`, surviving injected source read
    /// errors (rotate to another valid copy) and mid-copy transfer
    /// failures (whole-page retry). `dst` is invisible to the directory
    /// and to every translation until the copy verifies, so a torn
    /// prefix is never observable. Returns the source actually used.
    fn copy_page(
        &self,
        ctx: &mut UserCtx,
        cpage: &Cpage,
        g: &CpageInner,
        src: PhysPage,
        dst: PhysPage,
    ) -> PhysPage {
        let span = self.hostprof.begin();
        let out = self.copy_page_inner(ctx, cpage, g, src, dst);
        self.hostprof.end(HostPhase::Transfer, span);
        out
    }

    fn copy_page_inner(
        &self,
        ctx: &mut UserCtx,
        cpage: &Cpage,
        g: &CpageInner,
        mut src: PhysPage,
        dst: PhysPage,
    ) -> PhysPage {
        let Some(plan) = self.fault_plan() else {
            ctx.core.block_transfer(src, dst);
            return src;
        };
        let me = ctx.core.id();
        let mut begin: Option<u64> = None;
        let mut first_site: Option<FaultSite> = None;
        let mut attempt = 0u32;
        loop {
            let src_key = (src.module_id() as u64) << 32 | src.frame_id() as u64;
            if plan.should_inject(FaultSite::FrameRead, ctx.core.vtime(), src_key, attempt) {
                // The source module returns garbage: rotate to another
                // directory copy when one exists, else re-read the same
                // one (forced good at the retry budget).
                begin.get_or_insert(ctx.core.vtime());
                first_site.get_or_insert(FaultSite::FrameRead);
                ctx.core.charge(plan.retry_ns());
                self.record(
                    me,
                    ctx.core.vtime(),
                    EventKind::MemError,
                    attempt.min(255) as u8,
                    cpage.id().0,
                    src.module_id() as u64,
                );
                if g.copies.len() > 1 {
                    let pos = g.copies.iter().position(|&c| c == src).unwrap_or(0);
                    src = g.copies[(pos + 1) % g.copies.len()];
                }
                attempt += 1;
                continue;
            }
            let dst_key = (dst.module_id() as u64) << 32 | dst.frame_id() as u64;
            if plan.should_inject(FaultSite::BlockTransfer, ctx.core.vtime(), dst_key, attempt) {
                // The engine dies mid-copy: pay for the half transfer it
                // managed, then retry the whole page.
                begin.get_or_insert(ctx.core.vtime());
                first_site.get_or_insert(FaultSite::BlockTransfer);
                ctx.core.failed_block_transfer(src, dst, 50);
                self.record(
                    me,
                    ctx.core.vtime(),
                    EventKind::TransferFault,
                    attempt.min(255) as u8,
                    cpage.id().0,
                    src.module_id() as u64,
                );
                attempt += 1;
                continue;
            }
            ctx.core.block_transfer(src, dst);
            if let (Some(b), Some(site)) = (begin, first_site) {
                self.record(
                    me,
                    ctx.core.vtime(),
                    EventKind::FaultRecovery,
                    site as u8,
                    cpage.id().0,
                    b,
                );
            }
            return src;
        }
    }

    /// Finds the local copy of `cpage` through the inverted page table,
    /// charging the probes as local references (§3.3: cheaper than
    /// searching the remote directory list).
    fn ipt_find(&self, ctx: &mut UserCtx, node: usize, cpage: &Cpage) -> Result<PhysPage> {
        let probe = self.machine().module(node).find_frame_of(cpage.id().0);
        ctx.core.charge_word_block(
            PhysPage::new(node, 0),
            AccessKind::Read,
            probe.probes as u64,
        );
        probe
            .frame
            .map(|f| PhysPage::new(node, f))
            .ok_or_else(|| panic!("directory says node {node} has a copy but the IPT disagrees"))
    }

    /// Allocates a frame for `cpage`, preferring `node`, through the
    /// inverted page table. Under memory pressure, evicts replicas of
    /// other pages from a module before giving up on it; a module that
    /// cannot yield a frame — or that the fault plan makes refuse — is
    /// skipped for the next one in ring order. `avoid` is a module set
    /// to never place on (the existing directory copies, so a replica
    /// cannot double up on a module). [`KernelError::OutOfMemory`] only
    /// when every eligible module refuses.
    fn alloc_frame(
        &self,
        ctx: &mut UserCtx,
        node: usize,
        cpage: &Cpage,
        avoid: &ProcSet,
    ) -> Result<PhysPage> {
        let n = self.machine().nprocs(); // one memory module per node
        let plan = self.fault_plan();
        let mut recover_begin: Option<u64> = None;
        // Two passes over the ring: the first is subject to injected
        // transient refusals, the second is not — a transient refusal may
        // redirect an allocation but must never manufacture OutOfMemory
        // when a module still has frames. Persistent denials
        // (`alloc_denied`) hold in both passes.
        let passes = if plan.is_some() { 2 } else { 1 };
        for (pass, i) in (0..passes * n).map(|k| (k / n, k % n)) {
            let m = (node + i) % n;
            if avoid.contains(m) {
                continue;
            }
            if let Some(plan) = plan {
                if plan.alloc_denied(m)
                    || (pass == 0
                        && plan.should_inject(
                            FaultSite::FrameAlloc,
                            ctx.core.vtime(),
                            m as u64,
                            i as u32,
                        ))
                {
                    // The module refuses the allocation; fall back to the
                    // next-best module in the ring.
                    recover_begin.get_or_insert(ctx.core.vtime());
                    self.record(
                        ctx.core.id(),
                        ctx.core.vtime(),
                        EventKind::AllocFault,
                        i.min(255) as u8,
                        cpage.id().0,
                        m as u64,
                    );
                    continue;
                }
            }
            loop {
                match self.machine().module(m).alloc_frame(cpage.id().0) {
                    Some(probe) => {
                        ctx.core.charge_word_block(
                            PhysPage::new(m, 0),
                            AccessKind::Atomic,
                            probe.probes as u64,
                        );
                        if let Some(b) = recover_begin {
                            self.record(
                                ctx.core.id(),
                                ctx.core.vtime(),
                                EventKind::FaultRecovery,
                                FaultSite::FrameAlloc as u8,
                                cpage.id().0,
                                b,
                            );
                        }
                        return Ok(PhysPage::new(
                            m,
                            probe.frame.expect("alloc returns a frame"),
                        ));
                    }
                    None => {
                        if !self.reclaim_replica(ctx, m, cpage.id()) {
                            break; // genuinely full: try the next module
                        }
                    }
                }
            }
        }
        Err(KernelError::OutOfMemory)
    }

    /// Zero-fill cost for a fresh page (a fast local clear loop).
    fn charge_zero_fill(&self, ctx: &mut UserCtx) {
        let words = self.machine().cfg().words_per_page() as u64;
        // ~80 ns/word: a tight clear loop is much faster than discrete
        // word stores on the 68020.
        ctx.core.charge(words * 80);
    }

    /// Charges `n` modelled kernel-structure references at `module`.
    pub(crate) fn charge_refs(&self, ctx: &mut UserCtx, module: usize, n: u32) {
        ctx.core
            .charge_word_block(PhysPage::new(module, 0), AccessKind::Read, u64::from(n));
    }

    /// Charges `n` local kernel references.
    pub(crate) fn charge_refs_local(&self, ctx: &mut UserCtx, n: u32) {
        let me = ctx.core.id();
        ctx.core
            .charge_word_block(PhysPage::new(me, 0), AccessKind::Read, u64::from(n));
    }
}
