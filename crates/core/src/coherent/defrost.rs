//! The defrost daemon (§4.2 of the paper).
//!
//! "The Cpage module maintains a list of frozen Cpages and a clock
//! interrupt every t2 seconds activates the defrost daemon to invalidate
//! all mappings to the frozen pages. Subsequent access attempts will
//! cause faults that may replicate or migrate a recently thawed coherent
//! page."
//!
//! In the simulator the daemon runs on whichever processor first notices
//! that its virtual clock crossed the next activation time — the moral
//! equivalent of the clock interrupt dispatching the daemon to a
//! processor. Thawing does not count as a protocol invalidation, so a
//! thawed page is immediately eligible for replication again.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use numa_machine::{ProcSet, Va};
use platinum_trace::EventKind;

use crate::coherent::cmap::Directive;
use crate::coherent::cpage::{CpState, CpageInner};
use crate::error::{KernelError, Result};
use crate::ids::CpageId;
use crate::kernel::Kernel;
use crate::user::UserCtx;

/// Number of stripes over the frozen-page list. Freezes happen on the
/// fault path of every processor; striping by page id keeps concurrent
/// enrollments on a big machine off one lock.
const FROZEN_SHARDS: usize = 16;

/// The defrost daemon's state: the frozen-page list (striped by page id)
/// and the next activation time.
pub struct DefrostState {
    frozen: Box<[Mutex<Vec<CpageId>>]>,
    next_run: AtomicU64,
    t2_ns: u64,
}

impl DefrostState {
    /// Creates the daemon state with period `t2_ns`.
    pub fn new(t2_ns: u64) -> Self {
        let mut frozen = Vec::with_capacity(FROZEN_SHARDS);
        frozen.resize_with(FROZEN_SHARDS, || Mutex::new(Vec::new()));
        Self {
            frozen: frozen.into_boxed_slice(),
            next_run: AtomicU64::new(t2_ns),
            t2_ns,
        }
    }

    #[inline]
    fn shard(&self, id: CpageId) -> &Mutex<Vec<CpageId>> {
        &self.frozen[(id.0 as usize) % FROZEN_SHARDS]
    }

    /// Enrolls a freshly frozen page.
    pub fn enroll(&self, id: CpageId) {
        let mut list = self.shard(id).lock();
        if !list.contains(&id) {
            list.push(id);
        }
    }

    /// The number of pages currently enrolled (some may have been thawed
    /// by other means and are skipped at the next run).
    pub fn enrolled(&self) -> usize {
        self.frozen.iter().map(|s| s.lock().len()).sum()
    }

    /// Claims a daemon activation if `now` has crossed the next run time.
    /// Returns whether the caller should run the daemon.
    fn claim(&self, now: u64) -> bool {
        let next = self.next_run.load(Ordering::Relaxed);
        if now < next {
            return false;
        }
        self.next_run
            .compare_exchange(next, now + self.t2_ns, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
    }

    /// Takes the current frozen list, leaving it empty. Stripe-major
    /// order; within a stripe, enrollment order.
    fn take(&self) -> Vec<CpageId> {
        let mut out = Vec::new();
        for s in self.frozen.iter() {
            out.append(&mut s.lock());
        }
        out
    }
}

impl Kernel {
    /// Runs the defrost daemon on `ctx`'s processor if its period has
    /// elapsed. Called from the kernel entry path.
    pub(crate) fn maybe_defrost(&self, ctx: &mut UserCtx) {
        if !self.defrost.claim(ctx.core.vtime()) {
            return;
        }
        self.run_defrost(ctx);
    }

    /// Unconditionally runs one defrost pass: thaws every enrolled page
    /// by invalidating all mappings to it.
    ///
    /// The pass is the flagship [`ShootdownBatch`] client: every frozen
    /// page's invalidation directives are posted up front (with per-page
    /// charges and records identical to thawing the pages one at a time)
    /// and all acknowledgments are awaited in a single combined round, so
    /// the daemon pays one IPI round-trip latency for the whole list
    /// instead of one per page.
    ///
    /// [`ShootdownBatch`]: crate::coherent::shootdown::ShootdownBatch
    pub fn run_defrost(&self, ctx: &mut UserCtx) {
        ctx.core.charge(self.config().costs.defrost_run_ns);
        let list = self.defrost.take();
        let examined = list.len() as u64;
        let mut thawed = 0u64;
        // Lock in page-id order (concurrent multi-page initiators must
        // not acquire in conflicting orders), thaw in enrollment order —
        // the order a page-at-a-time daemon charges. Guards are held
        // until the flush so no fault sees a half-thawed batch.
        let pages: Vec<_> = list.iter().filter_map(|&id| self.cpages.get(id)).collect();
        let mut order: Vec<usize> = (0..pages.len()).collect();
        order.sort_unstable_by_key(|&i| pages[i].id());
        let mut guards: Vec<Option<parking_lot::MutexGuard<CpageInner>>> = Vec::new();
        guards.resize_with(pages.len(), || None);
        for &i in &order {
            guards[i] = Some(self.lock_cpage(ctx, &pages[i]));
        }
        let mut batch = ctx.take_batch();
        for (i, cpage) in pages.iter().enumerate() {
            let g = guards[i].as_mut().expect("locked above");
            if self.thaw_locked(ctx, &mut batch, cpage, g) {
                thawed += 1;
            }
        }
        self.batch_flush(ctx, &mut batch);
        ctx.put_batch(batch);
        drop(guards);
        self.record(
            ctx.core.id(),
            ctx.core.vtime(),
            EventKind::DefrostRun,
            0,
            examined,
            thawed,
        );
    }

    /// Thaws one coherent page: invalidates every translation so the next
    /// access faults and the policy can decide afresh. Returns whether
    /// the page was actually thawed (it may have been thawed by other
    /// means since enrollment). A batch of one.
    pub(crate) fn thaw_cpage(&self, ctx: &mut UserCtx, id: CpageId) -> bool {
        let Some(cpage) = self.cpages.get(id) else {
            return false;
        };
        let mut g = self.lock_cpage(ctx, &cpage);
        let mut batch = ctx.take_batch();
        let thawed = self.thaw_locked(ctx, &mut batch, &cpage, &mut g);
        self.batch_flush(ctx, &mut batch);
        ctx.put_batch(batch);
        thawed
    }

    /// Thaw body run under the page lock: posts the invalidation
    /// directives into `batch` (the caller flushes) and resets the
    /// directory to a single unfrozen read-only copy.
    fn thaw_locked(
        &self,
        ctx: &mut UserCtx,
        batch: &mut crate::coherent::shootdown::ShootdownBatch,
        cpage: &crate::coherent::cpage::Cpage,
        g: &mut CpageInner,
    ) -> bool {
        if !g.frozen {
            // Thawed by other means (migration under the thaw-on-access
            // variant, explicit thaw) since enrollment.
            return false;
        }
        debug_assert_eq!(g.state, CpState::Modified, "frozen implies modified");
        // Invalidate all mappings, the initiator's included.
        let everyone = ProcSet::full(self.machine().nprocs());
        self.batch_post(ctx, batch, cpage.id(), g, Directive::Invalidate, &everyone);
        let me = ctx.core.id();
        for &(as_id, vpn) in &g.bindings {
            if ctx.space().id() == as_id && ctx.pmap.remove(as_id, vpn).is_some() {
                let asid = ctx.space().asid();
                ctx.core.atc().invalidate(asid, vpn);
                if let Ok(space) = self.space(as_id) {
                    if let Some(e) = space.cmap().entry(vpn) {
                        e.clear_ref(me);
                    }
                }
            }
        }
        g.frozen = false;
        g.thaws += 1;
        g.writer_mask.clear();
        g.remote_map_mask.clear();
        // One copy, no writable mappings: the page re-enters present1 and
        // the next fault consults the policy with the old invalidation
        // history (thawing itself is not an invalidation).
        g.state = CpState::Present1;
        self.record(me, ctx.core.vtime(), EventKind::Thaw, 0, cpage.id().0, 0);
        debug_assert!(g.check_invariants().is_ok(), "{:?}", g.check_invariants());
        true
    }

    /// Explicitly thaws the page backing `va` in `ctx`'s address space —
    /// the "simple mechanism for thawing pages" exposed to run-time
    /// support (§4.2).
    pub(crate) fn thaw_va(&self, ctx: &mut UserCtx, va: Va) -> Result<()> {
        let vpn = ctx.space().vpn_of(va);
        let entry = ctx.space().cmap().entry(vpn).ok_or(KernelError::Access(
            numa_machine::AccessErr::NoTranslation(va),
        ))?;
        self.thaw_cpage(ctx, entry.cpage);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_fires_once_per_period() {
        let d = DefrostState::new(1000);
        assert!(!d.claim(500), "before the period");
        assert!(d.claim(1000));
        assert!(!d.claim(1000), "second claim in the same period loses");
        assert!(d.claim(2500));
        assert!(!d.claim(2600));
    }

    #[test]
    fn enroll_deduplicates() {
        let d = DefrostState::new(1000);
        d.enroll(CpageId(3));
        d.enroll(CpageId(3));
        d.enroll(CpageId(4));
        assert_eq!(d.enrolled(), 2);
        assert_eq!(d.take().len(), 2);
        assert_eq!(d.enrolled(), 0);
    }
}
