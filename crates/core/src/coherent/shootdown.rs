//! The NUMA shootdown mechanism (§3.1 of the paper).
//!
//! "Part of the protocol is performed by the processor initiating the
//! shootdown and part is performed by the processors sharing the address
//! space with the initiator. They communicate through the Cmap message
//! queues and synchronize through interprocessor interrupts."
//!
//! The initiator posts a [`CmapMsg`] to the queue of every address space
//! the coherent page is bound in, interrupts only the targets that (a)
//! actually hold a translation (the Cmap entry's reference mask) and (b)
//! currently have the space active, and then waits for those targets to
//! acknowledge. Inactive targets apply the change when they next activate
//! the space — before running any thread in it — so they are never
//! interrupted and never waited for. This is the key difference from the
//! Mach mechanism, which "must interrupt each processor with the address
//! space activated, even if that processor has never referenced the
//! page"; the [`ShootdownMode::SharedPmapStall`] comparator models that
//! behaviour for the §4 measurement.
//!
//! # Batching
//!
//! Multi-page invalidations (the defrost daemon's thaw pass, region
//! unmap) go through a [`ShootdownBatch`]: directives for many pages are
//! posted up front — with exactly the per-page charges, records, and
//! doorbell interrupts a sequential initiator would issue — and the
//! acknowledgment wait runs once over the whole set instead of once per
//! page. The doorbell is a level-triggered flag, so N posts before a
//! target's next service are one interrupt to it either way, and the wait
//! itself is a real-time handshake that charges nothing; a batch is
//! therefore observation-equivalent (virtual times, counters, trace
//! events) to the same pages shot down one at a time. The proptests at
//! the bottom of this file pin that equivalence down.

use std::sync::Arc;

use numa_machine::{AccessKind, PhysPage, ProcSet};

use platinum_faults::FaultSite;
use platinum_trace::EventKind;

use crate::coherent::cmap::{CmapMsg, Directive};
use crate::coherent::cpage::CpageInner;
use crate::hostprof::HostPhase;
use crate::ids::CpageId;
use crate::kernel::{Kernel, ShootdownMode};
use crate::user::UserCtx;

/// What a shootdown did, for statistics and the §4 micro-benchmarks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShootdownOutcome {
    /// Distinct processors that must eventually apply the change, summed
    /// per page.
    pub targets: u32,
    /// Interprocessor interrupts actually sent (targets with the space
    /// active, or in Mach mode every active processor).
    pub ipis: u32,
    /// Pages whose directives this operation posted (1 for a plain
    /// shootdown; the batch clients post many).
    pub pages: u32,
    /// Acknowledgment-wait rounds performed: 1 when any active target had
    /// to be awaited, else 0. A batch waits once for all its pages, so
    /// `rounds < pages` is the coalescing win.
    pub rounds: u32,
    /// Whether an injected dropped-ack ladder exhausted its retry budget;
    /// callers that leave the page in the modified state react by
    /// freezing it (the paper's own degraded mode).
    pub escalated: bool,
}

/// An in-flight multi-page shootdown: the posted messages awaiting
/// acknowledgment and the accumulated accounting.
///
/// One batch lives in each processor's [`FaultScratch`] and is taken with
/// [`UserCtx::take_batch`] for the duration of an operation, so the
/// steady state posts and flushes without heap allocation. Clients call
/// [`Kernel::batch_post`] (or [`Kernel::batch_post_space`]) once per
/// page — interleaving their own per-page directory updates, which is
/// safe because they hold every affected page lock until the flush — and
/// then [`Kernel::batch_flush`] exactly once.
///
/// [`FaultScratch`]: crate::coherent::scratch::FaultScratch
#[derive(Default)]
pub(crate) struct ShootdownBatch {
    /// Posted messages and, for each, the set of *active* targets the
    /// flush must wait on.
    posted: Vec<(Arc<CmapMsg>, ProcSet)>,
    /// Per-page scratch for targets whose IPI was dropped by fault
    /// injection; drained by the recovery ladder within each post.
    dropped: Vec<usize>,
    targets: u32,
    ipis: u32,
    pages: u32,
    escalated: bool,
}

impl ShootdownBatch {
    /// Union of the active-target sets the flush will wait on.
    pub(crate) fn awaited(&self) -> ProcSet {
        self.posted
            .iter()
            .fold(ProcSet::empty(), |acc, (_, a)| acc.union(a))
    }

    /// Resets the accounting and buffers for reuse, keeping capacity.
    fn clear(&mut self) {
        self.posted.clear();
        self.dropped.clear();
        self.targets = 0;
        self.ipis = 0;
        self.pages = 0;
        self.escalated = false;
    }
}

impl Kernel {
    /// Initiates a shootdown for the coherent page whose inner state is
    /// `g`, posting `directive` to every address space the page is bound
    /// in. Only processors in `filter` are targeted; the initiator is
    /// always excluded and handles its own mappings inline.
    ///
    /// Blocks (polling its own IPI doorbell, so concurrent initiators
    /// cannot deadlock) until every *active* target acknowledged. After
    /// return, no processor can use a translation the directive removed
    /// or restricted. A plain shootdown is a batch of one page.
    pub(crate) fn shootdown(
        &self,
        ctx: &mut UserCtx,
        page: CpageId,
        g: &CpageInner,
        directive: Directive,
        filter: &ProcSet,
    ) -> ShootdownOutcome {
        let mut batch = ctx.take_batch();
        self.batch_post(ctx, &mut batch, page, g, directive, filter);
        let out = self.batch_flush(ctx, &mut batch);
        ctx.put_batch(batch);
        out
    }

    /// Posts `directive` for one page into `batch`: one message per bound
    /// address space, the per-page reference charges, the doorbell
    /// interrupts to active targets, the `ShootdownInit` record, and any
    /// dropped-ack recovery ladder — everything a sequential shootdown
    /// does except the acknowledgment wait, which [`Kernel::batch_flush`]
    /// performs once for the whole batch.
    pub(crate) fn batch_post(
        &self,
        ctx: &mut UserCtx,
        batch: &mut ShootdownBatch,
        page: CpageId,
        g: &CpageInner,
        directive: Directive,
        filter: &ProcSet,
    ) {
        let span = self.hostprof.begin();
        let me = ctx.core.id();
        let costs = &self.config().costs;
        let mach_mode = self.config().shootdown == ShootdownMode::SharedPmapStall;

        let mut all_targets = ProcSet::empty();
        batch.dropped.clear();

        for bi in 0..g.bindings.len() {
            let (as_id, vpn) = g.bindings[bi];
            // The faulting space is almost always the bound one; skip the
            // registry on that path.
            let space = if as_id == ctx.space().id() {
                Arc::clone(ctx.space())
            } else {
                match self.space(as_id) {
                    Ok(s) => s,
                    Err(_) => continue,
                }
            };
            let Some(refs) = space.cmap().refs_of(vpn) else {
                continue;
            };
            let targets = refs.intersect(filter).without(me);
            if targets.is_empty() {
                continue;
            }
            all_targets.insert_all(&targets);
            let msg = ctx.alloc_msg(vpn, directive.clone(), &targets);
            self.charge_refs_at(ctx, space.home(), costs.post_msg_refs, AccessKind::Write);
            space.cmap().post(Arc::clone(&msg));

            // Interrupt the targets that have the space active; the rest
            // will apply the change on activation. The activity word's
            // ordering pairs this check against concurrent
            // (de)activation: whoever sees the other's effect first, the
            // message is never missed.
            let mut awaited = ProcSet::empty();
            if mach_mode {
                // Mach comparator: every processor with the space active
                // is interrupted and stalled, referenced or not.
                for p in 0..self.machine().nprocs() {
                    if p == me {
                        continue;
                    }
                    if self.slots[p].active.is_active(as_id.0) {
                        ctx.core
                            .charge(self.machine().cfg().timing.ipi_ns + costs.mach_stall_extra_ns);
                        self.record(me, ctx.core.vtime(), EventKind::Ipi, 0, page.0, p as u64);
                        batch.ipis += 1;
                        if targets.contains(p) {
                            awaited.insert(p);
                            if self.ipi_lost(ctx.core.vtime(), p) {
                                batch.dropped.push(p);
                                continue;
                            }
                        }
                        self.machine().post_ipi(p);
                    }
                }
            } else {
                for p in targets.iter() {
                    if self.slots[p].active.is_active(as_id.0) {
                        ctx.core.charge(self.machine().cfg().timing.ipi_ns);
                        self.record(me, ctx.core.vtime(), EventKind::Ipi, 0, page.0, p as u64);
                        batch.ipis += 1;
                        awaited.insert(p);
                        if self.ipi_lost(ctx.core.vtime(), p) {
                            batch.dropped.push(p);
                            continue;
                        }
                        self.machine().post_ipi(p);
                    }
                }
            }
            batch.posted.push((msg, awaited));
            // Replicated page tables: the mapping change also stales the
            // per-node translation replicas of this space. The
            // invalidations piggyback on the IPI round just posted (one
            // branch under the centralized default).
            self.ptable_invalidate(ctx, &space, &targets);
        }

        self.finish_post(ctx, batch, page, &directive, &all_targets);
        self.hostprof.end(HostPhase::Shootdown, span);
    }

    /// Posts `directive` for one page to a *single* address space with an
    /// explicit target set — the unmap path, where the Cmap entry and
    /// the binding are already torn down and only this space's
    /// translations die.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn batch_post_space(
        &self,
        ctx: &mut UserCtx,
        batch: &mut ShootdownBatch,
        page: CpageId,
        space: &crate::vm::space::AddressSpace,
        vpn: u64,
        directive: Directive,
        targets: &ProcSet,
    ) {
        let span = self.hostprof.begin();
        let me = ctx.core.id();
        batch.dropped.clear();
        let msg = ctx.alloc_msg(vpn, directive.clone(), targets);
        space.cmap().post(Arc::clone(&msg));
        let mut awaited = ProcSet::empty();
        for p in targets.iter() {
            if self.slots[p].active.is_active(space.id().0) {
                ctx.core.charge(self.machine().cfg().timing.ipi_ns);
                self.record(me, ctx.core.vtime(), EventKind::Ipi, 0, page.0, p as u64);
                batch.ipis += 1;
                awaited.insert(p);
                if self.ipi_lost(ctx.core.vtime(), p) {
                    batch.dropped.push(p);
                    continue;
                }
                self.machine().post_ipi(p);
            }
        }
        batch.posted.push((msg, awaited));
        // As in `batch_post`: stale the per-node translation replicas of
        // the unmapped space, riding the IPI round just posted.
        self.ptable_invalidate(ctx, space, targets);
        self.finish_post(ctx, batch, page, &directive, targets);
        self.hostprof.end(HostPhase::Shootdown, span);
    }

    /// Shared tail of a per-page post: the `ShootdownInit` record and the
    /// dropped-ack recovery ladder. The ladder runs here — inside the
    /// page's post, exactly where a sequential shootdown runs it — so its
    /// timeout and retry charges land at the same virtual times whether
    /// or not the page is part of a larger batch.
    fn finish_post(
        &self,
        ctx: &mut UserCtx,
        batch: &mut ShootdownBatch,
        page: CpageId,
        directive: &Directive,
        all_targets: &ProcSet,
    ) {
        // Counted per shootdown page, like the IPIs above are counted per
        // interrupt: the ShootdownInit count is the number of shootdown
        // operations initiated, whether or not any target needed work.
        let code = match directive {
            Directive::Invalidate => 0,
            Directive::InvalidateModules(_) => 1,
            Directive::RestrictToRead => 2,
        };
        self.record(
            ctx.core.id(),
            ctx.core.vtime(),
            EventKind::ShootdownInit,
            code,
            page.0,
            all_targets.count() as u64,
        );
        batch.targets += all_targets.count() as u32;
        batch.pages += 1;

        // Resolve any IPIs lost to fault injection before moving on: the
        // ladder ends with a forced delivery, so the flush's wait can
        // never hang on a dropped interrupt.
        if !batch.dropped.is_empty() {
            let mut dropped = std::mem::take(&mut batch.dropped);
            batch.escalated |= self.resolve_dropped_acks(ctx, page.0, &dropped);
            dropped.clear();
            batch.dropped = dropped;
        }
    }

    /// Completes the batch: waits until every awaited target acknowledged
    /// every posted message, then returns the accumulated outcome and
    /// resets the batch for reuse.
    pub(crate) fn batch_flush(
        &self,
        ctx: &mut UserCtx,
        batch: &mut ShootdownBatch,
    ) -> ShootdownOutcome {
        let span = self.hostprof.begin();
        // Wait for the active targets. Poll our own doorbell throughout:
        // another initiator may be shooting *us* down at the same time,
        // and servicing it is what breaks the symmetry.
        //
        // Note that this wait is a *real-time* correctness handshake (no
        // target may use a revoked translation once we proceed), not a
        // virtual-time cost: on the real machine the interrupt reaches
        // the target within ~7 us no matter what it is executing, so the
        // initiator's clock is charged the IPI cost above and is NOT
        // dragged to the target's (skewed) clock. Waiting once for many
        // pages is therefore observation-equivalent to waiting after
        // each, and it overlaps every target's handler with every other's.
        let mut rounds = 0u32;
        for (msg, awaited) in &batch.posted {
            let mut spins = 0u32;
            if msg.pending_intersects(awaited) {
                rounds = 1;
            }
            while msg.pending_intersects(awaited) {
                if ctx.core.take_ipi() {
                    ctx.drain_messages();
                }
                std::hint::spin_loop();
                spins = spins.wrapping_add(1);
                if spins.is_multiple_of(8) {
                    std::thread::yield_now();
                }
            }
        }
        let out = ShootdownOutcome {
            targets: batch.targets,
            ipis: batch.ipis,
            pages: batch.pages,
            rounds,
            escalated: batch.escalated,
        };
        batch.clear();
        self.hostprof.end(HostPhase::Shootdown, span);
        out
    }

    /// Fault hook: decides whether the shootdown IPI just sent to
    /// `target` is lost in transit. One pointer test on healthy runs.
    #[inline]
    pub(crate) fn ipi_lost(&self, vtime: u64, target: usize) -> bool {
        match self.fault_plan() {
            Some(plan) => plan.should_inject(FaultSite::ShootdownAck, vtime, target as u64, 0),
            None => false,
        }
    }

    /// Recovers from shootdown IPIs lost to fault injection: for each
    /// silent target the initiator waits out an ack timeout (exponential
    /// backoff), resends the interrupt, and repeats until a resend gets
    /// through or the retry budget is exhausted — at which point delivery
    /// is forced (the plan injects nothing at or past `max_retries`, so
    /// the protocol stays live) and the ladder reports escalation.
    pub(crate) fn resolve_dropped_acks(
        &self,
        ctx: &mut UserCtx,
        page: u64,
        dropped: &[usize],
    ) -> bool {
        let Some(plan) = self.fault_plan() else {
            debug_assert!(dropped.is_empty(), "drops require an installed plan");
            return false;
        };
        let me = ctx.core.id();
        let ipi_ns = self.machine().cfg().timing.ipi_ns;
        let mut escalated = false;
        for &p in dropped {
            let begin = ctx.core.vtime();
            let mut attempt = 1u32;
            loop {
                // The ack never arrives; the initiator times out...
                ctx.core.charge(plan.ack_timeout_ns(attempt));
                self.record(
                    me,
                    ctx.core.vtime(),
                    EventKind::ShootdownTimeout,
                    attempt.min(255) as u8,
                    page,
                    p as u64,
                );
                // ...and resends the interrupt (code 1 = retry).
                ctx.core.charge(ipi_ns);
                self.record(me, ctx.core.vtime(), EventKind::Ipi, 1, page, p as u64);
                if attempt >= plan.max_retries() {
                    escalated = true;
                    break;
                }
                if !plan.should_inject(FaultSite::ShootdownAck, ctx.core.vtime(), p as u64, attempt)
                {
                    break;
                }
                attempt += 1;
            }
            self.machine().post_ipi(p);
            self.record(
                me,
                ctx.core.vtime(),
                EventKind::FaultRecovery,
                FaultSite::ShootdownAck as u8,
                page,
                begin,
            );
        }
        escalated
    }

    /// Charges `n` modelled kernel references of `kind` at `module`.
    pub(crate) fn charge_refs_at(
        &self,
        ctx: &mut UserCtx,
        module: usize,
        n: u32,
        kind: AccessKind,
    ) {
        ctx.core
            .charge_word_block(PhysPage::new(module, 0), kind, u64::from(n));
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicBool, Ordering};

    use numa_machine::{procs_in_mask, AccessCounters, Machine, MachineConfig, Mem};
    use parking_lot::MutexGuard;
    use platinum_trace::{TraceConfig, Tracer};
    use proptest::prelude::*;

    use super::*;
    use crate::coherent::cpage::Cpage;
    use crate::kernel::KernelConfig;
    use crate::{FaultPlan, PlatinumPolicy, Rights, StatsSnapshot};

    /// A randomized shootdown scenario: which processors read which
    /// pages beforehand (the reference masks), which targets are
    /// suspended during the shootdown (lazy application) vs. active
    /// (interrupted and awaited), which distinct pages are shot down in
    /// what order, and with which directive and shootdown mode.
    #[derive(Clone, Debug)]
    struct Scenario {
        procs: usize,
        pages: usize,
        readers: Vec<u64>,
        suspended: u64,
        shoot: Vec<usize>,
        restrict: bool,
        mach_mode: bool,
        inject_seed: Option<u64>,
    }

    impl Scenario {
        /// Normalizes raw generator output: masks clipped to the
        /// processor count, the initiator (processor 0) never suspended,
        /// and the shoot list deduplicated — a batch posts each page at
        /// most once, exactly like its real clients (region unmap, the
        /// defrost thaw pass) iterating distinct pages.
        #[allow(clippy::too_many_arguments)]
        fn normalize(
            procs: usize,
            pages: usize,
            readers: Vec<u64>,
            suspended: u64,
            shoot: Vec<u64>,
            restrict: bool,
            mach_mode: bool,
            inject_seed: Option<u64>,
        ) -> Self {
            let pmask = (1u64 << procs) - 1;
            let readers = (0..pages)
                .map(|i| readers[i % readers.len()] & pmask)
                .collect();
            let mut seen = vec![false; pages];
            let mut dedup = Vec::new();
            for &raw in &shoot {
                let p = (raw % pages as u64) as usize;
                if !seen[p] {
                    seen[p] = true;
                    dedup.push(p);
                }
            }
            Scenario {
                procs,
                pages,
                readers,
                suspended: suspended & pmask & !1,
                shoot: dedup,
                restrict,
                mach_mode,
                inject_seed,
            }
        }
    }

    /// Everything two runs must agree on: per-processor clocks and
    /// access counters, the kernel's protocol counters, the per-page
    /// reference masks left in the directory, and the full trace as a
    /// multiset of (proc, vtime, kind, code, page, arg) events.
    #[derive(Debug, PartialEq)]
    struct Obs {
        vtimes: Vec<u64>,
        counters: Vec<AccessCounters>,
        stats: StatsSnapshot,
        refs: Vec<(usize, ProcSet)>,
        events: Vec<(u16, u64, u8, u8, u64, u64)>,
        outcome: ShootdownOutcome,
    }

    /// Runs one scenario end to end, shooting the pages either as one
    /// coalesced batch or one page at a time, and returns the combined
    /// observation. Setup (mapping, replication reads, suspensions) is
    /// identical single-threaded code in both modes; active targets ack
    /// from real service threads, as in a live run.
    fn run(sc: &Scenario, batched: bool) -> Obs {
        let machine = Machine::new(MachineConfig {
            nodes: sc.procs,
            frames_per_node: 64,
            skew_window_ns: None,
            fast_path: true,
            ..MachineConfig::default()
        })
        .unwrap();
        let kernel = Kernel::with_config(
            machine,
            Box::new(PlatinumPolicy::paper_default()),
            KernelConfig {
                shootdown: if sc.mach_mode {
                    ShootdownMode::SharedPmapStall
                } else {
                    ShootdownMode::PerProcessorPmap
                },
                faults: sc
                    .inject_seed
                    .map(|seed| std::sync::Arc::new(FaultPlan::chaos(seed, 80_000))),
                ..KernelConfig::default()
            },
        );
        let tracer = Tracer::new(TraceConfig::default());
        assert!(kernel.install_tracer(Arc::clone(&tracer)));
        let space = kernel.create_space();
        let object = kernel.create_object(sc.pages);
        let va = space.map_anywhere(object, Rights::RW).unwrap();
        let page_bytes = (kernel.machine().cfg().words_per_page() * 4) as u64;
        let page_va = |i: usize| va + i as u64 * page_bytes;

        let mut ctxs: Vec<Option<UserCtx>> = (0..sc.procs)
            .map(|p| Some(kernel.attach(Arc::clone(&space), p, 0).unwrap()))
            .collect();

        // Replication sweep in deterministic processor-major order.
        for (p, slot) in ctxs.iter_mut().enumerate() {
            let ctx = slot.as_mut().unwrap();
            for (i, &mask) in sc.readers.iter().enumerate() {
                if mask & (1u64 << p) != 0 {
                    ctx.read(page_va(i));
                }
            }
        }
        for p in procs_in_mask(sc.suspended) {
            ctxs[p].as_mut().unwrap().suspend();
        }

        let directive = if sc.restrict {
            Directive::RestrictToRead
        } else {
            Directive::Invalidate
        };
        let mut ctx0 = ctxs[0].take().unwrap();
        let mut movers: Vec<(usize, UserCtx)> = (1..sc.procs)
            .filter(|p| sc.suspended & (1u64 << p) == 0)
            .map(|p| (p, ctxs[p].take().unwrap()))
            .collect();

        let stop = AtomicBool::new(false);
        let outcome = std::thread::scope(|s| {
            let stop = &stop;
            let handles: Vec<(usize, std::thread::ScopedJoinHandle<UserCtx>)> = movers
                .drain(..)
                .map(|(p, mut c)| {
                    (
                        p,
                        s.spawn(move || {
                            let mut spins = 0u32;
                            while !stop.load(Ordering::Acquire) {
                                c.service_ipis();
                                std::hint::spin_loop();
                                spins = spins.wrapping_add(1);
                                if spins.is_multiple_of(64) {
                                    std::thread::yield_now();
                                }
                            }
                            c
                        }),
                    )
                })
                .collect();

            let cpages: Vec<Arc<Cpage>> = sc
                .shoot
                .iter()
                .filter_map(|&i| kernel.cpage_for_va(&space, page_va(i)))
                .collect();
            let outcome = if batched {
                // Locks are taken in page-id order (the multi-page
                // initiator rule) and held until the flush.
                let mut order: Vec<usize> = (0..cpages.len()).collect();
                order.sort_unstable_by_key(|&i| cpages[i].id());
                let mut guards: Vec<Option<MutexGuard<CpageInner>>> = Vec::new();
                guards.resize_with(cpages.len(), || None);
                for &i in &order {
                    guards[i] = Some(kernel.lock_cpage(&mut ctx0, &cpages[i]));
                }
                let mut batch = ctx0.take_batch();
                for (i, cpage) in cpages.iter().enumerate() {
                    let g = guards[i].as_ref().expect("locked above");
                    kernel.batch_post(
                        &mut ctx0,
                        &mut batch,
                        cpage.id(),
                        g,
                        directive.clone(),
                        &ProcSet::full(sc.procs),
                    );
                }
                let out = kernel.batch_flush(&mut ctx0, &mut batch);
                ctx0.put_batch(batch);
                out
            } else {
                let mut sum = ShootdownOutcome::default();
                for cpage in &cpages {
                    let g = kernel.lock_cpage(&mut ctx0, cpage);
                    let out = kernel.shootdown(
                        &mut ctx0,
                        cpage.id(),
                        &g,
                        directive.clone(),
                        &ProcSet::full(sc.procs),
                    );
                    sum.targets += out.targets;
                    sum.ipis += out.ipis;
                    sum.pages += out.pages;
                    sum.rounds += out.rounds;
                    sum.escalated |= out.escalated;
                }
                sum
            };
            stop.store(true, Ordering::Release);
            for (p, h) in handles {
                ctxs[p] = Some(h.join().unwrap());
            }
            outcome
        });
        ctxs[0] = Some(ctx0);

        // Suspended targets apply the queued directives on resume.
        for p in procs_in_mask(sc.suspended) {
            ctxs[p].as_mut().unwrap().resume();
        }

        let refs = (0..sc.pages)
            .filter_map(|i| {
                space
                    .cmap()
                    .refs_of(space.vpn_of(page_va(i)))
                    .map(|r| (i, r))
            })
            .collect();
        let mut events: Vec<_> = tracer
            .snapshot()
            .events
            .iter()
            .map(|e| (e.proc, e.vtime, e.kind as u8, e.code, e.page, e.arg))
            .collect();
        events.sort_unstable();
        Obs {
            vtimes: ctxs.iter().map(|c| c.as_ref().unwrap().vtime()).collect(),
            counters: ctxs
                .iter()
                .map(|c| c.as_ref().unwrap().counters())
                .collect(),
            stats: kernel.stats().snapshot(),
            refs,
            events,
            outcome,
        }
    }

    fn assert_equivalent(sc: &Scenario) -> Result<(), TestCaseError> {
        let seq = run(sc, false);
        let bat = run(sc, true);
        prop_assert_eq!(&bat.vtimes, &seq.vtimes, "virtual times diverged: {:?}", sc);
        prop_assert_eq!(
            &bat.counters,
            &seq.counters,
            "access counters diverged: {:?}",
            sc
        );
        prop_assert_eq!(&bat.stats, &seq.stats, "kernel counters diverged: {:?}", sc);
        prop_assert_eq!(&bat.refs, &seq.refs, "directory refs diverged: {:?}", sc);
        prop_assert_eq!(&bat.events, &seq.events, "trace events diverged: {:?}", sc);
        // The per-page accounting must agree; the wait rounds are the
        // one deliberate difference — a batch waits at most once.
        prop_assert_eq!(bat.outcome.targets, seq.outcome.targets);
        prop_assert_eq!(bat.outcome.ipis, seq.outcome.ipis);
        prop_assert_eq!(bat.outcome.pages, seq.outcome.pages);
        prop_assert_eq!(bat.outcome.escalated, seq.outcome.escalated);
        prop_assert!(bat.outcome.rounds <= 1, "a batch waits at most once");
        prop_assert!(bat.outcome.rounds <= seq.outcome.rounds);
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

        /// The tentpole equivalence: a coalesced batch over N distinct
        /// pages leaves every observable — virtual times, access
        /// counters, kernel statistics, directory reference masks, and
        /// the trace-event multiset — bit-identical to shooting the same
        /// pages down one at a time, across both shootdown modes and
        /// arbitrary mixes of active and suspended targets.
        #[test]
        fn batch_is_observation_equivalent_to_sequential_shootdowns(
            procs in 2usize..5,
            pages in 1usize..7,
            readers in proptest::collection::vec(any::<u64>(), 1..7),
            suspended in any::<u64>(),
            shoot in proptest::collection::vec(any::<u64>(), 1..10),
            restrict in any::<bool>(),
            mach_mode in any::<bool>(),
        ) {
            let sc = Scenario::normalize(
                procs, pages, readers, suspended, shoot, restrict, mach_mode, None,
            );
            assert_equivalent(&sc)?;
        }

        /// The same equivalence under dropped-ack fault injection: the
        /// recovery ladder runs inside each page's post — at the same
        /// virtual times whether or not the page is part of a larger
        /// batch — so injected timeouts, retries, and escalations do not
        /// break the coalescing equivalence either.
        #[test]
        fn batch_equivalence_survives_dropped_ack_injection(
            procs in 2usize..4,
            pages in 1usize..5,
            readers in proptest::collection::vec(any::<u64>(), 1..5),
            suspended in any::<u64>(),
            shoot in proptest::collection::vec(any::<u64>(), 1..8),
            seed in any::<u64>(),
        ) {
            let sc = Scenario::normalize(
                procs, pages, readers, suspended, shoot, false, false, Some(seed),
            );
            assert_equivalent(&sc)?;
        }
    }
}
