//! The NUMA shootdown mechanism (§3.1 of the paper).
//!
//! "Part of the protocol is performed by the processor initiating the
//! shootdown and part is performed by the processors sharing the address
//! space with the initiator. They communicate through the Cmap message
//! queues and synchronize through interprocessor interrupts."
//!
//! The initiator posts a [`CmapMsg`] to the queue of every address space
//! the coherent page is bound in, interrupts only the targets that (a)
//! actually hold a translation (the Cmap entry's reference mask) and (b)
//! currently have the space active, and then waits for those targets to
//! acknowledge. Inactive targets apply the change when they next activate
//! the space — before running any thread in it — so they are never
//! interrupted and never waited for. This is the key difference from the
//! Mach mechanism, which "must interrupt each processor with the address
//! space activated, even if that processor has never referenced the
//! page"; the [`ShootdownMode::SharedPmapStall`] comparator models that
//! behaviour for the §4 measurement.

use std::sync::Arc;

use numa_machine::{procs_in_mask, AccessKind, PhysPage};

use platinum_faults::FaultSite;
use platinum_trace::EventKind;

use crate::coherent::cmap::{CmapMsg, Directive};
use crate::coherent::cpage::CpageInner;
use crate::ids::CpageId;
use crate::kernel::{Kernel, ShootdownMode};
use crate::user::UserCtx;

/// What a shootdown did, for statistics and the §4 micro-benchmarks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShootdownOutcome {
    /// Distinct processors that must eventually apply the change.
    pub targets: u32,
    /// Interprocessor interrupts actually sent (targets with the space
    /// active, or in Mach mode every active processor).
    pub ipis: u32,
    /// Whether an injected dropped-ack ladder exhausted its retry budget;
    /// callers that leave the page in the modified state react by
    /// freezing it (the paper's own degraded mode).
    pub escalated: bool,
}

impl Kernel {
    /// Initiates a shootdown for the coherent page whose inner state is
    /// `g`, posting `directive` to every address space the page is bound
    /// in. Only processors in `filter` (a processor bitmask) are
    /// targeted; the initiator is always excluded and handles its own
    /// mappings inline.
    ///
    /// Blocks (polling its own IPI doorbell, so concurrent initiators
    /// cannot deadlock) until every *active* target acknowledged, then
    /// advances the initiator's clock to the latest acknowledgment time.
    /// After return, no processor can use a translation the directive
    /// removed or restricted.
    pub(crate) fn shootdown(
        &self,
        ctx: &mut UserCtx,
        page: CpageId,
        g: &mut CpageInner,
        directive: Directive,
        filter: u64,
    ) -> ShootdownOutcome {
        let me = ctx.core.id();
        let my_bit = 1u64 << me;
        let costs = self.config().costs.clone();
        let mach_mode = self.config().shootdown == ShootdownMode::SharedPmapStall;

        let mut posted: Vec<(Arc<CmapMsg>, u64)> = Vec::new();
        let mut all_targets = 0u64;
        let mut ipis = 0u32;
        let mut dropped: Vec<usize> = Vec::new();

        for &(as_id, vpn) in &g.bindings {
            let Ok(space) = self.space(as_id) else {
                continue;
            };
            let Some(entry) = space.cmap().entry(vpn) else {
                continue;
            };
            let targets = entry.refs() & filter & !my_bit;
            if targets == 0 {
                continue;
            }
            all_targets |= targets;
            let msg = CmapMsg::new(vpn, directive, targets);
            self.charge_refs_at(ctx, space.home(), costs.post_msg_refs, AccessKind::Write);
            space.cmap().post(Arc::clone(&msg));

            // Interrupt the targets that have the space active; the rest
            // will apply the change on activation. The slot mutex orders
            // this check against concurrent (de)activation: whoever sees
            // the other's effect first, the message is never missed.
            let mut awaited = 0u64;
            if mach_mode {
                // Mach comparator: every processor with the space active
                // is interrupted and stalled, referenced or not.
                for p in 0..self.machine().nprocs() {
                    if p == me {
                        continue;
                    }
                    if self.slots[p].active.lock().contains(&as_id) {
                        ctx.core
                            .charge(self.machine().cfg().timing.ipi_ns + costs.mach_stall_extra_ns);
                        self.record(me, ctx.core.vtime(), EventKind::Ipi, 0, page.0, p as u64);
                        ipis += 1;
                        if targets & (1u64 << p) != 0 {
                            awaited |= 1u64 << p;
                            if self.ipi_lost(ctx.core.vtime(), p) {
                                dropped.push(p);
                                continue;
                            }
                        }
                        self.machine().post_ipi(p);
                    }
                }
            } else {
                for p in procs_in_mask(targets) {
                    if self.slots[p].active.lock().contains(&as_id) {
                        ctx.core.charge(self.machine().cfg().timing.ipi_ns);
                        self.record(me, ctx.core.vtime(), EventKind::Ipi, 0, page.0, p as u64);
                        ipis += 1;
                        awaited |= 1u64 << p;
                        if self.ipi_lost(ctx.core.vtime(), p) {
                            dropped.push(p);
                            continue;
                        }
                        self.machine().post_ipi(p);
                    }
                }
            }
            posted.push((msg, awaited));
        }

        // Counted per shootdown call, like the IPIs above are counted per
        // interrupt: the ShootdownInit count is the number of shootdown
        // operations initiated, whether or not any target needed work.
        let code = match directive {
            Directive::Invalidate => 0,
            Directive::InvalidateModules(_) => 1,
            Directive::RestrictToRead => 2,
        };
        self.record(
            me,
            ctx.core.vtime(),
            EventKind::ShootdownInit,
            code,
            page.0,
            u64::from(all_targets.count_ones()),
        );

        // Resolve any IPIs lost to fault injection before blocking: the
        // ladder ends with a forced delivery, so the wait below can never
        // hang on a dropped interrupt.
        let escalated = !dropped.is_empty() && self.resolve_dropped_acks(ctx, page.0, &dropped);

        // Wait for the active targets. Poll our own doorbell throughout:
        // another initiator may be shooting *us* down at the same time,
        // and servicing it is what breaks the symmetry.
        //
        // Note that this wait is a *real-time* correctness handshake (no
        // target may use a revoked translation once we proceed), not a
        // virtual-time cost: on the real machine the interrupt reaches
        // the target within ~7 us no matter what it is executing, so the
        // initiator's clock is charged the IPI cost above and is NOT
        // dragged to the target's (skewed) clock.
        for (msg, awaited) in &posted {
            let mut spins = 0u32;
            while msg.pending() & awaited != 0 {
                if ctx.core.take_ipi() {
                    ctx.drain_messages();
                }
                std::hint::spin_loop();
                spins = spins.wrapping_add(1);
                if spins.is_multiple_of(8) {
                    std::thread::yield_now();
                }
            }
        }

        ShootdownOutcome {
            targets: all_targets.count_ones(),
            ipis,
            escalated,
        }
    }

    /// Fault hook: decides whether the shootdown IPI just sent to
    /// `target` is lost in transit. One pointer test on healthy runs.
    #[inline]
    pub(crate) fn ipi_lost(&self, vtime: u64, target: usize) -> bool {
        match self.fault_plan() {
            Some(plan) => plan.should_inject(FaultSite::ShootdownAck, vtime, target as u64, 0),
            None => false,
        }
    }

    /// Recovers from shootdown IPIs lost to fault injection: for each
    /// silent target the initiator waits out an ack timeout (exponential
    /// backoff), resends the interrupt, and repeats until a resend gets
    /// through or the retry budget is exhausted — at which point delivery
    /// is forced (the plan injects nothing at or past `max_retries`, so
    /// the protocol stays live) and the ladder reports escalation.
    ///
    /// Shared by [`Kernel::shootdown`] and the teardown path's
    /// single-space shootdown (`crate::coherent::reclaim`).
    pub(crate) fn resolve_dropped_acks(
        &self,
        ctx: &mut UserCtx,
        page: u64,
        dropped: &[usize],
    ) -> bool {
        let Some(plan) = self.fault_plan() else {
            debug_assert!(dropped.is_empty(), "drops require an installed plan");
            return false;
        };
        let me = ctx.core.id();
        let ipi_ns = self.machine().cfg().timing.ipi_ns;
        let mut escalated = false;
        for &p in dropped {
            let begin = ctx.core.vtime();
            let mut attempt = 1u32;
            loop {
                // The ack never arrives; the initiator times out...
                ctx.core.charge(plan.ack_timeout_ns(attempt));
                self.record(
                    me,
                    ctx.core.vtime(),
                    EventKind::ShootdownTimeout,
                    attempt.min(255) as u8,
                    page,
                    p as u64,
                );
                // ...and resends the interrupt (code 1 = retry).
                ctx.core.charge(ipi_ns);
                self.record(me, ctx.core.vtime(), EventKind::Ipi, 1, page, p as u64);
                if attempt >= plan.max_retries() {
                    escalated = true;
                    break;
                }
                if !plan.should_inject(FaultSite::ShootdownAck, ctx.core.vtime(), p as u64, attempt)
                {
                    break;
                }
                attempt += 1;
            }
            self.machine().post_ipi(p);
            self.record(
                me,
                ctx.core.vtime(),
                EventKind::FaultRecovery,
                FaultSite::ShootdownAck as u8,
                page,
                begin,
            );
        }
        escalated
    }

    /// Charges `n` modelled kernel references of `kind` at `module`.
    pub(crate) fn charge_refs_at(
        &self,
        ctx: &mut UserCtx,
        module: usize,
        n: u32,
        kind: AccessKind,
    ) {
        ctx.core
            .charge_word_block(PhysPage::new(module, 0), kind, u64::from(n));
    }
}
