//! The coherent memory system: the middle layer of PLATINUM memory
//! management (§2).
//!
//! * [`cpage`] — coherent pages, their four-state protocol, and the
//!   directory of physical copies (the Cpage system of §2.3),
//! * [`cmap`] — per-space Cmap entries, reference masks, and the
//!   shootdown message queues (the Cmap system of §2.3),
//! * [`policy`] — the replication policy family (§4.2),
//! * `fault` — the coherent page fault handler (§3.3),
//! * `shootdown` — the NUMA shootdown mechanism (§3.1),
//! * `ptable` — the kernel side of the translation fabric: replica
//!   population on faults and replica invalidation on shootdowns,
//! * [`signal`] — lock-free slow-path synchronization flags,
//! * `scratch` — per-processor allocation-free slow-path pools,
//! * [`defrost`] — the defrost daemon (§4.2).

pub mod cmap;
pub mod cpage;
pub mod defrost;
pub mod policy;
pub mod signal;

mod fault;
pub(crate) mod ptable;
pub(crate) mod reclaim;
pub(crate) mod scratch;
pub(crate) mod shootdown;

pub use shootdown::ShootdownOutcome;
