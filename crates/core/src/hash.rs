//! A tiny multiply-rotate hasher for the kernel's small integer keys.
//!
//! The slow path hashes (space, vpn) pairs on every Pmap and Cmap touch;
//! the standard library's SipHash is DoS-resistant but costs more than
//! the rest of the map operation combined. Keys here are kernel-chosen
//! small integers, never attacker-controlled, so a Fibonacci-style
//! multiply hash is both safe and several times cheaper.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant: 2^64 / phi, the usual Fibonacci-hash odd
/// constant, which diffuses low-entropy integer keys across the high bits.
const K: u64 = 0x9E37_79B9_7F4A_7C15;

/// A non-cryptographic hasher for kernel-internal integer keys.
#[derive(Default)]
pub struct FastHasher(u64);

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback: fold 8 bytes at a time. Only integer keys are
        // expected, but derived Hash impls may route through here.
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(26) ^ v).wrapping_mul(K);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.write_u64(v as u64);
    }
}

/// `HashMap` keyed by kernel integers, using [`FastHasher`].
pub type FastMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_distinctly() {
        // Not a collision-resistance proof, just a sanity check that the
        // mixer actually mixes: 10k sequential (space, vpn) pairs should
        // produce 10k distinct hashes.
        let mut seen = std::collections::HashSet::new();
        for s in 0..100u64 {
            for v in 0..100u64 {
                let mut h = FastHasher::default();
                h.write_u64(s);
                h.write_u64(v);
                seen.insert(h.finish());
            }
        }
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FastMap<(u64, u64), u32> = FastMap::default();
        for i in 0..1000u64 {
            m.insert((i, i * 7), i as u32);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i, i * 7)), Some(&(i as u32)));
        }
    }
}
