//! Memory objects: the unit of sharing between address spaces.

use std::sync::OnceLock;

use crate::coherent::cpage::CpageTable;
use crate::ids::{CpageId, ObjId};

/// A memory object: "an abstraction of an ordered list of memory pages. A
/// range of pages within a memory object may be bound to any contiguous
/// page-aligned virtual address range of the same size" (§1.1).
///
/// Coherent pages are created lazily, on the first fault that touches
/// each page; a fresh coherent page starts in the `empty` state with no
/// physical backing.
pub struct MemoryObject {
    id: ObjId,
    /// The node homing this object's metadata (cost model) and preferred
    /// for the home of its coherent pages.
    home: usize,
    /// Lazily-created coherent pages, one slot per object page.
    pages: Box<[OnceLock<CpageId>]>,
}

impl MemoryObject {
    /// Creates an object of `pages` pages, homed on `home`.
    pub(crate) fn new(id: ObjId, home: usize, pages: usize) -> Self {
        let mut v = Vec::with_capacity(pages);
        v.resize_with(pages, OnceLock::new);
        Self {
            id,
            home,
            pages: v.into_boxed_slice(),
        }
    }

    /// The object's global name.
    pub fn id(&self) -> ObjId {
        self.id
    }

    /// The node homing the object's metadata.
    pub fn home(&self) -> usize {
        self.home
    }

    /// The object's length in pages.
    pub fn len_pages(&self) -> usize {
        self.pages.len()
    }

    /// The coherent page backing object page `idx`, creating it (in the
    /// `empty` state) on first touch.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range; the caller validates ranges when
    /// binding.
    pub fn cpage_for(&self, idx: usize, table: &CpageTable, home: usize) -> CpageId {
        *self.pages[idx].get_or_init(|| table.alloc(home).id())
    }

    /// The coherent page backing object page `idx`, if it has ever been
    /// touched.
    pub fn existing_cpage(&self, idx: usize) -> Option<CpageId> {
        self.pages.get(idx).and_then(|p| p.get().copied())
    }

    /// All coherent pages that have been created for this object.
    pub fn touched_cpages(&self) -> Vec<(usize, CpageId)> {
        self.pages
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.get().map(|c| (i, *c)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lazy_cpage_creation() {
        let table = CpageTable::new();
        let obj = MemoryObject::new(ObjId(0), 1, 4);
        assert_eq!(obj.len_pages(), 4);
        assert_eq!(obj.existing_cpage(2), None);
        let c = obj.cpage_for(2, &table, 3);
        assert_eq!(obj.existing_cpage(2), Some(c));
        // Idempotent: a second fault gets the same page.
        assert_eq!(obj.cpage_for(2, &table, 5), c);
        assert_eq!(table.len(), 1);
        assert_eq!(table.get(c).unwrap().home(), 3);
        assert_eq!(obj.touched_cpages(), vec![(2, c)]);
    }

    #[test]
    fn concurrent_first_touch_creates_one_page() {
        use std::sync::Arc;
        let table = Arc::new(CpageTable::new());
        let obj = Arc::new(MemoryObject::new(ObjId(0), 0, 1));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let t = Arc::clone(&table);
            let o = Arc::clone(&obj);
            handles.push(std::thread::spawn(move || o.cpage_for(0, &t, 0)));
        }
        let ids: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }
}
