//! Address spaces: bindings of memory objects to virtual address ranges.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use numa_machine::{Va, Vpn};
use platinum_ptable::PmapReplica;

use crate::coherent::cmap::Cmap;
use crate::error::{KernelError, Result};
use crate::ids::{AsId, Rights};
use crate::vm::object::MemoryObject;

/// One binding of a range of object pages to a virtual address range.
#[derive(Clone)]
pub struct Region {
    /// First virtual page of the region.
    pub vpn_start: Vpn,
    /// Length in pages.
    pub pages: usize,
    /// The bound object.
    pub object: Arc<MemoryObject>,
    /// First object page bound.
    pub obj_page_offset: usize,
    /// Rights granted by this binding. "Neither the virtual address range
    /// nor the access rights need be the same in every address space"
    /// (§1.1).
    pub rights: Rights,
}

impl Region {
    /// Whether the region contains `vpn`.
    pub fn contains(&self, vpn: Vpn) -> bool {
        vpn >= self.vpn_start && vpn < self.vpn_start + self.pages as u64
    }

    /// The object page index backing `vpn`.
    ///
    /// # Panics
    ///
    /// Panics if `vpn` is outside the region.
    pub fn object_page(&self, vpn: Vpn) -> usize {
        assert!(self.contains(vpn), "vpn outside region");
        self.obj_page_offset + (vpn - self.vpn_start) as usize
    }
}

/// An address space: "a list of bindings of memory objects and access
/// rights to virtual address ranges. It defines the environment in which
/// one or more threads may execute" (§1.1).
///
/// The space owns its [`Cmap`] — the cached composition of its bindings
/// with the object-to-coherent mappings, plus the queue of mapping-change
/// messages used by the shootdown mechanism.
pub struct AddressSpace {
    id: AsId,
    /// Node homing the space's kernel metadata (cost model).
    home: usize,
    page_shift: u32,
    regions: RwLock<Vec<Region>>,
    cmap: Cmap,
    /// Which nodes hold a populated translation replica for this space
    /// (the replicated placements of the translation fabric; unused —
    /// and never touched — under the centralized default).
    replica: PmapReplica,
    /// Bump pointer for `map_anywhere`.
    next_free_vpn: AtomicU64,
}

impl AddressSpace {
    pub(crate) fn new(
        id: AsId,
        home: usize,
        page_shift: u32,
        cmap_shards: usize,
        nprocs: usize,
    ) -> Self {
        Self {
            id,
            home,
            page_shift,
            regions: RwLock::new(Vec::new()),
            cmap: Cmap::with_shards(cmap_shards, nprocs),
            replica: PmapReplica::new(home, nprocs),
            // Leave page 0 unmapped so null-ish addresses fault.
            next_free_vpn: AtomicU64::new(1),
        }
    }

    /// The space's global name.
    pub fn id(&self) -> AsId {
        self.id
    }

    /// The ASID used to tag ATC entries.
    pub fn asid(&self) -> u32 {
        self.id.0
    }

    /// The node homing the space's metadata.
    pub fn home(&self) -> usize {
        self.home
    }

    /// The space's Cmap.
    pub fn cmap(&self) -> &Cmap {
        &self.cmap
    }

    /// The space's translation-replica directory: which nodes hold a
    /// populated per-node copy of its translation structures.
    pub fn replica(&self) -> &PmapReplica {
        &self.replica
    }

    /// Converts a byte address to a virtual page number.
    #[inline]
    pub fn vpn_of(&self, va: Va) -> Vpn {
        va >> self.page_shift
    }

    /// Converts a virtual page number to its base byte address.
    #[inline]
    pub fn va_of(&self, vpn: Vpn) -> Va {
        vpn << self.page_shift
    }

    /// Binds `pages` pages of `object` starting at `obj_page_offset` to
    /// the virtual range beginning at `va`.
    ///
    /// `va` must be page aligned; the range must not overlap an existing
    /// region and must lie within the object.
    pub fn map_at(
        &self,
        object: Arc<MemoryObject>,
        obj_page_offset: usize,
        pages: usize,
        va: Va,
        rights: Rights,
    ) -> Result<()> {
        if va & ((1u64 << self.page_shift) - 1) != 0 {
            return Err(KernelError::Access(numa_machine::AccessErr::Misaligned(va)));
        }
        if pages == 0 || obj_page_offset + pages > object.len_pages() {
            return Err(KernelError::BadRange);
        }
        let vpn_start = self.vpn_of(va);
        let mut regions = self.regions.write();
        for r in regions.iter() {
            let disjoint = vpn_start + pages as u64 <= r.vpn_start
                || vpn_start >= r.vpn_start + r.pages as u64;
            if !disjoint {
                return Err(KernelError::MappingConflict(va));
            }
        }
        regions.push(Region {
            vpn_start,
            pages,
            object,
            obj_page_offset,
            rights,
        });
        // Keep the bump pointer beyond any explicit mapping.
        let end = vpn_start + pages as u64;
        self.next_free_vpn.fetch_max(end, Ordering::Relaxed);
        Ok(())
    }

    /// Binds the whole of `object` at a kernel-chosen address, returning
    /// the base virtual address.
    pub fn map_anywhere(&self, object: Arc<MemoryObject>, rights: Rights) -> Result<Va> {
        let pages = object.len_pages();
        // Leave one guard page between regions so off-by-one overruns
        // fault instead of touching a neighbour.
        let vpn = self
            .next_free_vpn
            .fetch_add(pages as u64 + 1, Ordering::Relaxed);
        let va = self.va_of(vpn);
        self.map_at(object, 0, pages, va, rights)?;
        Ok(va)
    }

    /// The region containing `vpn`, if any.
    pub fn region_for(&self, vpn: Vpn) -> Option<Region> {
        self.regions
            .read()
            .iter()
            .find(|r| r.contains(vpn))
            .cloned()
    }

    /// Removes the region starting exactly at `va`, returning it.
    pub fn unmap_region(&self, va: Va) -> Option<Region> {
        let vpn = self.vpn_of(va);
        let mut regions = self.regions.write();
        let idx = regions.iter().position(|r| r.vpn_start == vpn)?;
        Some(regions.swap_remove(idx))
    }

    /// Snapshot of all regions.
    pub fn regions(&self) -> Vec<Region> {
        self.regions.read().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coherent::cpage::CpageTable;
    use crate::ids::ObjId;

    fn obj(pages: usize) -> Arc<MemoryObject> {
        Arc::new(MemoryObject::new(ObjId(0), 0, pages))
    }

    fn space() -> AddressSpace {
        AddressSpace::new(AsId(1), 0, 12, 16, 16)
    }

    #[test]
    fn map_at_and_lookup() {
        let s = space();
        s.map_at(obj(4), 0, 4, 0x10000, Rights::RW).unwrap();
        let r = s.region_for(s.vpn_of(0x10000)).unwrap();
        assert_eq!(r.pages, 4);
        assert_eq!(r.object_page(s.vpn_of(0x12000)), 2);
        assert!(s.region_for(s.vpn_of(0x20000)).is_none());
    }

    #[test]
    fn overlap_rejected() {
        let s = space();
        s.map_at(obj(4), 0, 4, 0x10000, Rights::RW).unwrap();
        let e = s.map_at(obj(4), 0, 4, 0x12000, Rights::RO);
        assert!(matches!(e, Err(KernelError::MappingConflict(_))));
        // Adjacent is fine.
        s.map_at(obj(4), 0, 4, 0x14000, Rights::RO).unwrap();
    }

    #[test]
    fn misaligned_and_bad_range_rejected() {
        let s = space();
        assert!(s.map_at(obj(4), 0, 4, 0x10001, Rights::RW).is_err());
        assert!(matches!(
            s.map_at(obj(4), 2, 3, 0x10000, Rights::RW),
            Err(KernelError::BadRange)
        ));
        assert!(matches!(
            s.map_at(obj(4), 0, 0, 0x10000, Rights::RW),
            Err(KernelError::BadRange)
        ));
    }

    #[test]
    fn map_anywhere_is_disjoint() {
        let s = space();
        let a = s.map_anywhere(obj(3), Rights::RW).unwrap();
        let b = s.map_anywhere(obj(3), Rights::RW).unwrap();
        assert_ne!(a, b);
        assert!(s.region_for(s.vpn_of(a)).is_some());
        assert!(s.region_for(s.vpn_of(b)).is_some());
        // Guard page between them.
        assert!(b >= a + 4 * 4096);
    }

    #[test]
    fn map_anywhere_avoids_explicit_mappings() {
        let s = space();
        s.map_at(obj(4), 0, 4, 0x100000, Rights::RW).unwrap();
        let va = s.map_anywhere(obj(2), Rights::RW).unwrap();
        assert!(va >= 0x100000 + 4 * 4096, "bump pointer must skip ahead");
    }

    #[test]
    fn unmap() {
        let s = space();
        s.map_at(obj(4), 0, 4, 0x10000, Rights::RW).unwrap();
        assert!(s.unmap_region(0x10000).is_some());
        assert!(s.region_for(s.vpn_of(0x10000)).is_none());
        assert!(s.unmap_region(0x10000).is_none());
    }

    #[test]
    fn same_object_two_spaces_share_cpages() {
        // "Since they have global names, memory objects are the natural
        // unit of data- or code-sharing between address spaces" (§1.1).
        let table = CpageTable::new();
        let o = obj(2);
        let s1 = AddressSpace::new(AsId(1), 0, 12, 16, 16);
        let s2 = AddressSpace::new(AsId(2), 1, 12, 16, 16);
        s1.map_at(Arc::clone(&o), 0, 2, 0x1000, Rights::RW).unwrap();
        s2.map_at(Arc::clone(&o), 0, 2, 0x8000, Rights::RO).unwrap();
        let r1 = s1.region_for(1).unwrap();
        let r2 = s2.region_for(8).unwrap();
        let c1 = r1.object.cpage_for(r1.object_page(1), &table, 0);
        let c2 = r2.object.cpage_for(r2.object_page(8), &table, 1);
        assert_eq!(c1, c2, "same object page must be the same coherent page");
    }
}
