//! The virtual memory system: the top layer of PLATINUM memory
//! management (§2.1).
//!
//! Manages the mappings from virtual address ranges to memory objects and
//! from memory objects to coherent pages. Modelled on the
//! machine-independent part of Mach memory management, as the paper's
//! design was.

pub mod object;
pub mod space;
