//! The packet-pipeline workload: dataplane flow/routing tables.
//!
//! Models the memory behaviour of a software dataplane: every request
//! ("packet") walks a read-mostly lookup chain — a route table entry
//! chosen by the flow hash, then the next-hop table entry it points at —
//! and lands on the flow's state record. Lookups dominate and never
//! write, so the route and next-hop pages are ideal replication targets;
//! the per-flow state records are written on every forwarded packet,
//! concentrating invalidation traffic on the state pages in proportion
//! to flow popularity. The contrast between those two regions under one
//! request stream is precisely the placement decision the policy lab
//! compares.
//!
//! Layout: route and next-hop tables in a read-mostly zone (page
//! aligned, one word per entry); flow state in its own zone,
//! `state_words` words per flow record.

use numa_machine::Va;
use platinum_runtime::zones::Zone;

use crate::drive::Workload;
use crate::rng::mix;
use crate::traffic::Request;
use crate::ServerMem;

/// Pipeline geometry.
#[derive(Clone, Debug)]
pub struct FlowConfig {
    /// Distinct flows (requests hash onto `0..flows`).
    pub flows: u64,
    /// Route-table entries.
    pub route_entries: usize,
    /// Next-hop-table entries.
    pub hop_entries: usize,
    /// Words per flow state record.
    pub state_words: usize,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            flows: 1 << 16,
            route_entries: 4096,
            hop_entries: 1024,
            state_words: 8,
        }
    }
}

impl FlowConfig {
    /// Pages for the read-mostly zone (route + next-hop tables).
    pub fn lookup_pages(&self, page_words: usize) -> usize {
        self.route_entries.div_ceil(page_words) + self.hop_entries.div_ceil(page_words)
    }

    /// Pages for the flow-state zone.
    pub fn state_pages(&self, page_words: usize) -> usize {
        (self.flows as usize * self.state_words).div_ceil(page_words)
    }
}

/// Flow state record word offsets.
const PKTS: u64 = 0;
const BYTES: u64 = 1;
const LAST_SERIAL: u64 = 2;
const LAST_EGRESS: u64 = 3;

/// Salts for the lookup hashes.
const ROUTE_SALT: u64 = 0x666C_6F77_7274;
const HOP_SALT: u64 = 0x666C_6F77_6870;

/// The laid-out pipeline (addresses only; state lives in simulated
/// memory).
pub struct FlowTables {
    cfg: FlowConfig,
    route_base: Va,
    hop_base: Va,
    state_base: Va,
}

impl FlowTables {
    /// Carves the lookup tables out of `lookup` and the state records
    /// out of `state`. Size the zones with [`FlowConfig::lookup_pages`]
    /// and [`FlowConfig::state_pages`].
    pub fn layout(cfg: FlowConfig, lookup: &mut Zone, state: &mut Zone) -> Self {
        let route_base = lookup.alloc_page_aligned(cfg.route_entries);
        let hop_base = lookup.alloc_page_aligned(cfg.hop_entries);
        let state_base = state.alloc_page_aligned(cfg.flows as usize * cfg.state_words);
        FlowTables {
            cfg,
            route_base,
            hop_base,
            state_base,
        }
    }

    /// The geometry this pipeline was laid out with.
    pub fn config(&self) -> &FlowConfig {
        &self.cfg
    }

    /// Fills the entries this worker owns (striped round-robin, so the
    /// read-mostly tables are first-touched across the machine rather
    /// than piled on one node). Route entries point into the next-hop
    /// table; next-hop entries carry a nonzero egress id.
    pub fn populate_owned<M: ServerMem>(
        &self,
        m: &mut M,
        worker: usize,
        workers: usize,
    ) -> platinum::Result<()> {
        let mut i = worker;
        while i < self.cfg.route_entries {
            let hop = mix(i as u64, ROUTE_SALT) % self.cfg.hop_entries as u64;
            m.try_store(self.route_base + 4 * i as u64, hop as u32)?;
            i += workers;
        }
        let mut i = worker;
        while i < self.cfg.hop_entries {
            let egress = (mix(i as u64, HOP_SALT) as u32) | 1;
            m.try_store(self.hop_base + 4 * i as u64, egress)?;
            i += workers;
        }
        Ok(())
    }

    /// Base address of `flow`'s state record.
    fn state_va(&self, flow: u64) -> Va {
        self.state_base + 4 * flow * self.cfg.state_words as u64
    }

    /// Forwards one packet for the flow hashed from `key`: route
    /// lookup, next-hop lookup, then either a state peek (monitoring
    /// path, `write == false`) or the forwarding update (packet/byte
    /// counters and last-seen stamps).
    pub fn packet<M: ServerMem>(
        &self,
        m: &mut M,
        key: u64,
        serial: u64,
        write: bool,
    ) -> platinum::Result<u32> {
        let flow = key % self.cfg.flows;
        let ridx = mix(flow, ROUTE_SALT.rotate_left(7)) % self.cfg.route_entries as u64;
        let hop = m.try_load(self.route_base + 4 * ridx)? as u64 % self.cfg.hop_entries as u64;
        let egress = m.try_load(self.hop_base + 4 * hop)?;
        let st = self.state_va(flow);
        if write {
            m.fetch_add(st + 4 * PKTS, 1);
            let bytes = 64 + (mix(key, serial) & 0x5FF) as u32; // 64..=1599 "bytes"
            m.fetch_add(st + 4 * BYTES, bytes);
            m.try_store(st + 4 * LAST_SERIAL, serial as u32)?;
            m.try_store(st + 4 * LAST_EGRESS, egress)?;
        } else {
            let pkts = m.try_load(st + 4 * PKTS)?;
            let last = m.try_load(st + 4 * LAST_SERIAL)?;
            return Ok(egress ^ pkts ^ last);
        }
        Ok(egress)
    }

    /// Folds the whole state table (quiesced) into a checksum: same
    /// packets forwarded ⇒ same checksum.
    pub fn checksum<M: ServerMem>(&self, m: &mut M) -> platinum::Result<u64> {
        let mut sum = 0u64;
        for flow in 0..self.cfg.flows {
            let st = self.state_va(flow);
            for w in 0..self.cfg.state_words {
                sum = sum
                    .rotate_left(1)
                    .wrapping_add(m.try_load(st + 4 * w as u64)? as u64);
            }
        }
        Ok(sum)
    }
}

impl Workload for FlowTables {
    fn populate<M: ServerMem>(
        &self,
        m: &mut M,
        worker: usize,
        workers: usize,
    ) -> platinum::Result<()> {
        self.populate_owned(m, worker, workers)
    }

    fn execute<M: ServerMem>(&self, m: &mut M, req: &Request) -> platinum::Result<()> {
        self.packet(m, req.key, req.serial, req.write).map(|_| ())
    }

    fn class(&self, _req: &Request) -> u8 {
        2
    }

    fn shards(&self) -> usize {
        // Throughput is accounted per state page: the pipeline has no
        // shard structure of its own, so reuse the page grouping.
        16
    }

    fn shard_of(&self, key: u64) -> usize {
        ((key % self.cfg.flows) % 16) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_machine::mem_iface::test_support::FlatMem;

    fn pipeline() -> (FlowTables, FlatMem) {
        let cfg = FlowConfig {
            flows: 256,
            route_entries: 64,
            hop_entries: 16,
            state_words: 8,
        };
        let page_words = 1024;
        let mut lookup = Zone::new(
            0x1_0000,
            cfg.lookup_pages(page_words) * page_words,
            page_words,
        );
        let mut state = Zone::new(
            0x80_0000,
            cfg.state_pages(page_words) * page_words,
            page_words,
        );
        let ft = FlowTables::layout(cfg, &mut lookup, &mut state);
        let mut m = FlatMem::new(0, 1);
        ft.populate_owned(&mut m, 0, 1).unwrap();
        (ft, m)
    }

    #[test]
    fn packets_update_flow_state() {
        let (ft, mut m) = pipeline();
        let before = ft.checksum(&mut m).unwrap();
        ft.packet(&mut m, 42, 1, true).unwrap();
        ft.packet(&mut m, 42, 2, true).unwrap();
        let after = ft.checksum(&mut m).unwrap();
        assert_ne!(before, after);
        let st = ft.state_va(42);
        assert_eq!(*m.words.get(&st).unwrap(), 2, "two packets counted");
    }

    #[test]
    fn reads_leave_state_untouched() {
        let (ft, mut m) = pipeline();
        ft.packet(&mut m, 9, 1, true).unwrap();
        let before = ft.checksum(&mut m).unwrap();
        ft.packet(&mut m, 9, 2, false).unwrap();
        ft.packet(&mut m, 10, 3, false).unwrap();
        assert_eq!(ft.checksum(&mut m).unwrap(), before);
    }

    #[test]
    fn same_packets_same_checksum() {
        let (ft, mut m1) = pipeline();
        let (ft2, mut m2) = pipeline();
        for s in 0..100u64 {
            ft.packet(&mut m1, s * 7, s, s % 3 == 0).unwrap();
            ft2.packet(&mut m2, s * 7, s, s % 3 == 0).unwrap();
        }
        assert_eq!(
            ft.checksum(&mut m1).unwrap(),
            ft2.checksum(&mut m2).unwrap()
        );
    }
}
