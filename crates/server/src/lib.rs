//! `platinum-server`: the server-shaped workload tier.
//!
//! The paper evaluates PLATINUM with three scientific kernels whose
//! sharing is phase-structured and symmetric. Production NUMA traffic is
//! nothing like that: it is request-driven, skewed (a few keys absorb
//! most of the load), churning (the hot set drifts), and mixed
//! (reader-heavy with write bursts). This crate builds that terrain on
//! top of the existing coherent memory abstraction:
//!
//! * [`kv`] — a sharded key-value/session store laid out over coherent
//!   pages: fixed-slot open-addressing tables, one spin lock per shard,
//!   values spanning several words within a page.
//! * [`flow`] — a packet-pipeline workload modeled on dataplane
//!   flow/routing tables: a read-mostly route + next-hop lookup followed
//!   by a per-flow state update.
//! * [`traffic`] — a deterministic open-loop request generator: seeded
//!   Zipf key popularity ([`zipf`]), rolling hot-set drift, configurable
//!   read/write mix with write bursts, per-processor arrival schedules
//!   in virtual time.
//! * [`drive`] — the measurement harness: a serialized, deterministic
//!   open-loop driver (same argument as the reftrace replay engine: one
//!   kernel entry at a time in a fixed global order reproduces the run
//!   exactly), a concurrent closed-loop mode for saturation tests, and
//!   per-request virtual-time latency accounting ([`hist`]).
//!
//! Workloads are written against [`ServerMem`], a small extension of the
//! portable [`Mem`] interface that exposes the kernel's *fallible*
//! access path, so the same workload code composes with the fault
//! injection machinery (a `platinum::UserCtx` surfaces injected-fault
//! residuals as `Err`, which the driver retries and counts) and with the
//! reference-trace recorder (a `RecordingCtx` records the panicking
//! path, as every other recorded application does).

#![warn(missing_docs)]

use numa_machine::{Mem, Va};

pub mod drive;
pub mod flow;
pub mod hist;
pub mod kv;
pub mod rng;
pub mod traffic;
pub mod zipf;

pub use drive::{run_closed_loop, run_open_loop, DriverReport, ServerPhase, Workload};
pub use flow::{FlowConfig, FlowTables};
pub use hist::Histogram;
pub use kv::{KvAudit, KvConfig, KvTable};
pub use rng::Rng;
pub use traffic::{Request, TrafficConfig};
pub use zipf::Zipf;

/// The memory interface the server workloads are written against:
/// [`Mem`] plus the fallible word accessors of the kernel's recoverable
/// path.
///
/// The defaults wrap the panicking [`Mem`] accessors, which is correct
/// for every backend without a recoverable error path (the flat test
/// memory, the reference-trace recorder). The `platinum::UserCtx`
/// implementation forwards to `try_read`/`try_write` instead, so an
/// injected fault that exhausts its recovery ladder surfaces to the
/// request driver as an `Err` to retry rather than a panic.
pub trait ServerMem: Mem {
    /// Reads the word at `va`, surfacing recoverable failures.
    fn try_load(&mut self, va: Va) -> platinum::Result<u32> {
        Ok(self.read(va))
    }

    /// Writes the word at `va`, surfacing recoverable failures.
    fn try_store(&mut self, va: Va, val: u32) -> platinum::Result<()> {
        self.write(va, val);
        Ok(())
    }
}

impl ServerMem for platinum::UserCtx {
    fn try_load(&mut self, va: Va) -> platinum::Result<u32> {
        self.try_read(va)
    }

    fn try_store(&mut self, va: Va, val: u32) -> platinum::Result<()> {
        self.try_write(va, val)
    }
}

/// Recorded runs use the panicking defaults: the recorder serializes
/// every operation through its gate, and a recoverable error during a
/// capture would leave a hole in the trace anyway.
impl ServerMem for platinum_reftrace::RecordingCtx<'_> {}

/// Test backend (no recoverable error path).
impl ServerMem for numa_machine::mem_iface::test_support::FlatMem {}
