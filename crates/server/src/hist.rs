//! Log-bucketed latency histograms in virtual nanoseconds.
//!
//! HDR-style layout: values below 8 get exact buckets; above that, each
//! power-of-two range is split into 8 linear sub-buckets, so relative
//! quantile error is bounded by 12.5% while the whole table stays at
//! 512 counters. All arithmetic is integral — recording, merging, and
//! quantile extraction are bit-deterministic, which lets `server_bench`
//! commit exact p50/p99/p999 numbers as its baseline.

/// Sub-bucket resolution: 2^3 linear buckets per power of two.
const SUB_BITS: u32 = 3;
/// 61 major ranges × 8 sub-buckets + the 8 exact low buckets.
const BUCKETS: usize = 512;

/// A mergeable latency histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Index of the bucket holding `v`.
fn index(v: u64) -> usize {
    if v < (1 << SUB_BITS) {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let sub = ((v >> (msb - SUB_BITS)) & ((1 << SUB_BITS) - 1)) as usize;
    ((msb - SUB_BITS + 1) as usize) << SUB_BITS | sub
}

/// Largest value mapping to bucket `i` (what quantiles report).
fn upper_bound(i: usize) -> u64 {
    if i < (1 << SUB_BITS) {
        return i as u64;
    }
    let msb = (i >> SUB_BITS) as u32 + SUB_BITS - 1;
    let sub = (i & ((1 << SUB_BITS) - 1)) as u64;
    let lo = ((1 << SUB_BITS) | sub) << (msb - SUB_BITS);
    lo + (1u64 << (msb - SUB_BITS)) - 1
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.counts[index(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (exact).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (reporting only — not part of any exact
    /// baseline comparison).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `num/den` quantile as the upper bound of the bucket holding
    /// it (p99 = `quantile(99, 100)`). Integer arithmetic throughout;
    /// returns 0 for an empty histogram.
    pub fn quantile(&self, num: u64, den: u64) -> u64 {
        assert!(num <= den && den > 0, "quantile out of range");
        if self.count == 0 {
            return 0;
        }
        // Rank of the target value, 1-based, rounded up.
        let target = (self.count * num).div_ceil(den).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// p50 in one call.
    pub fn p50(&self) -> u64 {
        self.quantile(50, 100)
    }

    /// p99 in one call.
    pub fn p99(&self) -> u64 {
        self.quantile(99, 100)
    }

    /// p999 in one call.
    pub fn p999(&self) -> u64 {
        self.quantile(999, 1000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        // Every value maps to exactly one bucket whose bounds contain it.
        let mut prev = 0usize;
        for v in 0..4096u64 {
            let i = index(v);
            assert!(i >= prev, "index not monotone at {v}");
            assert!(upper_bound(i) >= v, "upper bound below value at {v}");
            prev = i;
        }
        // Spot-check the sub-bucket error bound: the bucket holding v
        // ends within 12.5% of v.
        for v in [100u64, 1_000, 10_000, 1_000_000, 123_456_789] {
            let ub = upper_bound(index(v));
            assert!(ub >= v && ub - v <= v / 8 + 1, "bound too loose at {v}");
        }
    }

    #[test]
    fn exact_small_values() {
        let mut h = Histogram::new();
        for v in 0..8 {
            h.record(v);
        }
        assert_eq!(h.quantile(1, 8), 0);
        assert_eq!(h.quantile(8, 8), 7);
        assert_eq!(h.max(), 7);
    }

    #[test]
    fn quantiles_order_and_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 1..=1000u64 {
            if v % 2 == 0 {
                a.record(v * 100);
            } else {
                b.record(v * 100);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), 1000);
        let (p50, p99, p999) = (a.p50(), a.p99(), a.p999());
        assert!(p50 <= p99 && p99 <= p999 && p999 <= a.max());
        // p50 of 100..=100_000 sits near 50_000 (within bucket error).
        assert!((43_000..=57_000).contains(&p50), "p50 = {p50}");
        assert!(p99 >= 90_000, "p99 = {p99}");
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.p99(), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
