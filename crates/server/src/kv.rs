//! The sharded key-value/session store over coherent pages.
//!
//! Layout (§6 discipline: separate zones for data with different access
//! patterns):
//!
//! * **Table zone** — one page-aligned open-addressing slot array per
//!   shard. A slot is `2 + value_words` words: a tag word (`key + 1`,
//!   0 = empty), a version word (the serial of the last write), and the
//!   value. With the default 6-word values a 4 KB page holds 128 slots,
//!   so hot keys and cold keys share pages — the false-sharing terrain
//!   a page-granular coherence protocol actually faces in a server.
//! * **Lock zone** — one spin lock per shard, each on its own page
//!   (fine-grain modifiable data separated from everything else).
//!
//! Keys map to shards round-robin (`key % shards`) so a Zipf-hot rank
//! prefix spreads across shards, and to slots by a mixed hash with
//! linear probing. The measured phase only reads and updates keys that
//! the populate phase inserted; the table never grows.
//!
//! Values are self-verifying: a write with serial `s` installs
//! `base(key, s) + i` in value word `i`. [`KvTable::verify`] sweeps the
//! quiesced table and asserts every slot is internally consistent — a
//! torn write (two writers' words interleaved, or a recovery path
//! replaying half an update) breaks the arithmetic progression and is
//! caught, which is what the chaos soak's checksum pass relies on.

use numa_machine::Va;
use platinum_runtime::sync::SpinLock;
use platinum_runtime::zones::Zone;

use crate::drive::Workload;
use crate::rng::mix;
use crate::traffic::Request;
use crate::ServerMem;

/// Table geometry.
#[derive(Clone, Debug)]
pub struct KvConfig {
    /// Keys inserted by the populate phase (`0..keys`).
    pub keys: u64,
    /// Shard count (locks, slot arrays, and throughput accounting).
    pub shards: usize,
    /// Slots per shard; power of two, with headroom over `keys/shards`.
    pub slots_per_shard: usize,
    /// Value payload words per slot.
    pub value_words: usize,
}

impl KvConfig {
    /// A geometry for `keys` keys over `shards` shards: 6-word values
    /// and ~75% maximum fill rounded up to a power of two.
    pub fn for_keys(keys: u64, shards: usize) -> Self {
        let per_shard = (keys as usize).div_ceil(shards);
        KvConfig {
            keys,
            shards,
            slots_per_shard: (per_shard * 4 / 3).max(8).next_power_of_two(),
            value_words: 6,
        }
    }

    /// Words per slot (tag + version + value).
    pub fn slot_words(&self) -> usize {
        2 + self.value_words
    }

    /// Pages needed for the table zone (each shard page-aligned).
    pub fn table_pages(&self, page_words: usize) -> usize {
        let shard_words = self.slots_per_shard * self.slot_words();
        self.shards * shard_words.div_ceil(page_words)
    }

    /// Pages needed for the lock zone (one page per shard).
    pub fn lock_pages(&self) -> usize {
        self.shards
    }
}

/// Post-soak audit result: see [`KvTable::verify`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KvAudit {
    /// Occupied slots found (must equal the keys populated).
    pub occupied: u64,
    /// Order-sensitive fold over every occupied slot's contents. Two
    /// runs that performed the same writes agree; a lost or torn write
    /// diverges.
    pub checksum: u64,
}

/// The laid-out store (addresses only — all state lives in simulated
/// memory, so one `KvTable` is shared by every worker).
pub struct KvTable {
    cfg: KvConfig,
    /// Per-shard slot-array base addresses.
    shard_base: Vec<Va>,
    /// Per-shard writer locks.
    locks: Vec<SpinLock>,
}

/// Salt for the slot hash (distinct from every traffic-stream salt).
const SLOT_SALT: u64 = 0x6B76_736C_6F74;

impl KvTable {
    /// Carves the table out of `data` and the locks out of `lock_zone`.
    /// Size the zones with [`KvConfig::table_pages`] and
    /// [`KvConfig::lock_pages`].
    pub fn layout(cfg: KvConfig, data: &mut Zone, lock_zone: &mut Zone) -> Self {
        let shard_words = cfg.slots_per_shard * cfg.slot_words();
        let shard_base = (0..cfg.shards)
            .map(|_| data.alloc_page_aligned(shard_words))
            .collect();
        let locks = (0..cfg.shards)
            .map(|_| SpinLock::new(lock_zone.alloc_page_aligned(1)))
            .collect();
        KvTable {
            cfg,
            shard_base,
            locks,
        }
    }

    /// The geometry this table was laid out with.
    pub fn config(&self) -> &KvConfig {
        &self.cfg
    }

    /// The shard owning `key`.
    pub fn shard_of(&self, key: u64) -> usize {
        (key % self.cfg.shards as u64) as usize
    }

    /// Address of slot `idx` of `shard`.
    fn slot_va(&self, shard: usize, idx: usize) -> Va {
        self.shard_base[shard] + 4 * (idx * self.cfg.slot_words()) as u64
    }

    /// First value word a write with `serial` installs for `key`.
    fn value_base(key: u64, serial: u64) -> u32 {
        mix(key, serial) as u32
    }

    /// Walks `shard`'s probe sequence for `key` until `visit` returns
    /// a result (`Some(tag)` observed at each slot).
    fn probe<M: ServerMem, R>(
        &self,
        m: &mut M,
        key: u64,
        mut visit: impl FnMut(&mut M, Va, u32) -> platinum::Result<Option<R>>,
    ) -> platinum::Result<R> {
        let shard = self.shard_of(key);
        let mask = self.cfg.slots_per_shard - 1;
        let start = mix(key, SLOT_SALT) as usize & mask;
        for step in 0..=mask {
            let va = self.slot_va(shard, (start + step) & mask);
            let tag = m.try_load(va)?;
            if let Some(r) = visit(m, va, tag)? {
                return Ok(r);
            }
        }
        panic!("kv probe wrapped shard {shard}: table over-full or key {key} lost");
    }

    /// Inserts `key` with its serial-0 value. Populate-phase only: the
    /// caller partitions keys between workers, so no lock is taken.
    pub fn insert<M: ServerMem>(&self, m: &mut M, key: u64) -> platinum::Result<()> {
        let tag = (key + 1) as u32;
        let words = self.cfg.value_words;
        self.probe(m, key, |m, va, t| {
            if t != 0 {
                assert_ne!(t, tag, "duplicate insert of key {key}");
                return Ok(None);
            }
            m.try_store(va, tag)?;
            m.try_store(va + 4, 0)?;
            let base = Self::value_base(key, 0);
            for i in 0..words {
                m.try_store(va + 4 * (2 + i) as u64, base.wrapping_add(i as u32))?;
            }
            Ok(Some(()))
        })
    }

    /// Inserts every key this worker owns (shards striped round-robin
    /// over workers, so the populate phase first-touches each shard on
    /// its owner's node).
    pub fn populate_owned<M: ServerMem>(
        &self,
        m: &mut M,
        worker: usize,
        workers: usize,
    ) -> platinum::Result<()> {
        for shard in (0..self.cfg.shards).filter(|s| s % workers == worker) {
            let mut key = shard as u64;
            while key < self.cfg.keys {
                self.insert(m, key)?;
                key += self.cfg.shards as u64;
            }
        }
        Ok(())
    }

    /// Looks `key` up and folds its value words (the read path: a
    /// session lookup touching the whole value).
    ///
    /// # Panics
    ///
    /// Panics if `key` was never inserted — the generator only issues
    /// populated keys, so a miss is a table bug.
    pub fn get<M: ServerMem>(&self, m: &mut M, key: u64) -> platinum::Result<u32> {
        let tag = (key + 1) as u32;
        let words = self.cfg.value_words;
        self.probe(m, key, |m, va, t| {
            assert_ne!(t, 0, "key {key} missing from the table");
            if t != tag {
                return Ok(None);
            }
            let mut fold = m.try_load(va + 4)?;
            for i in 0..words {
                fold = fold.wrapping_add(m.try_load(va + 4 * (2 + i) as u64)?);
            }
            Ok(Some(fold))
        })
    }

    /// Updates `key`'s value to the `serial` version under the shard
    /// lock (the write path: a session checkpoint).
    pub fn put<M: ServerMem>(&self, m: &mut M, key: u64, serial: u64) -> platinum::Result<()> {
        let shard = self.shard_of(key);
        let tag = (key + 1) as u32;
        let words = self.cfg.value_words;
        self.locks[shard].with(m, |m| {
            self.probe(m, key, |m, va, t| {
                assert_ne!(t, 0, "key {key} missing from the table");
                if t != tag {
                    return Ok(None);
                }
                m.try_store(va + 4, serial as u32)?;
                let base = Self::value_base(key, serial);
                for i in 0..words {
                    m.try_store(va + 4 * (2 + i) as u64, base.wrapping_add(i as u32))?;
                }
                Ok(Some(()))
            })
        })
    }

    /// Sweeps the quiesced table: asserts every occupied slot's value is
    /// a consistent single write (tag, version, and the arithmetic
    /// progression `base(key, version) + i` agree) and folds the
    /// contents into a checksum. Run from one processor after the
    /// workers have finished.
    ///
    /// # Panics
    ///
    /// Panics on a torn or corrupt slot — that is the post-chaos
    /// correctness condition.
    pub fn verify<M: ServerMem>(&self, m: &mut M) -> platinum::Result<KvAudit> {
        let mut occupied = 0u64;
        let mut checksum = 0u64;
        for shard in 0..self.cfg.shards {
            for idx in 0..self.cfg.slots_per_shard {
                let va = self.slot_va(shard, idx);
                let tag = m.try_load(va)?;
                if tag == 0 {
                    continue;
                }
                occupied += 1;
                let key = (tag - 1) as u64;
                assert_eq!(
                    self.shard_of(key),
                    shard,
                    "key {key} filed under the wrong shard"
                );
                let serial = m.try_load(va + 4)? as u64;
                let base = Self::value_base(key, serial);
                let mut slot_sum = 0u64;
                for i in 0..self.cfg.value_words {
                    let w = m.try_load(va + 4 * (2 + i) as u64)?;
                    assert_eq!(
                        w,
                        base.wrapping_add(i as u32),
                        "torn value: key {key} serial {serial} word {i}"
                    );
                    slot_sum += w as u64;
                }
                checksum = checksum
                    .rotate_left(1)
                    .wrapping_add(tag as u64 ^ (serial << 32) ^ slot_sum);
            }
        }
        Ok(KvAudit { occupied, checksum })
    }
}

impl Workload for KvTable {
    fn populate<M: ServerMem>(
        &self,
        m: &mut M,
        worker: usize,
        workers: usize,
    ) -> platinum::Result<()> {
        self.populate_owned(m, worker, workers)
    }

    fn execute<M: ServerMem>(&self, m: &mut M, req: &Request) -> platinum::Result<()> {
        if req.write {
            self.put(m, req.key % self.cfg.keys, req.serial)
        } else {
            self.get(m, req.key % self.cfg.keys).map(|_| ())
        }
    }

    fn class(&self, req: &Request) -> u8 {
        req.write as u8
    }

    fn shards(&self) -> usize {
        self.cfg.shards
    }

    fn shard_of(&self, key: u64) -> usize {
        KvTable::shard_of(self, key % self.cfg.keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_machine::mem_iface::test_support::FlatMem;

    fn table(keys: u64, shards: usize) -> (KvTable, FlatMem) {
        let cfg = KvConfig::for_keys(keys, shards);
        let page_words = 1024;
        let mut data = Zone::new(
            0x1_0000,
            cfg.table_pages(page_words) * page_words,
            page_words,
        );
        let mut locks = Zone::new(0x4000_0000, cfg.lock_pages() * page_words, page_words);
        (
            KvTable::layout(cfg, &mut data, &mut locks),
            FlatMem::new(0, 1),
        )
    }

    #[test]
    fn insert_get_put_roundtrip() {
        let (kv, mut m) = table(500, 4);
        kv.populate_owned(&mut m, 0, 1).unwrap();
        let a = kv.get(&mut m, 123).unwrap();
        kv.put(&mut m, 123, 77).unwrap();
        let b = kv.get(&mut m, 123).unwrap();
        assert_ne!(a, b, "put must change the folded value");
        let audit = kv.verify(&mut m).unwrap();
        assert_eq!(audit.occupied, 500);
    }

    #[test]
    fn checksum_tracks_writes() {
        let (kv, mut m) = table(200, 2);
        kv.populate_owned(&mut m, 0, 1).unwrap();
        let before = kv.verify(&mut m).unwrap();
        kv.put(&mut m, 7, 1).unwrap();
        let after = kv.verify(&mut m).unwrap();
        assert_eq!(before.occupied, after.occupied);
        assert_ne!(before.checksum, after.checksum);
        // Same writes ⇒ same checksum.
        let (kv2, mut m2) = table(200, 2);
        kv2.populate_owned(&mut m2, 0, 1).unwrap();
        kv2.put(&mut m2, 7, 1).unwrap();
        assert_eq!(kv2.verify(&mut m2).unwrap(), after);
    }

    #[test]
    #[should_panic(expected = "torn value")]
    fn verify_catches_torn_writes() {
        let (kv, mut m) = table(100, 2);
        kv.populate_owned(&mut m, 0, 1).unwrap();
        // Corrupt one value word of key 5 behind the table's back.
        let shard = kv.shard_of(5);
        for idx in 0..kv.config().slots_per_shard {
            let va = kv.slot_va(shard, idx);
            if *m.words.get(&va).unwrap_or(&0) == 6 {
                let word = va + 4 * 3;
                let old = *m.words.get(&word).unwrap();
                m.words.insert(word, old ^ 0x8000_0000);
                break;
            }
        }
        let _ = kv.verify(&mut m);
    }

    #[test]
    fn populate_partition_covers_all_keys() {
        let (kv, mut m) = table(300, 8);
        for w in 0..3 {
            kv.populate_owned(&mut m, w, 3).unwrap();
        }
        assert_eq!(kv.verify(&mut m).unwrap().occupied, 300);
        for key in [0u64, 1, 150, 299] {
            kv.get(&mut m, key).unwrap();
        }
    }
}
