//! Zipf-distributed rank sampling over a precomputed CDF.
//!
//! Key popularity in server workloads is classically modeled as
//! Zipf(θ): the r-th most popular key is requested with probability
//! proportional to `1/r^θ` (θ ≈ 0.99 is the YCSB convention). The
//! sampler precomputes the cumulative weights once and answers each
//! draw with a binary search — O(log n) per request, no rejection
//! loops, and every arithmetic operation is either an integer op or an
//! exactly-rounded IEEE f64 op, so the sampled stream is bit-identical
//! across hosts.
//!
//! That last property is why `powf`/`ln` from libm are **not** used:
//! their results are implementation-defined in the last bits and differ
//! between platforms, which would break the exact `server_bench`
//! baseline check. [`det_pow`] below is a fixed polynomial evaluation
//! using only `+ - * /` and bit manipulation. Its absolute accuracy is
//! irrelevant (a slightly-off exponent is still a valid skew); its
//! *determinism* is the contract, and the chi-squared test in the crate
//! compares empirical counts against the sampler's own CDF, not against
//! an external ideal.

use crate::rng::Rng;

/// `log2(x)` for finite positive `x`, from exponent extraction plus an
/// atanh-series polynomial on the mantissa. Deterministic: bit ops and
/// exactly-rounded IEEE arithmetic only.
fn det_log2(x: f64) -> f64 {
    debug_assert!(x > 0.0 && x.is_finite());
    let bits = x.to_bits();
    let mut e = ((bits >> 52) & 0x7FF) as i64 - 1023;
    // Mantissa normalized to [1, 2), then folded into [1/√2, √2] (an
    // exact halving) so the series argument stays small.
    let mut m = f64::from_bits((bits & 0x000F_FFFF_FFFF_FFFF) | 0x3FF0_0000_0000_0000);
    if m > std::f64::consts::SQRT_2 {
        m *= 0.5;
        e += 1;
    }
    // log(m) = 2 atanh(t) with t = (m-1)/(m+1), |t| ≤ 0.172.
    let t = (m - 1.0) / (m + 1.0);
    let t2 = t * t;
    let series = t
        * (2.0
            + t2 * (2.0 / 3.0
                + t2 * (2.0 / 5.0
                    + t2 * (2.0 / 7.0
                        + t2 * (2.0 / 9.0 + t2 * (2.0 / 11.0 + t2 * (2.0 / 13.0)))))));
    e as f64 + series * std::f64::consts::LOG2_E
}

/// `2^x` for moderate `x`, from exponent bit-assembly plus a Taylor
/// polynomial for the fractional part. Deterministic for the same
/// reason as [`det_log2`].
fn det_exp2(x: f64) -> f64 {
    let xi = x.floor();
    let f = x - xi; // [0, 1)
    let z = f * std::f64::consts::LN_2;
    let p = 1.0
        + z * (1.0
            + z * (0.5
                + z * (1.0 / 6.0
                    + z * (1.0 / 24.0
                        + z * (1.0 / 120.0
                            + z * (1.0 / 720.0
                                + z * (1.0 / 5040.0 + z * (1.0 / 40320.0 + z / 362880.0))))))));
    debug_assert!((-1000.0..1000.0).contains(&xi), "exp2 range");
    p * f64::from_bits(((xi as i64 + 1023) as u64) << 52)
}

/// `x^y` for positive `x`, built only from exactly-rounded IEEE ops.
pub fn det_pow(x: f64, y: f64) -> f64 {
    det_exp2(y * det_log2(x))
}

/// A Zipf(θ) sampler over ranks `0..n` (rank 0 is the hottest).
#[derive(Clone, Debug)]
pub struct Zipf {
    /// `cum[r]` = sum of weights of ranks `0..=r`.
    cum: Vec<f64>,
}

impl Zipf {
    /// Precomputes the CDF for `n` ranks with exponent `theta`.
    /// `theta == 0` degenerates to uniform; `theta == 1` is the
    /// harmonic special case (pure divisions, no [`det_pow`]).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is negative.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "empty key space");
        assert!(theta >= 0.0, "negative skew");
        let mut cum = Vec::with_capacity(n as usize);
        let mut total = 0.0f64;
        for r in 0..n {
            let rank = (r + 1) as f64;
            let w = if theta == 1.0 {
                1.0 / rank
            } else if theta == 0.0 {
                1.0
            } else {
                det_pow(rank, -theta)
            };
            total += w;
            cum.push(total);
        }
        Zipf { cum }
    }

    /// The number of ranks.
    pub fn n(&self) -> u64 {
        self.cum.len() as u64
    }

    /// The probability mass of `rank` under this sampler's own CDF
    /// (what the chi-squared test compares empirical counts against).
    pub fn prob(&self, rank: u64) -> f64 {
        let total = *self.cum.last().expect("nonempty");
        let hi = self.cum[rank as usize];
        let lo = if rank == 0 {
            0.0
        } else {
            self.cum[rank as usize - 1]
        };
        (hi - lo) / total
    }

    /// Draws a rank: hottest ranks most likely.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        let total = *self.cum.last().expect("nonempty");
        let u = rng.unit() * total;
        // First rank whose cumulative weight exceeds the draw.
        self.cum.partition_point(|&c| c <= u) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn det_pow_tracks_powf_loosely() {
        // Accuracy is not the contract, but gross error would distort
        // the skew; demand ~1e-9 relative agreement on the ranks the
        // sampler actually raises.
        for r in [1u64, 2, 3, 10, 1000, 1 << 20] {
            for theta in [0.5, 0.75, 0.99, 1.2] {
                let got = det_pow(r as f64, -theta);
                let want = (r as f64).powf(-theta);
                assert!(
                    (got - want).abs() <= want.abs() * 1e-9,
                    "det_pow({r}, -{theta}) = {got}, powf = {want}"
                );
            }
        }
    }

    #[test]
    fn sample_in_range_and_skewed() {
        let z = Zipf::new(1000, 0.99);
        let mut rng = Rng::new(11);
        let mut top10 = 0u64;
        const DRAWS: u64 = 20_000;
        for _ in 0..DRAWS {
            let r = z.sample(&mut rng);
            assert!(r < 1000);
            if r < 10 {
                top10 += 1;
            }
        }
        // Top 1% of ranks should hold far more than 1% of draws.
        assert!(
            top10 > DRAWS / 10,
            "no skew: top-10 ranks drew {top10}/{DRAWS}"
        );
    }

    #[test]
    fn probs_sum_to_one() {
        let z = Zipf::new(257, 0.8);
        let sum: f64 = (0..257).map(|r| z.prob(r)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_degenerate_case() {
        let z = Zipf::new(64, 0.0);
        for r in 0..64 {
            assert!((z.prob(r) - 1.0 / 64.0).abs() < 1e-12);
        }
    }
}
