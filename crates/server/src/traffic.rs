//! Deterministic open-loop request generation.
//!
//! Each processor gets its own arrival schedule in *virtual* time,
//! derived as a pure function of `(seed, processor)`: a stream of
//! requests with Zipf-popular keys, a hot set that drifts through the
//! key space on a fixed period, and a read/write mix punctuated by
//! write bursts (the "session checkpoint" pattern: a server that mostly
//! reads suddenly persists a batch). Open loop means arrivals do not
//! wait for completions — when the simulated server falls behind, the
//! backlog shows up as queueing delay in the latency histograms, which
//! is exactly the signal a placement policy is judged on.
//!
//! The merged schedule (all processors, arrival order) is what the
//! serialized driver executes; per-processor schedules feed the
//! closed-loop saturation mode and the reference-trace recorder.

use crate::rng::{mix, Rng};
use crate::zipf::Zipf;

/// Generator parameters. Everything is in virtual nanoseconds and
/// per-processor terms; the whole stream is a pure function of this
/// struct, so two identically-configured generators agree bit for bit.
#[derive(Clone, Debug)]
pub struct TrafficConfig {
    /// Run seed; every per-processor stream derives from it.
    pub seed: u64,
    /// Key-space size (requests address keys `0..keys`).
    pub keys: u64,
    /// Requests generated per processor.
    pub requests_per_proc: usize,
    /// Zipf exponent for key popularity (0 = uniform, 0.99 = YCSB-ish).
    pub theta: f64,
    /// Percentage of non-burst requests that are writes (0..=100).
    pub write_pct: u32,
    /// Every `burst_every`-th request per processor opens a write burst
    /// (0 disables bursts).
    pub burst_every: u64,
    /// Length of each write burst, in requests.
    pub burst_len: u64,
    /// Period of hot-set drift in virtual ns (0 disables drift): every
    /// period, the popularity ranking rotates by `drift_step` keys.
    pub drift_period_ns: u64,
    /// How far the hot set moves per drift period.
    pub drift_step: u64,
    /// Mean per-processor interarrival gap, virtual ns (arrivals are
    /// uniform on `[0, 2 * mean]`, so the mean is exact without any
    /// transcendental sampling).
    pub mean_interarrival_ns: u64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            seed: 0x5EED,
            keys: 1 << 20,
            requests_per_proc: 1 << 17,
            theta: 0.99,
            write_pct: 10,
            burst_every: 256,
            burst_len: 32,
            drift_period_ns: 250_000_000,
            drift_step: 997,
            mean_interarrival_ns: 25_000,
        }
    }
}

/// One generated request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Request {
    /// The processor this request arrives at.
    pub proc: usize,
    /// Arrival time on that processor's virtual clock, ns.
    pub arrival_ns: u64,
    /// The key addressed.
    pub key: u64,
    /// Write (update) rather than read (lookup).
    pub write: bool,
    /// Position in the merged arrival order (stamped by
    /// [`TrafficConfig::schedule`]; per-processor position before the
    /// merge). Doubles as the value-version a write installs.
    pub serial: u64,
}

impl TrafficConfig {
    /// The drift-rotated key for a popularity `rank` at `arrival_ns`:
    /// the whole ranking slides `drift_step` keys forward each period,
    /// so yesterday's cold keys become today's hot ones.
    fn key_at(&self, rank: u64, arrival_ns: u64) -> u64 {
        if self.drift_period_ns == 0 {
            return rank;
        }
        let epoch = arrival_ns / self.drift_period_ns;
        (rank + epoch.wrapping_mul(self.drift_step)) % self.keys
    }

    /// One processor's arrival schedule, in arrival order. Pure
    /// function of `(self, proc)`; `serial` numbers the requests within
    /// this processor's stream.
    pub fn proc_schedule(&self, zipf: &Zipf, proc: usize) -> Vec<Request> {
        assert_eq!(
            zipf.n(),
            self.keys,
            "sampler sized for a different key space"
        );
        let mut rng = Rng::new(mix(self.seed, proc as u64 + 1));
        let mut out = Vec::with_capacity(self.requests_per_proc);
        let mut arrival = 0u64;
        let mut burst_left = 0u64;
        for i in 0..self.requests_per_proc as u64 {
            arrival += rng.below(2 * self.mean_interarrival_ns + 1);
            let write = if burst_left > 0 {
                burst_left -= 1;
                true
            } else if self.burst_every > 0 && i > 0 && i % self.burst_every == 0 {
                burst_left = self.burst_len.saturating_sub(1);
                true
            } else {
                rng.below(100) < self.write_pct as u64
            };
            let rank = zipf.sample(&mut rng);
            out.push(Request {
                proc,
                arrival_ns: arrival,
                key: self.key_at(rank, arrival),
                write,
                serial: i,
            });
        }
        out
    }

    /// All processors' schedules, separately (closed-loop mode and the
    /// capture runner consume them per worker).
    pub fn per_proc_schedules(&self, procs: usize) -> Vec<Vec<Request>> {
        let zipf = Zipf::new(self.keys, self.theta);
        (0..procs).map(|p| self.proc_schedule(&zipf, p)).collect()
    }

    /// The merged schedule: every processor's stream interleaved by
    /// arrival time (ties broken by processor index), `serial`
    /// re-stamped to the merged position. This is the total order the
    /// serialized open-loop driver executes in.
    pub fn schedule(&self, procs: usize) -> Vec<Request> {
        let mut all: Vec<Request> = self
            .per_proc_schedules(procs)
            .into_iter()
            .flatten()
            .collect();
        all.sort_by_key(|r| (r.arrival_ns, r.proc, r.serial));
        for (i, r) in all.iter_mut().enumerate() {
            r.serial = i as u64;
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TrafficConfig {
        TrafficConfig {
            keys: 1 << 10,
            requests_per_proc: 2_000,
            ..TrafficConfig::default()
        }
    }

    #[test]
    fn merged_schedule_is_arrival_ordered() {
        let s = small().schedule(4);
        assert_eq!(s.len(), 8_000);
        for w in s.windows(2) {
            assert!(
                (w[0].arrival_ns, w[0].proc) <= (w[1].arrival_ns, w[1].proc),
                "schedule out of order"
            );
        }
        for (i, r) in s.iter().enumerate() {
            assert_eq!(r.serial, i as u64);
            assert!(r.key < 1 << 10);
        }
    }

    #[test]
    fn write_mix_respects_bursts() {
        let cfg = TrafficConfig {
            write_pct: 0,
            burst_every: 100,
            burst_len: 10,
            ..small()
        };
        let zipf = Zipf::new(cfg.keys, cfg.theta);
        let s = cfg.proc_schedule(&zipf, 0);
        let writes = s.iter().filter(|r| r.write).count();
        // Only bursts write: 2000/100 - 1 = 19 bursts of 10.
        assert_eq!(writes, 19 * 10);
        // Bursts are contiguous runs of exactly burst_len writes.
        let first = s.iter().position(|r| r.write).unwrap();
        assert!(s[first..first + 10].iter().all(|r| r.write));
        assert!(!s[first + 10].write);
    }

    #[test]
    fn drift_rotates_the_hot_set() {
        let cfg = TrafficConfig {
            drift_period_ns: 1_000,
            drift_step: 100,
            ..small()
        };
        assert_eq!(cfg.key_at(5, 0), 5);
        assert_eq!(cfg.key_at(5, 1_000), 105);
        assert_eq!(cfg.key_at(5, 2_500), 205);
        // Wraps around the key space.
        let near_end = cfg.key_at(1_020, 1_000);
        assert!(near_end < cfg.keys);
    }

    #[test]
    fn interarrival_mean_is_close() {
        let cfg = TrafficConfig {
            requests_per_proc: 50_000,
            ..small()
        };
        let zipf = Zipf::new(cfg.keys, cfg.theta);
        let s = cfg.proc_schedule(&zipf, 0);
        let mean = s.last().unwrap().arrival_ns / s.len() as u64;
        let want = cfg.mean_interarrival_ns;
        assert!(
            mean > want * 9 / 10 && mean < want * 11 / 10,
            "mean gap {mean} vs configured {want}"
        );
    }
}
