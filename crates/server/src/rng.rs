//! The generator's random source: splitmix64.
//!
//! Everything the traffic generator draws — interarrival gaps, Zipf
//! ranks, read/write coin flips — comes from this generator, seeded as a
//! pure function of the run seed and the processor index. Identical
//! seeds therefore yield identical request streams on any host, which is
//! what makes the committed `server_bench` baseline an exact check
//! rather than a tolerance band.

/// A splitmix64 stream.
///
/// Chosen over a heavier generator because the determinism argument is
/// the point, not statistical strength: splitmix64 passes the only tests
/// that matter here (no visible structure in bucketed Zipf counts) and
/// is a handful of integer operations with no platform-dependent math.
#[derive(Clone, Debug)]
pub struct Rng(u64);

impl Rng {
    /// A stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Rng(seed)
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)` via Lemire's multiply-shift (no modulo bias
    /// worth correcting at these stream lengths, and branch-free).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)` with 53 bits of precision. The conversion is
    /// a single exactly-rounded IEEE multiply, so it is bit-stable
    /// across hosts.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Mixes two words into a seed (finalizer of splitmix64 applied to the
/// pair). Used to derive per-processor and per-key streams from the run
/// seed without correlation between them.
pub fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.rotate_left(32) ^ 0x9E37_79B9_7F4A_7C15;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn unit_stays_in_range() {
        let mut r = Rng::new(9);
        for _ in 0..10_000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn mix_separates_streams() {
        assert_ne!(mix(1, 0), mix(0, 1));
        assert_ne!(mix(5, 1), mix(5, 2));
    }
}
