//! The request driver: deterministic open-loop measurement and a
//! concurrent closed-loop saturation mode.
//!
//! # Why the open-loop driver is deterministic
//!
//! The reference-trace replay engine established the argument this
//! driver reuses: if kernel entries happen one at a time in a fixed
//! global order (with waiting processors servicing shootdown IPIs and
//! *nothing else*), then every protocol decision — replicate vs.
//! migrate, freeze, evict — sees identical state on every run, so
//! virtual times, counters, and table contents are bit-identical. Here
//! the fixed order is the merged arrival schedule: workers take turns
//! at *request* granularity (coarser than the replay engine's
//! per-operation gate, but the same invariant: one runner, everyone
//! else only acknowledging shootdowns). The simulation must be booted
//! with `skew_window_ns: None`, as the capture engine does — the skew
//! throttle is a liveness aid for free-running workers and would add
//! host-dependent kernel entries.
//!
//! Virtual time still *overlaps* between processors — each worker's
//! clock advances independently, arrivals pace it, and a backlogged
//! worker's completions lag its arrivals — so open-loop latency
//! (completion minus scheduled arrival) includes queueing delay, which
//! is the number a server operator actually experiences.
//!
//! The closed-loop mode runs the workers genuinely concurrently (next
//! request issues the moment the previous completes). It saturates the
//! protocol with real cross-processor races, at the price of
//! host-schedule-dependent results: use it for stress and ceiling
//! numbers, never for baseline checks.

use std::sync::atomic::{AtomicUsize, Ordering};

use numa_machine::Mem as _;
use platinum::{StatsSnapshot, UserCtx};
use platinum_runtime::sim::Sim;
use platinum_trace::EventKind;

use crate::hist::Histogram;
use crate::traffic::Request;
use crate::ServerMem;

/// A server workload the driver can run: populate once, then execute
/// requests. Implementations are written against [`ServerMem`], so the
/// same workload runs live (`UserCtx`), recorded
/// (`RecordingCtx`), and in unit tests (`FlatMem`).
pub trait Workload: Sync {
    /// Builds this worker's partition of the initial state.
    fn populate<M: ServerMem>(
        &self,
        m: &mut M,
        worker: usize,
        workers: usize,
    ) -> platinum::Result<()>;

    /// Executes one request.
    fn execute<M: ServerMem>(&self, m: &mut M, req: &Request) -> platinum::Result<()>;

    /// Request class for the trace record (0 read, 1 write, 2 pipeline).
    fn class(&self, req: &Request) -> u8;

    /// Number of throughput-accounting shards.
    fn shards(&self) -> usize;

    /// The shard a request against `key` is accounted to.
    fn shard_of(&self, key: u64) -> usize;
}

/// What one driver phase measured.
#[derive(Clone, Debug)]
pub struct DriverReport {
    /// Requests completed.
    pub requests: u64,
    /// Read-class requests.
    pub reads: u64,
    /// Write-class requests.
    pub writes: u64,
    /// Requests that had to be retried after a recoverable error
    /// surfaced through the fallible access path (fault injection).
    pub retries: u64,
    /// Measured-phase execution time: max worker virtual time, ns.
    pub elapsed_ns: u64,
    /// All-request latency histogram.
    pub latency: Histogram,
    /// Read-only latency histogram.
    pub read_latency: Histogram,
    /// Write latency histogram.
    pub write_latency: Histogram,
    /// Requests accounted to each workload shard.
    pub per_shard: Vec<u64>,
    /// Requests executed by each processor.
    pub per_proc: Vec<u64>,
    /// Kernel protocol counters over the measured phase only
    /// (after minus before).
    pub protocol: StatsSnapshot,
}

impl DriverReport {
    /// `count` per 1000 completed requests (protocol-cost attribution).
    pub fn per_1k(&self, count: u64) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            count as f64 * 1000.0 / self.requests as f64
        }
    }

    /// Completed requests per virtual second.
    pub fn throughput_rps(&self) -> f64 {
        if self.elapsed_ns == 0 {
            0.0
        } else {
            self.requests as f64 * 1e9 / self.elapsed_ns as f64
        }
    }
}

/// Which driver produced a report (stamped into artifacts).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServerPhase {
    /// Deterministic serialized open loop.
    OpenLoop,
    /// Concurrent closed loop (host-schedule dependent).
    ClosedLoop,
}

/// Upper bound on per-request retries before the driver declares the
/// fault plan unrecoverable. The injection hash is keyed by attempt, so
/// honest transient plans converge in a handful of tries.
const MAX_ATTEMPTS: u32 = 64;

/// Runs `exec` over `items` serialized in item order: item `i` runs on
/// processor `proc_of(item)` only after items `0..i` finished, while
/// every other worker spins servicing shootdown IPIs. One attached
/// context per processor for the whole pass.
fn run_serialized<T, A>(
    sim: &Sim,
    procs: usize,
    items: &[T],
    proc_of: impl Fn(&T) -> usize + Sync,
    init: impl Fn(usize) -> A + Sync,
    exec: impl Fn(&mut UserCtx, &T, &mut A) + Sync,
) -> (Vec<A>, Vec<u64>)
where
    T: Sync,
    A: Send,
{
    let cursor = AtomicUsize::new(0);
    let mut out: Vec<Option<(A, u64)>> = Vec::new();
    out.resize_with(procs, || None);
    std::thread::scope(|s| {
        let cursor = &cursor;
        let proc_of = &proc_of;
        let init = &init;
        let exec = &exec;
        for (p, slot) in out.iter_mut().enumerate() {
            s.spawn(move || {
                let mut ctx = sim
                    .attach(p)
                    .expect("driver worker claims a free processor");
                let mut acc = init(p);
                let mut spins = 0u32;
                loop {
                    let i = cursor.load(Ordering::Acquire);
                    if i >= items.len() {
                        break;
                    }
                    if proc_of(&items[i]) != p {
                        // Not our turn: keep shootdowns flowing (the
                        // runner may be blocked on our ack) and nothing
                        // else.
                        ctx.service_ipis();
                        spins += 1;
                        if spins & 63 == 0 {
                            std::thread::yield_now();
                        } else {
                            std::hint::spin_loop();
                        }
                        continue;
                    }
                    spins = 0;
                    exec(&mut ctx, &items[i], &mut acc);
                    cursor.store(i + 1, Ordering::Release);
                }
                let vtime = ctx.vtime();
                // Dropping the context deactivates the space, which
                // acknowledges any still-pending mapping changes — no
                // runner can block on an exited worker.
                drop(ctx);
                *slot = Some((acc, vtime));
            });
        }
    });
    let mut accs = Vec::with_capacity(procs);
    let mut vtimes = Vec::with_capacity(procs);
    for slot in out {
        let (a, v) = slot.expect("driver worker completed");
        accs.push(a);
        vtimes.push(v);
    }
    (accs, vtimes)
}

/// Per-worker measurement accumulator.
struct Acc {
    all: Histogram,
    read: Histogram,
    write: Histogram,
    per_shard: Vec<u64>,
    requests: u64,
    reads: u64,
    writes: u64,
    retries: u64,
}

impl Acc {
    fn new(shards: usize) -> Self {
        Acc {
            all: Histogram::new(),
            read: Histogram::new(),
            write: Histogram::new(),
            per_shard: vec![0; shards],
            requests: 0,
            reads: 0,
            writes: 0,
            retries: 0,
        }
    }
}

/// Executes one request against `w`, retrying surfaced recoverable
/// errors, and returns the completion vtime.
fn execute_one<W: Workload>(ctx: &mut UserCtx, w: &W, req: &Request, acc: &mut Acc) {
    if ctx.vtime() < req.arrival_ns {
        // Idle until the request arrives; a backlogged worker skips
        // this and the excess shows up as queueing latency.
        ctx.advance_to(req.arrival_ns);
    }
    let mut attempts = 0u32;
    loop {
        match w.execute(ctx, req) {
            Ok(()) => break,
            Err(e) => {
                acc.retries += 1;
                attempts += 1;
                assert!(
                    attempts < MAX_ATTEMPTS,
                    "request {} (key {}) unrecoverable after {attempts} attempts: {e}",
                    req.serial,
                    req.key
                );
            }
        }
    }
    let done = ctx.vtime();
    let latency = done - req.arrival_ns;
    let class = w.class(req);
    acc.all.record(latency);
    if class == 1 {
        acc.write.record(latency);
        acc.writes += 1;
    } else {
        acc.read.record(latency);
        acc.reads += 1;
    }
    acc.per_shard[w.shard_of(req.key)] += 1;
    acc.requests += 1;
    // Per-request record through the kernel's choke point: counted in
    // the aggregate stats and visible to an installed tracer.
    ctx.kernel().record(
        ctx.proc_id(),
        done,
        EventKind::ServerRequest,
        class,
        req.key,
        latency,
    );
}

fn merge_report(
    accs: Vec<Acc>,
    vtimes: Vec<u64>,
    shards: usize,
    protocol: StatsSnapshot,
) -> DriverReport {
    let mut rep = DriverReport {
        requests: 0,
        reads: 0,
        writes: 0,
        retries: 0,
        elapsed_ns: vtimes.iter().copied().max().unwrap_or(0),
        latency: Histogram::new(),
        read_latency: Histogram::new(),
        write_latency: Histogram::new(),
        per_shard: vec![0; shards],
        per_proc: Vec::with_capacity(accs.len()),
        protocol,
    };
    for acc in accs {
        rep.requests += acc.requests;
        rep.reads += acc.reads;
        rep.writes += acc.writes;
        rep.retries += acc.retries;
        rep.latency.merge(&acc.all);
        rep.read_latency.merge(&acc.read);
        rep.write_latency.merge(&acc.write);
        for (t, s) in rep.per_shard.iter_mut().zip(&acc.per_shard) {
            *t += s;
        }
        rep.per_proc.push(acc.requests);
    }
    rep
}

/// Populates `w` (one serialized turn per worker, so each worker
/// first-touches its own partition) and then executes the merged
/// open-loop `schedule` deterministically. The populate and measured
/// phases each attach fresh contexts with clocks at zero, mirroring the
/// phase structure of every other harness in the repository.
///
/// Boot the simulation with `skew_window_ns: None` — see the module
/// docs.
pub fn run_open_loop<W: Workload>(
    sim: &Sim,
    w: &W,
    procs: usize,
    schedule: &[Request],
) -> DriverReport {
    assert!(
        sim.machine.cfg().skew_window_ns.is_none(),
        "deterministic driver needs skew_window_ns: None (as the capture engine boots)"
    );
    let turns: Vec<usize> = (0..procs).collect();
    run_serialized(
        sim,
        procs,
        &turns,
        |&t| t,
        |_| (),
        |ctx, &t, _: &mut ()| {
            w.populate(ctx, t, procs)
                .expect("populate phase must not hit injected-fault residue")
        },
    );

    let before = sim.kernel.stats().snapshot();
    let (accs, vtimes) = run_serialized(
        sim,
        procs,
        schedule,
        |r| r.proc,
        |_| Acc::new(w.shards()),
        |ctx, req, acc| execute_one(ctx, w, req, acc),
    );
    let protocol = sim.kernel.stats().snapshot().delta(&before);
    merge_report(accs, vtimes, w.shards(), protocol)
}

/// Populates `w` and then runs every worker concurrently through its
/// own request list back to back, ignoring arrival pacing: each request
/// issues the moment the previous completes, so the measured latency is
/// pure service time at saturation. Host-schedule dependent — never
/// compare against a committed baseline.
pub fn run_closed_loop<W: Workload>(sim: &Sim, w: &W, per_proc: &[Vec<Request>]) -> DriverReport {
    let procs = per_proc.len();
    let turns: Vec<usize> = (0..procs).collect();
    run_serialized(
        sim,
        procs,
        &turns,
        |&t| t,
        |_| (),
        |ctx, &t, _: &mut ()| {
            w.populate(ctx, t, procs)
                .expect("populate phase must not hit injected-fault residue")
        },
    );

    let before = sim.kernel.stats().snapshot();
    let (outs, run) = sim.run(procs, |p, ctx| {
        let mut acc = Acc::new(w.shards());
        for req in &per_proc[p] {
            let start = ctx.vtime();
            let mut attempts = 0u32;
            loop {
                match w.execute(ctx, req) {
                    Ok(()) => break,
                    Err(e) => {
                        acc.retries += 1;
                        attempts += 1;
                        assert!(attempts < MAX_ATTEMPTS, "unrecoverable request: {e}");
                    }
                }
            }
            let latency = ctx.vtime() - start;
            let class = w.class(req);
            acc.all.record(latency);
            if class == 1 {
                acc.write.record(latency);
                acc.writes += 1;
            } else {
                acc.read.record(latency);
                acc.reads += 1;
            }
            acc.per_shard[w.shard_of(req.key)] += 1;
            acc.requests += 1;
            ctx.kernel().record(
                ctx.proc_id(),
                ctx.vtime(),
                EventKind::ServerRequest,
                class,
                req.key,
                latency,
            );
        }
        acc
    });
    let protocol = sim.kernel.stats().snapshot().delta(&before);
    let vtimes = run.workers.iter().map(|w| w.vtime_ns).collect();
    merge_report(outs, vtimes, w.shards(), protocol)
}
