//! The server tier's determinism contracts, end to end.
//!
//! Three layers, three tests:
//!
//! 1. **Generator** (property): the request stream is a pure function of
//!    `TrafficConfig` — identical seeds produce identical streams, and
//!    perturbing the seed produces a different one.
//! 2. **Sampler** (statistical): `Zipf::sample` matches the sampler's
//!    own CDF under a chi-squared test. The comparison is against
//!    `Zipf::prob`, not an external ideal, so `det_pow`'s last-bit
//!    behaviour is irrelevant — the test checks the *sampling*, the
//!    determinism tests check the stream.
//! 3. **Driver** (integration): two identically-configured simulations
//!    running `run_open_loop` over the same schedule report identical
//!    latency histograms, virtual times, protocol counters, and table
//!    checksums — the property the committed `server_bench` baseline
//!    relies on.

use numa_machine::MachineConfig;
use platinum_runtime::sim::{Sim, SimBuilder};
use platinum_server::{run_open_loop, DriverReport, KvConfig, KvTable, Rng, TrafficConfig, Zipf};
use proptest::prelude::*;

fn config_from(seed: u64, theta_i: usize, write_pct: u32, bursts: bool) -> TrafficConfig {
    TrafficConfig {
        seed,
        keys: 1 << 10,
        requests_per_proc: 512,
        theta: [0.0, 0.75, 0.99][theta_i],
        write_pct,
        burst_every: if bursts { 64 } else { 0 },
        burst_len: 8,
        ..TrafficConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn identical_seeds_produce_identical_streams(
        seed in any::<u64>(),
        procs in 1usize..6,
        theta_i in 0usize..3,
        write_pct in 0u32..50,
        bursts in any::<bool>(),
    ) {
        let a = config_from(seed, theta_i, write_pct, bursts).schedule(procs);
        let b = config_from(seed, theta_i, write_pct, bursts).schedule(procs);
        prop_assert_eq!(a.len(), b.len());
        prop_assert!(a == b, "same config, diverging schedules");

        // Perturbing the seed must move the stream: with 512 requests
        // per processor, two independent streams agreeing everywhere is
        // astronomically unlikely.
        let c = config_from(seed ^ 0x9E37_79B9, theta_i, write_pct, bursts).schedule(procs);
        prop_assert!(a != c, "seed change left the schedule untouched");
    }
}

/// Chi-squared goodness of fit of `Zipf::sample` against `Zipf::prob`.
///
/// Ranks with expected count ≥ 8 get their own bucket; the long tail is
/// folded into one. The draw stream is deterministic (fixed `Rng` seed),
/// so the statistic is a constant — the bound below is the 99.9th
/// percentile of chi-squared at this bucket count, with slack; a
/// sampler/CDF mismatch (off-by-one in the binary search, a mis-sized
/// `unit()` draw) inflates the statistic by orders of magnitude.
#[test]
fn zipf_sampling_matches_its_own_cdf() {
    const DRAWS: u64 = 200_000;
    for (seed, theta) in [(1u64, 0.99f64), (2, 0.75), (3, 0.0)] {
        let n = 1u64 << 10;
        let z = Zipf::new(n, theta);
        let mut counts = vec![0u64; n as usize];
        let mut rng = Rng::new(seed);
        for _ in 0..DRAWS {
            counts[z.sample(&mut rng) as usize] += 1;
        }

        // Bucket: individual heads, folded tail.
        let mut chi2 = 0.0f64;
        let mut buckets = 0usize;
        let mut tail_obs = 0u64;
        let mut tail_exp = 0.0f64;
        for rank in 0..n {
            let expected = z.prob(rank) * DRAWS as f64;
            if expected >= 8.0 {
                let d = counts[rank as usize] as f64 - expected;
                chi2 += d * d / expected;
                buckets += 1;
            } else {
                tail_obs += counts[rank as usize];
                tail_exp += expected;
            }
        }
        if tail_exp > 0.0 {
            let d = tail_obs as f64 - tail_exp;
            chi2 += d * d / tail_exp;
            buckets += 1;
        }

        // p999 critical value of chi2_k is about k + 3.1 sqrt(2k) + 9;
        // double it for slack (a real defect overshoots by 100x).
        let df = (buckets - 1) as f64;
        let bound = 2.0 * (df + 3.1 * (2.0 * df).sqrt() + 9.0);
        assert!(
            chi2 < bound,
            "theta {theta}: chi2 {chi2:.1} over {buckets} buckets exceeds {bound:.1}"
        );
    }
}

fn boot(nodes: usize) -> Sim {
    let mut mcfg = MachineConfig::with_nodes(nodes);
    mcfg.frames_per_node = 512;
    mcfg.skew_window_ns = None;
    SimBuilder::nodes(nodes).machine_config(mcfg).build()
}

/// One full open-loop KV run on a small machine; returns the report and
/// the post-run table checksum.
fn kv_run(nodes: usize, traffic: &TrafficConfig) -> (DriverReport, u64) {
    let sim = boot(nodes);
    let cfg = KvConfig::for_keys(traffic.keys, 8);
    let page_words = sim.machine.cfg().words_per_page();
    let mut data = sim.alloc_zone(cfg.table_pages(page_words));
    let mut locks = sim.alloc_zone(cfg.lock_pages());
    let kv = KvTable::layout(cfg, &mut data, &mut locks);
    let schedule = traffic.schedule(nodes);
    let report = run_open_loop(&sim, &kv, nodes, &schedule);
    let audit = sim
        .spawn(0, |ctx| kv.verify(ctx))
        .expect("processor 0 free after the driver")
        .expect("quiesced table verifies");
    assert_eq!(audit.occupied, traffic.keys);
    (report, audit.checksum)
}

#[test]
fn open_loop_runs_are_bit_identical() {
    let traffic = TrafficConfig {
        keys: 1 << 10,
        requests_per_proc: 600,
        mean_interarrival_ns: 8_000,
        ..TrafficConfig::default()
    };
    let (a, ck_a) = kv_run(4, &traffic);
    let (b, ck_b) = kv_run(4, &traffic);

    assert_eq!(a.requests, 4 * 600);
    assert_eq!(a.requests, b.requests);
    assert_eq!(a.reads, b.reads);
    assert_eq!(a.writes, b.writes);
    assert_eq!(a.elapsed_ns, b.elapsed_ns, "virtual times diverged");
    assert_eq!(a.per_proc, b.per_proc);
    assert_eq!(a.per_shard, b.per_shard);
    assert_eq!(a.protocol, b.protocol, "protocol counters diverged");
    assert_eq!(ck_a, ck_b, "table contents diverged");
    assert_eq!(
        (a.latency.p50(), a.latency.p99(), a.latency.p999()),
        (b.latency.p50(), b.latency.p99(), b.latency.p999()),
        "latency quantiles diverged"
    );
    assert_eq!(a.latency.sum(), b.latency.sum());
    assert_eq!(a.write_latency.count(), b.write_latency.count());

    // Sanity on the measurement itself, not just its stability.
    assert!(a.elapsed_ns > 0);
    assert!(a.latency.p50() > 0, "requests cannot complete in zero time");
    assert!(a.latency.p999() >= a.latency.p50());
    assert_eq!(a.per_shard.iter().sum::<u64>(), a.requests);
    assert_eq!(
        a.protocol.server_requests, a.requests,
        "every request records one ServerRequest event"
    );
}
