//! "When does it pay to migrate a page?" — the §4.1 analytic model.
//!
//! A structure `X` of `s` words, sole occupant of a coherent page, is
//! accessed by `p` processors in turn, each operation making `r = ρ·s`
//! references. With `C_local = ρ·s·T_l`, `C_remote = ρ·s·T_r`, and
//! `C_migrate = s·T_b + F` (block transfer plus fixed overhead), it pays
//! to move the data when
//!
//! > `C_remote > g(p)·C_migrate + C_local`      (inequality 1)
//!
//! which rearranges to inequality (2) of the paper:
//!
//! > `s > (F/(T_r−T_l))·g / (ρ − (T_b/(T_r−T_l))·g)`
//!
//! With the Butterfly Plus constants (T_l = 320 ns, T_r = 5000 ns,
//! T_b = 1100 ns, F ≈ 0.5 ms) the coefficients are the paper's 107 and
//! 0.24, giving Table 1.

use numa_machine::TimingConfig;

/// The machine parameters of the model.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Local reference time, ns (T_l).
    pub t_local_ns: f64,
    /// Remote reference time, ns (T_r).
    pub t_remote_ns: f64,
    /// Block-transfer time per word, ns (T_b).
    pub t_block_ns: f64,
    /// Fixed overhead of a migration, ns (F). The paper's §4.1 uses
    /// "about 0.48 ms" but its printed coefficient 107 corresponds to
    /// ~0.5 ms; `paper()` uses the value that reproduces Table 1.
    pub overhead_ns: f64,
}

/// The minimum page size for which migration pays, in words.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SMin {
    /// Migration pays for any page at least this large.
    Words(u64),
    /// Migration never pays at this density (`ρ ≤ 0.24·g`): the protocol
    /// overhead can never be amortized. The "never" entries of Table 1.
    Never,
}

impl std::fmt::Display for SMin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SMin::Words(w) => write!(f, "{w}"),
            SMin::Never => write!(f, "never"),
        }
    }
}

impl CostModel {
    /// The paper's published constants.
    pub fn paper() -> Self {
        Self {
            t_local_ns: 320.0,
            t_remote_ns: 5000.0,
            t_block_ns: 1100.0,
            overhead_ns: 500_760.0, // 107 × (5000 − 320)
        }
    }

    /// The model with coefficients exactly as the paper *printed* them
    /// (107 and 0.24): Table 1 was computed from the rounded
    /// coefficients, not from the raw latencies, so this is the model
    /// that reproduces the printed numbers.
    pub fn paper_published() -> Self {
        Self {
            t_local_ns: 320.0,
            t_remote_ns: 5000.0,
            t_block_ns: 0.24 * (5000.0 - 320.0), // ratio exactly 0.24
            overhead_ns: 107.0 * (5000.0 - 320.0), // coefficient exactly 107
        }
    }

    /// Builds the model from a machine timing configuration and a
    /// measured fixed overhead.
    pub fn from_timing(t: &TimingConfig, overhead_ns: f64) -> Self {
        Self {
            t_local_ns: t.local_read_ns as f64,
            t_remote_ns: t.remote_read_ns as f64,
            t_block_ns: t.block_word_ns as f64,
            overhead_ns,
        }
    }

    /// The numerator coefficient `F / (T_r − T_l)` (the paper's 107).
    pub fn overhead_coefficient(&self) -> f64 {
        self.overhead_ns / (self.t_remote_ns - self.t_local_ns)
    }

    /// The ratio `T_b / (T_r − T_l)` (the paper's 0.24) — "the single
    /// most important characteristic of the architecture" for this
    /// decision.
    pub fn block_ratio(&self) -> f64 {
        self.t_block_ns / (self.t_remote_ns - self.t_local_ns)
    }

    /// Inequality (2): the minimum page size (words) for which migration
    /// always pays at density `rho` and movement ratio `g`.
    pub fn s_min(&self, rho: f64, g: f64) -> SMin {
        let denom = rho - self.block_ratio() * g;
        if denom <= 0.0 {
            SMin::Never
        } else {
            SMin::Words((self.overhead_coefficient() * g / denom).round() as u64)
        }
    }

    /// Whether migration pays for a page of `s_words` at density `rho`
    /// and movement ratio `g`.
    pub fn migration_pays(&self, s_words: u64, rho: f64, g: f64) -> bool {
        match self.s_min(rho, g) {
            SMin::Words(min) => s_words > min,
            SMin::Never => false,
        }
    }

    /// The crossover density for a fixed page size: the ρ above which
    /// migration pays for a page of `s_words`.
    pub fn crossover_density(&self, s_words: u64, g: f64) -> f64 {
        // From s = coef·g / (ρ − ratio·g):  ρ* = coef·g/s + ratio·g.
        self.overhead_coefficient() * g / s_words as f64 + self.block_ratio() * g
    }

    /// Predicted cost of one operation (ρ·s references) under the
    /// remote-access strategy, ns.
    pub fn op_cost_remote(&self, s_words: u64, rho: f64) -> f64 {
        rho * s_words as f64 * self.t_remote_ns
    }

    /// Predicted amortized cost of one operation under the migration
    /// strategy, ns.
    pub fn op_cost_migrate(&self, s_words: u64, rho: f64, g: f64) -> f64 {
        g * (s_words as f64 * self.t_block_ns + self.overhead_ns)
            + rho * s_words as f64 * self.t_local_ns
    }
}

/// `g(p)` for strict round-robin access: `p / (p − 1)` (the worst case;
/// §4.1: "g(2) = 2", approaching 1 for large `p`).
///
/// # Panics
///
/// Panics for `p < 2` — a single processor never moves data to itself.
pub fn g_round_robin(p: usize) -> f64 {
    assert!(p >= 2, "round-robin g(p) needs at least two processors");
    p as f64 / (p as f64 - 1.0)
}

/// The ρ values of Table 1's rows.
pub const TABLE1_RHOS: [f64; 9] = [0.17, 0.24, 0.35, 0.48, 0.60, 0.75, 1.0, 1.5, 2.0];
/// The g values of Table 1's columns.
pub const TABLE1_GS: [f64; 3] = [0.5, 1.0, 2.0];

/// Computes Table 1: S_min for each (ρ, g) pair.
pub fn table1(model: &CostModel) -> Vec<(f64, [SMin; 3])> {
    TABLE1_RHOS
        .iter()
        .map(|&rho| {
            let row = [
                model.s_min(rho, TABLE1_GS[0]),
                model.s_min(rho, TABLE1_GS[1]),
                model.s_min(rho, TABLE1_GS[2]),
            ];
            (rho, row)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_coefficients() {
        let m = CostModel::paper();
        assert!((m.overhead_coefficient() - 107.0).abs() < 0.01);
        assert!((m.block_ratio() - 0.235).abs() < 0.001);
        let pp = CostModel::paper_published();
        assert!((pp.overhead_coefficient() - 107.0).abs() < 1e-9);
        assert!((pp.block_ratio() - 0.24).abs() < 1e-9);
    }

    #[test]
    fn table1_matches_paper_within_rounding() {
        // The paper's printed values, except (rho = 0.48, g = 1): the
        // paper prints 435 there, but 107/(0.48 - 0.24) = 445.8 — the
        // same arithmetic that yields the 445 it prints at
        // (rho = 0.24, g = 0.5) — so 435 is almost certainly a typo for
        // 445/446 and we expect the computed value. The paper's own
        // rounding is inconsistent elsewhere (445.83 printed as 445,
        // 972.7 as 973), so allow +-2 words.
        let expected: [(f64, [Option<u64>; 3]); 9] = [
            (0.17, [Some(1070), None, None]),
            (0.24, [Some(445), None, None]),
            (0.35, [Some(232), Some(973), None]),
            (0.48, [Some(149), Some(446), None]),
            (0.60, [Some(111), Some(298), Some(1784)]),
            (0.75, [Some(85), Some(210), Some(793)]),
            (1.0, [Some(61), Some(141), Some(412)]),
            (1.5, [Some(39), Some(84), Some(210)]),
            (2.0, [Some(28), Some(61), Some(141)]),
        ];
        let m = CostModel::paper_published();
        for (row, (rho, cols)) in table1(&m).iter().zip(expected.iter()) {
            assert_eq!(row.0, *rho);
            for (got, want) in row.1.iter().zip(cols.iter()) {
                match (got, want) {
                    (SMin::Never, None) => {}
                    (SMin::Words(w), Some(v)) => {
                        assert!(w.abs_diff(*v) <= 2, "rho={rho} got {w} want {v}");
                    }
                    other => panic!("rho={rho}: mismatch {other:?}"),
                }
            }
        }
    }

    #[test]
    fn never_region_is_density_bound() {
        let m = CostModel::paper();
        // ρ ≤ 0.24·g can never pay regardless of page size: the paper's
        // "lower bound on the minimum reference density".
        assert_eq!(m.s_min(0.2, 1.0), SMin::Never);
        assert!(!m.migration_pays(1 << 30, 0.2, 1.0));
        assert!(m.migration_pays(1024, 0.5, 1.0));
        assert!(!m.migration_pays(100, 0.5, 1.0), "below S_min = 435");
    }

    #[test]
    fn crossover_consistency() {
        let m = CostModel::paper();
        for &g in &[0.5, 1.0, 2.0] {
            let rho_star = m.crossover_density(1024, g);
            // Just above the crossover migration pays; just below it
            // does not.
            assert!(m.migration_pays(1024, rho_star * 1.01, g));
            assert!(!m.migration_pays(1024, rho_star * 0.99, g));
            // And the two strategies cost the same at the crossover.
            let a = m.op_cost_remote(1024, rho_star);
            let b = m.op_cost_migrate(1024, rho_star, g);
            assert!((a - b).abs() / a < 1e-9);
        }
    }

    #[test]
    fn g_round_robin_values() {
        assert_eq!(g_round_robin(2), 2.0);
        assert!((g_round_robin(16) - 16.0 / 15.0).abs() < 1e-12);
        assert!(g_round_robin(100) < g_round_robin(3), "g decreases with p");
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn g_round_robin_rejects_one() {
        let _ = g_round_robin(1);
    }

    #[test]
    fn smin_display() {
        assert_eq!(SMin::Words(141).to_string(), "141");
        assert_eq!(SMin::Never.to_string(), "never");
    }
}
