//! Text tables and ASCII charts for the benchmark harness.
//!
//! Every per-figure benchmark binary prints the same rows/series the
//! paper reports; these helpers keep that output consistent.

use std::fmt::Write as _;

/// A simple right-aligned text table.
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with blanks.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// The number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let print_row = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate().take(ncols) {
                if i > 0 {
                    line.push_str("  ");
                }
                let _ = write!(line, "{cell:>width$}", width = widths[i]);
            }
            writeln!(f, "{line}")
        };
        print_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        Ok(())
    }
}

/// A named data series (e.g. one speedup curve of a figure).
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend name.
    pub name: String,
    /// (x, y) points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new<S: Into<String>>(name: S) -> Self {
        Self {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The y value at the largest x (e.g. speedup at 16 processors).
    pub fn final_y(&self) -> Option<f64> {
        self.points
            .iter()
            .max_by(|a, b| a.0.total_cmp(&b.0))
            .map(|p| p.1)
    }
}

/// Renders one or more series as an ASCII chart (the harness's stand-in
/// for the paper's figures), with one plot glyph per series.
pub fn ascii_chart(series: &[Series], width: usize, height: usize) -> String {
    const GLYPHS: [char; 6] = ['*', '+', 'o', 'x', '#', '@'];
    let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut ymin, mut ymax) = (0.0f64, f64::NEG_INFINITY);
    for s in series {
        for &(x, y) in &s.points {
            xmin = xmin.min(x);
            xmax = xmax.max(x);
            ymin = ymin.min(y);
            ymax = ymax.max(y);
        }
    }
    if !xmin.is_finite() || xmax <= xmin {
        return String::from("(no data)\n");
    }
    if ymax <= ymin {
        ymax = ymin + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in &s.points {
            let cx = ((x - xmin) / (xmax - xmin) * (width - 1) as f64).round() as usize;
            let cy = ((y - ymin) / (ymax - ymin) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = glyph;
        }
    }
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{ymax:>8.1} |")
        } else if i == height - 1 {
            format!("{ymin:>8.1} |")
        } else {
            format!("{:>8} |", "")
        };
        let line: String = row.iter().collect();
        let _ = writeln!(out, "{label}{line}");
    }
    let _ = writeln!(out, "{:>9}+{}", "", "-".repeat(width));
    let _ = writeln!(
        out,
        "{:>10}{:<10.1}{:>width$.1}",
        "",
        xmin,
        xmax,
        width = width - 10
    );
    for (si, s) in series.iter().enumerate() {
        let _ = writeln!(out, "{:>10}{} = {}", "", GLYPHS[si % GLYPHS.len()], s.name);
    }
    out
}

/// One-line ATC summary for a run's merged counters: probe counts and
/// the hit rate. A high rate means the simulator served most accesses
/// from the translation fast path; a low one means the workload spent
/// its time faulting (shootdowns, freezes, invalidation storms).
pub fn atc_summary(c: &numa_machine::AccessCounters) -> String {
    let total = c.atc_hits + c.atc_misses;
    if total == 0 {
        return "ATC: no probes".to_string();
    }
    format!(
        "ATC: {} probes, {} hits, {} misses ({:.2}% hit rate)",
        total,
        c.atc_hits,
        c.atc_misses,
        100.0 * c.atc_hits as f64 / total as f64
    )
}

/// A minimal JSON writer for experiment artifacts (dependency-free; the
/// benchmark binaries use it to emit machine-readable results alongside
/// the text tables).
pub mod json {
    use std::fmt::Write as _;

    /// A JSON value assembled by the writer.
    #[derive(Clone, Debug)]
    pub enum Value {
        /// A JSON number (finite f64; NaN/inf serialize as null).
        Num(f64),
        /// A JSON string.
        Str(String),
        /// A JSON boolean.
        Bool(bool),
        /// A JSON array.
        Arr(Vec<Value>),
        /// A JSON object with ordered keys.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// Convenience constructor for objects.
        pub fn obj(fields: Vec<(&str, Value)>) -> Value {
            Value::Obj(
                fields
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            )
        }

        /// Serializes the value to a JSON string.
        pub fn to_json(&self) -> String {
            let mut out = String::new();
            self.write(&mut out);
            out
        }

        fn write(&self, out: &mut String) {
            match self {
                Value::Num(n) => {
                    if n.is_finite() {
                        let _ = write!(out, "{n}");
                    } else {
                        out.push_str("null");
                    }
                }
                Value::Bool(b) => {
                    let _ = write!(out, "{b}");
                }
                Value::Str(s) => {
                    out.push('"');
                    for c in s.chars() {
                        match c {
                            '"' => out.push_str("\\\""),
                            '\\' => out.push_str("\\\\"),
                            '\n' => out.push_str("\\n"),
                            '\t' => out.push_str("\\t"),
                            c if (c as u32) < 0x20 => {
                                let _ = write!(out, "\\u{:04x}", c as u32);
                            }
                            c => out.push(c),
                        }
                    }
                    out.push('"');
                }
                Value::Arr(items) => {
                    out.push('[');
                    for (i, v) in items.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        v.write(out);
                    }
                    out.push(']');
                }
                Value::Obj(fields) => {
                    out.push('{');
                    for (i, (k, v)) in fields.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        Value::Str(k.clone()).write(out);
                        out.push(':');
                        v.write(out);
                    }
                    out.push('}');
                }
            }
        }
    }

    /// Serializes a named set of (x, y) series — the standard shape of a
    /// figure's data.
    pub fn series_artifact(name: &str, series: &[super::Series]) -> String {
        Value::obj(vec![
            ("figure", Value::Str(name.to_string())),
            (
                "series",
                Value::Arr(
                    series
                        .iter()
                        .map(|s| {
                            Value::obj(vec![
                                ("name", Value::Str(s.name.clone())),
                                (
                                    "points",
                                    Value::Arr(
                                        s.points
                                            .iter()
                                            .map(|&(x, y)| {
                                                Value::Arr(vec![Value::Num(x), Value::Num(y)])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_formats_aligned() {
        let mut t = Table::new(vec!["p", "speedup"]);
        t.row(vec!["1", "1.00"]);
        t.row(vec!["16", "13.50"]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].contains("speedup"));
        assert!(lines[2].trim_start().starts_with('1'));
        // All data lines have the same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn table_pads_short_rows() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["1"]);
        assert!(t.to_string().lines().count() >= 3);
    }

    #[test]
    fn series_final_y() {
        let mut s = Series::new("x");
        assert_eq!(s.final_y(), None);
        s.push(1.0, 1.0);
        s.push(16.0, 13.5);
        s.push(8.0, 7.0);
        assert_eq!(s.final_y(), Some(13.5));
    }

    #[test]
    fn json_writer_escapes_and_nests() {
        use super::json::Value;
        let v = Value::obj(vec![
            ("name", Value::Str("a\"b\nc".to_string())),
            ("n", Value::Num(1.5)),
            ("ok", Value::Bool(true)),
            ("xs", Value::Arr(vec![Value::Num(1.0), Value::Num(2.0)])),
        ]);
        let s = v.to_json();
        assert_eq!(
            s,
            "{\"name\":\"a\\\"b\\nc\",\"n\":1.5,\"ok\":true,\"xs\":[1,2]}"
        );
        assert_eq!(Value::Num(f64::NAN).to_json(), "null");
    }

    #[test]
    fn series_artifact_round_trips_visually() {
        let mut s = Series::new("platinum");
        s.push(1.0, 1.0);
        s.push(16.0, 13.5);
        let j = super::json::series_artifact("fig1", &[s]);
        assert!(j.contains("\"figure\":\"fig1\""));
        assert!(j.contains("[16,13.5]"));
    }

    #[test]
    fn atc_summary_formats_rate() {
        let mut c = numa_machine::AccessCounters::default();
        assert_eq!(atc_summary(&c), "ATC: no probes");
        c.atc_hits = 3;
        c.atc_misses = 1;
        let s = atc_summary(&c);
        assert!(s.contains("4 probes"), "{s}");
        assert!(s.contains("75.00% hit rate"), "{s}");
    }

    #[test]
    fn chart_renders() {
        let mut s = Series::new("linear");
        for p in 1..=16 {
            s.push(p as f64, p as f64);
        }
        let chart = ascii_chart(&[s], 40, 10);
        assert!(chart.contains('*'));
        assert!(chart.contains("linear"));
        assert_eq!(ascii_chart(&[], 40, 10), "(no data)\n");
    }
}
