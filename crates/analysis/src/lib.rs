//! `platinum-analysis`: the paper's §4.1 analytic model and the
//! reporting helpers used by the benchmark harness.
//!
//! * [`model`] — when does it pay to migrate a page? Inequality (2),
//!   `g(p)`, and the S_min values of Table 1.
//! * [`report`] — text tables and speedup-series formatting shared by
//!   the per-figure benchmark binaries.

#![warn(missing_docs)]

pub mod model;
pub mod report;

pub use model::{CostModel, SMin};
pub use report::{Series, Table};
