//! The per-processor event ring.
//!
//! One simulated processor is driven by one host thread at a time (the
//! simulator's threading model), so each ring has a single producer.
//! Storage is a flat array of `AtomicU64` written with relaxed stores
//! followed by a release store of the push count; a reader that loads
//! the count with acquire ordering sees fully written slots for every
//! index below it. Readers are expected to snapshot after the run has
//! quiesced — a snapshot taken mid-run may observe a slot being
//! overwritten if the ring has wrapped, which corrupts at most the
//! oldest surviving events, never the newest.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::event::{EventKind, TraceEvent};

/// Words per encoded event: meta, vtime, page, arg, seq.
const SLOT_WORDS: usize = 5;

/// A fixed-capacity single-producer ring of encoded events.
pub(crate) struct Ring {
    slots: Box<[AtomicU64]>,
    capacity: usize,
    /// Total events ever pushed (not clamped to capacity).
    pushed: AtomicU64,
}

impl Ring {
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace ring capacity must be nonzero");
        let slots = (0..capacity * SLOT_WORDS)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            slots,
            capacity,
            pushed: AtomicU64::new(0),
        }
    }

    /// Appends an event, overwriting the oldest if full. Single
    /// producer only.
    #[inline]
    pub(crate) fn push(&self, e: TraceEvent) {
        let n = self.pushed.load(Ordering::Relaxed);
        let base = (n as usize % self.capacity) * SLOT_WORDS;
        let meta =
            e.kind as u64 | (e.code as u64) << 8 | (e.proc as u64) << 16 | (e.phase as u64) << 32;
        self.slots[base].store(meta, Ordering::Relaxed);
        self.slots[base + 1].store(e.vtime, Ordering::Relaxed);
        self.slots[base + 2].store(e.page, Ordering::Relaxed);
        self.slots[base + 3].store(e.arg, Ordering::Relaxed);
        self.slots[base + 4].store(e.seq, Ordering::Relaxed);
        self.pushed.store(n + 1, Ordering::Release);
    }

    /// Decodes the surviving events (oldest first) and the count of
    /// overwritten ones.
    pub(crate) fn snapshot(&self) -> (Vec<TraceEvent>, u64) {
        let pushed = self.pushed.load(Ordering::Acquire);
        let kept = pushed.min(self.capacity as u64);
        let dropped = pushed - kept;
        let mut out = Vec::with_capacity(kept as usize);
        for i in dropped..pushed {
            let base = (i as usize % self.capacity) * SLOT_WORDS;
            let meta = self.slots[base].load(Ordering::Relaxed);
            let Some(kind) = EventKind::from_u8(meta as u8) else {
                continue; // torn slot from a mid-run snapshot
            };
            out.push(TraceEvent {
                kind,
                code: (meta >> 8) as u8,
                proc: (meta >> 16) as u16,
                phase: (meta >> 32) as u16,
                vtime: self.slots[base + 1].load(Ordering::Relaxed),
                page: self.slots[base + 2].load(Ordering::Relaxed),
                arg: self.slots[base + 3].load(Ordering::Relaxed),
                seq: self.slots[base + 4].load(Ordering::Relaxed),
            });
        }
        (out, dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ring: &Ring, seq: u64) {
        ring.push(TraceEvent {
            kind: EventKind::Freeze,
            code: 0,
            proc: 3,
            phase: 1,
            vtime: 100 + seq,
            page: 42,
            arg: 7,
            seq,
        });
    }

    #[test]
    fn push_and_snapshot_roundtrip() {
        let r = Ring::new(8);
        for s in 0..5 {
            ev(&r, s);
        }
        let (events, dropped) = r.snapshot();
        assert_eq!(dropped, 0);
        assert_eq!(events.len(), 5);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[4].seq, 4);
        assert_eq!(events[2].kind, EventKind::Freeze);
        assert_eq!(events[2].proc, 3);
        assert_eq!(events[2].phase, 1);
        assert_eq!(events[2].page, 42);
        assert_eq!(events[2].arg, 7);
        assert_eq!(events[2].vtime, 102);
    }

    #[test]
    fn wraparound_drops_oldest() {
        let r = Ring::new(4);
        for s in 0..10 {
            ev(&r, s);
        }
        let (events, dropped) = r.snapshot();
        assert_eq!(dropped, 6);
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
    }
}
