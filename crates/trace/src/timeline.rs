//! Per-Cpage textual timelines — the §4.2 diagnosis, from the trace.

use std::fmt::Write as _;

use crate::event::{EventKind, FaultResolution, TraceEvent};
use crate::tracer::Trace;

/// A freeze→thaw interval of one coherent page.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrozenSpan {
    /// Virtual time of the freeze, ns.
    pub frozen_at: u64,
    /// Virtual time of the matching thaw, if one happened.
    pub thawed_at: Option<u64>,
    /// Remote-map fault resolutions recorded while frozen — the
    /// serial-bottleneck count (every one is a remote reference that
    /// replication would have made local).
    pub remote_maps_while_frozen: usize,
}

/// The freeze→thaw spans of `page`, in trace order.
///
/// Spans are matched by sequence number, so a thaw emitted by the
/// defrost daemon on another processor still closes the span.
pub fn frozen_spans(trace: &Trace, page: u64) -> Vec<FrozenSpan> {
    let mut spans: Vec<FrozenSpan> = Vec::new();
    let mut open: Option<FrozenSpan> = None;
    for e in trace.for_page(page) {
        match e.kind {
            EventKind::Freeze if open.is_none() => {
                open = Some(FrozenSpan {
                    frozen_at: e.vtime,
                    thawed_at: None,
                    remote_maps_while_frozen: 0,
                });
            }
            EventKind::Thaw => {
                if let Some(mut span) = open.take() {
                    span.thawed_at = Some(e.vtime);
                    spans.push(span);
                }
            }
            EventKind::FaultEnd if e.code == FaultResolution::RemoteMapped as u8 => {
                if let Some(span) = open.as_mut() {
                    span.remote_maps_while_frozen += 1;
                }
            }
            _ => {}
        }
    }
    if let Some(span) = open {
        spans.push(span);
    }
    spans
}

/// Renders every event touching `page` as an aligned text table
/// (virtual time, processor, event, detail), ordered by sequence.
pub fn page_timeline(trace: &Trace, page: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "timeline of cpage {page}");
    let _ = writeln!(
        out,
        "{:>14}  {:>4}  {:<16}  detail",
        "vtime(us)", "cpu", "event"
    );
    for e in trace.for_page(page) {
        let _ = writeln!(
            out,
            "{:>14.3}  {:>4}  {:<16}  {}",
            e.vtime as f64 / 1000.0,
            e.proc,
            e.kind.name(),
            detail(e)
        );
    }
    let spans = frozen_spans(trace, page);
    for (i, s) in spans.iter().enumerate() {
        match s.thawed_at {
            Some(t) => {
                let _ = writeln!(
                    out,
                    "frozen span {i}: {:.3}us -> {:.3}us ({:.3}us, {} remote-mapped faults while frozen)",
                    s.frozen_at as f64 / 1000.0,
                    t as f64 / 1000.0,
                    (t - s.frozen_at) as f64 / 1000.0,
                    s.remote_maps_while_frozen
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "frozen span {i}: {:.3}us -> never thawed ({} remote-mapped faults while frozen)",
                    s.frozen_at as f64 / 1000.0,
                    s.remote_maps_while_frozen
                );
            }
        }
    }
    out
}

fn detail(e: &TraceEvent) -> String {
    match e.kind {
        EventKind::FaultEnd => format!(
            "{} (took {}ns)",
            FaultResolution::from_u8(e.code)
                .map(|r| r.name())
                .unwrap_or("unknown"),
            e.vtime.saturating_sub(e.arg)
        ),
        EventKind::Freeze => format!("{}ns since last invalidation", e.arg),
        EventKind::Invalidate => format!("surviving module {}", e.arg),
        EventKind::Replicate | EventKind::Migrate => format!("from module {}", e.arg),
        EventKind::RemoteMap => format!("home module {}", e.arg),
        EventKind::ShootdownInit => format!("{} targets", e.arg),
        EventKind::Ipi => format!("-> cpu {}", e.arg),
        EventKind::LockWait => format!("waited {}ns", e.arg),
        EventKind::ReplicaEvict | EventKind::FrameFree => format!("module {}", e.arg),
        _ => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceConfig, Tracer};

    #[test]
    fn spans_match_freeze_to_thaw() {
        let t = Tracer::new(TraceConfig::default());
        t.emit(0, 100, EventKind::Freeze, 0, 9, 50);
        t.emit(
            1,
            200,
            EventKind::FaultEnd,
            FaultResolution::RemoteMapped as u8,
            9,
            150,
        );
        t.emit(
            2,
            300,
            EventKind::FaultEnd,
            FaultResolution::RemoteMapped as u8,
            9,
            250,
        );
        t.emit(3, 400, EventKind::Thaw, 0, 9, 0);
        t.emit(0, 900, EventKind::Freeze, 0, 9, 70);
        // Unrelated page is not attributed to page 9.
        t.emit(
            0,
            950,
            EventKind::FaultEnd,
            FaultResolution::RemoteMapped as u8,
            8,
            940,
        );
        let trace = t.snapshot();
        let spans = frozen_spans(&trace, 9);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].frozen_at, 100);
        assert_eq!(spans[0].thawed_at, Some(400));
        assert_eq!(spans[0].remote_maps_while_frozen, 2);
        assert_eq!(spans[1].frozen_at, 900);
        assert_eq!(spans[1].thawed_at, None);
        assert_eq!(spans[1].remote_maps_while_frozen, 0);
    }

    #[test]
    fn timeline_renders_each_event() {
        let t = Tracer::new(TraceConfig::default());
        t.emit(0, 1_000, EventKind::Freeze, 0, 3, 10);
        t.emit(1, 2_000, EventKind::Thaw, 0, 3, 0);
        let s = page_timeline(&t.snapshot(), 3);
        assert!(s.contains("timeline of cpage 3"));
        assert!(s.contains("freeze"));
        assert!(s.contains("thaw"));
        assert!(s.contains("frozen span 0"));
    }
}
