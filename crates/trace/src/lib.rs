//! Virtual-time event tracing for the PLATINUM reproduction.
//!
//! The paper's own methodology hinged on observability: the per-Cpage
//! report of §4.2 is what diagnosed the frozen spin-lock-page anecdote.
//! Aggregate counters (`platinum::KernelStats`) say *how many* times a
//! page replicated, froze, or thawed — this crate records *when*, *where*,
//! and *in what order*, against each simulated processor's virtual clock.
//!
//! # Design
//!
//! * [`Tracer`] owns one fixed-capacity ring buffer per simulated
//!   processor ([`ring::Ring`]). The thread driving a processor is the
//!   only writer to that processor's ring, so pushes are lock-free and
//!   wait-free: five relaxed atomic word stores and one release length
//!   store. When a ring is full the oldest events are overwritten and
//!   counted as dropped.
//! * Every event carries a virtual timestamp (the emitting processor's
//!   clock, ns), a global sequence number (a single `fetch_add`, giving a
//!   total order across processors for invariant checking), the
//!   [`EventKind`], a kind-specific `code`, and two 64-bit payload words
//!   (`page`, `arg` — see the [`EventKind`] docs for each kind's
//!   meaning).
//! * Tracing is opt-in twice over: at compile time via the `trace`
//!   cargo feature on the instrumented crates, and at run time by
//!   whether a tracer is installed (emit sites hold an
//!   `Option<Arc<Tracer>>`; disabled means one untaken branch on a
//!   protocol path that already costs hundreds of instructions — the
//!   word-access fast path has no emit sites at all).
//!
//! # Exporters
//!
//! * [`chrome`] writes Chrome `trace_event` JSON loadable in Perfetto
//!   (<https://ui.perfetto.dev>): one process group per [`Tracer`]
//!   phase, one track per simulated processor, fault begin/end pairs as
//!   duration slices, everything else as instants.
//! * [`timeline`] renders a per-Cpage textual timeline — the freeze →
//!   serial-bottleneck → defrost story of §4.2, straight from the
//!   trace.
//!
//! # Quickstart
//!
//! ```ignore
//! let tracer = platinum_trace::install_global(TraceConfig::default());
//! // ... boot a kernel (it picks up the global tracer) and run ...
//! let trace = tracer.snapshot();
//! std::fs::write("out.json", platinum_trace::chrome::chrome_trace_string(&trace))?;
//! ```

mod event;
mod ring;
mod tracer;

pub mod chrome;
pub mod timeline;

pub use event::{EventKind, FaultResolution, TraceEvent};
pub use tracer::{Trace, TraceConfig, Tracer, MAX_PROCS};

use std::sync::{Arc, OnceLock};

static GLOBAL: OnceLock<Arc<Tracer>> = OnceLock::new();

/// Installs (or returns the already-installed) process-global tracer.
///
/// Kernels and machines built *after* this call pick the tracer up
/// automatically, so binaries can enable tracing without threading a
/// handle through every constructor. The first installation wins; `cfg`
/// is ignored if a global tracer already exists.
pub fn install_global(cfg: TraceConfig) -> Arc<Tracer> {
    GLOBAL.get_or_init(|| Tracer::new(cfg)).clone()
}

/// The process-global tracer, if one was installed.
pub fn global() -> Option<Arc<Tracer>> {
    GLOBAL.get().cloned()
}
