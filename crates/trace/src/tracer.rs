//! The tracer: per-processor rings, phase registry, snapshotting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::event::{EventKind, TraceEvent};
use crate::ring::Ring;

/// Upper bound on simulated processors (the machine layer's directory
/// masks are `u64` bitmasks, so configurations never exceed this).
pub const MAX_PROCS: usize = 64;

/// Runtime tracer configuration.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Events retained per processor before the ring overwrites the
    /// oldest (each event is 40 bytes).
    pub capacity_per_proc: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            capacity_per_proc: 1 << 16,
        }
    }
}

/// Collects events from every simulated processor.
///
/// Emitting is lock-free (see [`crate::ring`]); rings are allocated
/// lazily the first time a processor emits. `emit` may be called
/// concurrently for *different* processors; per processor, the
/// simulator's one-driving-thread model provides the single producer
/// the ring requires.
pub struct Tracer {
    cfg: TraceConfig,
    rings: [OnceLock<Ring>; MAX_PROCS],
    seq: AtomicU64,
    current_phase: AtomicU64,
    phases: Mutex<Vec<String>>,
}

impl Tracer {
    /// A fresh tracer with one implicit phase named `"run"`.
    pub fn new(cfg: TraceConfig) -> Arc<Tracer> {
        Arc::new(Tracer {
            cfg,
            rings: std::array::from_fn(|_| OnceLock::new()),
            seq: AtomicU64::new(0),
            current_phase: AtomicU64::new(0),
            phases: Mutex::new(vec!["run".to_string()]),
        })
    }

    /// Records one event against processor `proc`'s virtual clock.
    ///
    /// # Panics
    ///
    /// Panics if `proc >= MAX_PROCS`.
    #[inline]
    pub fn emit(&self, proc: usize, vtime: u64, kind: EventKind, code: u8, page: u64, arg: u64) {
        let ring = self.rings[proc].get_or_init(|| Ring::new(self.cfg.capacity_per_proc));
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let phase = self.current_phase.load(Ordering::Relaxed) as u16;
        ring.push(TraceEvent {
            kind,
            code,
            proc: proc as u16,
            phase,
            vtime,
            page,
            arg,
            seq,
        });
    }

    /// Opens a named phase; events emitted from now on are grouped
    /// under it (one Perfetto process group per phase). Returns the
    /// phase index.
    ///
    /// Multi-case binaries call this between cases so that each case's
    /// virtual-time axis gets its own group instead of overlapping.
    pub fn begin_phase(&self, name: &str) -> u16 {
        let mut phases = self.phases.lock().unwrap_or_else(|e| e.into_inner());
        let idx = phases.len() as u16;
        phases.push(name.to_string());
        self.current_phase.store(idx as u64, Ordering::Relaxed);
        idx
    }

    /// Total events emitted so far (including any overwritten in rings).
    pub fn emitted(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Decodes every ring into one [`Trace`], sorted by sequence
    /// number. Take snapshots after the traced run has quiesced.
    pub fn snapshot(&self) -> Trace {
        let mut events = Vec::new();
        let mut dropped = 0;
        for ring in &self.rings {
            if let Some(ring) = ring.get() {
                let (mut evs, d) = ring.snapshot();
                events.append(&mut evs);
                dropped += d;
            }
        }
        events.sort_by_key(|e| e.seq);
        let phases = self
            .phases
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        Trace {
            events,
            dropped,
            phases,
        }
    }
}

/// A decoded, seq-ordered snapshot of everything a [`Tracer`] captured.
#[derive(Clone, Debug)]
pub struct Trace {
    /// All surviving events, ordered by global sequence number.
    pub events: Vec<TraceEvent>,
    /// Events lost to ring wraparound (raise
    /// [`TraceConfig::capacity_per_proc`] if nonzero).
    pub dropped: u64,
    /// Phase names; [`TraceEvent::phase`] indexes this.
    pub phases: Vec<String>,
}

impl Trace {
    /// Number of events of `kind`.
    pub fn count(&self, kind: EventKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// Events of `kind`, in sequence order.
    pub fn of_kind(&self, kind: EventKind) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Events whose `page` payload names coherent page `page`.
    pub fn for_page(&self, page: u64) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|e| e.kind.page_is_cpage() && e.page == page)
            .collect()
    }

    /// Distinct coherent page ids seen in the trace, ascending.
    pub fn pages(&self) -> Vec<u64> {
        let mut pages: Vec<u64> = self
            .events
            .iter()
            .filter(|e| e.kind.page_is_cpage())
            .map(|e| e.page)
            .collect();
        pages.sort_unstable();
        pages.dedup();
        pages
    }

    /// One past the highest processor id that emitted, or 0 if empty.
    pub fn nprocs(&self) -> usize {
        self.events
            .iter()
            .map(|e| e.proc as usize + 1)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_snapshot_phases() {
        let t = Tracer::new(TraceConfig {
            capacity_per_proc: 16,
        });
        t.emit(0, 10, EventKind::FaultBegin, 1, 0x1000, 0);
        t.emit(1, 20, EventKind::Freeze, 0, 5, 0);
        let p = t.begin_phase("second-case");
        assert_eq!(p, 1);
        t.emit(0, 30, EventKind::Thaw, 0, 5, 0);
        let trace = t.snapshot();
        assert_eq!(trace.events.len(), 3);
        assert_eq!(trace.dropped, 0);
        assert_eq!(trace.phases, vec!["run", "second-case"]);
        // seq order across processors
        assert!(trace.events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(trace.events[2].phase, 1);
        assert_eq!(trace.count(EventKind::Freeze), 1);
        assert_eq!(trace.for_page(5).len(), 2);
        assert_eq!(trace.pages(), vec![5]);
        assert_eq!(trace.nprocs(), 2);
    }

    #[test]
    fn concurrent_emit_from_distinct_procs() {
        let t = Tracer::new(TraceConfig::default());
        std::thread::scope(|s| {
            for p in 0..4 {
                let t = &t;
                s.spawn(move || {
                    for i in 0..1000 {
                        t.emit(p, i, EventKind::Invalidate, 0, i, 0);
                    }
                });
            }
        });
        let trace = t.snapshot();
        assert_eq!(trace.events.len(), 4000);
        // The global sequence is a permutation: all seqs distinct.
        let mut seqs: Vec<u64> = trace.events.iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 4000);
    }
}
