//! Chrome `trace_event` JSON exporter.
//!
//! The output loads in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`. Mapping:
//!
//! * tracer **phase** → process (`pid`), named via `process_name`
//!   metadata — multi-case binaries get one group per case, so each
//!   case's virtual-time axis starts at its own zero;
//! * simulated **processor** → thread (`tid`), named `cpu<p>`;
//! * `FaultEnd` → a complete (`"ph":"X"`) slice spanning the fault's
//!   begin→end virtual time, named `fault:<resolution>`;
//! * every other kind → a thread-scoped instant (`"ph":"i"`).
//!
//! Timestamps are microseconds (the format's unit) with nanosecond
//! precision kept in the fractional part.

use std::io::{self, Write};

use crate::event::EventKind;
use crate::tracer::Trace;

/// Renders `trace` as a Chrome trace_event JSON string.
pub fn chrome_trace_string(trace: &Trace) -> String {
    let mut out = Vec::new();
    write_chrome_trace(trace, &mut out).expect("infallible write to Vec");
    String::from_utf8(out).expect("exporter emits UTF-8")
}

/// Streams `trace` as Chrome trace_event JSON into `w`.
pub fn write_chrome_trace<W: Write>(trace: &Trace, w: &mut W) -> io::Result<()> {
    w.write_all(b"{\"displayTimeUnit\":\"ns\",\"traceEvents\":[")?;
    let mut first = true;
    let mut sep = |w: &mut W| -> io::Result<()> {
        if first {
            first = false;
            Ok(())
        } else {
            w.write_all(b",\n")
        }
    };

    // Name each phase's process group.
    let used_phases: Vec<u16> = {
        let mut v: Vec<u16> = trace.events.iter().map(|e| e.phase).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    for &phase in &used_phases {
        let name = trace
            .phases
            .get(phase as usize)
            .map(String::as_str)
            .unwrap_or("run");
        sep(w)?;
        write!(
            w,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{phase},\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
            escape(name)
        )?;
    }

    // Name each (phase, processor) track.
    let mut tracks: Vec<(u16, u16)> = trace.events.iter().map(|e| (e.phase, e.proc)).collect();
    tracks.sort_unstable();
    tracks.dedup();
    for &(phase, proc) in &tracks {
        sep(w)?;
        write!(
            w,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{phase},\"tid\":{proc},\"args\":{{\"name\":\"cpu{proc}\"}}}}"
        )?;
    }

    for e in &trace.events {
        sep(w)?;
        match e.kind {
            EventKind::FaultEnd => {
                let begin = e.arg.min(e.vtime);
                let res = crate::FaultResolution::from_u8(e.code)
                    .map(|r| r.name())
                    .unwrap_or("unknown");
                write!(
                    w,
                    "{{\"name\":\"fault:{res}\",\"cat\":\"fault\",\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"page\":{},\"seq\":{}}}}}",
                    e.phase,
                    e.proc,
                    micros(begin),
                    micros(e.vtime - begin),
                    e.page,
                    e.seq
                )?;
            }
            kind => {
                write!(
                    w,
                    "{{\"name\":\"{}\",\"cat\":\"protocol\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{},\"tid\":{},\"ts\":{},\"args\":{{\"page\":{},\"arg\":{},\"code\":{},\"seq\":{}}}}}",
                    kind.name(),
                    e.phase,
                    e.proc,
                    micros(e.vtime),
                    e.page,
                    e.arg,
                    e.code,
                    e.seq
                )?;
            }
        }
    }
    w.write_all(b"]}\n")
}

/// Nanoseconds → microseconds with the ns kept as decimals.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventKind, FaultResolution, TraceConfig, Tracer};

    /// A minimal strict JSON reader used to validate the exporter's
    /// output shape without an external parser dependency.
    mod json {
        #[derive(Debug, PartialEq)]
        pub enum Value {
            Null,
            Bool(bool),
            Num(f64),
            Str(String),
            Arr(Vec<Value>),
            Obj(Vec<(String, Value)>),
        }

        impl Value {
            pub fn get(&self, key: &str) -> Option<&Value> {
                match self {
                    Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                    _ => None,
                }
            }

            pub fn as_str(&self) -> Option<&str> {
                match self {
                    Value::Str(s) => Some(s),
                    _ => None,
                }
            }

            pub fn as_num(&self) -> Option<f64> {
                match self {
                    Value::Num(n) => Some(*n),
                    _ => None,
                }
            }
        }

        pub fn parse(s: &str) -> Result<Value, String> {
            let b = s.as_bytes();
            let mut i = 0;
            let v = value(b, &mut i)?;
            skip_ws(b, &mut i);
            if i != b.len() {
                return Err(format!("trailing garbage at byte {i}"));
            }
            Ok(v)
        }

        fn skip_ws(b: &[u8], i: &mut usize) {
            while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
                *i += 1;
            }
        }

        fn value(b: &[u8], i: &mut usize) -> Result<Value, String> {
            skip_ws(b, i);
            match b.get(*i) {
                Some(b'{') => {
                    *i += 1;
                    let mut fields = Vec::new();
                    skip_ws(b, i);
                    if b.get(*i) == Some(&b'}') {
                        *i += 1;
                        return Ok(Value::Obj(fields));
                    }
                    loop {
                        skip_ws(b, i);
                        let Value::Str(k) = value(b, i)? else {
                            return Err("object key must be a string".into());
                        };
                        skip_ws(b, i);
                        if b.get(*i) != Some(&b':') {
                            return Err(format!("expected ':' at byte {i}"));
                        }
                        *i += 1;
                        fields.push((k, value(b, i)?));
                        skip_ws(b, i);
                        match b.get(*i) {
                            Some(b',') => *i += 1,
                            Some(b'}') => {
                                *i += 1;
                                return Ok(Value::Obj(fields));
                            }
                            _ => return Err(format!("expected ',' or '}}' at byte {i}")),
                        }
                    }
                }
                Some(b'[') => {
                    *i += 1;
                    let mut items = Vec::new();
                    skip_ws(b, i);
                    if b.get(*i) == Some(&b']') {
                        *i += 1;
                        return Ok(Value::Arr(items));
                    }
                    loop {
                        items.push(value(b, i)?);
                        skip_ws(b, i);
                        match b.get(*i) {
                            Some(b',') => *i += 1,
                            Some(b']') => {
                                *i += 1;
                                return Ok(Value::Arr(items));
                            }
                            _ => return Err(format!("expected ',' or ']' at byte {i}")),
                        }
                    }
                }
                Some(b'"') => {
                    *i += 1;
                    let mut s = String::new();
                    loop {
                        match b.get(*i) {
                            Some(b'"') => {
                                *i += 1;
                                return Ok(Value::Str(s));
                            }
                            Some(b'\\') => {
                                *i += 1;
                                match b.get(*i) {
                                    Some(b'"') => s.push('"'),
                                    Some(b'\\') => s.push('\\'),
                                    Some(b'n') => s.push('\n'),
                                    Some(b'u') => {
                                        let hex = std::str::from_utf8(&b[*i + 1..*i + 5])
                                            .map_err(|e| e.to_string())?;
                                        let cp = u32::from_str_radix(hex, 16)
                                            .map_err(|e| e.to_string())?;
                                        s.push(char::from_u32(cp).ok_or("bad codepoint")?);
                                        *i += 4;
                                    }
                                    _ => return Err("bad escape".into()),
                                }
                                *i += 1;
                            }
                            Some(&c) => {
                                s.push(c as char);
                                *i += 1;
                            }
                            None => return Err("unterminated string".into()),
                        }
                    }
                }
                Some(b't') if b[*i..].starts_with(b"true") => {
                    *i += 4;
                    Ok(Value::Bool(true))
                }
                Some(b'f') if b[*i..].starts_with(b"false") => {
                    *i += 5;
                    Ok(Value::Bool(false))
                }
                Some(b'n') if b[*i..].starts_with(b"null") => {
                    *i += 4;
                    Ok(Value::Null)
                }
                Some(_) => {
                    let start = *i;
                    while *i < b.len()
                        && matches!(b[*i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                    {
                        *i += 1;
                    }
                    std::str::from_utf8(&b[start..*i])
                        .ok()
                        .and_then(|t| t.parse().ok())
                        .map(Value::Num)
                        .ok_or_else(|| format!("bad number at byte {start}"))
                }
                None => Err("unexpected end of input".into()),
            }
        }
    }

    fn sample_trace() -> Trace {
        let t = Tracer::new(TraceConfig {
            capacity_per_proc: 256,
        });
        t.emit(0, 1_000, EventKind::FaultBegin, 1, 0x4000, 0);
        t.emit(0, 9_500, EventKind::Invalidate, 2, 7, 1);
        t.emit(0, 12_345, EventKind::Freeze, 0, 7, 5_000);
        t.emit(
            0,
            15_000,
            EventKind::FaultEnd,
            FaultResolution::RemoteMapped as u8,
            7,
            1_000,
        );
        t.begin_phase("with \"quotes\"");
        t.emit(1, 2_000, EventKind::Thaw, 0, 7, 0);
        t.snapshot()
    }

    #[test]
    fn exporter_emits_valid_json_with_expected_shape() {
        let s = chrome_trace_string(&sample_trace());
        let v = json::parse(&s).expect("exporter output must be strict JSON");
        assert_eq!(
            v.get("displayTimeUnit").and_then(|u| u.as_str()),
            Some("ns")
        );
        let json::Value::Arr(events) = v.get("traceEvents").expect("traceEvents key") else {
            panic!("traceEvents must be an array");
        };
        // 2 process_name + 2 thread_name metadata + 5 events
        assert_eq!(events.len(), 9);
        for e in events {
            let ph = e.get("ph").and_then(|p| p.as_str()).expect("ph");
            assert!(matches!(ph, "M" | "X" | "i"), "unexpected ph {ph}");
            assert!(e.get("pid").and_then(|p| p.as_num()).is_some());
            assert!(e.get("tid").and_then(|t| t.as_num()).is_some());
            if ph != "M" {
                assert!(e.get("ts").and_then(|t| t.as_num()).is_some());
                assert!(e.get("args").is_some());
            }
            if ph == "X" {
                assert!(e.get("dur").and_then(|d| d.as_num()).is_some());
            }
        }
        // The fault slice spans begin→end on processor 0's track.
        let fault = events
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .expect("one complete fault slice");
        assert_eq!(
            fault.get("name").and_then(|n| n.as_str()),
            Some("fault:remote_mapped")
        );
        assert_eq!(fault.get("ts").and_then(|t| t.as_num()), Some(1.0));
        assert_eq!(fault.get("dur").and_then(|d| d.as_num()), Some(14.0));
        assert_eq!(fault.get("tid").and_then(|t| t.as_num()), Some(0.0));
        // The thaw instant lives in the second phase's process group.
        let thaw = events
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("thaw"))
            .expect("thaw instant");
        assert_eq!(thaw.get("pid").and_then(|p| p.as_num()), Some(1.0));
        assert_eq!(thaw.get("tid").and_then(|t| t.as_num()), Some(1.0));
        // The quoted phase name survives escaping.
        let meta = events
            .iter()
            .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("process_name"))
            .find(|e| e.get("pid").and_then(|p| p.as_num()) == Some(1.0))
            .expect("phase 1 metadata");
        assert_eq!(
            meta.get("args")
                .and_then(|a| a.get("name"))
                .and_then(|n| n.as_str()),
            Some("with \"quotes\"")
        );
    }

    #[test]
    fn empty_trace_is_valid_json() {
        let t = Tracer::new(TraceConfig::default());
        let s = chrome_trace_string(&t.snapshot());
        let v = json::parse(&s).expect("valid JSON");
        assert_eq!(v.get("traceEvents"), Some(&json::Value::Arr(vec![])));
    }
}
