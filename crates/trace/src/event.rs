//! Event kinds and the decoded event record.

/// What happened. Grouped by the layer that emits it.
///
/// The `page` and `arg` payload words of a [`TraceEvent`] are
/// kind-specific:
///
/// | kind | `code` | `page` | `arg` |
/// |------|--------|--------|-------|
/// | `FaultBegin` | 1 if write fault | faulting va | 0 |
/// | `FaultEnd` | [`FaultResolution`] | coherent page id | begin vtime (ns) |
/// | `VmFault` | 0 | faulting va | 0 |
/// | `Replicate` | 0 | coherent page id | source module |
/// | `Migrate` | 0 | coherent page id | source module |
/// | `RemoteMap` | 0 | coherent page id | home module |
/// | `Invalidate` | directive code | coherent page id | surviving module |
/// | `Freeze` | 0 | coherent page id | ns since last invalidation |
/// | `Thaw` | 0 | coherent page id | 0 |
/// | `ShootdownInit` | directive code | coherent page id | target count |
/// | `ShootdownAck` | directive code | vpn | initiator proc |
/// | `Ipi` | 0 | coherent page id | target proc |
/// | `BlockTransfer` | 0 | src module << 32 \| dst module | duration (ns) |
/// | `ContentionStall` | 0 | module | queue delay (ns) |
/// | `LockWait` | 0 | coherent page id | wait (ns) |
/// | `ReplicaEvict` | 0 | coherent page id | evicted module |
/// | `FrameFree` | 0 | coherent page id | module |
/// | `DefrostRun` | 0 | pages examined | pages thawed |
/// | `LockAcquire` | 0 | lock va | spin iterations |
/// | `LockRelease` | 0 | lock va | 0 |
/// | `PolicyDecision` | 0=replicate 1=map 2=map+freeze | coherent page id | 0 |
/// | `MemError` | retry attempt | coherent page id | faulty module |
/// | `ShootdownTimeout` | retry attempt | coherent page id | silent proc |
/// | `TransferFault` | retry attempt | coherent page id | src module |
/// | `AllocFault` | probe attempt | coherent page id | refusing module |
/// | `FaultRecovery` | [`FaultSite`] | coherent page id | begin vtime (ns) |
/// | `ServerRequest` | 0=read 1=write 2=pipeline | request key | latency (ns) |
/// | `PtWalk` | placement code | faulting vpn | walk cost (ns) |
/// | `PtPopulate` | placement code | space id | populate cost (ns) |
/// | `PtInval` | 0 | space id | staled holder count |
/// | `PtInvalDrop` | retry attempt | space id | staled holder count |
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum EventKind {
    /// A coherency fault entered the kernel.
    FaultBegin = 0,
    /// The fault resolved; `code` says how.
    FaultEnd = 1,
    /// A virtual-memory fault (zero fill / first touch of a mapping).
    VmFault = 2,
    /// A page copy was created on the faulting processor's module.
    Replicate = 3,
    /// The page's only copy moved to the faulting processor's module.
    Migrate = 4,
    /// The fault was resolved by mapping an existing copy remotely.
    RemoteMap = 5,
    /// Copies were invalidated down to one (directed by a write).
    Invalidate = 6,
    /// The page froze: further faults remote-map instead of moving it.
    Freeze = 7,
    /// The page thawed (defrost daemon or explicit thaw).
    Thaw = 8,
    /// A TLB/ATC shootdown round started.
    ShootdownInit = 9,
    /// A processor acknowledged a shootdown message.
    ShootdownAck = 10,
    /// An interprocessor interrupt was posted.
    Ipi = 11,
    /// The block-transfer engine copied a page between modules.
    BlockTransfer = 12,
    /// A memory-module queue delayed an access (switch contention).
    ContentionStall = 13,
    /// A processor waited for another's coherent-page lock.
    LockWait = 14,
    /// A replica was evicted to satisfy an allocation (frame pressure).
    ReplicaEvict = 15,
    /// A frame returned to its module's free list.
    FrameFree = 16,
    /// The defrost daemon ran.
    DefrostRun = 17,
    /// An application spin lock was acquired (runtime layer).
    LockAcquire = 18,
    /// An application spin lock was released (runtime layer).
    LockRelease = 19,
    /// The replication policy chose how to resolve a fault.
    PolicyDecision = 20,
    /// An injected transient memory-module error hit a frame read.
    MemError = 21,
    /// A shootdown ack never arrived; the initiator timed out.
    ShootdownTimeout = 22,
    /// A block transfer failed mid-copy and must be retried whole-page.
    TransferFault = 23,
    /// A memory module refused a frame allocation (injected fault).
    AllocFault = 24,
    /// A fault-injection episode finished recovering; `arg` carries the
    /// vtime at which the first error was observed, so exporters can
    /// render the whole fault → retry → recovery episode as a span.
    FaultRecovery = 25,
    /// The server workload tier completed one request; `code` is the
    /// request class (0 read, 1 write, 2 pipeline), `page` the request
    /// key, `arg` the request's virtual-time latency in ns.
    ServerRequest = 26,
    /// A simulated page-table walk on an ATC miss (translation fabric);
    /// `code` is the placement, `page` the faulting vpn, `arg` the ns
    /// charged for the walk.
    PtWalk = 27,
    /// A node populated its translation replica for a space; `code` is
    /// the placement, `page` the space id, `arg` the ns charged.
    PtPopulate = 28,
    /// A translation-replica stale mark was written into a shootdown
    /// round's message; `page` is the space id, `arg` the number of
    /// holder replicas it stales.
    PtInval = 29,
    /// An injected drop of a translation-replica stale mark: the
    /// initiator timed out and rewrote it (`code` is the retry
    /// attempt).
    PtInvalDrop = 30,
}

impl EventKind {
    /// Number of kinds (counters and decode tables are sized by this).
    pub const COUNT: usize = 31;

    /// Every kind, in discriminant order.
    pub const ALL: [EventKind; EventKind::COUNT] = [
        EventKind::FaultBegin,
        EventKind::FaultEnd,
        EventKind::VmFault,
        EventKind::Replicate,
        EventKind::Migrate,
        EventKind::RemoteMap,
        EventKind::Invalidate,
        EventKind::Freeze,
        EventKind::Thaw,
        EventKind::ShootdownInit,
        EventKind::ShootdownAck,
        EventKind::Ipi,
        EventKind::BlockTransfer,
        EventKind::ContentionStall,
        EventKind::LockWait,
        EventKind::ReplicaEvict,
        EventKind::FrameFree,
        EventKind::DefrostRun,
        EventKind::LockAcquire,
        EventKind::LockRelease,
        EventKind::PolicyDecision,
        EventKind::MemError,
        EventKind::ShootdownTimeout,
        EventKind::TransferFault,
        EventKind::AllocFault,
        EventKind::FaultRecovery,
        EventKind::ServerRequest,
        EventKind::PtWalk,
        EventKind::PtPopulate,
        EventKind::PtInval,
        EventKind::PtInvalDrop,
    ];

    /// Decodes a discriminant produced by `kind as u8`.
    pub fn from_u8(v: u8) -> Option<EventKind> {
        EventKind::ALL.get(v as usize).copied()
    }

    /// A short stable name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::FaultBegin => "fault_begin",
            EventKind::FaultEnd => "fault",
            EventKind::VmFault => "vm_fault",
            EventKind::Replicate => "replicate",
            EventKind::Migrate => "migrate",
            EventKind::RemoteMap => "remote_map",
            EventKind::Invalidate => "invalidate",
            EventKind::Freeze => "freeze",
            EventKind::Thaw => "thaw",
            EventKind::ShootdownInit => "shootdown",
            EventKind::ShootdownAck => "shootdown_ack",
            EventKind::Ipi => "ipi",
            EventKind::BlockTransfer => "block_transfer",
            EventKind::ContentionStall => "contention_stall",
            EventKind::LockWait => "cpage_lock_wait",
            EventKind::ReplicaEvict => "replica_evict",
            EventKind::FrameFree => "frame_free",
            EventKind::DefrostRun => "defrost_run",
            EventKind::LockAcquire => "lock_acquire",
            EventKind::LockRelease => "lock_release",
            EventKind::PolicyDecision => "policy",
            EventKind::MemError => "mem_error",
            EventKind::ShootdownTimeout => "shootdown_timeout",
            EventKind::TransferFault => "transfer_fault",
            EventKind::AllocFault => "alloc_fault",
            EventKind::FaultRecovery => "fault_recovery",
            EventKind::ServerRequest => "server_request",
            EventKind::PtWalk => "pt_walk",
            EventKind::PtPopulate => "pt_populate",
            EventKind::PtInval => "pt_inval",
            EventKind::PtInvalDrop => "pt_inval_drop",
        }
    }

    /// True for kinds that pass through the kernel's `record` choke
    /// point and are therefore mirrored one-for-one in the aggregate
    /// counters. `BlockTransfer` and `ContentionStall` are emitted
    /// directly by the simulated hardware below the kernel and have no
    /// counter.
    pub fn kernel_recorded(self) -> bool {
        !matches!(self, EventKind::BlockTransfer | EventKind::ContentionStall)
    }

    /// Whether this kind's `page` payload is a coherent page id (the
    /// per-Cpage timeline filters on this).
    pub fn page_is_cpage(self) -> bool {
        matches!(
            self,
            EventKind::FaultEnd
                | EventKind::Replicate
                | EventKind::Migrate
                | EventKind::RemoteMap
                | EventKind::Invalidate
                | EventKind::Freeze
                | EventKind::Thaw
                | EventKind::ShootdownInit
                | EventKind::Ipi
                | EventKind::LockWait
                | EventKind::ReplicaEvict
                | EventKind::FrameFree
                | EventKind::PolicyDecision
                | EventKind::MemError
                | EventKind::ShootdownTimeout
                | EventKind::TransferFault
                | EventKind::AllocFault
                | EventKind::FaultRecovery
        )
    }
}

/// How a coherency fault was resolved (`code` of [`EventKind::FaultEnd`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum FaultResolution {
    /// First touch: fresh frame allocated and zero-filled.
    FirstTouch = 0,
    /// A local copy already satisfied the access (race or upgrade).
    LocalHit = 1,
    /// A new replica was created locally.
    Replicated = 2,
    /// The sole copy migrated to the local module.
    Migrated = 3,
    /// An existing remote copy was mapped (page may be frozen).
    RemoteMapped = 4,
}

impl FaultResolution {
    /// Decodes a discriminant produced by `res as u8`.
    pub fn from_u8(v: u8) -> Option<FaultResolution> {
        [
            FaultResolution::FirstTouch,
            FaultResolution::LocalHit,
            FaultResolution::Replicated,
            FaultResolution::Migrated,
            FaultResolution::RemoteMapped,
        ]
        .get(v as usize)
        .copied()
    }

    /// A short stable name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            FaultResolution::FirstTouch => "first_touch",
            FaultResolution::LocalHit => "local_hit",
            FaultResolution::Replicated => "replicated",
            FaultResolution::Migrated => "migrated",
            FaultResolution::RemoteMapped => "remote_mapped",
        }
    }
}

/// One decoded trace event (the in-ring representation is five packed
/// words; see [`crate::ring`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global sequence number: a total order consistent with each
    /// emitting processor's program order.
    pub seq: u64,
    /// The emitting processor's virtual clock, ns.
    pub vtime: u64,
    /// The emitting processor.
    pub proc: u16,
    /// The tracer phase active when the event was emitted (an index
    /// into [`crate::Trace::phases`]).
    pub phase: u16,
    /// What happened.
    pub kind: EventKind,
    /// Kind-specific sub-code (see [`EventKind`]).
    pub code: u8,
    /// Kind-specific payload, usually a coherent page id.
    pub page: u64,
    /// Kind-specific payload (durations, modules, counts).
    pub arg: u64,
}
