//! Property test: the translation fast path is observationally identical
//! to the reference charging path.
//!
//! For any random page table (local/remote placement, rights, handle or
//! no handle) and any random access sequence, replaying the sequence
//! through [`ProcCore::fast_path`] must produce the same operation
//! results, the same final virtual time, the same access counters
//! (including ATC hit/miss counts) and the same memory contents as the
//! reference `Atc::lookup` + `charge_word_access` + `frame_data` steps.

use std::sync::Arc;

use numa_machine::{AccessKind, FastPath, Machine, MachineConfig, PhysPage, ProcCore};
use proptest::prelude::*;

fn machine(fast_path: bool) -> Arc<Machine> {
    Machine::new(MachineConfig {
        nodes: 2,
        frames_per_node: 16,
        skew_window_ns: None,
        fast_path,
        ..MachineConfig::default()
    })
    .expect("valid config")
}

const ASID: u32 = 7;
/// Mapped virtual pages; the op generator also probes two unmapped vpns.
const NPAGES: u64 = 8;

/// Installs the same translations in both cores. The fast core
/// alternates between handle-carrying inserts and plain ATC inserts
/// (the latter exercises the null-handle fallback inside `fast_path`).
fn install(fast: &mut ProcCore, slow: &mut ProcCore, pages: &[(u8, bool, bool)]) -> Vec<PhysPage> {
    let mut pps = Vec::new();
    for (vpn, &(node, writable, with_handle)) in pages.iter().enumerate() {
        let pp = PhysPage::new(node as usize % 2, vpn);
        if with_handle {
            fast.atc_insert(ASID, vpn as u64, pp, writable);
        } else {
            fast.atc().insert(ASID, vpn as u64, pp, writable);
        }
        slow.atc().insert(ASID, vpn as u64, pp, writable);
        pps.push(pp);
    }
    pps
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn fast_path_is_observationally_identical(
        pages in prop::collection::vec(
            (0u8..2, any::<bool>(), any::<bool>()),
            NPAGES as usize..NPAGES as usize + 1,
        ),
        ops in prop::collection::vec(
            (0u64..NPAGES + 2, 0u8..5, any::<u32>()),
            1..200,
        ),
    ) {
        // Each core runs alone on its own machine, so the shared-module
        // contention model cannot couple their clocks.
        let mf = machine(true);
        let ms = machine(true);
        let mut fast = ProcCore::new(Arc::clone(&mf), 0, 0);
        let mut slow = ProcCore::new(Arc::clone(&ms), 0, 0);
        install(&mut fast, &mut slow, &pages);
        let wpp = mf.cfg().words_per_page();

        for &(vpn, op, val) in &ops {
            let (write, kind) = match op {
                0 => (false, AccessKind::Read),
                1 => (true, AccessKind::Write),
                _ => (true, AccessKind::Atomic),
            };
            let word = val as usize % wpp;
            let outcome = fast.fast_path(ASID, vpn, write, kind);
            let reference = slow.atc().lookup(ASID, vpn);
            match (outcome, reference) {
                (FastPath::Miss, None) => {}
                (FastPath::NoRights, Some((_, w))) => {
                    prop_assert!(write && !w, "NoRights only on a write to a read-only entry");
                }
                (FastPath::Hit(frame), Some((pp, w))) => {
                    prop_assert!(!write || w);
                    slow.charge_word_access(pp, kind);
                    let sf = ms.frame_data(pp);
                    match op {
                        0 => prop_assert_eq!(frame.load(word), sf.load(word)),
                        1 => {
                            frame.store(word, val);
                            sf.store(word, val);
                        }
                        2 => prop_assert_eq!(
                            frame.fetch_add(word, val),
                            sf.fetch_add(word, val)
                        ),
                        3 => prop_assert_eq!(frame.swap(word, val), sf.swap(word, val)),
                        _ => prop_assert_eq!(
                            frame.compare_exchange(word, val, val ^ 1),
                            sf.compare_exchange(word, val, val ^ 1)
                        ),
                    }
                }
                (got, want) => {
                    return Err(TestCaseError::fail(format!(
                        "probe results diverged on vpn {vpn}: fast {:?}, reference {:?}",
                        std::mem::discriminant(&got),
                        want,
                    )));
                }
            }
        }

        prop_assert_eq!(fast.vtime(), slow.vtime(), "virtual time diverged");
        prop_assert_eq!(fast.counters(), slow.counters(), "counters diverged");
        for vpn in 0..NPAGES {
            let pp = PhysPage::new(pages[vpn as usize].0 as usize % 2, vpn as usize);
            for w in 0..wpp {
                prop_assert_eq!(mf.frame_data(pp).load(w), ms.frame_data(pp).load(w));
            }
        }
    }

    #[test]
    fn fast_probe_charges_nothing(
        pages in prop::collection::vec(
            (0u8..2, any::<bool>(), any::<bool>()),
            NPAGES as usize..NPAGES as usize + 1,
        ),
        probes in prop::collection::vec((0u64..NPAGES + 2, any::<bool>()), 1..50),
    ) {
        let mf = machine(true);
        let ms = machine(true);
        let mut fast = ProcCore::new(Arc::clone(&mf), 0, 0);
        let mut slow = ProcCore::new(Arc::clone(&ms), 0, 0);
        install(&mut fast, &mut slow, &pages);

        for &(vpn, write) in &probes {
            let outcome = fast.fast_probe(ASID, vpn, write);
            let reference = slow.atc().lookup(ASID, vpn);
            match (outcome, reference) {
                (FastPath::Miss, None) => {}
                (FastPath::NoRights, Some((_, w))) => prop_assert!(write && !w),
                (FastPath::Hit(_), Some((_, w))) => prop_assert!(!write || w),
                _ => return Err(TestCaseError::fail("probe results diverged")),
            }
        }
        // The probes count as lookups but charge no time and no accesses.
        prop_assert_eq!(fast.vtime(), 0);
        prop_assert_eq!(fast.counters(), slow.counters());
        prop_assert_eq!(fast.counters().total_refs(), 0);
    }
}

#[test]
fn config_flag_reaches_the_core() {
    let on = ProcCore::new(machine(true), 0, 0);
    let off = ProcCore::new(machine(false), 0, 0);
    assert!(on.fast_path_enabled());
    assert!(!off.fast_path_enabled());
}
